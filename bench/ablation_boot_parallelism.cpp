// Ablation for the §6.1.3 boot-time result: how much of Xoar's boot speedup
// comes from dependency-parallel shard boot versus simply having smaller
// components. Compares stock Dom0, Xoar with strictly serialized shard
// boot, and Xoar with the real dependency-parallel schedule.
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"

namespace xoar {
namespace {

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Ablation: boot parallelism (§6.1.3)");

  MonolithicPlatform dom0;
  (void)dom0.Boot();

  XoarPlatform::Config serial_config;
  serial_config.serialize_boot = true;
  XoarPlatform serial(serial_config);
  (void)serial.Boot();

  XoarPlatform parallel;
  (void)parallel.Boot();

  Table table({"Configuration", "Console (s)", "ping (s)"});
  table.AddRow({"Dom0 (monolithic)",
                StrFormat("%.1f", ToSeconds(dom0.console_ready_at())),
                StrFormat("%.1f", ToSeconds(dom0.network_ready_at()))});
  table.AddRow({"Xoar, serialized shard boot",
                StrFormat("%.1f", ToSeconds(serial.console_ready_at())),
                StrFormat("%.1f", ToSeconds(serial.network_ready_at()))});
  table.AddRow({"Xoar, dependency-parallel boot",
                StrFormat("%.1f", ToSeconds(parallel.console_ready_at())),
                StrFormat("%.1f", ToSeconds(parallel.network_ready_at()))});
  table.Print();

  std::printf(
      "\nSerializing the shards erases the win — disaggregation alone adds "
      "components\nto boot; the speedup the paper reports comes from the "
      "compartmentalised\ncomponents booting in parallel (§6.1.3).\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
