// Static-analysis cost bench (ANALYSIS.md "Whole-program flow analysis"):
// times the full lexical lint pass and the whole-program flow analysis
// over the real tree, and writes the committed BENCH_analysis.json — the
// xoar_flow report (findings, derived communication graph, side-by-side
// declared/derived containment metrics) plus the lint_cost.* timing
// gauges. The analysis content of the report is byte-stable — this bench
// proves it on every run by executing the whole lint+flow pass TWICE and
// byte-comparing the timing-free reports before writing anything (any
// divergence is a hard exit-2 failure). The timing gauges are the one
// host-dependent field, which is why the BENCH writer lives in bench/
// (determinism-exempt) and the CTest-run xoar_flow report omits them.
//
//   micro_lint --root <repo> [--out BENCH_analysis.json]
//
// Exits 1 when either pass reports a blocking finding, so a regression
// cannot hide behind the bench.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/flow/flow.h"
#include "src/analysis/report.h"
#include "src/analysis/rules.h"
#include "src/analysis/source_tree.h"
#include "src/security/interface_graph.h"

namespace xoar {
namespace {

using Clock = std::chrono::steady_clock;

std::size_t ElapsedUs(Clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count();
  return us > 0 ? static_cast<std::size_t>(us) : 1;  // gauges must be > 0
}

analysis::flow::GraphStats Containment(
    const std::string& label,
    const std::vector<security::InterfaceEdge>& edges) {
  const security::InterfaceGraphStats stats =
      security::AnalyzeInterfaceGraph(edges, "Guest");
  return {label,          stats.nodes,     stats.edges,
          stats.attack_surface, stats.max_reach, stats.mean_reach_milli};
}

struct PassResult {
  std::vector<analysis::Finding> lint_findings;
  analysis::flow::FlowResult flow;
  analysis::LintSummary summary;
  std::string stable_json;  // report without timing gauges
  std::size_t lint_us = 0;
  std::size_t flow_us = 0;
  std::size_t total_us = 0;
};

PassResult RunPass(const std::vector<analysis::SourceFile>& files) {
  PassResult pass;
  const Clock::time_point total_start = Clock::now();
  const Clock::time_point lint_start = Clock::now();
  pass.lint_findings = analysis::RunLint(files, analysis::DefaultConfig());
  pass.lint_us = ElapsedUs(lint_start);

  const Clock::time_point flow_start = Clock::now();
  const analysis::flow::FlowConfig config =
      analysis::flow::DefaultFlowConfig();
  pass.flow = analysis::flow::RunFlow(files, config);
  pass.flow_us = ElapsedUs(flow_start);
  pass.total_us = ElapsedUs(total_start);

  std::vector<security::InterfaceEdge> declared;
  for (const analysis::flow::DeclaredEdge& edge : config.declared_comm) {
    declared.push_back({edge.from, edge.to, edge.kind});
  }
  std::vector<security::InterfaceEdge> derived;
  for (const analysis::flow::CommEdge& edge : pass.flow.derived_comm) {
    derived.push_back({edge.from, edge.to, edge.kind});
  }

  pass.summary = analysis::Summarize(pass.flow.findings, files.size());
  pass.stable_json = analysis::flow::FormatFlowJson(
      pass.flow, pass.summary,
      {Containment("declared", declared), Containment("derived", derived)},
      {});
  return pass;
}

int Run(const std::string& root, const std::string& out_path) {
  StatusOr<std::vector<analysis::SourceFile>> files =
      analysis::LoadTree(root, analysis::DefaultScanDirs());
  if (!files.ok()) {
    std::fprintf(stderr, "micro_lint: %s\n",
                 files.status().ToString().c_str());
    return 2;
  }

  // Two complete passes: the timing-free reports must be byte-identical,
  // or the byte-stability contract the committed artifact advertises is
  // broken and nothing gets written.
  const PassResult pass = RunPass(*files);
  const PassResult rerun = RunPass(*files);
  if (pass.stable_json != rerun.stable_json) {
    std::fprintf(stderr,
                 "micro_lint: report not byte-stable across two runs\n");
    return 2;
  }

  const analysis::flow::FlowResult& result = pass.flow;
  const analysis::LintSummary& summary = pass.summary;
  // Re-format once more with the timing gauges appended; everything else
  // in the report is the proven-stable content.
  const analysis::flow::FlowConfig config =
      analysis::flow::DefaultFlowConfig();
  std::vector<security::InterfaceEdge> declared;
  for (const analysis::flow::DeclaredEdge& edge : config.declared_comm) {
    declared.push_back({edge.from, edge.to, edge.kind});
  }
  std::vector<security::InterfaceEdge> derived;
  for (const analysis::flow::CommEdge& edge : result.derived_comm) {
    derived.push_back({edge.from, edge.to, edge.kind});
  }
  const std::string json = analysis::flow::FormatFlowJson(
      result, summary,
      {Containment("declared", declared), Containment("derived", derived)},
      {{"lint_cost.full_tree_us", pass.total_us},
       {"lint_cost.lint_us", pass.lint_us},
       {"lint_cost.flow_us", pass.flow_us}});
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_lint: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json;

  std::size_t lint_blocking = 0;
  for (const analysis::Finding& finding : pass.lint_findings) {
    if (!finding.suppressed && !finding.warning) {
      ++lint_blocking;
    }
  }
  std::printf(
      "micro_lint: %zu files, lint %zuus (%zu blocking), flow %zuus "
      "(%zu functions, %zu edges, %zu blocking), report byte-stable -> %s\n",
      files->size(), pass.lint_us, lint_blocking, pass.flow_us,
      result.functions, result.call_edges, summary.unsuppressed,
      out_path.c_str());
  return (lint_blocking > 0 || summary.unsuppressed > 0) ? 1 : 0;
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  std::string root = ".";
  std::string out_path = "BENCH_analysis.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--root <dir>] [--out <report.json>]\n",
                   argv[0]);
      return 2;
    }
  }
  return xoar::Run(root, out_path);
}
