// Reproduces Fig 6.5: the Apache benchmark serving a static page — Dom0,
// Xoar, and Xoar with NetBack restarts at 10 s, 5 s, and 1 s intervals.
// Reports the figure's four metrics: total time, throughput, mean latency,
// and transfer rate, plus the worst-case request latency the text discusses
// (8–9 ms without restarts; 3,000–7,000 ms with).
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"
#include "src/workloads/apache.h"

namespace xoar {
namespace {

// Server saturation rate, calibrated to the figure: Dom0 sustains
// ~3230 req/s; Xoar's extra vif hop costs ~1.5%.
constexpr double kDom0ServerRate = 3'310.0;
constexpr double kXoarServerRate = kDom0ServerRate * 0.985;

struct RunResult {
  ApacheBenchResult bench;
  bool ok = false;
};

template <typename PlatformT>
RunResult Measure(double server_rate, double restart_interval_s) {
  RunResult out;
  PlatformT platform;
  if (!platform.Boot().ok()) {
    return out;
  }
  DomainId guest = *platform.CreateGuest(GuestSpec{});
  if constexpr (std::is_same_v<PlatformT, XoarPlatform>) {
    if (restart_interval_s > 0) {
      (void)platform.EnableNetBackRestarts(FromSeconds(restart_interval_s),
                                           /*fast=*/false);
    }
  }
  ApacheBenchConfig config;
  config.total_requests = 100'000;
  config.server_rate_rps = server_rate;
  auto result = RunApacheBench(&platform, guest, config);
  if (result.ok()) {
    out.bench = *result;
    out.ok = true;
  }
  return out;
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Fig 6.5: Apache Benchmark — regular and with NetBack restarts");

  struct Config {
    const char* label;
    bool xoar;
    double restart_interval;
    const char* paper_rps;
  };
  const Config configs[] = {
      {"Dom0", false, 0, "3230.8"},
      {"Xoar", true, 0, "3182.0"},
      {"Restarts (10s)", true, 10, "2273.4"},
      {"Restarts (5s)", true, 5, "2208.7"},
      {"Restarts (1s)", true, 1, "883.2"},
  };

  Table table({"Configuration", "Total time (s)", "Req/s", "Mean lat (ms)",
               "Max lat (ms)", "Transfer (MB/s)", "Paper req/s"});
  for (const Config& config : configs) {
    RunResult result =
        config.xoar ? Measure<XoarPlatform>(kXoarServerRate,
                                            config.restart_interval)
                    : Measure<MonolithicPlatform>(kDom0ServerRate, 0);
    if (!result.ok) {
      std::printf("run failed for %s\n", config.label);
      continue;
    }
    const ApacheBenchResult& r = result.bench;
    table.AddRow({config.label, StrFormat("%.2f", r.total_seconds),
                  StrFormat("%.1f", r.throughput_rps),
                  StrFormat("%.2f", r.mean_latency_ms),
                  StrFormat("%.0f", r.max_latency_ms),
                  StrFormat("%.2f", r.transfer_rate_mbps),
                  config.paper_rps});
  }
  table.Print();
  std::printf(
      "\nPaper shape: Xoar costs ~1.5%%; degradation is non-uniform in the "
      "restart\ninterval (5s -> 10s barely matters, 1s is a cliff); dropped "
      "SYNs during\noutages produce multi-second worst-case requests "
      "(3000-7000 ms in the paper).\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
