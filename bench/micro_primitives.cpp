// Microbenchmarks (google-benchmark) for the platform's communication
// primitives: hypercall policy checks, grant lifecycle, event-channel
// signalling, I/O-ring round trips, and XenStore operations. These are the
// building blocks whose costs §5.1 argues must stay small for
// disaggregation to be viable.
//
// Besides the google-benchmark console output, every primitive records its
// per-op wall latency into the process-global metrics registry
// (`bench.micro.<primitive>_ns` histograms), and main() exports the
// registry as BENCH_micro_primitives.json — the same JSON family the
// platform itself emits (see OBSERVABILITY.md). The in-loop sampling costs
// two steady_clock reads per iteration, so the reported numbers carry a
// small constant inflation; the histogram shape is what matters here.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>

#include "src/base/log.h"
#include "src/hv/hypervisor.h"
#include "src/hv/io_ring.h"
#include "src/obs/obs.h"
#include "src/xs/store.h"

namespace xoar {
namespace {

// Per-op latency histogram in the process-global registry, 100ns..~100ms
// buckets. Stable pointer: resolve once per benchmark, observe per op.
Histogram* LatencyHist(const char* primitive) {
  return Obs::Global().metrics().GetHistogram(
      MetricName("bench", "micro", primitive),
      Histogram::DefaultLatencyBoundsNs());
}

class OpTimer {
 public:
  explicit OpTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~OpTimer() {
    hist_->Observe(std::chrono::duration<double, std::nano>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

struct HvFixture {
  HvFixture() {
    Logger::Get().set_level(LogLevel::kNone);
    Hypervisor::Options options;
    options.enforce_shard_sharing_policy = true;
    hv = std::make_unique<Hypervisor>(&sim, options);
    DomainConfig boot_config;
    boot_config.name = "boot";
    boot_config.memory_mb = 32;
    boot_config.is_shard = true;
    boot = *hv->CreateInitialDomain(boot_config, false);
    // xoar-lint: allow(privilege): stock-Xen Dom0 baseline deliberately holds the full privileged set
    hv->domain(boot)->hypercall_policy().PermitAll();
    shard = NewDomain("shard", true);
    DomainConfig guest_config;
    guest_config.name = "guest";
    guest_config.memory_mb = 64;
    guest = *hv->CreateDomain(boot, guest_config);
    (void)hv->FinishBuild(boot, guest);
    (void)hv->UnpauseDomain(boot, guest);
    (void)hv->AllowDelegation(boot, shard, boot);
    (void)hv->AuthorizeShardUse(boot, guest, shard);
  }

  DomainId NewDomain(const char* name, bool is_shard) {
    DomainConfig config;
    config.name = name;
    config.memory_mb = 32;
    config.is_shard = is_shard;
    DomainId id = *hv->CreateDomain(boot, config);
    (void)hv->FinishBuild(boot, id);
    (void)hv->UnpauseDomain(boot, id);
    return id;
  }

  Simulator sim;
  std::unique_ptr<Hypervisor> hv;
  DomainId boot, shard, guest;
};

void BM_HypercallPolicyCheck(benchmark::State& state) {
  HvFixture fixture;
  Histogram* hist = LatencyHist("hypercall_check_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    benchmark::DoNotOptimize(
        fixture.hv->CheckHypercall(fixture.guest, Hypercall::kGrantTableOp));
  }
}
BENCHMARK(BM_HypercallPolicyCheck);

void BM_IvcPolicyCheck(benchmark::State& state) {
  HvFixture fixture;
  Histogram* hist = LatencyHist("ivc_check_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    benchmark::DoNotOptimize(
        fixture.hv->CheckIvcAllowed(fixture.guest, fixture.shard));
  }
}
BENCHMARK(BM_IvcPolicyCheck);

void BM_GrantCreateMapUnmapEnd(benchmark::State& state) {
  HvFixture fixture;
  Pfn pfn = *fixture.hv->memory().AllocatePages(fixture.guest, 1);
  Histogram* hist = LatencyHist("grant_cycle_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    GrantRef ref =
        *fixture.hv->GrantAccess(fixture.guest, fixture.shard, pfn, true);
    benchmark::DoNotOptimize(
        fixture.hv->MapGrant(fixture.shard, fixture.guest, ref));
    (void)fixture.hv->UnmapGrant(fixture.shard, fixture.guest, ref);
    (void)fixture.hv->EndGrantAccess(fixture.guest, ref);
  }
}
BENCHMARK(BM_GrantCreateMapUnmapEnd);

void BM_EventChannelSendDeliver(benchmark::State& state) {
  HvFixture fixture;
  EvtchnPort unbound =
      *fixture.hv->EvtchnAllocUnbound(fixture.guest, fixture.shard);
  EvtchnPort bound =
      *fixture.hv->EvtchnBindInterdomain(fixture.shard, fixture.guest,
                                         unbound);
  int delivered = 0;
  (void)fixture.hv->EvtchnSetHandler(fixture.guest, unbound,
                                     [&] { ++delivered; });
  Histogram* hist = LatencyHist("evtchn_send_deliver_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    (void)fixture.hv->EvtchnSend(fixture.shard, bound);
    fixture.sim.Run();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_EventChannelSendDeliver);

struct RingReq {
  std::uint64_t id;
  std::uint32_t payload;
};
struct RingRsp {
  std::uint64_t id;
  std::int32_t status;
};

void BM_IoRingRoundTrip(benchmark::State& state) {
  alignas(64) std::array<std::byte, kPageSize> page{};
  auto front = IoRing<RingReq, RingRsp>::Create(page.data());
  auto back = IoRing<RingReq, RingRsp>::Attach(page.data());
  std::uint64_t id = 0;
  Histogram* hist = LatencyHist("io_ring_round_trip_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    front.PushRequest({id, 42});
    auto req = back.PopRequest();
    back.PushResponse({req->id, 0});
    benchmark::DoNotOptimize(front.PopResponse());
    ++id;
  }
}
BENCHMARK(BM_IoRingRoundTrip);

void BM_XenStoreWrite(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(DomainId(0));
  std::uint64_t counter = 0;
  Histogram* hist = LatencyHist("xs_write_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    (void)store.Write(DomainId(0), "/bench/key",
                      std::to_string(counter++));
  }
}
BENCHMARK(BM_XenStoreWrite);

void BM_XenStoreReadDeepPath(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(DomainId(0));
  (void)store.Write(DomainId(0), "/local/domain/7/device/vif/0/state", "4");
  Histogram* hist = LatencyHist("xs_read_deep_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    benchmark::DoNotOptimize(
        store.Read(DomainId(0), "/local/domain/7/device/vif/0/state"));
  }
}
BENCHMARK(BM_XenStoreReadDeepPath);

void BM_XenStoreWatchFire(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(DomainId(0));
  int fires = 0;
  (void)store.Watch(DomainId(0), "/w", "tok",
                    [&](const XsWatchEvent&) { ++fires; });
  std::uint64_t counter = 0;
  Histogram* hist = LatencyHist("xs_watch_fire_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    (void)store.Write(DomainId(0), "/w/key", std::to_string(counter++));
  }
  benchmark::DoNotOptimize(fires);
}
BENCHMARK(BM_XenStoreWatchFire);

void BM_XenStoreTransaction(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(DomainId(0));
  Histogram* hist = LatencyHist("xs_transaction_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    auto tx = store.TransactionStart(DomainId(0));
    (void)store.Write(DomainId(0), "/tx/a", "1", *tx);
    (void)store.TransactionEnd(DomainId(0), *tx, true);
  }
}
BENCHMARK(BM_XenStoreTransaction);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  Simulator sim;
  Histogram* hist = LatencyHist("sim_schedule_run_ns");
  for (auto _ : state) {
    OpTimer timer(hist);
    sim.ScheduleAfter(1, [] {});
    sim.Run();
  }
}
BENCHMARK(BM_SimulatorScheduleRun);

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  xoar::Status status = xoar::Obs::Global().metrics().WriteJsonFile(
      "BENCH_micro_primitives.json", "micro_primitives");
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write BENCH_micro_primitives.json: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nper-op latency histograms -> BENCH_micro_primitives.json\n");
  return 0;
}
