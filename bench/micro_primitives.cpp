// Microbenchmarks (google-benchmark) for the platform's communication
// primitives: hypercall policy checks, grant lifecycle, event-channel
// signalling, I/O-ring round trips, and XenStore operations. These are the
// building blocks whose costs §5.1 argues must stay small for
// disaggregation to be viable.
#include <benchmark/benchmark.h>

#include <array>

#include "src/base/log.h"
#include "src/hv/hypervisor.h"
#include "src/hv/io_ring.h"
#include "src/xs/store.h"

namespace xoar {
namespace {

struct HvFixture {
  HvFixture() {
    Logger::Get().set_level(LogLevel::kNone);
    Hypervisor::Options options;
    options.enforce_shard_sharing_policy = true;
    hv = std::make_unique<Hypervisor>(&sim, options);
    DomainConfig boot_config;
    boot_config.name = "boot";
    boot_config.memory_mb = 32;
    boot_config.is_shard = true;
    boot = *hv->CreateInitialDomain(boot_config, false);
    hv->domain(boot)->hypercall_policy().PermitAll();
    shard = NewDomain("shard", true);
    DomainConfig guest_config;
    guest_config.name = "guest";
    guest_config.memory_mb = 64;
    guest = *hv->CreateDomain(boot, guest_config);
    (void)hv->FinishBuild(boot, guest);
    (void)hv->UnpauseDomain(boot, guest);
    (void)hv->AllowDelegation(boot, shard, boot);
    (void)hv->AuthorizeShardUse(boot, guest, shard);
  }

  DomainId NewDomain(const char* name, bool is_shard) {
    DomainConfig config;
    config.name = name;
    config.memory_mb = 32;
    config.is_shard = is_shard;
    DomainId id = *hv->CreateDomain(boot, config);
    (void)hv->FinishBuild(boot, id);
    (void)hv->UnpauseDomain(boot, id);
    return id;
  }

  Simulator sim;
  std::unique_ptr<Hypervisor> hv;
  DomainId boot, shard, guest;
};

void BM_HypercallPolicyCheck(benchmark::State& state) {
  HvFixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.hv->CheckHypercall(fixture.guest, Hypercall::kGrantTableOp));
  }
}
BENCHMARK(BM_HypercallPolicyCheck);

void BM_IvcPolicyCheck(benchmark::State& state) {
  HvFixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.hv->CheckIvcAllowed(fixture.guest, fixture.shard));
  }
}
BENCHMARK(BM_IvcPolicyCheck);

void BM_GrantCreateMapUnmapEnd(benchmark::State& state) {
  HvFixture fixture;
  Pfn pfn = *fixture.hv->memory().AllocatePages(fixture.guest, 1);
  for (auto _ : state) {
    GrantRef ref =
        *fixture.hv->GrantAccess(fixture.guest, fixture.shard, pfn, true);
    benchmark::DoNotOptimize(
        fixture.hv->MapGrant(fixture.shard, fixture.guest, ref));
    (void)fixture.hv->UnmapGrant(fixture.shard, fixture.guest, ref);
    (void)fixture.hv->EndGrantAccess(fixture.guest, ref);
  }
}
BENCHMARK(BM_GrantCreateMapUnmapEnd);

void BM_EventChannelSendDeliver(benchmark::State& state) {
  HvFixture fixture;
  EvtchnPort unbound =
      *fixture.hv->EvtchnAllocUnbound(fixture.guest, fixture.shard);
  EvtchnPort bound =
      *fixture.hv->EvtchnBindInterdomain(fixture.shard, fixture.guest,
                                         unbound);
  int delivered = 0;
  (void)fixture.hv->EvtchnSetHandler(fixture.guest, unbound,
                                     [&] { ++delivered; });
  for (auto _ : state) {
    (void)fixture.hv->EvtchnSend(fixture.shard, bound);
    fixture.sim.Run();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_EventChannelSendDeliver);

struct RingReq {
  std::uint64_t id;
  std::uint32_t payload;
};
struct RingRsp {
  std::uint64_t id;
  std::int32_t status;
};

void BM_IoRingRoundTrip(benchmark::State& state) {
  alignas(64) std::array<std::byte, kPageSize> page{};
  auto front = IoRing<RingReq, RingRsp>::Create(page.data());
  auto back = IoRing<RingReq, RingRsp>::Attach(page.data());
  std::uint64_t id = 0;
  for (auto _ : state) {
    front.PushRequest({id, 42});
    auto req = back.PopRequest();
    back.PushResponse({req->id, 0});
    benchmark::DoNotOptimize(front.PopResponse());
    ++id;
  }
}
BENCHMARK(BM_IoRingRoundTrip);

void BM_XenStoreWrite(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(DomainId(0));
  std::uint64_t counter = 0;
  for (auto _ : state) {
    (void)store.Write(DomainId(0), "/bench/key",
                      std::to_string(counter++));
  }
}
BENCHMARK(BM_XenStoreWrite);

void BM_XenStoreReadDeepPath(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(DomainId(0));
  (void)store.Write(DomainId(0), "/local/domain/7/device/vif/0/state", "4");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Read(DomainId(0), "/local/domain/7/device/vif/0/state"));
  }
}
BENCHMARK(BM_XenStoreReadDeepPath);

void BM_XenStoreWatchFire(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(DomainId(0));
  int fires = 0;
  (void)store.Watch(DomainId(0), "/w", "tok",
                    [&](const XsWatchEvent&) { ++fires; });
  std::uint64_t counter = 0;
  for (auto _ : state) {
    (void)store.Write(DomainId(0), "/w/key", std::to_string(counter++));
  }
  benchmark::DoNotOptimize(fires);
}
BENCHMARK(BM_XenStoreWatchFire);

void BM_XenStoreTransaction(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(DomainId(0));
  for (auto _ : state) {
    auto tx = store.TransactionStart(DomainId(0));
    (void)store.Write(DomainId(0), "/tx/a", "1", *tx);
    (void)store.TransactionEnd(DomainId(0), *tx, true);
  }
}
BENCHMARK(BM_XenStoreTransaction);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.ScheduleAfter(1, [] {});
    sim.Run();
  }
}
BENCHMARK(BM_SimulatorScheduleRun);

}  // namespace
}  // namespace xoar

BENCHMARK_MAIN();
