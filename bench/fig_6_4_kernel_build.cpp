// Reproduces Fig 6.4: Linux kernel build off a local ext3 volume and off an
// NFS mount, on Dom0 and Xoar, plus Xoar with NetBack restarts at 10 s and
// 5 s intervals.
//
// Paper shape: Xoar overhead "much less than 1%"; NFS builds are markedly
// slower than local; restarts add a visible but small penalty on NFS.
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"
#include "src/workloads/kernel_build.h"

namespace xoar {
namespace {

KernelBuildConfig BuildConfig(bool nfs) {
  KernelBuildConfig config;
  config.over_nfs = nfs;
  return config;
}

template <typename PlatformT>
double Measure(bool nfs, double restart_interval_s = 0, bool fast = false) {
  PlatformT platform;
  if (!platform.Boot().ok()) {
    return 0;
  }
  DomainId guest = *platform.CreateGuest(GuestSpec{});
  if constexpr (std::is_same_v<PlatformT, XoarPlatform>) {
    if (restart_interval_s > 0) {
      (void)platform.EnableNetBackRestarts(FromSeconds(restart_interval_s),
                                           fast);
    }
  }
  auto result = RunKernelBuild(&platform, guest, BuildConfig(nfs));
  return result.ok() ? result->seconds : 0;
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Fig 6.4: Kernel Build — Local ext3 and Remote NFS (seconds)");

  const double dom0_local = Measure<MonolithicPlatform>(false);
  const double xoar_local = Measure<XoarPlatform>(false);
  const double dom0_nfs = Measure<MonolithicPlatform>(true);
  const double xoar_nfs = Measure<XoarPlatform>(true);
  const double restarts_10s = Measure<XoarPlatform>(true, 10);
  const double restarts_5s = Measure<XoarPlatform>(true, 5);

  Table table({"Configuration", "Time (s)", "vs Dom0 same-storage"});
  table.AddRow({"Dom0 (local)", StrFormat("%.1f", dom0_local), "-"});
  table.AddRow({"Xoar (local)", StrFormat("%.1f", xoar_local),
                StrFormat("%+.2f%%", (xoar_local / dom0_local - 1) * 100)});
  table.AddRow({"Dom0 (nfs)", StrFormat("%.1f", dom0_nfs), "-"});
  table.AddRow({"Xoar (nfs)", StrFormat("%.1f", xoar_nfs),
                StrFormat("%+.2f%%", (xoar_nfs / dom0_nfs - 1) * 100)});
  table.AddRow({"Xoar nfs + restarts (10s)", StrFormat("%.1f", restarts_10s),
                StrFormat("%+.2f%%", (restarts_10s / dom0_nfs - 1) * 100)});
  table.AddRow({"Xoar nfs + restarts (5s)", StrFormat("%.1f", restarts_5s),
                StrFormat("%+.2f%%", (restarts_5s / dom0_nfs - 1) * 100)});
  table.Print();
  std::printf(
      "\nPaper shape: \"the overhead added by Xoar is much less than 1%%\" "
      "for the\nbuild itself; NFS pays metadata RPC latency; frequent driver "
      "restarts add a\nsmall additional penalty on the NFS path only.\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
