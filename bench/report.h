// Shared table-rendering helpers for the reproduction benchmarks.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation chapter and prints (a) the measured rows and (b) a
// paper-vs-measured comparison where the thesis gives concrete numbers.
#ifndef XOAR_BENCH_REPORT_H_
#define XOAR_BENCH_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

namespace xoar {

inline void PrintHeading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void PrintRule(const std::vector<int>& widths) {
  std::printf("+");
  for (int w : widths) {
    for (int i = 0; i < w + 2; ++i) {
      std::printf("-");
    }
    std::printf("+");
  }
  std::printf("\n");
}

inline void PrintRow(const std::vector<int>& widths,
                     const std::vector<std::string>& cells) {
  std::printf("|");
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : std::string();
    std::printf(" %-*s |", widths[i], cell.c_str());
  }
  std::printf("\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> header) {
    rows_.push_back(std::move(header));
  }

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<int> widths;
    for (const auto& row : rows_) {
      if (widths.size() < row.size()) {
        widths.resize(row.size(), 0);
      }
      for (std::size_t i = 0; i < row.size(); ++i) {
        widths[i] = std::max(widths[i], static_cast<int>(row[i].size()));
      }
    }
    PrintRule(widths);
    PrintRow(widths, rows_[0]);
    PrintRule(widths);
    for (std::size_t i = 1; i < rows_.size(); ++i) {
      PrintRow(widths, rows_[i]);
    }
    PrintRule(widths);
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xoar

#endif  // XOAR_BENCH_REPORT_H_
