// Reproduces Table 6.1: memory consumption of individual shards, plus the
// §6.1.1 total-range discussion (512–896 MB vs the 750 MB Dom0 default).
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"

namespace xoar {
namespace {

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Table 6.1: Memory Consumption of Individual Shards");

  XoarPlatform platform;
  if (!platform.Boot().ok()) {
    std::printf("boot failed\n");
    return;
  }

  Table table({"Component", "Paper (MB)", "Measured (MB)", "OS"});
  for (const auto& descriptor : ShardInventory()) {
    if (descriptor.shard_class == ShardClass::kBootstrapper ||
        descriptor.shard_class == ShardClass::kQemuVm) {
      continue;  // not resident in steady state / per-guest
    }
    const Domain* dom =
        platform.hv().domain(platform.shard_domain(descriptor.shard_class));
    const std::uint64_t measured =
        dom != nullptr && dom->alive() ? dom->config().memory_mb : 0;
    table.AddRow({std::string(descriptor.name),
                  StrFormat("%lluMB", (unsigned long long)descriptor.memory_mb),
                  StrFormat("%lluMB", (unsigned long long)measured),
                  std::string(OsProfileName(descriptor.os))});
  }
  table.Print();

  // §6.1.1 configuration range.
  const std::uint64_t full = platform.ControlPlaneMemoryMb();

  XoarPlatform::Config minimal_config;
  minimal_config.console_manager_enabled = false;
  minimal_config.destroy_pciback_after_boot = true;
  XoarPlatform minimal(minimal_config);
  (void)minimal.Boot();

  MonolithicPlatform dom0;
  (void)dom0.Boot();

  std::printf("\nControl-plane memory by configuration (§6.1.1):\n");
  Table range({"Configuration", "Paper", "Measured"});
  range.AddRow({"Xoar minimal (no console, PCIBack destroyed)", "512 MB",
                StrFormat("%llu MB", (unsigned long long)
                              minimal.ControlPlaneMemoryMb())});
  range.AddRow({"Xoar full", "896 MB",
                StrFormat("%llu MB", (unsigned long long)full)});
  range.AddRow({"Dom0 (XenServer default)", "750 MB",
                StrFormat("%llu MB", (unsigned long long)
                              dom0.ControlPlaneMemoryMb())});
  range.Print();
  std::printf(
      "\nShape check: Xoar spans a 30%% saving to a 20%% overhead against the "
      "750 MB Dom0 default, as reported.\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
