// Scaling microbenchmarks for the XenStore hot paths (google-benchmark),
// sweeping store size (10^2..10^5 nodes) and watch count. §5.1 argues
// disaggregation is only viable if these primitive costs stay small; the
// paths measured here are the ones every domain build, split-driver
// negotiation, and microreboot recovery funnels through:
//
//  - TransactionStart: O(1) copy-on-write tree share (was a full deep copy)
//  - quota-enabled node creation: O(depth) with incremental per-owner
//    counters (was an O(N) full-tree flatten per created node)
//  - watch dispatch: path-segment trie, cost follows matching watches
//    (was a linear scan over every registered watch per mutation)
//  - disjoint-path transaction commit: per-path read/write-set validation
//    (was a whole-store generation check that aborted on any activity)
//
// Results are written to BENCH_xenstore.json (override with
// --benchmark_out=...) so future PRs can track the trajectory.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/xs/store.h"

namespace xoar {
namespace {

constexpr DomainId kManager{0};
constexpr DomainId kGuest{5};

// Populates `store` with `nodes` nodes shaped like a real toolstack store:
// 64-way fan-out directories with leaf entries below them.
void Populate(XsStore& store, int nodes, DomainId owner) {
  for (int i = 0; i < nodes; ++i) {
    const std::string path =
        StrFormat("/local/domain/%d/n%d", i % 64, i);
    (void)store.Write(owner, path, "v");
  }
}

void BM_TransactionStartAbort(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(kManager);
  Populate(store, static_cast<int>(state.range(0)), kManager);
  for (auto _ : state) {
    auto tx = store.TransactionStart(kManager);
    benchmark::DoNotOptimize(tx);
    (void)store.TransactionEnd(kManager, *tx, /*commit=*/false);
  }
  state.counters["store_nodes"] = static_cast<double>(store.NodeCount());
}
BENCHMARK(BM_TransactionStartAbort)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TransactionWriteCommit(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(kManager);
  Populate(store, static_cast<int>(state.range(0)), kManager);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    auto tx = store.TransactionStart(kManager);
    (void)store.Write(kManager, "/local/domain/0/txkey",
                      std::to_string(counter++), *tx);
    (void)store.TransactionEnd(kManager, *tx, /*commit=*/true);
  }
  state.counters["store_nodes"] = static_cast<double>(store.NodeCount());
}
BENCHMARK(BM_TransactionWriteCommit)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// Two transactions writing disjoint paths, both committing — the case the
// whole-store generation check used to turn into spurious EAGAIN retries.
void BM_DisjointTransactionsCommit(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(kManager);
  Populate(store, static_cast<int>(state.range(0)), kManager);
  std::uint64_t aborted = 0;
  for (auto _ : state) {
    auto a = store.TransactionStart(kManager);
    auto b = store.TransactionStart(kManager);
    (void)store.Write(kManager, "/local/domain/1/a", "1", *a);
    (void)store.Write(kManager, "/local/domain/2/b", "2", *b);
    if (!store.TransactionEnd(kManager, *a, true).ok()) ++aborted;
    if (!store.TransactionEnd(kManager, *b, true).ok()) ++aborted;
  }
  state.counters["aborted"] = static_cast<double>(aborted);
}
BENCHMARK(BM_DisjointTransactionsCommit)->Arg(1000)->Arg(10000);

// Node creation with a quota configured: the quota check used to flatten
// the whole tree (copying every path and value) on *every* creation.
void BM_QuotaNodeCreate(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(kManager);
  (void)store.Mkdir(kManager, "/g");
  XsNodePerms perms;
  perms.owner = kGuest;
  (void)store.SetPerms(kManager, "/g", perms);
  const int nodes = static_cast<int>(state.range(0));
  // Headroom covers /g, the 64 fan-out directories, and the bench node, so
  // the loop below measures guarded creation rather than quota rejection.
  store.set_node_quota(static_cast<std::size_t>(nodes) + 128);
  for (int i = 0; i < nodes; ++i) {
    (void)store.Write(kGuest, StrFormat("/g/d%d/n%d", i % 64, i), "v");
  }
  for (auto _ : state) {
    (void)store.Write(kGuest, "/g/bench-node", "v");
    (void)store.Remove(kGuest, "/g/bench-node");
  }
  state.counters["guest_nodes"] =
      static_cast<double>(store.NodesOwnedBy(kGuest));
}
BENCHMARK(BM_QuotaNodeCreate)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// Dispatching one mutation with W registered watches on disjoint paths:
// with the path-segment trie only the matching watch is visited.
void BM_WatchDispatch(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(kManager);
  const int watches = static_cast<int>(state.range(0));
  std::uint64_t fires = 0;
  for (int i = 0; i < watches; ++i) {
    (void)store.Watch(kManager, StrFormat("/w/%d", i), "tok",
                      [&](const XsWatchEvent&) { ++fires; });
  }
  std::uint64_t counter = 0;
  for (auto _ : state) {
    (void)store.Write(kManager, "/w/0/key", std::to_string(counter++));
  }
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_WatchDispatch)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SnapshotTakeRestore(benchmark::State& state) {
  XsStore store;
  store.AddManagerDomain(kManager);
  Populate(store, static_cast<int>(state.range(0)), kManager);
  for (auto _ : state) {
    XsStore::Snapshot snapshot = store.TakeSnapshot();
    (void)store.Write(kManager, "/local/domain/0/scratch", "x");
    store.RestoreSnapshot(snapshot);
  }
}
BENCHMARK(BM_SnapshotTakeRestore)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  // Default to emitting the JSON trajectory next to the working directory
  // unless the caller picked an explicit output.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_xenstore.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
