// Ablation: live migration (§2.1.1) on the disaggregated platform — the
// enterprise feature the small-hypervisor alternatives of §2.3.1 give up.
// Sweeps the guest's page-dirty rate and reports the classic pre-copy
// trade-off: rounds, total migration time, and downtime, including the
// divergence point where pre-copy stops converging.
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/migration.h"

namespace xoar {
namespace {

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Ablation: live migration under increasing dirty rates");

  Table table({"Dirty rate", "Pre-copy rounds", "Converged", "Total time",
               "Downtime", "Data sent"});
  for (double dirty_mbps : {5.0, 20.0, 50.0, 80.0, 100.0, 150.0, 300.0}) {
    XoarPlatform source, destination;
    if (!source.Boot().ok() || !destination.Boot().ok()) {
      return;
    }
    DomainId guest =
        *source.CreateGuest(GuestSpec{.name = "mover", .memory_mb = 1024});
    MigrationParams params;
    params.dirty_rate_bytes_per_sec = dirty_mbps * 1e6;
    auto result = LiveMigrate(&source, guest, &destination, params);
    if (!result.ok()) {
      std::printf("migration failed at %.0f MB/s dirty rate: %s\n",
                  dirty_mbps, result.status().ToString().c_str());
      continue;
    }
    table.AddRow({StrFormat("%.0f MB/s", dirty_mbps),
                  StrFormat("%d", result->precopy_rounds),
                  result->converged ? "yes" : "NO (stop-and-copy)",
                  StrFormat("%.2fs", ToSeconds(result->total_time)),
                  StrFormat("%.0fms", ToMilliseconds(result->downtime)),
                  StrFormat("%.0f MB",
                            static_cast<double>(result->bytes_transferred) /
                                1e6)});
  }
  table.Print();
  std::printf(
      "\nBelow the stream rate (~105 MB/s effective over GbE) pre-copy "
      "converges and\ndowntime stays in the tens of milliseconds; past it, "
      "the round cap forces a\nbulk stop-and-copy and downtime jumps by two "
      "orders of magnitude. Xoar keeps\nthis capability — the §2.3.1 "
      "alternatives (NoHype et al.) lose interposition\nand with it live "
      "migration.\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
