// Reproduces the §6.2 TCB-size comparison: lines of code with the privilege
// to arbitrarily access guest memory, stock Xen vs Xoar.
#include <cstdio>

#include "bench/report.h"
#include "src/base/strings.h"
#include "src/security/tcb.h"

namespace xoar {
namespace {

void PrintReport(const TcbReport& report) {
  std::printf("%s\n", report.platform.c_str());
  Table table({"Component", "Source LoC", "Compiled LoC", "Privileged"});
  for (const auto& component : report.components) {
    table.AddRow({component.name,
                  StrFormat("%llu", (unsigned long long)
                                component.size.source_loc),
                  StrFormat("%llu", (unsigned long long)
                                component.size.compiled_loc),
                  component.privileged ? "YES" : "no"});
  }
  table.Print();
  const CodeSize total = report.PrivilegedTotal();
  const CodeSize above = report.PrivilegedAboveHypervisor();
  std::printf(
      "privileged total: %llu source (%llu compiled); above the hypervisor: "
      "%llu source (%llu compiled)\n\n",
      (unsigned long long)total.source_loc,
      (unsigned long long)total.compiled_loc,
      (unsigned long long)above.source_loc,
      (unsigned long long)above.compiled_loc);
}

void Run() {
  PrintHeading("§6.2: TCB size — stock Xen vs Xoar");
  const TcbReport stock = StockXenTcb();
  const TcbReport xoar = XoarTcb();
  PrintReport(stock);
  PrintReport(xoar);

  const double reduction =
      static_cast<double>(stock.PrivilegedAboveHypervisor().source_loc) /
      static_cast<double>(xoar.PrivilegedAboveHypervisor().source_loc);
  std::printf(
      "Reduction of the privileged control plane: %.0fx (paper: Linux's 7.6M "
      "/ 400k\ncompiled lines reduced to nanOS's 13k / 8k, both atop Xen's "
      "280k / 70k).\n",
      reduction);
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
