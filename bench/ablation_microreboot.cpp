// Ablation for the §3.3 snapshot/rollback design: rollback latency as a
// function of captured state size, the cost of the two recovery grades on
// the live data path, and what the recovery box buys on reconnection.
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/snapshot.h"
#include "src/core/xoar_platform.h"
#include "src/workloads/wget.h"

namespace xoar {
namespace {

class BlobComponent : public Snapshottable {
 public:
  explicit BlobComponent(std::size_t bytes) : state_(bytes, 's') {}
  std::string SaveState() const override { return state_; }
  void RestoreState(const std::string& s) override { state_ = s; }

 private:
  std::string state_;
};

void RollbackCostSweep() {
  std::printf("Rollback cost vs captured state size (§3.3 cost model):\n");
  Table table({"State size", "Modeled rollback cost"});
  for (std::uint64_t mb : {1, 4, 16, 64, 128, 256}) {
    SnapshotManager manager;
    BlobComponent component(mb * kMiB);
    (void)manager.TakeSnapshot(DomainId(1), &component);
    auto cost = manager.Rollback(DomainId(1));
    table.AddRow({StrFormat("%lluMB", (unsigned long long)mb),
                  StrFormat("%.2fms", ToMilliseconds(*cost))});
  }
  table.Print();
  std::printf(
      "The paper's CoW mechanism only copies dirtied pages, which is why a "
      "full\nrestart of a 128MB driver domain costs 260ms while a rollback "
      "with a small\ndirty set stays in the low milliseconds.\n\n");
}

void RecoveryGradeSweep() {
  std::printf(
      "Data-path cost of one restart per interval, by recovery grade\n"
      "(512MB wget, MB/s):\n");
  Table table({"Interval", "slow (260ms)", "fast (140ms)", "fast benefit"});
  for (double interval : {1.0, 2.0, 5.0, 10.0}) {
    double slow = 0, fast = 0;
    for (bool use_fast : {false, true}) {
      XoarPlatform platform;
      if (!platform.Boot().ok()) {
        return;
      }
      DomainId guest = *platform.CreateGuest(GuestSpec{});
      (void)platform.EnableNetBackRestarts(FromSeconds(interval), use_fast);
      auto result = RunWget(&platform, guest, 512ull * 1000 * 1000,
                            WgetSink::kDevNull);
      (use_fast ? fast : slow) = result.ok() ? result->throughput_mbps : 0;
    }
    table.AddRow({StrFormat("%.0fs", interval), StrFormat("%.1f", slow),
                  StrFormat("%.1f", fast),
                  StrFormat("%+.1f%%", (fast / slow - 1) * 100)});
  }
  table.Print();
  std::printf(
      "The recovery box persists configuration otherwise renegotiated via "
      "XenStore,\ncutting device downtime from 260ms to 140ms (§6.1.2).\n");
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Ablation: snapshot/rollback and recovery grades (§3.3)");
  RollbackCostSweep();
  RecoveryGradeSweep();
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
