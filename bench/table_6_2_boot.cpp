// Reproduces Table 6.2: comparison of boot times (time to a console login
// prompt and time to the first external ping response).
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"

namespace xoar {
namespace {

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Table 6.2: Comparison of Boot Times");

  MonolithicPlatform dom0;
  XoarPlatform xoar;
  if (!dom0.Boot().ok() || !xoar.Boot().ok()) {
    std::printf("boot failed\n");
    return;
  }

  const double dom0_console = ToSeconds(dom0.console_ready_at());
  const double dom0_ping = ToSeconds(dom0.network_ready_at());
  const double xoar_console = ToSeconds(xoar.console_ready_at());
  const double xoar_ping = ToSeconds(xoar.network_ready_at());

  Table table({"Milestone", "Dom0", "Xoar", "Speedup", "Paper"});
  table.AddRow({"Console", StrFormat("%.1fs", dom0_console),
                StrFormat("%.1fs", xoar_console),
                StrFormat("%.2fx", dom0_console / xoar_console),
                "38.9s / 25.9s / 1.5x"});
  table.AddRow({"ping", StrFormat("%.1fs", dom0_ping),
                StrFormat("%.1fs", xoar_ping),
                StrFormat("%.2fx", dom0_ping / xoar_ping),
                "42.2s / 36.6s / 1.15x"});
  table.Print();

  std::printf(
      "\nThe speedup comes from dependency-parallel shard boot (§6.1.3); the "
      "Console\nManager skips PCI enumeration entirely (§5.5) and reaches the "
      "login prompt\nwhile PCIBack is still initializing hardware.\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
