// Seeded randomized fault-injection campaign against a booted XoarPlatform
// (RESILIENCE.md "Running a campaign").
//
//   fault_campaign [--seed N] [--faults N] [--seconds S] [--crashes N]
//                  [--out BENCH_fault_campaign.json]
//
// A FaultPlan::Randomized schedule of transient windows plus shard crashes
// runs while a probe guest continuously exercises the three client-visible
// services: XenStore reads, block writes, and network transmits. The
// campaign reports availability (fraction of probes answered OK), mean
// recovery time per outage episode, how many transient faults the
// retry/backoff layer absorbed without a microreboot, and the invariant
// violations that must stay at zero:
//
//   1. the host never fails (faults are contained to shards);
//   2. every probe completes — nothing wedges forever;
//   3. after the campaign drains, both frontends are reconnected and a
//      final probe of every service succeeds.
//
// Everything is driven by the simulator clock and the plan's seed: the same
// seed writes a byte-identical JSON report. Exits non-zero if any invariant
// is violated.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/drv/blk.h"
#include "src/drv/net.h"
#include "src/drv/xenbus.h"
#include "src/fault/fault.h"
#include "src/obs/obs.h"

namespace xoar {
namespace {

struct Options {
  std::uint64_t seed = 42;
  int faults = 12;
  double seconds = 6.0;
  int crashes = 2;
  std::string out = "BENCH_fault_campaign.json";
};

// One service's probe ledger. Outage episodes are bracketed by the first
// failed completion and the next successful one; their spans feed the mean
// recovery time.
struct ProbeStats {
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  bool down = false;
  SimTime down_since = 0;
  double recovery_ms_sum = 0;
  std::uint64_t recoveries = 0;

  void Complete(SimTime now, bool success) {
    if (success) {
      ++ok;
      if (down) {
        recovery_ms_sum += static_cast<double>(now - down_since) /
                           static_cast<double>(kMillisecond);
        ++recoveries;
        down = false;
      }
    } else {
      ++failed;
      if (!down) {
        down = true;
        down_since = now;
      }
    }
  }
};

struct Campaign {
  ProbeStats xs;
  ProbeStats blk;
  ProbeStats net;
  std::uint64_t host_failures = 0;
  std::uint64_t lost_probes = 0;  // issued but never completed
  std::uint64_t final_failures = 0;

  std::uint64_t issued() const {
    return xs.issued + blk.issued + net.issued;
  }
  std::uint64_t completed() const {
    return xs.ok + xs.failed + blk.ok + blk.failed + net.ok + net.failed;
  }
  std::uint64_t ok() const { return xs.ok + blk.ok + net.ok; }
  double availability() const {
    const std::uint64_t done = completed();
    return done == 0 ? 0.0
                     : static_cast<double>(ok()) / static_cast<double>(done);
  }
  double mean_recovery_ms() const {
    const std::uint64_t n = xs.recoveries + blk.recoveries + net.recoveries;
    return n == 0 ? 0.0
                  : (xs.recovery_ms_sum + blk.recovery_ms_sum +
                     net.recovery_ms_sum) /
                        static_cast<double>(n);
  }
};

int RunCampaign(const Options& options) {
  XoarPlatform platform;
  if (!platform.Boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 2;
  }
  StatusOr<DomainId> guest = platform.CreateGuest(GuestSpec{.name = "probe"});
  if (!guest.ok()) {
    std::fprintf(stderr, "guest creation failed\n");
    return 2;
  }
  platform.Settle();
  NetFront* netfront = platform.netfront(*guest);
  BlkFront* blkfront = platform.blkfront(*guest);
  if (netfront == nullptr || blkfront == nullptr) {
    std::fprintf(stderr, "probe guest has no frontends\n");
    return 2;
  }

  Simulator& sim = platform.sim();
  const SimTime start = sim.Now();
  const SimTime end = start + FromSeconds(options.seconds);

  CampaignConfig config;
  config.seed = options.seed;
  config.fault_count = options.faults;
  config.start = start;
  config.end = end;
  config.crash_count = options.crashes;
  FaultPlan plan = FaultPlan::Randomized(config);
  FaultInjector injector(&platform);
  injector.Arm(plan);

  Campaign campaign;
  const std::string xs_probe_path =
      FrontendDir(*guest, kVbdType) + "/state";

  // Probe every 11 ms: denser than the narrowest fault window (10 ms), so
  // no transient window can open and close unobserved.
  constexpr SimDuration kProbeInterval = 11 * kMillisecond;
  std::function<void()> tick = [&] {
    if (platform.hv().host_failed()) {
      ++campaign.host_failures;
    }
    // XenStore: synchronous read of a node the guest itself published.
    ++campaign.xs.issued;
    campaign.xs.Complete(sim.Now(),
                         platform.xenstore().Read(*guest, xs_probe_path).ok());
    // Block: 4 KiB write, offset walking a 1 MiB window of the image.
    ++campaign.blk.issued;
    blkfront->WriteBytes((campaign.blk.issued * 4096) % (1 * kMiB), 4096,
                         [&campaign, &sim](Status status) {
                           campaign.blk.Complete(sim.Now(), status.ok());
                         });
    // Network: one MTU-sized frame.
    ++campaign.net.issued;
    netfront->SendFrame(1500, [&campaign, &sim](Status status) {
                          campaign.net.Complete(sim.Now(), status.ok());
                        });
    if (sim.Now() + kProbeInterval < end) {
      sim.ScheduleAfter(kProbeInterval, tick);
    }
  };
  sim.ScheduleAfter(kProbeInterval, tick);
  sim.RunUntil(end);

  // Drain: let open windows close, microreboots finish, and every retry
  // ladder run to completion (worst chain: 2 s block deadlines x 8 retries).
  injector.Disarm();
  sim.RunFor(FromSeconds(20.0));
  campaign.lost_probes = campaign.issued() - campaign.completed();

  // Final health check: both frontends reconnected, one more probe of each
  // service succeeds.
  if (!netfront->connected() || !blkfront->connected()) {
    ++campaign.final_failures;
  }
  if (!platform.xenstore().Read(*guest, xs_probe_path).ok()) {
    ++campaign.final_failures;
  }
  bool final_blk_ok = false;
  bool final_net_ok = false;
  blkfront->WriteBytes(0, 4096,
                       [&](Status status) { final_blk_ok = status.ok(); });
  netfront->SendFrame(1500,
                      [&](Status status) { final_net_ok = status.ok(); });
  sim.RunFor(FromSeconds(20.0));
  if (!final_blk_ok) {
    ++campaign.final_failures;
  }
  if (!final_net_ok) {
    ++campaign.final_failures;
  }

  const std::uint64_t violations =
      campaign.host_failures + campaign.lost_probes + campaign.final_failures;
  const std::uint64_t absorbed =
      blkfront->retry_recovered() + netfront->retry_recovered();
  const std::uint64_t microreboots =
      injector.injected_count(FaultType::kShardCrash);

  MetricRegistry& metrics = platform.obs().metrics();
  metrics.GetGauge("campaign.seed")
      ->Set(static_cast<double>(options.seed));
  metrics.GetGauge("campaign.availability")->Set(campaign.availability());
  metrics.GetGauge("campaign.probes_issued")
      ->Set(static_cast<double>(campaign.issued()));
  metrics.GetGauge("campaign.faults_injected")
      ->Set(static_cast<double>(injector.total_injected()));
  metrics.GetGauge("campaign.absorbed_by_retry")
      ->Set(static_cast<double>(absorbed));
  metrics.GetGauge("campaign.microreboots")
      ->Set(static_cast<double>(microreboots));
  metrics.GetGauge("campaign.mean_recovery_ms")
      ->Set(campaign.mean_recovery_ms());
  metrics.GetGauge("campaign.invariant_violations")
      ->Set(static_cast<double>(violations));

  PrintHeading(StrFormat("Fault campaign (seed %llu, %d windows, %d crashes, "
                         "%.1f s)",
                         static_cast<unsigned long long>(options.seed),
                         options.faults, options.crashes, options.seconds));
  Table schedule({"t (ms)", "fault", "window (ms)", "p", "target"});
  for (const FaultSpec& spec : plan.specs()) {
    const bool crash = spec.type == FaultType::kShardCrash;
    schedule.AddRow(
        {StrFormat("%.1f", static_cast<double>(spec.at - start) /
                               static_cast<double>(kMillisecond)),
         std::string(FaultTypeName(spec.type)),
         crash ? "-"
               : StrFormat("%.1f", static_cast<double>(spec.duration) /
                                       static_cast<double>(kMillisecond)),
         crash ? "-" : StrFormat("%.2f", spec.probability),
         crash ? spec.target : "-"});
  }
  schedule.Print();

  Table results({"metric", "value"});
  results.AddRow({"probes issued", StrFormat("%llu", campaign.issued())});
  results.AddRow({"availability",
                  StrFormat("%.4f", campaign.availability())});
  results.AddRow({"faults injected",
                  StrFormat("%llu", injector.total_injected())});
  results.AddRow({"absorbed by retry/backoff", StrFormat("%llu", absorbed)});
  results.AddRow({"microreboots", StrFormat("%llu", microreboots)});
  results.AddRow({"crashes skipped",
                  StrFormat("%llu", injector.crashes_skipped())});
  results.AddRow({"mean recovery (ms)",
                  StrFormat("%.2f", campaign.mean_recovery_ms())});
  results.AddRow({"invariant violations", StrFormat("%llu", violations)});
  results.Print();

  Status status = metrics.WriteJsonFile(options.out, "fault_campaign");
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", options.out.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  std::printf("\ncampaign report -> %s\n", options.out.c_str());
  if (violations > 0) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATIONS: host_failures=%llu lost_probes=%llu "
                 "final_failures=%llu\n",
                 static_cast<unsigned long long>(campaign.host_failures),
                 static_cast<unsigned long long>(campaign.lost_probes),
                 static_cast<unsigned long long>(campaign.final_failures));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  xoar::Logger::Get().set_level(xoar::LogLevel::kError);
  xoar::Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      options.faults = std::atoi(next());
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      options.seconds = std::atof(next());
    } else if (std::strcmp(argv[i], "--crashes") == 0) {
      options.crashes = std::atoi(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--faults N] [--seconds S] "
                   "[--crashes N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  return xoar::RunCampaign(options);
}
