// Seeded randomized fault-injection campaign against a booted XoarPlatform
// (RESILIENCE.md "Running a campaign").
//
//   fault_campaign [--seed N] [--faults N] [--seconds S] [--crashes N]
//                  [--hangs N] [--box-corrupts N]
//                  [--out BENCH_fault_campaign.json]
//
// A FaultPlan::Randomized schedule of transient windows plus shard
// crashes, service-loop hangs, and recovery-box corruptions runs while a
// probe guest continuously exercises the three client-visible services:
// XenStore reads, block writes, and network transmits. The campaign
// reports availability (fraction of probes answered OK), mean recovery
// time per outage episode, how many transient faults the retry/backoff
// layer absorbed without a microreboot, what the watchdog detected and
// auto-recovered, and the invariant violations that must stay at zero:
//
//   1. the host never fails (faults are contained to shards);
//   2. every probe completes — nothing wedges forever;
//   3. after the campaign drains, both frontends are reconnected and a
//      final probe of every service succeeds;
//   4. supervision closed its loop: every injected hang was detected (or
//      absorbed by an independent restart of the same shard) and the
//      worst detection latency stayed within the heartbeat timeout;
//   5. every injected recovery-box corruption was caught by fast-path
//      validation and rejected onto the slow path — never resumed from.
//
// Everything is driven by the simulator clock and the plan's seed: the same
// seed writes a byte-identical JSON report. Exits non-zero if any invariant
// is violated.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/drv/blk.h"
#include "src/drv/net.h"
#include "src/drv/xenbus.h"
#include "src/fault/fault.h"
#include "src/obs/obs.h"

namespace xoar {
namespace {

struct Options {
  std::uint64_t seed = 42;
  int faults = 12;
  double seconds = 6.0;
  int crashes = 2;
  int hangs = 2;
  int box_corrupts = 1;
  std::string out = "BENCH_fault_campaign.json";
};

// One service's probe ledger. Outage episodes are bracketed by the first
// failed completion and the next successful one; their spans feed the mean
// recovery time.
struct ProbeStats {
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  bool down = false;
  SimTime down_since = 0;
  double recovery_ms_sum = 0;
  std::uint64_t recoveries = 0;

  void Complete(SimTime now, bool success) {
    if (success) {
      ++ok;
      if (down) {
        recovery_ms_sum += static_cast<double>(now - down_since) /
                           static_cast<double>(kMillisecond);
        ++recoveries;
        down = false;
      }
    } else {
      ++failed;
      if (!down) {
        down = true;
        down_since = now;
      }
    }
  }
};

struct Campaign {
  ProbeStats xs;
  ProbeStats blk;
  ProbeStats net;
  std::uint64_t host_failures = 0;
  std::uint64_t lost_probes = 0;  // issued but never completed
  std::uint64_t final_failures = 0;

  std::uint64_t issued() const {
    return xs.issued + blk.issued + net.issued;
  }
  std::uint64_t completed() const {
    return xs.ok + xs.failed + blk.ok + blk.failed + net.ok + net.failed;
  }
  std::uint64_t ok() const { return xs.ok + blk.ok + net.ok; }
  double availability() const {
    const std::uint64_t done = completed();
    return done == 0 ? 0.0
                     : static_cast<double>(ok()) / static_cast<double>(done);
  }
  double mean_recovery_ms() const {
    const std::uint64_t n = xs.recoveries + blk.recoveries + net.recoveries;
    return n == 0 ? 0.0
                  : (xs.recovery_ms_sum + blk.recovery_ms_sum +
                     net.recovery_ms_sum) /
                        static_cast<double>(n);
  }
};

int RunCampaign(const Options& options) {
  XoarPlatform platform;
  if (!platform.Boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 2;
  }
  StatusOr<DomainId> guest = platform.CreateGuest(GuestSpec{.name = "probe"});
  if (!guest.ok()) {
    std::fprintf(stderr, "guest creation failed\n");
    return 2;
  }
  platform.Settle();
  NetFront* netfront = platform.netfront(*guest);
  BlkFront* blkfront = platform.blkfront(*guest);
  if (netfront == nullptr || blkfront == nullptr) {
    std::fprintf(stderr, "probe guest has no frontends\n");
    return 2;
  }

  Simulator& sim = platform.sim();
  const SimTime start = sim.Now();
  const SimTime end = start + FromSeconds(options.seconds);

  CampaignConfig config;
  config.seed = options.seed;
  config.fault_count = options.faults;
  config.start = start;
  config.end = end;
  config.crash_count = options.crashes;
  config.hang_count = options.hangs;
  config.box_corrupt_count = options.box_corrupts;
  FaultPlan plan = FaultPlan::Randomized(config);
  FaultInjector injector(&platform);
  injector.Arm(plan);

  Campaign campaign;
  const std::string xs_probe_path =
      FrontendDir(*guest, kVbdType) + "/state";

  // Probe every 11 ms: denser than the narrowest fault window (10 ms), so
  // no transient window can open and close unobserved.
  constexpr SimDuration kProbeInterval = 11 * kMillisecond;
  std::function<void()> tick = [&] {
    if (platform.hv().host_failed()) {
      ++campaign.host_failures;
    }
    // XenStore: synchronous read of a node the guest itself published.
    ++campaign.xs.issued;
    campaign.xs.Complete(sim.Now(),
                         platform.xenstore().Read(*guest, xs_probe_path).ok());
    // Block: 4 KiB write, offset walking a 1 MiB window of the image.
    ++campaign.blk.issued;
    blkfront->WriteBytes((campaign.blk.issued * 4096) % (1 * kMiB), 4096,
                         [&campaign, &sim](Status status) {
                           campaign.blk.Complete(sim.Now(), status.ok());
                         });
    // Network: one MTU-sized frame.
    ++campaign.net.issued;
    netfront->SendFrame(1500, [&campaign, &sim](Status status) {
                          campaign.net.Complete(sim.Now(), status.ok());
                        });
    if (sim.Now() + kProbeInterval < end) {
      sim.ScheduleAfter(kProbeInterval, tick);
    }
  };
  sim.ScheduleAfter(kProbeInterval, tick);
  sim.RunUntil(end);

  // Drain: let open windows close, microreboots finish, and every retry
  // ladder run to completion (worst chain: 2 s block deadlines x 8 retries).
  injector.Disarm();
  sim.RunFor(FromSeconds(20.0));
  campaign.lost_probes = campaign.issued() - campaign.completed();

  // Final health check: both frontends reconnected, one more probe of each
  // service succeeds.
  if (!netfront->connected() || !blkfront->connected()) {
    ++campaign.final_failures;
  }
  if (!platform.xenstore().Read(*guest, xs_probe_path).ok()) {
    ++campaign.final_failures;
  }
  bool final_blk_ok = false;
  bool final_net_ok = false;
  blkfront->WriteBytes(0, 4096,
                       [&](Status status) { final_blk_ok = status.ok(); });
  netfront->SendFrame(1500,
                      [&](Status status) { final_net_ok = status.ok(); });
  sim.RunFor(FromSeconds(20.0));
  if (!final_blk_ok) {
    ++campaign.final_failures;
  }
  if (!final_net_ok) {
    ++campaign.final_failures;
  }

  const std::uint64_t absorbed =
      blkfront->retry_recovered() + netfront->retry_recovered();
  const std::uint64_t microreboots =
      injector.injected_count(FaultType::kShardCrash);

  // Supervision invariants (4) and (5): the watchdog accounted for every
  // injected hang within its timeout, and fast-path validation rejected
  // every poisoned recovery box.
  Watchdog* watchdog = platform.watchdog();
  const std::uint64_t hangs_injected =
      injector.injected_count(FaultType::kShardHang);
  const std::uint64_t box_corrupts_injected =
      injector.injected_count(FaultType::kRecoveryBoxCorrupt);
  const std::uint64_t boxes_rejected =
      static_cast<std::uint64_t>(platform.restarts().TotalBoxesRejected());
  std::uint64_t supervision_failures = 0;
  const SimDuration heartbeat_timeout =
      watchdog != nullptr ? watchdog->config().heartbeat_timeout : 0;
  const SimDuration hang_detection_max =
      watchdog != nullptr ? watchdog->max_hang_detection_latency() : 0;
  if (watchdog != nullptr) {
    if (watchdog->hangs_detected() + watchdog->hangs_absorbed() !=
        hangs_injected) {
      ++supervision_failures;
    }
    if (hang_detection_max > heartbeat_timeout) {
      ++supervision_failures;
    }
  } else if (hangs_injected > 0) {
    ++supervision_failures;  // hangs with nobody watching would wedge
  }
  if (boxes_rejected != box_corrupts_injected) {
    ++supervision_failures;
  }

  const std::uint64_t violations =
      campaign.host_failures + campaign.lost_probes +
      campaign.final_failures + supervision_failures;

  MetricRegistry& metrics = platform.obs().metrics();
  metrics.GetGauge("campaign.seed")
      ->Set(static_cast<double>(options.seed));
  metrics.GetGauge("campaign.availability")->Set(campaign.availability());
  metrics.GetGauge("campaign.probes_issued")
      ->Set(static_cast<double>(campaign.issued()));
  metrics.GetGauge("campaign.faults_injected")
      ->Set(static_cast<double>(injector.total_injected()));
  metrics.GetGauge("campaign.absorbed_by_retry")
      ->Set(static_cast<double>(absorbed));
  metrics.GetGauge("campaign.microreboots")
      ->Set(static_cast<double>(microreboots));
  metrics.GetGauge("campaign.mean_recovery_ms")
      ->Set(campaign.mean_recovery_ms());
  metrics.GetGauge("campaign.invariant_violations")
      ->Set(static_cast<double>(violations));
  metrics.GetGauge("campaign.hangs_injected")
      ->Set(static_cast<double>(hangs_injected));
  metrics.GetGauge("campaign.box_corrupts_injected")
      ->Set(static_cast<double>(box_corrupts_injected));
  metrics.GetGauge("campaign.boxes_rejected")
      ->Set(static_cast<double>(boxes_rejected));
  metrics.GetGauge("campaign.heartbeat_timeout_ms")
      ->Set(static_cast<double>(heartbeat_timeout) /
            static_cast<double>(kMillisecond));
  metrics.GetGauge("campaign.hang_detection_max_ms")
      ->Set(static_cast<double>(hang_detection_max) /
            static_cast<double>(kMillisecond));
  metrics.GetGauge("campaign.watchdog_hangs_detected")
      ->Set(watchdog != nullptr
                ? static_cast<double>(watchdog->hangs_detected())
                : 0.0);
  metrics.GetGauge("campaign.watchdog_hangs_absorbed")
      ->Set(watchdog != nullptr
                ? static_cast<double>(watchdog->hangs_absorbed())
                : 0.0);
  metrics.GetGauge("campaign.watchdog_deaths_detected")
      ->Set(watchdog != nullptr
                ? static_cast<double>(watchdog->deaths_detected())
                : 0.0);
  metrics.GetGauge("campaign.watchdog_auto_restarts")
      ->Set(watchdog != nullptr
                ? static_cast<double>(watchdog->auto_restarts())
                : 0.0);
  metrics.GetGauge("campaign.watchdog_quarantines")
      ->Set(watchdog != nullptr
                ? static_cast<double>(watchdog->quarantines())
                : 0.0);

  PrintHeading(StrFormat("Fault campaign (seed %llu, %d windows, %d crashes, "
                         "%d hangs, %d box corruptions, %.1f s)",
                         static_cast<unsigned long long>(options.seed),
                         options.faults, options.crashes, options.hangs,
                         options.box_corrupts, options.seconds));
  Table schedule({"t (ms)", "fault", "window (ms)", "p", "target"});
  for (const FaultSpec& spec : plan.specs()) {
    // Fire-once faults (crash, hang, box corruption) name a target; only
    // transient windows have a probability, and only windows and hangs
    // have a duration.
    const bool targeted = !spec.target.empty();
    const bool timed = spec.type != FaultType::kShardCrash &&
                       spec.type != FaultType::kRecoveryBoxCorrupt;
    schedule.AddRow(
        {StrFormat("%.1f", static_cast<double>(spec.at - start) /
                               static_cast<double>(kMillisecond)),
         std::string(FaultTypeName(spec.type)),
         timed ? StrFormat("%.1f", static_cast<double>(spec.duration) /
                                       static_cast<double>(kMillisecond))
               : "-",
         targeted ? "-" : StrFormat("%.2f", spec.probability),
         targeted ? spec.target : "-"});
  }
  schedule.Print();

  Table results({"metric", "value"});
  results.AddRow({"probes issued", StrFormat("%llu", campaign.issued())});
  results.AddRow({"availability",
                  StrFormat("%.4f", campaign.availability())});
  results.AddRow({"faults injected",
                  StrFormat("%llu", injector.total_injected())});
  results.AddRow({"absorbed by retry/backoff", StrFormat("%llu", absorbed)});
  results.AddRow({"microreboots", StrFormat("%llu", microreboots)});
  results.AddRow({"crashes skipped",
                  StrFormat("%llu", injector.crashes_skipped())});
  results.AddRow({"mean recovery (ms)",
                  StrFormat("%.2f", campaign.mean_recovery_ms())});
  if (watchdog != nullptr) {
    results.AddRow({"hangs injected / detected / absorbed",
                    StrFormat("%llu / %llu / %llu", hangs_injected,
                              watchdog->hangs_detected(),
                              watchdog->hangs_absorbed())});
    results.AddRow(
        {"worst hang detection (ms)",
         StrFormat("%.2f (timeout %.0f)",
                   static_cast<double>(hang_detection_max) /
                       static_cast<double>(kMillisecond),
                   static_cast<double>(heartbeat_timeout) /
                       static_cast<double>(kMillisecond))});
    results.AddRow({"watchdog auto restarts",
                    StrFormat("%llu", watchdog->auto_restarts())});
    results.AddRow({"quarantines",
                    StrFormat("%llu", watchdog->quarantines())});
  }
  results.AddRow({"boxes corrupted / rejected",
                  StrFormat("%llu / %llu", box_corrupts_injected,
                            boxes_rejected)});
  results.AddRow({"invariant violations", StrFormat("%llu", violations)});
  results.Print();

  Status status = metrics.WriteJsonFile(options.out, "fault_campaign");
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", options.out.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  std::printf("\ncampaign report -> %s\n", options.out.c_str());
  if (violations > 0) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATIONS: host_failures=%llu lost_probes=%llu "
                 "final_failures=%llu supervision_failures=%llu\n",
                 static_cast<unsigned long long>(campaign.host_failures),
                 static_cast<unsigned long long>(campaign.lost_probes),
                 static_cast<unsigned long long>(campaign.final_failures),
                 static_cast<unsigned long long>(supervision_failures));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  xoar::Logger::Get().set_level(xoar::LogLevel::kError);
  xoar::Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      options.faults = std::atoi(next());
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      options.seconds = std::atof(next());
    } else if (std::strcmp(argv[i], "--crashes") == 0) {
      options.crashes = std::atoi(next());
    } else if (std::strcmp(argv[i], "--hangs") == 0) {
      options.hangs = std::atoi(next());
    } else if (std::strcmp(argv[i], "--box-corrupts") == 0) {
      options.box_corrupts = std::atoi(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--faults N] [--seconds S] "
                   "[--crashes N] [--hangs N] [--box-corrupts N] "
                   "[--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  return xoar::RunCampaign(options);
}
