// Seeded randomized fault-injection campaign against a booted XoarPlatform
// (RESILIENCE.md "Running a campaign"; the driver itself lives in
// src/fault/campaign.h so record and replay execute the same code path).
//
//   fault_campaign [--seed N] [--faults N] [--seconds S] [--crashes N]
//                  [--hangs N] [--box-corrupts N]
//                  [--out BENCH_fault_campaign.json]
//                  [--record JOURNAL | --replay JOURNAL | --diff A B]
//
// A FaultPlan::Randomized schedule of transient windows plus shard
// crashes, service-loop hangs, and recovery-box corruptions runs while a
// probe guest continuously exercises the three client-visible services:
// XenStore reads, block writes, and network transmits. The campaign
// reports availability (fraction of probes answered OK), mean recovery
// time per outage episode, how many transient faults the retry/backoff
// layer absorbed without a microreboot, what the watchdog detected and
// auto-recovered, and the invariant violations that must stay at zero:
//
//   1. the host never fails (faults are contained to shards);
//   2. every probe completes — nothing wedges forever;
//   3. after the campaign drains, both frontends are reconnected and a
//      final probe of every service succeeds;
//   4. supervision closed its loop: every injected hang was detected (or
//      absorbed by an independent restart of the same shard) and the
//      worst detection latency stayed within the heartbeat timeout;
//   5. every injected recovery-box corruption was caught by fast-path
//      validation and rejected onto the slow path — never resumed from.
//
// Everything is driven by the simulator clock and the plan's seed: the same
// seed writes a byte-identical JSON report. Exits non-zero if any invariant
// is violated.
//
// Record/replay (DEBUGGING.md): --record journals the run's full trace
// stream plus the campaign parameters; --replay re-executes the journaled
// parameters and verifies every event against the recording, exiting 1 at
// the first divergence with the surrounding context; --diff structurally
// compares two journals and reports their earliest disagreement.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/fault/campaign.h"
#include "src/replay/diff.h"
#include "src/replay/journal.h"
#include "src/replay/verify.h"

namespace xoar {
namespace {

struct Options {
  std::uint64_t seed = 42;
  int faults = 12;
  double seconds = 6.0;
  int crashes = 2;
  int hangs = 2;
  int box_corrupts = 1;
  std::string out = "BENCH_fault_campaign.json";
  std::string record;   // journal path to write
  std::string replay;   // journal path to verify against
  std::string diff_a;   // --diff: first journal
  std::string diff_b;   // --diff: second journal
};

void PrintCampaignReport(const Options& options,
                         const CampaignSummary& summary) {
  PrintHeading(StrFormat("Fault campaign (seed %llu, %d windows, %d crashes, "
                         "%d hangs, %d box corruptions, %.1f s)",
                         static_cast<unsigned long long>(options.seed),
                         options.faults, options.crashes, options.hangs,
                         options.box_corrupts, options.seconds));
  Table schedule({"t (ms)", "fault", "window (ms)", "p", "target"});
  for (const FaultSpec& spec : summary.plan.specs()) {
    // Fire-once faults (crash, hang, box corruption) name a target; only
    // transient windows have a probability, and only windows and hangs
    // have a duration.
    const bool targeted = !spec.target.empty();
    const bool timed = spec.type != FaultType::kShardCrash &&
                       spec.type != FaultType::kRecoveryBoxCorrupt;
    schedule.AddRow(
        {StrFormat("%.1f", static_cast<double>(spec.at - summary.start) /
                               static_cast<double>(kMillisecond)),
         std::string(FaultTypeName(spec.type)),
         timed ? StrFormat("%.1f", static_cast<double>(spec.duration) /
                                       static_cast<double>(kMillisecond))
               : "-",
         targeted ? "-" : StrFormat("%.2f", spec.probability),
         targeted ? spec.target : "-"});
  }
  schedule.Print();

  Table results({"metric", "value"});
  results.AddRow({"probes issued", StrFormat("%llu", summary.probes_issued)});
  results.AddRow({"availability",
                  StrFormat("%.4f", summary.availability)});
  results.AddRow({"faults injected",
                  StrFormat("%llu", summary.faults_injected)});
  results.AddRow({"absorbed by retry/backoff",
                  StrFormat("%llu", summary.absorbed_by_retry)});
  results.AddRow({"microreboots", StrFormat("%llu", summary.microreboots)});
  results.AddRow({"crashes skipped",
                  StrFormat("%llu", summary.crashes_skipped)});
  results.AddRow({"mean recovery (ms)",
                  StrFormat("%.2f", summary.mean_recovery_ms)});
  if (summary.has_watchdog) {
    results.AddRow({"hangs injected / detected / absorbed",
                    StrFormat("%llu / %llu / %llu", summary.hangs_injected,
                              summary.hangs_detected,
                              summary.hangs_absorbed)});
    results.AddRow(
        {"worst hang detection (ms)",
         StrFormat("%.2f (timeout %.0f)",
                   static_cast<double>(summary.hang_detection_max) /
                       static_cast<double>(kMillisecond),
                   static_cast<double>(summary.heartbeat_timeout) /
                       static_cast<double>(kMillisecond))});
    results.AddRow({"watchdog auto restarts",
                    StrFormat("%llu", summary.auto_restarts)});
    results.AddRow({"quarantines",
                    StrFormat("%llu", summary.quarantines)});
  }
  results.AddRow({"boxes corrupted / rejected",
                  StrFormat("%llu / %llu", summary.box_corrupts_injected,
                            summary.boxes_rejected)});
  results.AddRow({"invariant violations",
                  StrFormat("%llu", summary.violations)});
  results.Print();
}

int ReportViolations(const CampaignSummary& summary) {
  if (summary.violations == 0) {
    return 0;
  }
  std::fprintf(stderr,
               "INVARIANT VIOLATIONS: host_failures=%llu lost_probes=%llu "
               "final_failures=%llu supervision_failures=%llu\n",
               static_cast<unsigned long long>(summary.host_failures),
               static_cast<unsigned long long>(summary.lost_probes),
               static_cast<unsigned long long>(summary.final_failures),
               static_cast<unsigned long long>(summary.supervision_failures));
  return 1;
}

int RunCampaign(const Options& options) {
  CampaignRunOptions run;
  run.seed = options.seed;
  run.faults = options.faults;
  run.seconds = options.seconds;
  run.crashes = options.crashes;
  run.hangs = options.hangs;
  run.box_corrupts = options.box_corrupts;
  run.metrics_out = options.out;

  Journal journal;
  JournalRecorder recorder(&journal);
  if (!options.record.empty()) {
    run.sink = &recorder;
  }

  StatusOr<CampaignSummary> summary = RunProbeCampaign(run);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 2;
  }
  PrintCampaignReport(options, *summary);
  std::printf("\ncampaign report -> %s\n", options.out.c_str());

  if (!options.record.empty()) {
    journal.SetMeta("seed", StrFormat("%llu", options.seed));
    journal.SetMeta("faults", StrFormat("%d", options.faults));
    journal.SetMeta("seconds", StrFormat("%.6f", options.seconds));
    journal.SetMeta("crashes", StrFormat("%d", options.crashes));
    journal.SetMeta("hangs", StrFormat("%d", options.hangs));
    journal.SetMeta("box_corrupts", StrFormat("%d", options.box_corrupts));
    Status status = journal.WriteFile(options.record);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   options.record.c_str(), status.ToString().c_str());
      return 2;
    }
    std::printf("journal (%zu events, chain %016llx) -> %s\n",
                journal.size(),
                static_cast<unsigned long long>(journal.chain_head()),
                options.record.c_str());
  }
  return ReportViolations(*summary);
}

int RunReplay(const Options& options) {
  StatusOr<Journal> journal = Journal::ReadFile(options.replay);
  if (!journal.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", options.replay.c_str(),
                 journal.status().ToString().c_str());
    return 2;
  }

  // Re-execute the journaled parameters, not the command line: a replay is
  // only meaningful against the recording's own seed and plan.
  CampaignRunOptions run;
  run.seed = std::strtoull(journal->Meta("seed").c_str(), nullptr, 10);
  run.faults = std::atoi(journal->Meta("faults").c_str());
  run.seconds = std::atof(journal->Meta("seconds").c_str());
  run.crashes = std::atoi(journal->Meta("crashes").c_str());
  run.hangs = std::atoi(journal->Meta("hangs").c_str());
  run.box_corrupts = std::atoi(journal->Meta("box_corrupts").c_str());

  ReplayVerifier verifier(&*journal);
  run.sink = &verifier;

  StatusOr<CampaignSummary> summary = RunProbeCampaign(run);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 2;
  }
  verifier.Finish();

  if (verifier.diverged()) {
    std::printf("replay of %s DIVERGED after %zu verified events\n%s",
                options.replay.c_str(), verifier.verified(),
                verifier.report().ToString("journal", "replay").c_str());
    return 1;
  }
  std::printf("replay of %s verified: %zu events, zero divergences "
              "(chain %016llx)\n",
              options.replay.c_str(), verifier.verified(),
              static_cast<unsigned long long>(journal->chain_head()));
  return ReportViolations(*summary);
}

int RunDiff(const Options& options) {
  StatusOr<Journal> a = Journal::ReadFile(options.diff_a);
  if (!a.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", options.diff_a.c_str(),
                 a.status().ToString().c_str());
    return 2;
  }
  StatusOr<Journal> b = Journal::ReadFile(options.diff_b);
  if (!b.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", options.diff_b.c_str(),
                 b.status().ToString().c_str());
    return 2;
  }
  std::printf("%s: %zu events, chain %016llx\n", options.diff_a.c_str(),
              a->size(), static_cast<unsigned long long>(a->chain_head()));
  std::printf("%s: %zu events, chain %016llx\n", options.diff_b.c_str(),
              b->size(), static_cast<unsigned long long>(b->chain_head()));
  DivergenceReport report = DiffJournals(*a, *b);
  std::printf("%s", report.ToString(options.diff_a, options.diff_b).c_str());
  return report.diverged ? 1 : 0;
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  xoar::Logger::Get().set_level(xoar::LogLevel::kError);
  xoar::Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      options.faults = std::atoi(next());
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      options.seconds = std::atof(next());
    } else if (std::strcmp(argv[i], "--crashes") == 0) {
      options.crashes = std::atoi(next());
    } else if (std::strcmp(argv[i], "--hangs") == 0) {
      options.hangs = std::atoi(next());
    } else if (std::strcmp(argv[i], "--box-corrupts") == 0) {
      options.box_corrupts = std::atoi(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next();
    } else if (std::strcmp(argv[i], "--record") == 0) {
      options.record = next();
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      options.replay = next();
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      options.diff_a = next();
      options.diff_b = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--faults N] [--seconds S] "
                   "[--crashes N] [--hangs N] [--box-corrupts N] "
                   "[--out FILE] [--record JOURNAL | --replay JOURNAL | "
                   "--diff A B]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!options.diff_a.empty()) {
    return xoar::RunDiff(options);
  }
  if (!options.replay.empty()) {
    return xoar::RunReplay(options);
  }
  return xoar::RunCampaign(options);
}
