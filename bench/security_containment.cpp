// Reproduces §6.2.1 ("Known Attacks"): the guest-originated vulnerability
// registry replayed against both platforms, with the attacker's reach
// computed from the hypervisor's actual privilege state.
#include <cstdio>
#include <map>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"
#include "src/security/containment.h"

namespace xoar {
namespace {

struct Sweep {
  int total = 0;
  int platform_lost = 0;
  int contained = 0;
  int mitigated = 0;
  int dos_only = 0;
};

template <typename PlatformT>
Sweep RunSweep(std::map<std::string, std::string>* outcomes) {
  PlatformT platform;
  Sweep sweep;
  if (!platform.Boot().ok()) {
    return sweep;
  }
  DomainId attacker =
      *platform.CreateGuest(GuestSpec{.name = "attacker", .hvm = true});
  for (int i = 0; i < 3; ++i) {
    (void)*platform.CreateGuest(GuestSpec{.name = StrFormat("victim-%d", i)});
  }
  CompromiseAnalyzer analyzer(&platform, /*deprivilege=*/true);
  for (const auto& result : analyzer.AnalyzeAll(attacker)) {
    ++sweep.total;
    if (result.mitigated) {
      ++sweep.mitigated;
    } else if (result.platform_compromised) {
      ++sweep.platform_lost;
    } else if (result.dos_only) {
      ++sweep.dos_only;
    } else {
      ++sweep.contained;
    }
    if (outcomes != nullptr) {
      (*outcomes)[result.vulnerability_id] = result.Summary();
    }
  }
  return sweep;
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("§6.2.1: Known attacks replayed against both platforms");

  std::map<std::string, std::string> dom0_outcomes, xoar_outcomes;
  const Sweep dom0 = RunSweep<MonolithicPlatform>(&dom0_outcomes);
  const Sweep xoar = RunSweep<XoarPlatform>(&xoar_outcomes);

  Table summary({"Outcome", "Dom0", "Xoar"});
  summary.AddRow({"attacks analyzed", StrFormat("%d", dom0.total),
                  StrFormat("%d", xoar.total)});
  summary.AddRow({"platform compromised", StrFormat("%d", dom0.platform_lost),
                  StrFormat("%d", xoar.platform_lost)});
  summary.AddRow({"contained to component scope",
                  StrFormat("%d", dom0.contained),
                  StrFormat("%d", xoar.contained)});
  summary.AddRow({"denial of service only", StrFormat("%d", dom0.dos_only),
                  StrFormat("%d", xoar.dos_only)});
  summary.AddRow({"mitigated (patched/deprivileged)",
                  StrFormat("%d", dom0.mitigated),
                  StrFormat("%d", xoar.mitigated)});
  summary.Print();

  std::printf("\nPer-vector outcomes on Xoar:\n");
  Table detail({"Vulnerability", "Xoar outcome", "Dom0 outcome"});
  for (const auto& vuln : GuestOriginatedVulnerabilities()) {
    auto xoar_it = xoar_outcomes.find(vuln.id);
    auto dom0_it = dom0_outcomes.find(vuln.id);
    if (xoar_it == xoar_outcomes.end()) {
      continue;
    }
    detail.AddRow({StrFormat("%s [%s]", vuln.id.c_str(),
                             std::string(AttackVectorName(vuln.vector)).c_str()),
                   xoar_it->second,
                   dom0_it != dom0_outcomes.end() ? dom0_it->second : "-"});
  }
  detail.Print();

  std::printf(
      "\nPaper shape: Xoar entirely contains the device-emulation attacks "
      "(QemuVM has\nno rights over any other VM); virtualized-device and "
      "toolstack attacks reach\nonly guests sharing the same shard; the "
      "debug-register and XenStore exploits\nare mitigated; only the "
      "hypervisor exploit remains uncontained — on Dom0,\nevery one of these "
      "is a full-platform compromise.\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
