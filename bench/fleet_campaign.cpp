// Multi-host fleet resilience campaign (RESILIENCE.md "Fleet"; the driver
// lives in src/fleet/scenarios.h so record and replay execute the same
// code path).
//
//   fleet_campaign [--seed N] [--hosts N] [--guests-per-host N]
//                  [--tenants N] [--gate-p99-ms MS] [--evac-only]
//                  [--no-storm] [--out BENCH_fleet.json]
//                  [--record JOURNAL | --replay JOURNAL]
//
// Boots an N-host fleet (every host a full disaggregated XoarPlatform on
// one lockstep simulated clock), places tenant-striped web guests through
// the bin-pack/anti-affinity policy, runs Apache/wget-style request loops
// on all of them, and then drives the three fleet scenarios:
//
//   1. evacuation of a victim host under an active fault campaign
//      (shard crashes, hangs, and migration_stream_drop windows) — every
//      aborted migration must tear its destination shell down and retry
//      with bounded exponential backoff;
//   2. a rolling microreboot upgrade wave with a per-step p99 health
//      gate — plus a storm variant with wall-to-wall stream-drop windows
//      where evacuations fail, guests ride through shard restarts, and
//      the gate MUST trip and abort the wave;
//   3. rebalancing after a one-host traffic spike.
//
// Exits non-zero on any invariant violation (leaked half-built domains,
// double placements, watchdog budget breaches, a dead or unsupervised
// fleet controller) or on a scenario expectation failure (evacuation
// incomplete, clean wave aborted, storm gate not tripped, fleet not
// converged). The same seed writes a byte-identical BENCH_fleet.json.
//
// Record/replay (DEBUGGING.md): --record journals the victim host's full
// trace stream plus the scenario parameters; --replay re-executes the
// journaled parameters and verifies every event, exiting 1 at the first
// divergence. The CTest pair records the evacuation-only scenario.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/fleet/scenarios.h"
#include "src/replay/journal.h"
#include "src/replay/verify.h"

namespace xoar {
namespace {

struct Options {
  std::uint64_t seed = 42;
  int hosts = 8;
  int guests_per_host = 4;
  int tenants = 4;
  double gate_p99_ms = 100.0;
  bool evac_only = false;
  bool storm = true;
  std::string out = "BENCH_fleet.json";
  std::string record;
  std::string replay;
};

FleetScenarioOptions ToScenarioOptions(const Options& options) {
  FleetScenarioOptions run;
  run.seed = options.seed;
  run.hosts = options.hosts;
  run.guests_per_host = options.guests_per_host;
  run.tenants = options.tenants;
  run.gate_p99_ms = options.gate_p99_ms;
  run.run_wave = !options.evac_only;
  run.run_rebalance = !options.evac_only;
  run.run_storm_wave = options.storm && !options.evac_only;
  run.metrics_out = options.out;
  return run;
}

void PrintFleetReport(const Options& options,
                      const FleetScenarioSummary& summary) {
  PrintHeading(StrFormat(
      "Fleet campaign (seed %llu, %d hosts, %d guests, %d tenants)",
      static_cast<unsigned long long>(options.seed), summary.hosts,
      summary.guests_placed, options.tenants));

  Table results({"metric", "value"});
  results.AddRow({"guests placed / shed",
                  StrFormat("%d / %llu", summary.guests_placed,
                            static_cast<unsigned long long>(
                                summary.admission_shed))});
  results.AddRow(
      {"evacuation moved / failed / retries",
       StrFormat("%d / %d / %d", summary.evac_moved, summary.evac_failed,
                 summary.evac_retries)});
  results.AddRow({"evacuation stream-drop aborts",
                  StrFormat("%d", summary.evac_stream_drop_aborts)});
  results.AddRow({"stream drops injected (fleet-wide)",
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        summary.stream_drops_injected))});
  results.AddRow(
      {"clean wave steps / aborted",
       StrFormat("%d / %s", summary.clean_wave.steps,
                 summary.clean_wave.aborted ? "yes" : "no")});
  results.AddRow({"clean wave worst p99 / p999 (ms)",
                  StrFormat("%.2f / %.2f", summary.clean_wave.p99_ms_max,
                            summary.clean_wave.p999_ms_max)});
  results.AddRow(
      {"storm wave steps / aborted",
       StrFormat("%d / %s", summary.storm_wave.steps,
                 summary.storm_wave.aborted ? "yes" : "no")});
  results.AddRow({"storm wave worst p99 / p999 (ms)",
                  StrFormat("%.2f / %.2f", summary.storm_wave.p99_ms_max,
                            summary.storm_wave.p999_ms_max)});
  results.AddRow({"storm converged after disarm",
                  summary.storm_converged ? "yes" : "no"});
  results.AddRow({"rebalance spread before -> after",
                  StrFormat("%.3f -> %.3f (%d moves)",
                            summary.spread_before, summary.spread_after,
                            summary.rebalance_moves)});
  results.AddRow(
      {"workload requests issued / ok / failed",
       StrFormat("%llu / %llu / %llu",
                 static_cast<unsigned long long>(summary.requests_issued),
                 static_cast<unsigned long long>(summary.requests_ok),
                 static_cast<unsigned long long>(summary.requests_failed))});
  results.AddRow({"workload p99 / p999 (ms)",
                  StrFormat("%.2f / %.2f", summary.p99_ms, summary.p999_ms)});
  results.AddRow({"tenant interference p99 ratio",
                  StrFormat("%.3f", summary.interference_p99_ratio)});
  results.AddRow({"invariant violations",
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        summary.violations))});
  results.Print();
}

// Scenario expectations plus the zero-violation invariant; every failure
// is reported, the exit code covers them all.
int ReportFailures(const Options& options,
                   const FleetScenarioSummary& summary) {
  int failures = 0;
  auto fail = [&failures](const char* what) {
    std::fprintf(stderr, "EXPECTATION FAILED: %s\n", what);
    ++failures;
  };
  if (summary.violations != 0) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATIONS: leaked=%llu placement=%llu "
                 "budget=%llu controller=%llu\n",
                 static_cast<unsigned long long>(summary.leaked_domains),
                 static_cast<unsigned long long>(summary.placement_errors),
                 static_cast<unsigned long long>(summary.budget_breaches),
                 static_cast<unsigned long long>(
                     summary.controller_failures));
    ++failures;
  }
  if (summary.evac_failed != 0 || summary.evac_moved == 0) {
    fail("evacuation did not drain the victim host");
  }
  if (!options.evac_only) {
    if (summary.clean_wave.aborted ||
        summary.clean_wave.steps != summary.hosts) {
      fail("clean upgrade wave did not complete every step");
    }
    if (options.storm) {
      if (!summary.storm_wave.aborted) {
        fail("storm wave health gate never tripped");
      }
      if (!summary.storm_converged) {
        fail("fleet did not converge after the storm");
      }
    }
    if (summary.spread_after > summary.spread_before) {
      fail("rebalance made the spread worse");
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunCampaign(const Options& options) {
  FleetScenarioOptions run = ToScenarioOptions(options);

  Journal journal;
  JournalRecorder recorder(&journal);
  if (!options.record.empty()) {
    run.sink = &recorder;
  }

  StatusOr<FleetScenarioSummary> summary = RunFleetCampaign(run);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 2;
  }
  PrintFleetReport(options, *summary);
  std::printf("\nfleet report -> %s\n", options.out.c_str());

  if (!options.record.empty()) {
    journal.SetMeta("seed", StrFormat("%llu", options.seed));
    journal.SetMeta("hosts", StrFormat("%d", options.hosts));
    journal.SetMeta("guests_per_host",
                    StrFormat("%d", options.guests_per_host));
    journal.SetMeta("tenants", StrFormat("%d", options.tenants));
    journal.SetMeta("gate_p99_ms", StrFormat("%.6f", options.gate_p99_ms));
    journal.SetMeta("evac_only", options.evac_only ? "1" : "0");
    journal.SetMeta("storm", options.storm ? "1" : "0");
    Status status = journal.WriteFile(options.record);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   options.record.c_str(), status.ToString().c_str());
      return 2;
    }
    std::printf("journal (%zu events, chain %016llx) -> %s\n",
                journal.size(),
                static_cast<unsigned long long>(journal.chain_head()),
                options.record.c_str());
  }
  return ReportFailures(options, *summary);
}

int RunReplay(const Options& options) {
  StatusOr<Journal> journal = Journal::ReadFile(options.replay);
  if (!journal.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", options.replay.c_str(),
                 journal.status().ToString().c_str());
    return 2;
  }

  // Re-execute the journaled parameters, not the command line.
  Options recorded = options;
  recorded.seed = std::strtoull(journal->Meta("seed").c_str(), nullptr, 10);
  recorded.hosts = std::atoi(journal->Meta("hosts").c_str());
  recorded.guests_per_host =
      std::atoi(journal->Meta("guests_per_host").c_str());
  recorded.tenants = std::atoi(journal->Meta("tenants").c_str());
  recorded.gate_p99_ms = std::atof(journal->Meta("gate_p99_ms").c_str());
  recorded.evac_only = journal->Meta("evac_only") == "1";
  recorded.storm = journal->Meta("storm") == "1";
  FleetScenarioOptions run = ToScenarioOptions(recorded);
  run.metrics_out.clear();  // a verification run writes no report

  ReplayVerifier verifier(&*journal);
  run.sink = &verifier;

  StatusOr<FleetScenarioSummary> summary = RunFleetCampaign(run);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 2;
  }
  verifier.Finish();

  if (verifier.diverged()) {
    std::printf("replay of %s DIVERGED after %zu verified events\n%s",
                options.replay.c_str(), verifier.verified(),
                verifier.report().ToString("journal", "replay").c_str());
    return 1;
  }
  std::printf("replay of %s verified: %zu events, zero divergences "
              "(chain %016llx)\n",
              options.replay.c_str(), verifier.verified(),
              static_cast<unsigned long long>(journal->chain_head()));
  return ReportFailures(recorded, *summary);
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  xoar::Logger::Get().set_level(xoar::LogLevel::kError);
  xoar::Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--hosts") == 0) {
      options.hosts = std::atoi(next());
    } else if (std::strcmp(argv[i], "--guests-per-host") == 0) {
      options.guests_per_host = std::atoi(next());
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      options.tenants = std::atoi(next());
    } else if (std::strcmp(argv[i], "--gate-p99-ms") == 0) {
      options.gate_p99_ms = std::atof(next());
    } else if (std::strcmp(argv[i], "--evac-only") == 0) {
      options.evac_only = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      xoar::Logger::Get().set_level(xoar::LogLevel::kInfo);
    } else if (std::strcmp(argv[i], "--no-storm") == 0) {
      options.storm = false;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next();
    } else if (std::strcmp(argv[i], "--record") == 0) {
      options.record = next();
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      options.replay = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (!options.replay.empty()) {
    return xoar::RunReplay(options);
  }
  return xoar::RunCampaign(options);
}
