// Ablation: hosting-density trajectory (§1's "densely-multiplexed public
// cloud" and the §2 claim that disaggregation must not limit density).
//
//   ablation_density [--sweep 100,1000,10000] [--max-guests N]
//                    [--shards N] [--out BENCH_density.json]
//                    [--record JOURNAL | --replay JOURNAL]
//
// Sweeps guest count across decades on the Xoar platform and reports, per
// sweep point: how many guests were created, wall-clock create throughput,
// per-domain control-plane bytes, and the XenStore-State shard count
// (SCALING.md). Two properties are enforced, not just measured:
//
//   - The create/destroy path performs *zero* O(n) walks of the domain
//     table: the hypervisor counts AllDomains() materializations
//     (domain_table_scans) and this bench exits non-zero if the counter
//     moves during the create sweep.
//   - Per-domain control-plane memory stays flat as density grows 10x:
//     control-plane shards are a bounded constant plus O(1) per XenStore
//     node, so bytes/domain must not grow more than 10% per decade
//     (validate_obs --density re-checks this from the exported report).
//
// Wall-clock timing (std::chrono::steady_clock) is confined to this bench
// binary; the simulation itself stays deterministic. --max-guests replaces
// the old hard 48-guest cutoff: 0 means "run each sweep point to its
// target", any other value caps every point (smoke tests run tiny sweeps).
//
// Record/replay (DEBUGGING.md): --record journals the full trace stream of
// every sweep point's platform (one platform per point, streamed back to
// back) plus the sweep parameters; --replay re-executes the journaled
// parameters and verifies every event against the recording, exiting 1 at
// the first divergence. Wall-clock never feeds back into the simulation,
// so the trace stream is byte-deterministic across runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/base/units.h"
#include "src/core/xoar_platform.h"
#include "src/obs/metrics.h"
#include "src/replay/journal.h"
#include "src/replay/verify.h"

namespace xoar {
namespace {

struct Options {
  std::vector<int> sweep = {100, 1000, 10000};
  int max_guests = 0;  // 0 = no cap beyond the sweep target
  int shards = 0;      // 0 = auto-scale with the sweep target
  std::string out = "BENCH_density.json";
  std::string record;  // journal path to write
  std::string replay;  // journal path to verify against
};

struct SweepPoint {
  int domains_target = 0;
  int created = 0;
  int shard_count = 1;
  double create_ops_per_sec = 0;
  double per_domain_control_bytes = 0;
  std::uint64_t create_path_scans = 0;
  std::size_t xenstore_nodes = 0;
  std::uint64_t control_mb = 0;
};

// Rough per-node heap cost of a XenStore entry (path segment + value +
// COW-tree bookkeeping); the control-plane byte accounting charges the
// store's growth to the guests that caused it.
constexpr double kXsNodeBytes = 256.0;

int AutoShards(int domains) {
  // One State partition per ~640 tenants, capped at 16 — enough that a
  // shard microreboot stalls at most 1/16 of a 10^4-domain host.
  if (domains <= 100) {
    return 1;
  }
  if (domains <= 1000) {
    return 4;
  }
  return 16;
}

SweepPoint RunPoint(int target, int shards, int max_guests,
                    TraceSink* sink) {
  SweepPoint point;
  point.domains_target = target;
  point.shard_count = shards;

  XoarPlatform::Config config;
  // Small VDI-style guests (the paper's density best practice); size the
  // machine so memory is not the binding constraint at this sweep point.
  constexpr std::uint64_t kGuestMb = 16;
  constexpr std::uint64_t kGuestDiskMb = 4;
  config.machine_memory_gb = 8 + (static_cast<std::uint64_t>(target) *
                                  kGuestMb * 2) / 1024;
  config.xenstore_state_shards = shards;
  // Density runs pack control-plane ops, not console traffic.
  config.console_manager_enabled = false;
  XoarPlatform platform(config);
  if (sink != nullptr) {
    // Record/replay observer: must be attached before Boot so the journal
    // covers the platform's whole life, not just the create sweep.
    platform.obs().tracer().set_enabled(true);
    platform.obs().tracer().set_sink(sink);
  }
  if (!platform.Boot().ok()) {
    std::fprintf(stderr, "boot failed at %d domains\n", target);
    return point;
  }

  const std::uint64_t scans_before = platform.hv().domain_table_scans();
  const auto wall_start = std::chrono::steady_clock::now();
  const int cap = max_guests > 0 ? std::min(max_guests, target) : target;
  for (int i = 0; i < cap; ++i) {
    auto guest = platform.CreateGuest(
        GuestSpec{.name = StrFormat("vdi-%d", i),
                  .memory_mb = kGuestMb,
                  .vcpus = 1,
                  .tenant = StrFormat("tenant-%d", i % 64),
                  .disk_image_mb = kGuestDiskMb});
    if (!guest.ok()) {
      std::fprintf(stderr, "create %d/%d failed: %s\n", i, cap,
                   guest.status().ToString().c_str());
      break;
    }
    ++point.created;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  point.create_path_scans =
      platform.hv().domain_table_scans() - scans_before;

  point.control_mb = platform.ControlPlaneMemoryMb();
  point.xenstore_nodes = platform.xenstore().store().NodeCount();
  if (point.created > 0) {
    point.create_ops_per_sec =
        wall_seconds > 0 ? point.created / wall_seconds : 0;
    point.per_domain_control_bytes =
        (static_cast<double>(point.control_mb) * kMiB +
         static_cast<double>(point.xenstore_nodes) * kXsNodeBytes) /
        point.created;
  }
  return point;
}

bool WriteReport(const std::string& path, const std::vector<SweepPoint>& sweep,
                 bool scan_free) {
  // Same hand-authored shape as the lint report: the BENCH context +
  // benchmarks skeleton plus one extra top-level array ("sweep") for the
  // trajectory itself.
  int max_domains = 0;
  int total_created = 0;
  for (const SweepPoint& p : sweep) {
    max_domains = std::max(max_domains, p.created);
    total_created += p.created;
  }
  std::string out;
  out += "{\n";
  out += "  \"context\": {\n";
  out += "    \"executable\": \"ablation_density\",\n";
  out += "    \"sim_time_ns\": 0\n";
  out += "  },\n";
  out += "  \"benchmarks\": [\n";
  out += StrFormat(
      "    {\"name\": \"density.sweep_points\", \"run_type\": \"gauge\", "
      "\"value\": %zu},\n",
      sweep.size());
  out += StrFormat(
      "    {\"name\": \"density.max_domains\", \"run_type\": \"gauge\", "
      "\"value\": %d},\n",
      max_domains);
  out += StrFormat(
      "    {\"name\": \"density.total_created\", \"run_type\": \"counter\", "
      "\"value\": %d},\n",
      total_created);
  out += StrFormat(
      "    {\"name\": \"density.scan_free_create_path\", \"run_type\": "
      "\"gauge\", \"value\": %d},\n",
      scan_free ? 1 : 0);
  out += StrFormat(
      "    {\"name\": \"xs.shard.count\", \"run_type\": \"gauge\", "
      "\"value\": %d}\n",
      sweep.empty() ? 1 : sweep.back().shard_count);
  out += "  ],\n";
  out += "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    out += StrFormat(
        "    {\"domains\": %d, \"created\": %d, \"shard_count\": %d, "
        "\"create_ops_per_sec\": %.3f, \"per_domain_control_bytes\": %.1f, "
        "\"create_path_scans\": %llu, \"xenstore_nodes\": %zu, "
        "\"control_plane_mb\": %llu}%s\n",
        p.domains_target, p.created, p.shard_count, p.create_ops_per_sec,
        p.per_domain_control_bytes,
        static_cast<unsigned long long>(p.create_path_scans),
        p.xenstore_nodes, static_cast<unsigned long long>(p.control_mb),
        i + 1 == sweep.size() ? "" : ",");
  }
  out += "  ]\n";
  out += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return written == out.size();
}

int Run(const Options& options, TraceSink* sink) {
  PrintHeading("Ablation: density trajectory (sharded XenStore-State)");

  std::vector<SweepPoint> sweep;
  bool scan_free = true;
  for (int target : options.sweep) {
    const int shards =
        options.shards > 0 ? options.shards : AutoShards(target);
    SweepPoint point = RunPoint(target, shards, options.max_guests, sink);
    if (point.create_path_scans != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu O(n) domain-table scans on the create path "
                   "at %d domains\n",
                   static_cast<unsigned long long>(point.create_path_scans),
                   target);
      scan_free = false;
    }
    sweep.push_back(point);
  }

  Table table({"domains", "created", "shards", "creates/sec", "bytes/domain",
               "XS nodes", "table scans"});
  for (const SweepPoint& p : sweep) {
    table.AddRow({StrFormat("%d", p.domains_target),
                  StrFormat("%d", p.created),
                  StrFormat("%d", p.shard_count),
                  StrFormat("%.1f", p.create_ops_per_sec),
                  StrFormat("%.0f", p.per_domain_control_bytes),
                  StrFormat("%zu", p.xenstore_nodes),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(
                                p.create_path_scans))});
  }
  table.Print();

  // The flatness claim (§2.3.1 via SCALING.md): bytes/domain must not grow
  // more than 10% from one sweep decade to the next.
  bool flat = true;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].created == 0 || sweep[i - 1].created == 0) {
      continue;
    }
    if (sweep[i].per_domain_control_bytes >
        sweep[i - 1].per_domain_control_bytes * 1.10) {
      std::fprintf(stderr,
                   "FAIL: per-domain control bytes grew %.1f -> %.1f "
                   "(%d -> %d domains)\n",
                   sweep[i - 1].per_domain_control_bytes,
                   sweep[i].per_domain_control_bytes,
                   sweep[i - 1].created, sweep[i].created);
      flat = false;
    }
  }

  if (!options.out.empty()) {  // a replay verification run writes no report
    if (!WriteReport(options.out, sweep, scan_free)) {
      return 2;
    }
    std::printf("\ndensity report -> %s\n", options.out.c_str());
  }

  std::printf(
      "\nControl-plane cost per domain stays flat across decades: "
      "disaggregation\ncosts a bounded constant plus O(1) per guest, not a "
      "per-guest tax — the\npaper's requirement that security must not "
      "'limit the density of VM hosting'\n(§1, §2.3.1), extended to cloud "
      "density by State sharding (SCALING.md).\n");
  return (scan_free && flat) ? 0 : 1;
}

std::string SweepToString(const std::vector<int>& sweep) {
  std::string out;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out += StrFormat(i == 0 ? "%d" : ",%d", sweep[i]);
  }
  return out;
}

std::vector<int> ParseSweep(const char* arg) {
  std::vector<int> sweep;
  std::string token;
  for (const char* c = arg;; ++c) {
    if (*c == ',' || *c == '\0') {
      if (!token.empty()) {
        sweep.push_back(std::atoi(token.c_str()));
        token.clear();
      }
      if (*c == '\0') {
        break;
      }
    } else {
      token += *c;
    }
  }
  return sweep;
}

int RunRecord(const Options& options) {
  Journal journal;
  JournalRecorder recorder(&journal);
  const int result = Run(options, &recorder);
  if (result == 2) {
    return result;
  }
  journal.SetMeta("sweep", SweepToString(options.sweep));
  journal.SetMeta("max_guests", StrFormat("%d", options.max_guests));
  journal.SetMeta("shards", StrFormat("%d", options.shards));
  Status status = journal.WriteFile(options.record);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", options.record.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  std::printf("journal (%zu events, chain %016llx) -> %s\n", journal.size(),
              static_cast<unsigned long long>(journal.chain_head()),
              options.record.c_str());
  return result;
}

int RunReplay(const Options& options) {
  StatusOr<Journal> journal = Journal::ReadFile(options.replay);
  if (!journal.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", options.replay.c_str(),
                 journal.status().ToString().c_str());
    return 2;
  }

  // Re-execute the journaled parameters, not the command line: a replay is
  // only meaningful against the recording's own sweep.
  Options recorded = options;
  recorded.sweep = ParseSweep(journal->Meta("sweep").c_str());
  recorded.max_guests = std::atoi(journal->Meta("max_guests").c_str());
  recorded.shards = std::atoi(journal->Meta("shards").c_str());
  recorded.out.clear();
  if (recorded.sweep.empty()) {
    std::fprintf(stderr, "journal %s has no sweep metadata\n",
                 options.replay.c_str());
    return 2;
  }

  ReplayVerifier verifier(&*journal);
  const int result = Run(recorded, &verifier);
  verifier.Finish();

  if (verifier.diverged()) {
    std::printf("replay of %s DIVERGED after %zu verified events\n%s",
                options.replay.c_str(), verifier.verified(),
                verifier.report().ToString("journal", "replay").c_str());
    return 1;
  }
  std::printf("replay of %s verified: %zu events, zero divergences "
              "(chain %016llx)\n",
              options.replay.c_str(), verifier.verified(),
              static_cast<unsigned long long>(journal->chain_head()));
  return result;
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  xoar::Logger::Get().set_level(xoar::LogLevel::kError);
  xoar::Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--sweep") == 0) {
      options.sweep = xoar::ParseSweep(next());
    } else if (std::strcmp(argv[i], "--max-guests") == 0) {
      options.max_guests = std::atoi(next());
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      options.shards = std::atoi(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next();
    } else if (std::strcmp(argv[i], "--record") == 0) {
      options.record = next();
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      options.replay = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sweep N,N,...] [--max-guests N] "
                   "[--shards N] [--out FILE]\n"
                   "       [--record JOURNAL | --replay JOURNAL]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!options.replay.empty()) {
    return xoar::RunReplay(options);
  }
  if (options.sweep.empty()) {
    std::fprintf(stderr, "empty --sweep\n");
    return 2;
  }
  if (!options.record.empty()) {
    return xoar::RunRecord(options);
  }
  return xoar::Run(options, nullptr);
}
