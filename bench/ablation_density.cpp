// Ablation: guest density (§1's "densely-multiplexed public cloud" and the
// §2 claim that disaggregation must not limit hosting density).
//
// Packs guests onto both platforms until machine memory runs out and
// reports: how many fit, per-guest control-plane cost, XenStore footprint,
// and the count of privilege checks the hypervisor performed — the
// overheads that would reveal a density penalty if Xoar had one.
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"

namespace xoar {
namespace {

struct DensityResult {
  int guests = 0;
  std::uint64_t control_mb = 0;
  std::size_t xenstore_nodes = 0;
  std::uint64_t hypercalls = 0;
  std::uint64_t denied = 0;
  double create_seconds_per_guest = 0;
};

template <typename PlatformT>
DensityResult Pack(std::uint64_t machine_gb) {
  DensityResult result;
  typename PlatformT::Config config;
  config.machine_memory_gb = machine_gb;
  PlatformT platform(config);
  if (!platform.Boot().ok()) {
    return result;
  }
  const SimTime start = platform.sim().Now();
  // The paper's virtual-desktop best practice: many small VMs per core.
  while (true) {
    auto guest = platform.CreateGuest(
        GuestSpec{.name = StrFormat("vdi-%d", result.guests),
                  .memory_mb = 256,
                  .vcpus = 1,
                  .disk_image_mb = 512});
    if (!guest.ok()) {
      break;
    }
    ++result.guests;
    if (result.guests >= 48) {
      break;  // enough to demonstrate the trend
    }
  }
  result.control_mb = platform.ControlPlaneMemoryMb();
  result.xenstore_nodes = platform.xenstore().store().NodeCount();
  result.hypercalls = platform.hv().TotalHypercalls();
  result.denied = platform.hv().denied_hypercalls();
  if (result.guests > 0) {
    result.create_seconds_per_guest =
        ToSeconds(platform.sim().Now() - start) / result.guests;
  }
  return result;
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Ablation: guest density on a 16 GB host (256 MB VDI guests)");

  const DensityResult dom0 = Pack<MonolithicPlatform>(16);
  const DensityResult xoar = Pack<XoarPlatform>(16);

  Table table({"Metric", "Dom0", "Xoar"});
  table.AddRow({"guests packed", StrFormat("%d", dom0.guests),
                StrFormat("%d", xoar.guests)});
  table.AddRow({"control-plane memory",
                StrFormat("%llu MB", (unsigned long long)dom0.control_mb),
                StrFormat("%llu MB", (unsigned long long)xoar.control_mb)});
  table.AddRow({"XenStore nodes", StrFormat("%zu", dom0.xenstore_nodes),
                StrFormat("%zu", xoar.xenstore_nodes)});
  table.AddRow({"hypercalls issued",
                StrFormat("%llu", (unsigned long long)dom0.hypercalls),
                StrFormat("%llu", (unsigned long long)xoar.hypercalls)});
  table.AddRow({"privilege denials",
                StrFormat("%llu", (unsigned long long)dom0.denied),
                StrFormat("%llu", (unsigned long long)xoar.denied)});
  table.AddRow({"sim time per guest create",
                StrFormat("%.3fs", dom0.create_seconds_per_guest),
                StrFormat("%.3fs", xoar.create_seconds_per_guest)});
  table.Print();

  std::printf(
      "\nXoar packs the same guest count: disaggregation costs a bounded "
      "constant of\ncontrol-plane memory, not a per-guest tax — the paper's "
      "requirement that\nsecurity must not 'limit the density of VM "
      "hosting' (§1, §2.3.1).\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
