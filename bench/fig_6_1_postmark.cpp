// Reproduces Fig 6.1: disk performance using Postmark, four configurations
// (files x transactions [x subdirectories]), Dom0 vs Xoar.
//
// The paper's claim is parity: "disk throughput is more or less unchanged."
#include <cstdio>
#include <vector>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"
#include "src/workloads/postmark.h"

namespace xoar {
namespace {

PostmarkConfig MakeConfig(int files, int transactions, int subdirs) {
  PostmarkConfig config;
  config.files = files;
  config.transactions = transactions;
  config.subdirectories = subdirs;
  return config;
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Fig 6.1: Disk performance using Postmark (ops/second)");

  const std::vector<PostmarkConfig> configs = {
      MakeConfig(1'000, 50'000, 1),
      MakeConfig(20'000, 50'000, 1),
      MakeConfig(20'000, 100'000, 1),
      MakeConfig(20'000, 100'000, 100),
  };

  Table table({"Configuration", "Dom0 (ops/s)", "Xoar (ops/s)", "Xoar/Dom0"});
  for (const auto& config : configs) {
    MonolithicPlatform dom0;
    if (!dom0.Boot().ok()) {
      return;
    }
    DomainId dom0_guest = *dom0.CreateGuest(GuestSpec{});
    auto dom0_result = RunPostmark(&dom0, dom0_guest, config);

    XoarPlatform xoar;
    if (!xoar.Boot().ok()) {
      return;
    }
    DomainId xoar_guest = *xoar.CreateGuest(GuestSpec{});
    auto xoar_result = RunPostmark(&xoar, xoar_guest, config);

    if (!dom0_result.ok() || !xoar_result.ok()) {
      std::printf("postmark failed for %s\n", config.Label().c_str());
      continue;
    }
    table.AddRow({config.Label(),
                  StrFormat("%.0f", dom0_result->ops_per_second),
                  StrFormat("%.0f", xoar_result->ops_per_second),
                  StrFormat("%.3f", xoar_result->ops_per_second /
                                        dom0_result->ops_per_second)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): the Dom0 and Xoar bars are indistinguishable in "
      "every\nconfiguration — the paravirtual block path is identical; only "
      "the domain\nhosting the backend changed.\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
