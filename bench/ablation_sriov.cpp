// Ablation for §5.3's closing observation: SR-IOV moves device
// multiplexing into hardware and looks like it removes sharing — but
// provisioning virtual functions on the fly requires a *persistent*
// privileged shard for interrupt assignment and config-space multiplexing.
// "Ironically, although appearing to reduce the amount of sharing in the
// system, such techniques may increase the number of shared, trusted
// components."
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"

namespace xoar {
namespace {

struct Outcome {
  bool pciback_resident = false;
  bool pciback_privileged = false;
  int guests_sharing_netback = 0;
  int guests_with_direct_hw = 0;
  std::uint64_t control_plane_mb = 0;
};

Outcome RunParavirtual() {
  Outcome out;
  XoarPlatform::Config config;
  config.destroy_pciback_after_boot = true;  // steady state: PCIBack gone
  XoarPlatform platform(config);
  if (!platform.Boot().ok()) {
    return out;
  }
  for (int i = 0; i < 3; ++i) {
    (void)platform.CreateGuest(
        GuestSpec{.name = StrFormat("pv-%d", i), .memory_mb = 512});
  }
  const Domain* pciback =
      platform.hv().domain(platform.shard_domain(ShardClass::kPciBack));
  out.pciback_resident = pciback != nullptr && pciback->alive();
  out.pciback_privileged = out.pciback_resident;
  for (DomainId id : platform.hv().AllDomains()) {
    const Domain* dom = platform.hv().domain(id);
    if (!dom->is_shard() &&
        dom->MayUseShard(platform.shard_domain(ShardClass::kNetBack))) {
      ++out.guests_sharing_netback;
    }
    if (!dom->is_shard() && !dom->pci_devices().empty()) {
      ++out.guests_with_direct_hw;
    }
  }
  out.control_plane_mb = platform.ControlPlaneMemoryMb();
  return out;
}

Outcome RunSriov() {
  Outcome out;
  XoarPlatform platform;  // PCIBack must stay for VF provisioning
  if (!platform.Boot().ok()) {
    return out;
  }
  for (int i = 0; i < 3; ++i) {
    (void)platform.CreateGuestWithSriovVif(
        GuestSpec{.name = StrFormat("vf-%d", i), .memory_mb = 512});
  }
  const Domain* pciback =
      platform.hv().domain(platform.shard_domain(ShardClass::kPciBack));
  out.pciback_resident = pciback != nullptr && pciback->alive();
  out.pciback_privileged =
      out.pciback_resident &&
      pciback->hypercall_policy().Permits(Hypercall::kDomctlSetPrivileges);
  for (DomainId id : platform.hv().AllDomains()) {
    const Domain* dom = platform.hv().domain(id);
    if (!dom->is_shard() &&
        dom->MayUseShard(platform.shard_domain(ShardClass::kNetBack))) {
      ++out.guests_sharing_netback;
    }
    if (!dom->is_shard() && !dom->pci_devices().empty()) {
      ++out.guests_with_direct_hw;
    }
  }
  out.control_plane_mb = platform.ControlPlaneMemoryMb();
  // Confirm the §5.3 pinning: PCIBack now refuses to self-destruct.
  Status destroy = platform.pci_service().SelfDestruct();
  std::printf("attempting PCIBack self-destruct under SR-IOV: %s\n\n",
              destroy.ToString().c_str());
  return out;
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Ablation: paravirtual driver domains vs SR-IOV (§5.3)");

  const Outcome pv = RunParavirtual();
  const Outcome vf = RunSriov();

  Table table({"Metric", "Paravirtual (NetBack)", "SR-IOV VFs"});
  table.AddRow({"guests sharing NetBack", StrFormat("%d", pv.guests_sharing_netback),
                StrFormat("%d", vf.guests_sharing_netback)});
  table.AddRow({"guests with direct hardware",
                StrFormat("%d", pv.guests_with_direct_hw),
                StrFormat("%d", vf.guests_with_direct_hw)});
  table.AddRow({"PCIBack resident in steady state",
                pv.pciback_resident ? "yes" : "no (destroyed, §5.3)",
                vf.pciback_resident ? "YES (pinned)" : "no"});
  table.AddRow({"persistent privileged multiplexer",
                pv.pciback_privileged ? "yes" : "no",
                vf.pciback_privileged ? "YES" : "no"});
  table.AddRow({"control-plane memory",
                StrFormat("%llu MB", (unsigned long long)pv.control_plane_mb),
                StrFormat("%llu MB", (unsigned long long)vf.control_plane_mb)});
  table.Print();

  std::printf(
      "\nSR-IOV removes the shared data-path component (no NetBack "
      "dependency) but\nre-introduces a *persistent, privileged* shared "
      "component: PCIBack cannot be\ndestroyed while VFs are provisioned "
      "dynamically — the paper's irony, made\nmeasurable.\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
