// Reproduces Fig 6.2: network performance with wget — 512 MB and 2 GB
// fetches over a GbE LAN written to /dev/null or through the virtual disk.
//
// Shape targets from §6.1.2: network throughput down 1–2.5% on Xoar;
// network-to-disk combined throughput *up* ~6.5% on Xoar (performance
// isolation of separate driver domains).
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/monolithic_platform.h"
#include "src/workloads/wget.h"

namespace xoar {
namespace {

struct Cell {
  double dom0 = 0;
  double xoar = 0;
};

Cell Measure(std::uint64_t bytes, WgetSink sink) {
  Cell cell;
  {
    MonolithicPlatform platform;
    (void)platform.Boot();
    DomainId guest = *platform.CreateGuest(GuestSpec{});
    auto result = RunWget(&platform, guest, bytes, sink);
    if (result.ok()) {
      cell.dom0 = result->throughput_mbps;
    }
  }
  {
    XoarPlatform platform;
    (void)platform.Boot();
    DomainId guest = *platform.CreateGuest(GuestSpec{});
    auto result = RunWget(&platform, guest, bytes, sink);
    if (result.ok()) {
      cell.xoar = result->throughput_mbps;
    }
  }
  return cell;
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading("Fig 6.2: Network performance with wget (MB/s)");

  Table table({"Workload", "Dom0", "Xoar", "Xoar/Dom0", "Paper shape"});
  struct Row {
    const char* label;
    std::uint64_t bytes;
    WgetSink sink;
    const char* shape;
  };
  const Row rows[] = {
      {"/dev/null (512MB)", 512ull * 1000 * 1000, WgetSink::kDevNull,
       "-1..-2.5%"},
      {"Disk (512MB)", 512ull * 1000 * 1000, WgetSink::kDisk, "+6.5%"},
      {"/dev/null (2GB)", 2048ull * 1000 * 1000, WgetSink::kDevNull,
       "-1..-2.5%"},
      {"Disk (2GB)", 2048ull * 1000 * 1000, WgetSink::kDisk, "+6.5%"},
  };
  for (const Row& row : rows) {
    const Cell cell = Measure(row.bytes, row.sink);
    table.AddRow({row.label, StrFormat("%.1f", cell.dom0),
                  StrFormat("%.1f", cell.xoar),
                  StrFormat("%+.1f%%", (cell.xoar / cell.dom0 - 1.0) * 100.0),
                  row.shape});
  }
  table.Print();
  std::printf(
      "\nShape check: pure-network transfers pay the small vif-hop cost on "
      "Xoar;\nnetwork-onto-disk gains ~6.5%% because the disk and network "
      "drivers no longer\nshare one control VM (§6.1.2).\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
