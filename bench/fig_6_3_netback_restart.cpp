// Reproduces Fig 6.3: throughput of a 2 GB wget to /dev/null while NetBack
// microreboots at intervals from 1 s to 10 s, for both recovery grades:
// "slow" (hardware state untouched, full XenStore renegotiation, ~260 ms
// downtime) and "fast" (configuration persisted in the recovery box,
// ~140 ms downtime).
//
// Paper shape: ~58% throughput drop at 1 s intervals, ~8% at 10 s; the fast
// path helps visibly at high frequencies and hardly at all at 10 s.
#include <cstdio>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/core/xoar_platform.h"
#include "src/obs/obs.h"
#include "src/workloads/wget.h"

namespace xoar {
namespace {

double MeasureThroughput(double interval_seconds, bool fast) {
  XoarPlatform platform;
  if (!platform.Boot().ok()) {
    return 0;
  }
  DomainId guest = *platform.CreateGuest(GuestSpec{});
  if (interval_seconds > 0) {
    (void)platform.EnableNetBackRestarts(FromSeconds(interval_seconds), fast);
  }
  auto result =
      RunWget(&platform, guest, 2048ull * 1000 * 1000, WgetSink::kDevNull);
  return result.ok() ? result->throughput_mbps : 0;
}

void Run() {
  Logger::Get().set_level(LogLevel::kError);
  PrintHeading(
      "Fig 6.3: Throughput with a restarting NetBack (2GB wget, MB/s)");

  // Record every measured point into the process-global registry; the table
  // below and BENCH_netback_restart.json both render from the same
  // snapshot (see OBSERVABILITY.md for the export shape).
  MetricRegistry& metrics = Obs::Global().metrics();
  metrics.GetGauge("bench.fig63.baseline_mbps")
      ->Set(MeasureThroughput(0, false));
  for (int interval = 1; interval <= 10; ++interval) {
    metrics.GetGauge(StrFormat("bench.fig63.slow_%02ds_mbps", interval))
        ->Set(MeasureThroughput(interval, false));
    metrics.GetGauge(StrFormat("bench.fig63.fast_%02ds_mbps", interval))
        ->Set(MeasureThroughput(interval, true));
  }

  const MetricsSnapshot snapshot = metrics.Snapshot();
  const double baseline = snapshot.FindGauge("bench.fig63.baseline_mbps")->value;
  std::printf("baseline (no restarts): %.1f MB/s\n\n", baseline);

  Table table({"Restart interval", "slow (260ms)", "fast (140ms)",
               "slow drop", "fast drop"});
  for (int interval = 1; interval <= 10; ++interval) {
    const double slow =
        snapshot
            .FindGauge(StrFormat("bench.fig63.slow_%02ds_mbps", interval))
            ->value;
    const double fast =
        snapshot
            .FindGauge(StrFormat("bench.fig63.fast_%02ds_mbps", interval))
            ->value;
    table.AddRow({StrFormat("%ds", interval), StrFormat("%.1f", slow),
                  StrFormat("%.1f", fast),
                  StrFormat("%.0f%%", (1.0 - slow / baseline) * 100.0),
                  StrFormat("%.0f%%", (1.0 - fast / baseline) * 100.0)});
  }
  table.Print();

  Status status = metrics.WriteJsonFile("BENCH_netback_restart.json",
                                        "fig_6_3_netback_restart");
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write BENCH_netback_restart.json: %s\n",
                 status.ToString().c_str());
  } else {
    std::printf("\nmeasured points -> BENCH_netback_restart.json\n");
  }
  std::printf(
      "\nPaper shape: 58%% drop at 1s, 8%% at 10s (slow); the fast path's "
      "benefit is\nnoticeable for very frequent reboots and fades as the "
      "interval grows.\nThe mechanism: each outage costs the device downtime "
      "plus TCP's RTO\ndiscretization (the first retransmit at 200 ms fails "
      "during a 260 ms outage,\nso recovery waits for the 600 ms backoff "
      "point), then a slow-start ramp.\n");
}

}  // namespace
}  // namespace xoar

int main() {
  xoar::Run();
  return 0;
}
