// Simulator-core raw-speed microbenchmark (DESIGN.md §5f).
//
//   micro_sim_core [--events N] [--ops N] [--requests N]
//                  [--out BENCH_sim_core.json]
//
// Times the event-queue hot paths of the slab/4-ary-heap kernel
// (src/sim/simulator.h) against the retired priority_queue + hash-map
// kernel kept verbatim as LegacySimulator (src/sim/legacy_simulator.h),
// plus one end-to-end driver-ring workload on a booted XoarPlatform:
//
//   schedule_fire  - sustained schedule+fire through a 512Ki-event window;
//                    the pure alloc/heap-push/pop/invoke/free cycle.
//   schedule_cancel- schedule a full window, Cancel() every event; the old
//                    kernel tombstones and pays the pop later, the new one
//                    removes in place.
//   timer_churn    - the retry/backoff pattern: a standing population of
//                    armed timers, each firing reschedules and each round
//                    cancels half before they fire.
//   ring_drain     - guest block writes through BlkFront/BlkBack with
//                    batched ring drains; reports wall-clock requests/sec
//                    and the sim-deterministic events-per-request cost.
//
// Wall-clock timing (std::chrono::steady_clock) is confined to this bench
// binary — the simulation itself stays deterministic, and the
// `ring_drain.sim_events_per_request` gauge is a pure function of the
// workload, byte-stable across runs and machines. The *_per_sec gauges and
// the speedup ratios vary with the host; validate_obs --sim therefore
// bounds them only as "present and positive" and pins the deterministic
// events-per-request cost.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/units.h"
#include "src/core/xoar_platform.h"
#include "src/drv/blk.h"
#include "src/obs/metrics.h"
#include "src/sim/legacy_simulator.h"
#include "src/sim/simulator.h"

namespace xoar {
namespace {

struct Options {
  std::uint64_t events = 4'000'000;   // schedule_fire total events
  std::uint64_t ops = 1'000'000;      // schedule_cancel / timer_churn ops
  std::uint64_t requests = 20'000;    // ring_drain block requests
  std::string out = "BENCH_sim_core.json";
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Sustained schedule+fire: a 512Ki-event standing window where every fired
// event schedules its successor at a pseudo-random delay, so the queue
// stays deep and every event pays one push and one pop at the occupancy a
// dense consolidated host actually sees (hundreds of guests' worth of
// armed deadlines and in-flight completions). Returns events/sec.
template <typename Sim>
struct FireState {
  Sim sim;
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t total = 0;
  std::uint32_t lcg = 0x2545f491u;

  SimDuration NextDelay() {
    lcg = lcg * 1664525u + 1013904223u;
    return 1 + (lcg >> 22);  // 1..1024
  }
};

// 48-byte capture modeling a driver completion: the state pointer plus the
// request fields a blkback completion carries (guest, request id, sector,
// length, flags, tag). It fits the new kernel's 48-byte inline buffer
// exactly; std::function's 16-byte small-buffer cannot hold it, so the
// legacy kernel heap-allocates every callback — that type-erasure tax was
// part of the old design.
template <typename Sim>
struct FireBody {
  FireState<Sim>* s;
  std::uint64_t guest;
  std::uint64_t id;
  std::uint64_t sector;
  std::uint32_t len;
  std::uint32_t flags;
  std::uint64_t tag;
  void operator()() const {
    ++s->fired;
    if (s->scheduled < s->total) {
      ++s->scheduled;
      s->sim.ScheduleAfter(s->NextDelay(),
                           FireBody{s, guest + 1, id ^ s->lcg, sector + len,
                                    len, flags, tag ^ guest});
    }
  }
};
static_assert(sizeof(FireBody<Simulator>) == 48);

template <typename Sim>
double RunScheduleFire(std::uint64_t total_events) {
  auto state = std::make_unique<FireState<Sim>>();
  state->total = total_events;
  constexpr std::uint64_t kWindow = 512 * 1024;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kWindow && state->scheduled < total_events;
       ++i) {
    ++state->scheduled;
    state->sim.ScheduleAfter(
        state->NextDelay(),
        FireBody<Sim>{state.get(), i, i, i * 8, 4096, 0, i});
  }
  state->sim.Run();
  const double elapsed = SecondsSince(start);
  if (state->fired != total_events) {
    std::fprintf(stderr, "schedule_fire fired %llu of %llu events\n",
                 static_cast<unsigned long long>(state->fired),
                 static_cast<unsigned long long>(total_events));
    std::exit(2);
  }
  return static_cast<double>(total_events) / elapsed;
}

// Min-time methodology: the best of three reps discards runs perturbed by
// other tenants of the machine. Both kernels get the same treatment.
template <typename Sim>
double BestScheduleFire(std::uint64_t total_events) {
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    best = std::max(best, RunScheduleFire<Sim>(total_events));
  }
  return best;
}

// Schedule a full window then Cancel() all of it, repeatedly. One "op" is
// one schedule+cancel pair. The legacy kernel's Cancel only tombstones, so
// each round ends with Run() to drain — that deferred pop is part of what
// the old design actually paid per cancellation.
template <typename Sim>
double RunScheduleCancel(std::uint64_t total_ops) {
  Sim sim;
  Rng rng(11);
  constexpr std::uint64_t kWindow = 1024;
  std::vector<EventId> handles;
  handles.reserve(kWindow);
  std::uint64_t done = 0;
  const auto start = std::chrono::steady_clock::now();
  while (done < total_ops) {
    handles.clear();
    const std::uint64_t round =
        std::min<std::uint64_t>(kWindow, total_ops - done);
    for (std::uint64_t i = 0; i < round; ++i) {
      handles.push_back(sim.ScheduleAfter(1 + rng.NextBelow(1024), [] {}));
    }
    for (EventId id : handles) {
      sim.Cancel(id);
    }
    sim.Run();
    done += round;
  }
  const double elapsed = SecondsSince(start);
  return static_cast<double>(total_ops) / elapsed;
}

// Retry-timer churn: a standing population of armed timers. Each round
// cancels every other timer and re-arms it further out; survivors fire and
// re-arm themselves. One "op" is one cancel+reschedule.
template <typename Sim>
double RunTimerChurn(std::uint64_t total_ops) {
  Sim sim;
  Rng rng(13);
  constexpr std::uint64_t kTimers = 512;
  std::vector<EventId> timers(kTimers, EventId::Invalid());
  std::uint64_t done = 0;
  const auto start = std::chrono::steady_clock::now();
  while (done < total_ops) {
    for (std::uint64_t i = 0; i < kTimers; ++i) {
      timers[i] = sim.ScheduleAfter(1000 + rng.NextBelow(1000), [] {});
    }
    while (done < total_ops) {
      const std::uint64_t i = rng.NextBelow(kTimers);
      sim.Cancel(timers[i]);
      timers[i] = sim.ScheduleAfter(1000 + rng.NextBelow(1000), [] {});
      ++done;
      if ((done & (kTimers * 8 - 1)) == 0) {
        break;  // periodically drain so legacy tombstones don't accumulate
      }
    }
    sim.Run();
  }
  const double elapsed = SecondsSince(start);
  return static_cast<double>(total_ops) / elapsed;
}

struct RingDrainResult {
  double requests_per_sec = 0;
  double sim_events_per_request = 0;
};

// End-to-end driver-ring workload: 4 KiB guest block writes with 16
// requests outstanding, through the batched BlkBack drain path. The
// events-per-request gauge is sim-deterministic; requests/sec is wall time.
RingDrainResult RunRingDrain(std::uint64_t total_requests) {
  XoarPlatform platform;
  if (!platform.Boot().ok()) {
    std::fprintf(stderr, "ring_drain: boot failed\n");
    std::exit(2);
  }
  StatusOr<DomainId> guest =
      platform.CreateGuest(GuestSpec{.name = "bench"});
  if (!guest.ok()) {
    std::fprintf(stderr, "ring_drain: guest creation failed\n");
    std::exit(2);
  }
  platform.Settle();
  BlkFront* blkfront = platform.blkfront(*guest);
  if (blkfront == nullptr) {
    std::fprintf(stderr, "ring_drain: no block frontend\n");
    std::exit(2);
  }
  Simulator& sim = platform.sim();
  const std::uint64_t events_before = sim.EventsExecuted();

  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  constexpr std::uint64_t kOutstanding = 16;
  std::function<void()> submit = [&] {
    while (issued < total_requests &&
           issued - completed - failed < kOutstanding) {
      const std::uint64_t offset = (issued * 4096) % (1 * kMiB);
      ++issued;
      blkfront->WriteBytes(offset, 4096, [&](Status status) {
        status.ok() ? ++completed : ++failed;
        submit();
      });
    }
  };
  // A booted platform keeps periodic timers (watchdog heartbeats) armed
  // forever, so Run() would never return; advance in slices until the
  // request stream drains.
  const auto start = std::chrono::steady_clock::now();
  submit();
  while (completed + failed < total_requests) {
    sim.RunFor(100 * kMillisecond);
  }
  const double elapsed = SecondsSince(start);
  if (completed != total_requests) {
    std::fprintf(stderr, "ring_drain: %llu of %llu requests completed\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(total_requests));
    std::exit(2);
  }
  RingDrainResult result;
  result.requests_per_sec = static_cast<double>(total_requests) / elapsed;
  result.sim_events_per_request =
      static_cast<double>(sim.EventsExecuted() - events_before) /
      static_cast<double>(total_requests);
  return result;
}

int RunBench(const Options& options) {
  const double fire_new = BestScheduleFire<Simulator>(options.events);
  const double fire_old = BestScheduleFire<LegacySimulator>(options.events);
  const double cancel_new = RunScheduleCancel<Simulator>(options.ops);
  const double cancel_old = RunScheduleCancel<LegacySimulator>(options.ops);
  const double churn_new = RunTimerChurn<Simulator>(options.ops);
  const double churn_old = RunTimerChurn<LegacySimulator>(options.ops);
  const RingDrainResult ring = RunRingDrain(options.requests);

  MetricRegistry metrics;
  metrics.GetGauge("sim_core.schedule_fire.events_per_sec")->Set(fire_new);
  metrics.GetGauge("sim_core.schedule_fire.baseline_events_per_sec")
      ->Set(fire_old);
  metrics.GetGauge("sim_core.schedule_fire.speedup")->Set(fire_new / fire_old);
  metrics.GetGauge("sim_core.schedule_cancel.ops_per_sec")->Set(cancel_new);
  metrics.GetGauge("sim_core.schedule_cancel.baseline_ops_per_sec")
      ->Set(cancel_old);
  metrics.GetGauge("sim_core.schedule_cancel.speedup")
      ->Set(cancel_new / cancel_old);
  metrics.GetGauge("sim_core.timer_churn.ops_per_sec")->Set(churn_new);
  metrics.GetGauge("sim_core.timer_churn.baseline_ops_per_sec")
      ->Set(churn_old);
  metrics.GetGauge("sim_core.timer_churn.speedup")->Set(churn_new / churn_old);
  metrics.GetGauge("sim_core.ring_drain.requests_per_sec")
      ->Set(ring.requests_per_sec);
  metrics.GetGauge("sim_core.ring_drain.sim_events_per_request")
      ->Set(ring.sim_events_per_request);

  PrintHeading(StrFormat(
      "Simulator core (events %llu, ops %llu, requests %llu)",
      static_cast<unsigned long long>(options.events),
      static_cast<unsigned long long>(options.ops),
      static_cast<unsigned long long>(options.requests)));
  Table table({"workload", "new (ops/s)", "legacy (ops/s)", "speedup"});
  table.AddRow({"schedule+fire", StrFormat("%.0f", fire_new),
                StrFormat("%.0f", fire_old),
                StrFormat("%.2fx", fire_new / fire_old)});
  table.AddRow({"schedule+cancel", StrFormat("%.0f", cancel_new),
                StrFormat("%.0f", cancel_old),
                StrFormat("%.2fx", cancel_new / cancel_old)});
  table.AddRow({"timer churn", StrFormat("%.0f", churn_new),
                StrFormat("%.0f", churn_old),
                StrFormat("%.2fx", churn_new / churn_old)});
  table.AddRow({"ring drain (req/s)",
                StrFormat("%.0f", ring.requests_per_sec), "-",
                StrFormat("%.2f ev/req", ring.sim_events_per_request)});
  table.Print();

  Status status = metrics.WriteJsonFile(options.out, "micro_sim_core");
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", options.out.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  std::printf("\nsim-core report -> %s\n", options.out.c_str());
  return 0;
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  xoar::Logger::Get().set_level(xoar::LogLevel::kError);
  xoar::Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--events") == 0) {
      options.events = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      options.ops = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      options.requests = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--events N] [--ops N] [--requests N] "
                   "[--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  return xoar::RunBench(options);
}
