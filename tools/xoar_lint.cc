// xoar_lint — build-time enforcement of Xoar's architectural invariants
// (ANALYSIS.md, DESIGN.md §5e). Run by CTest on every tier-1 pass:
//
//   xoar_lint --root <repo> [--json <report.json>] [--quiet]
//             [--lenient-audit] [--strict]
//
// Scans src/, tools/, examples/ and bench/ under --root and enforces the
// four rule families (layering, privilege, determinism, audit) plus the
// suppression contract. Exit codes:
//
//   0  clean (suppressed findings only)
//   1  at least one unsuppressed finding
//   2  usage or I/O error
//
// --lenient-audit drops the "audited operation not found anywhere" check,
// for fixture trees that only contain a slice of the platform. --strict
// promotes warnings (stale suppression comments) to blocking findings.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/analysis/report.h"
#include "src/analysis/rules.h"
#include "src/analysis/source_tree.h"

namespace xoar {
namespace analysis {
namespace {

int Run(const std::string& root, const std::string& json_path, bool quiet,
        bool lenient_audit, bool strict) {
  StatusOr<std::vector<SourceFile>> files = LoadTree(root, DefaultScanDirs());
  if (!files.ok()) {
    std::fprintf(stderr, "xoar_lint: %s\n",
                 files.status().ToString().c_str());
    return 2;
  }
  if (files->empty()) {
    std::fprintf(stderr, "xoar_lint: no sources found under %s\n",
                 root.c_str());
    return 2;
  }
  LintConfig config = DefaultConfig();
  if (lenient_audit) {
    config.require_audited_op_definitions = false;
  }
  config.strict = strict;
  const std::vector<Finding> findings = RunLint(*files, config);
  const LintSummary summary = Summarize(findings, files->size());

  if (!quiet || summary.unsuppressed > 0) {
    std::fputs(FormatText(findings, summary).c_str(),
               summary.unsuppressed > 0 ? stderr : stdout);
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "xoar_lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << FormatJson(findings, summary);
  }
  return summary.unsuppressed > 0 ? 1 : 0;
}

}  // namespace
}  // namespace analysis
}  // namespace xoar

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  bool quiet = false;
  bool lenient_audit = false;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--lenient-audit") {
      lenient_audit = true;
    } else if (arg == "--strict") {
      strict = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--root <dir>] [--json <report.json>] "
                   "[--quiet] [--lenient-audit] [--strict]\n",
                   argv[0]);
      return 2;
    }
  }
  return xoar::analysis::Run(root, json_path, quiet, lenient_audit, strict);
}
