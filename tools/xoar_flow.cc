// xoar_flow — whole-program call-graph analysis over the tree
// (ANALYSIS.md "Whole-program flow analysis", DESIGN.md §5j). Run by CTest
// on every tier-1 pass, next to the lexical xoar_lint:
//
//   xoar_flow --root <repo> [--json <report.json>] [--quiet] [--strict]
//
// Builds the symbol table + call graph, then runs the three
// interprocedural rules: per-shard hypercall-privilege reachability
// (privilege_flow), derived-vs-declared communication graph (comm_flow),
// and unordered-iteration-into-deterministic-output taint (nondet_flow).
// The JSON report additionally carries the containment metrics
// (src/security interface-graph analyzer) computed over BOTH the declared
// shard DAG and the code-derived communication graph, side by side, and
// is byte-stable for a given tree. Exit codes match xoar_lint:
//
//   0  clean (suppressed findings and warnings only)
//   1  at least one blocking finding
//   2  usage or I/O error
//
// --strict promotes warnings (declared-but-dead communication edges,
// stale xoar-flow suppressions) to blocking findings.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/flow/flow.h"
#include "src/analysis/report.h"
#include "src/analysis/source_tree.h"
#include "src/base/strings.h"
#include "src/security/interface_graph.h"

namespace xoar {
namespace analysis {
namespace {

// Containment recomputation for one edge list via the security module's
// graph analyzer. This tool links analysis AND security; the analysis
// library itself must not (it sits below security in the layering DAG).
flow::GraphStats Containment(const std::string& label,
                             const std::vector<security::InterfaceEdge>& edges) {
  const security::InterfaceGraphStats stats =
      security::AnalyzeInterfaceGraph(edges, "Guest");
  flow::GraphStats out;
  out.label = label;
  out.nodes = stats.nodes;
  out.edges = stats.edges;
  out.attack_surface = stats.attack_surface;
  out.max_reach = stats.max_reach;
  out.mean_reach_milli = stats.mean_reach_milli;
  return out;
}

std::vector<flow::GraphStats> ContainmentSideBySide(
    const flow::FlowConfig& config, const flow::FlowResult& result) {
  std::vector<security::InterfaceEdge> declared;
  for (const flow::DeclaredEdge& edge : config.declared_comm) {
    declared.push_back({edge.from, edge.to, edge.kind});
  }
  std::vector<security::InterfaceEdge> derived;
  for (const flow::CommEdge& edge : result.derived_comm) {
    derived.push_back({edge.from, edge.to, edge.kind});
  }
  return {Containment("declared", declared), Containment("derived", derived)};
}

std::string FormatFlowText(const std::vector<Finding>& findings,
                           const LintSummary& summary) {
  std::string out;
  for (const Finding& finding : findings) {
    out += StrFormat("%s:%d: [%s%s] %s", finding.file.c_str(), finding.line,
                     finding.rule.c_str(),
                     finding.warning && !finding.suppressed ? " warning" : "",
                     finding.message.c_str());
    if (finding.suppressed) {
      out += StrFormat("  [suppressed: %s]", finding.justification.c_str());
    }
    out += "\n";
  }
  out += StrFormat(
      "xoar_flow: %zu file(s) scanned, %zu finding(s) (%zu suppressed, "
      "%zu warning(s), %zu blocking)\n",
      summary.files_scanned, summary.total, summary.suppressed,
      summary.warnings, summary.unsuppressed);
  return out;
}

int Run(const std::string& root, const std::string& json_path, bool quiet,
        bool strict) {
  StatusOr<std::vector<SourceFile>> files = LoadTree(root, DefaultScanDirs());
  if (!files.ok()) {
    std::fprintf(stderr, "xoar_flow: %s\n",
                 files.status().ToString().c_str());
    return 2;
  }
  if (files->empty()) {
    std::fprintf(stderr, "xoar_flow: no sources found under %s\n",
                 root.c_str());
    return 2;
  }
  flow::FlowConfig config = flow::DefaultFlowConfig();
  config.strict = strict;
  const flow::FlowResult result = flow::RunFlow(*files, config);
  const LintSummary summary = Summarize(result.findings, files->size());

  if (!quiet || summary.unsuppressed > 0) {
    std::fputs(FormatFlowText(result.findings, summary).c_str(),
               summary.unsuppressed > 0 ? stderr : stdout);
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "xoar_flow: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << FormatFlowJson(result, summary,
                          ContainmentSideBySide(config, result),
                          /*extra_gauges=*/{});
  }
  return summary.unsuppressed > 0 ? 1 : 0;
}

}  // namespace
}  // namespace analysis
}  // namespace xoar

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  bool quiet = false;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--strict") {
      strict = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--root <dir>] [--json <report.json>] "
                   "[--quiet] [--strict]\n",
                   argv[0]);
      return 2;
    }
  }
  return xoar::analysis::Run(root, json_path, quiet, strict);
}
