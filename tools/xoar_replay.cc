// Record/replay CLI for campaign journals (DEBUGGING.md).
//
//   xoar_replay record  --journal PATH [--seed N] [--faults N] [--seconds S]
//                       [--crashes N] [--hangs N] [--box-corrupts N]
//   xoar_replay replay  --journal PATH
//   xoar_replay diff    <A> <B>
//   xoar_replay selftest [--seed N] [--out BENCH_replay.json]
//                        [--journal-dir DIR]
//
// `record` runs a probe campaign (the same src/fault/campaign.h driver the
// fault_campaign bench uses) with the journal recorder attached and writes
// the hash-chained journal plus the campaign parameters needed to re-run
// it. `replay` re-executes a journal's recorded parameters and verifies
// every trace event against the recording, exiting 1 at the first
// divergence with the surrounding context from both sides. `diff`
// structurally compares two journals and reports their earliest
// disagreement. `selftest` exercises the whole loop — record, round-trip
// through a file, replay-verify, two-seed diff, and an injected
// single-event perturbation that must be caught at exactly the planted
// index — and exports the replay.* gauges as BENCH-shape JSON for
// validate_obs --replay.
//
// Everything is driven by the simulator clock and the journaled seed, so
// the JSON report is byte-stable across runs and hosts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/fault/campaign.h"
#include "src/obs/metrics.h"
#include "src/replay/diff.h"
#include "src/replay/journal.h"
#include "src/replay/verify.h"

namespace xoar {
namespace {

struct Options {
  std::uint64_t seed = 42;
  int faults = 10;
  double seconds = 4.0;
  int crashes = 2;
  int hangs = 2;
  int box_corrupts = 1;
  std::string journal;
  std::string out = "BENCH_replay.json";
  std::string journal_dir = ".";
};

CampaignRunOptions RunOptionsFrom(const Options& options) {
  CampaignRunOptions run;
  run.seed = options.seed;
  run.faults = options.faults;
  run.seconds = options.seconds;
  run.crashes = options.crashes;
  run.hangs = options.hangs;
  run.box_corrupts = options.box_corrupts;
  return run;
}

void StampMeta(const Options& options, Journal* journal) {
  journal->SetMeta("seed", StrFormat("%llu", options.seed));
  journal->SetMeta("faults", StrFormat("%d", options.faults));
  journal->SetMeta("seconds", StrFormat("%.6f", options.seconds));
  journal->SetMeta("crashes", StrFormat("%d", options.crashes));
  journal->SetMeta("hangs", StrFormat("%d", options.hangs));
  journal->SetMeta("box_corrupts", StrFormat("%d", options.box_corrupts));
}

CampaignRunOptions RunOptionsFromMeta(const Journal& journal) {
  CampaignRunOptions run;
  run.seed = std::strtoull(journal.Meta("seed").c_str(), nullptr, 10);
  run.faults = std::atoi(journal.Meta("faults").c_str());
  run.seconds = std::atof(journal.Meta("seconds").c_str());
  run.crashes = std::atoi(journal.Meta("crashes").c_str());
  run.hangs = std::atoi(journal.Meta("hangs").c_str());
  run.box_corrupts = std::atoi(journal.Meta("box_corrupts").c_str());
  return run;
}

// Size on disk of an already-written file; 0 on error (the selftest's
// journal_bytes gauge then fails its >= 1 schema bound).
std::uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return 0;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<std::uint64_t>(size) : 0;
}

int RunRecord(const Options& options) {
  if (options.journal.empty()) {
    std::fprintf(stderr, "record: --journal PATH is required\n");
    return 2;
  }
  Journal journal;
  JournalRecorder recorder(&journal);
  CampaignRunOptions run = RunOptionsFrom(options);
  run.sink = &recorder;
  StatusOr<CampaignSummary> summary = RunProbeCampaign(run);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 2;
  }
  StampMeta(options, &journal);
  Status status = journal.WriteFile(options.journal);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", options.journal.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  std::printf("recorded seed %llu: %zu events, chain %016llx, "
              "%llu violations -> %s\n",
              static_cast<unsigned long long>(options.seed), journal.size(),
              static_cast<unsigned long long>(journal.chain_head()),
              static_cast<unsigned long long>(summary->violations),
              options.journal.c_str());
  return summary->violations > 0 ? 1 : 0;
}

int RunReplay(const Options& options) {
  if (options.journal.empty()) {
    std::fprintf(stderr, "replay: --journal PATH is required\n");
    return 2;
  }
  StatusOr<Journal> journal = Journal::ReadFile(options.journal);
  if (!journal.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", options.journal.c_str(),
                 journal.status().ToString().c_str());
    return 2;
  }
  ReplayVerifier verifier(&*journal);
  CampaignRunOptions run = RunOptionsFromMeta(*journal);
  run.sink = &verifier;
  StatusOr<CampaignSummary> summary = RunProbeCampaign(run);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 2;
  }
  verifier.Finish();
  if (verifier.diverged()) {
    std::printf("replay of %s DIVERGED after %zu verified events\n%s",
                options.journal.c_str(), verifier.verified(),
                verifier.report().ToString("journal", "replay").c_str());
    return 1;
  }
  std::printf("replay of %s verified: %zu events, zero divergences "
              "(chain %016llx)\n",
              options.journal.c_str(), verifier.verified(),
              static_cast<unsigned long long>(journal->chain_head()));
  return 0;
}

int RunDiff(const std::string& path_a, const std::string& path_b) {
  StatusOr<Journal> a = Journal::ReadFile(path_a);
  if (!a.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path_a.c_str(),
                 a.status().ToString().c_str());
    return 2;
  }
  StatusOr<Journal> b = Journal::ReadFile(path_b);
  if (!b.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path_b.c_str(),
                 b.status().ToString().c_str());
    return 2;
  }
  std::printf("%s: %zu events, chain %016llx\n", path_a.c_str(), a->size(),
              static_cast<unsigned long long>(a->chain_head()));
  std::printf("%s: %zu events, chain %016llx\n", path_b.c_str(), b->size(),
              static_cast<unsigned long long>(b->chain_head()));
  DivergenceReport report = DiffJournals(*a, *b);
  std::printf("%s", report.ToString(path_a, path_b).c_str());
  return report.diverged ? 1 : 0;
}

int RunSelftest(const Options& options) {
  const std::string path_a = options.journal_dir + "/selftest_a.journal";
  const std::string path_b = options.journal_dir + "/selftest_b.journal";
  MetricRegistry metrics;

  // 1. Record seed A and round-trip it through a file. ReadFile re-verifies
  //    the hash chain over every record, so a successful load IS the
  //    chain-verified check.
  Journal recorded;
  JournalRecorder recorder(&recorded);
  CampaignRunOptions run_a = RunOptionsFrom(options);
  run_a.sink = &recorder;
  StatusOr<CampaignSummary> summary_a = RunProbeCampaign(run_a);
  if (!summary_a.ok()) {
    std::fprintf(stderr, "%s\n", summary_a.status().ToString().c_str());
    return 2;
  }
  StampMeta(options, &recorded);
  Status wrote = recorded.WriteFile(path_a);
  if (!wrote.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path_a.c_str(),
                 wrote.ToString().c_str());
    return 2;
  }
  StatusOr<Journal> loaded = Journal::ReadFile(path_a);
  const bool chain_verified =
      loaded.ok() && loaded->chain_head() == recorded.chain_head() &&
      loaded->size() == recorded.size();
  std::printf("record: seed %llu, %zu events, chain %016llx (%s)\n",
              static_cast<unsigned long long>(options.seed), recorded.size(),
              static_cast<unsigned long long>(recorded.chain_head()),
              chain_verified ? "round trip verified" : "ROUND TRIP FAILED");

  // 2. Replay-verify: re-execute the journaled parameters and compare
  //    every event.
  ReplayVerifier verifier(&*loaded);
  CampaignRunOptions run_verify = RunOptionsFromMeta(*loaded);
  run_verify.sink = &verifier;
  StatusOr<CampaignSummary> replay_summary = RunProbeCampaign(run_verify);
  if (!replay_summary.ok()) {
    std::fprintf(stderr, "%s\n", replay_summary.status().ToString().c_str());
    return 2;
  }
  verifier.Finish();
  std::printf("replay: %zu/%zu events verified, %s\n", verifier.verified(),
              loaded->size(),
              verifier.diverged() ? "DIVERGED" : "zero divergences");

  // 3. Structural diff against a different seed: must find a first
  //    divergence inside the journals.
  const std::uint64_t seed_b = options.seed + 1;
  Journal recorded_b;
  JournalRecorder recorder_b(&recorded_b);
  CampaignRunOptions run_b = RunOptionsFrom(options);
  run_b.seed = seed_b;
  run_b.sink = &recorder_b;
  StatusOr<CampaignSummary> summary_b = RunProbeCampaign(run_b);
  if (!summary_b.ok()) {
    std::fprintf(stderr, "%s\n", summary_b.status().ToString().c_str());
    return 2;
  }
  Options options_b = options;
  options_b.seed = seed_b;
  StampMeta(options_b, &recorded_b);
  Status wrote_b = recorded_b.WriteFile(path_b);
  if (!wrote_b.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path_b.c_str(),
                 wrote_b.ToString().c_str());
    return 2;
  }
  DivergenceReport diff = DiffJournals(recorded, recorded_b);
  std::printf("diff: seeds %llu vs %llu %s at record %zu\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(seed_b),
              diff.diverged ? "diverge" : "DID NOT DIVERGE", diff.index);

  // 4. Perturbation: flip one journaled decision mid-stream (the chain is
  //    recomputed, so the journal stays self-consistent — this models a run
  //    that decided differently, not a corrupted file) and prove the
  //    verifier halts at exactly that event.
  const std::size_t perturb_index = loaded->size() / 2;
  loaded->TamperForTest(perturb_index, 0xdecafbadULL);
  ReplayVerifier perturb_verifier(&*loaded);
  CampaignRunOptions run_perturb = RunOptionsFromMeta(*loaded);
  run_perturb.sink = &perturb_verifier;
  StatusOr<CampaignSummary> perturb_summary = RunProbeCampaign(run_perturb);
  if (!perturb_summary.ok()) {
    std::fprintf(stderr, "%s\n", perturb_summary.status().ToString().c_str());
    return 2;
  }
  perturb_verifier.Finish();
  const bool perturb_caught =
      perturb_verifier.diverged() &&
      perturb_verifier.report().index == perturb_index;
  std::printf("perturb: planted at %zu, %s at %zu\n", perturb_index,
              perturb_verifier.diverged() ? "caught" : "NOT CAUGHT",
              perturb_verifier.report().index);

  metrics.GetGauge("replay.seed")->Set(static_cast<double>(options.seed));
  metrics.GetGauge("replay.records")
      ->Set(static_cast<double>(recorded.size()));
  metrics.GetGauge("replay.journal_bytes")
      ->Set(static_cast<double>(FileBytes(path_a)));
  metrics.GetGauge("replay.chain_verified")->Set(chain_verified ? 1.0 : 0.0);
  metrics.GetGauge("replay.replay_divergences")
      ->Set(verifier.diverged() ? 1.0 : 0.0);
  metrics.GetGauge("replay.replay_verified")
      ->Set(static_cast<double>(verifier.verified()));
  metrics.GetGauge("replay.diff_seed_b")->Set(static_cast<double>(seed_b));
  metrics.GetGauge("replay.diff_diverged")->Set(diff.diverged ? 1.0 : 0.0);
  metrics.GetGauge("replay.diff_index")
      ->Set(static_cast<double>(diff.index));
  metrics.GetGauge("replay.perturb_index")
      ->Set(static_cast<double>(perturb_index));
  metrics.GetGauge("replay.perturb_caught")->Set(perturb_caught ? 1.0 : 0.0);
  metrics.GetGauge("replay.perturb_caught_index")
      ->Set(static_cast<double>(perturb_verifier.report().index));

  Status status = metrics.WriteJsonFile(options.out, "xoar_replay");
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", options.out.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  std::printf("selftest report -> %s\n", options.out.c_str());

  const bool ok = chain_verified && verifier.complete() && diff.diverged &&
                  perturb_caught && summary_a->violations == 0;
  if (!ok) {
    std::fprintf(stderr, "SELFTEST FAILED\n");
    return 1;
  }
  return 0;
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s record  --journal PATH [--seed N] [--faults N]\n"
      "                  [--seconds S] [--crashes N] [--hangs N]\n"
      "                  [--box-corrupts N]\n"
      "       %s replay  --journal PATH\n"
      "       %s diff    <A> <B>\n"
      "       %s selftest [--seed N] [--out BENCH_replay.json]\n"
      "                  [--journal-dir DIR]\n",
      argv0, argv0, argv0, argv0);
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  xoar::Logger::Get().set_level(xoar::LogLevel::kError);
  if (argc < 2) {
    xoar::Usage(argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "diff") {
    if (argc != 4) {
      xoar::Usage(argv[0]);
      return 2;
    }
    return xoar::RunDiff(argv[2], argv[3]);
  }
  xoar::Options options;
  for (int i = 2; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      options.faults = std::atoi(next());
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      options.seconds = std::atof(next());
    } else if (std::strcmp(argv[i], "--crashes") == 0) {
      options.crashes = std::atoi(next());
    } else if (std::strcmp(argv[i], "--hangs") == 0) {
      options.hangs = std::atoi(next());
    } else if (std::strcmp(argv[i], "--box-corrupts") == 0) {
      options.box_corrupts = std::atoi(next());
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      options.journal = next();
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next();
    } else if (std::strcmp(argv[i], "--journal-dir") == 0) {
      options.journal_dir = next();
    } else {
      xoar::Usage(argv[0]);
      return 2;
    }
  }
  if (command == "record") {
    return xoar::RunRecord(options);
  }
  if (command == "replay") {
    return xoar::RunReplay(options);
  }
  if (command == "selftest") {
    return xoar::RunSelftest(options);
  }
  xoar::Usage(argv[0]);
  return 2;
}
