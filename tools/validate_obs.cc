// Schema checker for the observability exports, run by CTest after the
// quickstart example (see examples/CMakeLists.txt):
//
//   validate_obs <metrics.json> <trace.json>
//   validate_obs --campaign <BENCH_fault_campaign.json>
//   validate_obs --lint <xoar_lint_report.json>
//   validate_obs --flow <BENCH_analysis.json>
//   validate_obs --sim <BENCH_sim_core.json>
//   validate_obs --density <BENCH_density.json>
//   validate_obs --replay <BENCH_replay.json>
//   validate_obs --fleet <BENCH_fleet.json>
//
// The --fleet mode checks a fleet-resilience campaign report
// (bench/fleet_campaign, RESILIENCE.md "Fleet") beyond the generic BENCH
// shape: the fleet.* summary metrics must be present with sane values —
// at least two hosts, zero invariant violations, at least one completed
// migration and evacuation, at least one injected migration stream drop —
// plus the scenario cross-checks: the clean upgrade wave must have
// completed without aborting, the storm wave's health gate must have
// tripped and the fleet must have converged after the storm, rebalancing
// must not have widened the load spread, per-step wave gauges must be
// present, and p999 must dominate p99.
//
// The --replay mode checks a record/replay selftest report
// (tools/xoar_replay selftest, DEBUGGING.md) beyond the generic BENCH
// shape: the replay.* gauges must be present, the journal's hash chain
// must have verified on load, the re-executed run must have matched every
// journaled event (zero divergences, verified count == record count), the
// two-seed structural diff must have found a divergence at an index inside
// the journal, and the injected single-event perturbation must have been
// caught at exactly the index where it was planted.
//
// The --density mode checks a density-trajectory report
// (bench/ablation_density, SCALING.md) beyond the generic BENCH shape: the
// density.* summary metrics must be present, the create path must have
// performed zero O(n) domain-table scans, the top-level "sweep" array must
// be well-formed with strictly ascending domain targets, and per-domain
// control-plane bytes must stay flat — no more than 10% growth from one
// sweep point to the next (the §2.3.1 hosting-density requirement).
//
// The --sim mode checks a simulator-core bench report (bench/micro_sim_core,
// DESIGN.md §5f) beyond the generic BENCH shape: every sim_core.* gauge
// must be present and positive, and the simulator-deterministic
// ring-drain cost (sim events per block request) must stay within the
// batched-drain budget. Wall-clock throughputs are host-dependent and get
// no upper bound here.
//
// The --lint mode checks an xoar_lint JSON report (ANALYSIS.md) beyond the
// generic BENCH shape: the lint.* summary metrics must be present, every
// entry in the "findings" array must be well-formed (rule/file/line/
// message/suppressed), the blocking, warning, and suppressed counts must
// agree with the exported totals, and every suppressed finding must carry
// a non-empty justification (the suppression contract).
//
// The --flow mode checks an xoar_flow report (ANALYSIS.md "Whole-program
// flow analysis") the same way — flow.* summary metrics, well-formed
// findings with consistent blocking/warning/suppressed totals, justified
// suppressions — plus the flow-specific surface: the call-graph gauges
// must show a non-trivial graph, the side-by-side containment metrics
// (flow.containment.declared.* / .derived.*) must both be present, the
// "comm_graph" array must be well-formed, and when the report carries the
// bench timing gauge (lint_cost.full_tree_us, written only by
// bench/micro_lint) it must be positive.
//
// The --campaign mode checks a fault-campaign report (bench/fault_campaign,
// RESILIENCE.md) beyond the generic BENCH shape: the campaign.* summary
// metrics must be present with sane values — availability in [0,1], zero
// invariant violations, at least one fault injected and at least one
// absorbed by retry/backoff — and at least one per-type fault.injected.*
// counter must be non-zero. Supervision fields (RESILIENCE.md
// "Supervision") are checked too: the watchdog counters must be present,
// every corrupted recovery box must have been rejected, and the worst
// hang-detection latency must not exceed the heartbeat timeout.
//
// Checks the metrics file against the BENCH_*.json family shape (top-level
// "context" + "benchmarks" array) and the trace file against the Chrome
// trace_event format chrome://tracing actually accepts: a "traceEvents"
// array of {"name","cat","ph","ts","pid","tid"} records with ph one of
// "X" (complete span, requires "dur"), "i" (instant), or "M" (metadata).
// Also enforces the measurement-story acceptance bar: a boot trace must
// carry at least 5 distinct span categories. Exits non-zero with a message
// on the first violation.
#include <cstdio>
#include <set>
#include <string>

#include "src/obs/json.h"

namespace xoar {
namespace {

#define CHECK_OR_FAIL(cond, ...)          \
  do {                                    \
    if (!(cond)) {                        \
      std::fprintf(stderr, __VA_ARGS__);  \
      std::fprintf(stderr, "\n");         \
      return false;                       \
    }                                     \
  } while (0)

bool ValidateMetrics(const std::string& path) {
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  CHECK_OR_FAIL(doc->is_object(), "%s: top level is not an object",
                path.c_str());

  const JsonValue* context = doc->Find("context");
  CHECK_OR_FAIL(context != nullptr && context->is_object(),
                "%s: missing \"context\" object", path.c_str());
  const JsonValue* executable = context->Find("executable");
  CHECK_OR_FAIL(executable != nullptr && executable->is_string(),
                "%s: context.executable missing or not a string",
                path.c_str());
  const JsonValue* sim_time = context->Find("sim_time_ns");
  CHECK_OR_FAIL(sim_time != nullptr && sim_time->is_number(),
                "%s: context.sim_time_ns missing or not a number",
                path.c_str());

  const JsonValue* benchmarks = doc->Find("benchmarks");
  CHECK_OR_FAIL(benchmarks != nullptr && benchmarks->is_array(),
                "%s: missing \"benchmarks\" array", path.c_str());
  CHECK_OR_FAIL(!benchmarks->array().empty(),
                "%s: \"benchmarks\" array is empty — nothing was recorded",
                path.c_str());
  for (const JsonValue& entry : benchmarks->array()) {
    CHECK_OR_FAIL(entry.is_object(), "%s: benchmark entry is not an object",
                  path.c_str());
    const JsonValue* name = entry.Find("name");
    CHECK_OR_FAIL(name != nullptr && name->is_string() &&
                      !name->string().empty(),
                  "%s: benchmark entry without a \"name\"", path.c_str());
    const JsonValue* run_type = entry.Find("run_type");
    CHECK_OR_FAIL(run_type != nullptr && run_type->is_string(),
                  "%s: %s: missing \"run_type\"", path.c_str(),
                  name->string().c_str());
    const std::string& rt = run_type->string();
    CHECK_OR_FAIL(rt == "counter" || rt == "gauge" || rt == "histogram",
                  "%s: %s: unknown run_type \"%s\"", path.c_str(),
                  name->string().c_str(), rt.c_str());
  }
  std::printf("%s: OK (%zu metrics)\n", path.c_str(),
              benchmarks->array().size());
  return true;
}

bool ValidateTrace(const std::string& path) {
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  CHECK_OR_FAIL(doc->is_object(), "%s: top level is not an object",
                path.c_str());
  const JsonValue* events = doc->Find("traceEvents");
  CHECK_OR_FAIL(events != nullptr && events->is_array(),
                "%s: missing \"traceEvents\" array", path.c_str());

  std::set<std::string> span_categories;
  std::size_t spans = 0;
  for (const JsonValue& event : events->array()) {
    CHECK_OR_FAIL(event.is_object(), "%s: trace event is not an object",
                  path.c_str());
    const JsonValue* name = event.Find("name");
    CHECK_OR_FAIL(name != nullptr && name->is_string(),
                  "%s: trace event without a \"name\"", path.c_str());
    const JsonValue* ph = event.Find("ph");
    CHECK_OR_FAIL(ph != nullptr && ph->is_string(),
                  "%s: event \"%s\": missing \"ph\"", path.c_str(),
                  name->string().c_str());
    const std::string& phase = ph->string();
    CHECK_OR_FAIL(phase == "X" || phase == "i" || phase == "M",
                  "%s: event \"%s\": unsupported phase \"%s\"", path.c_str(),
                  name->string().c_str(), phase.c_str());
    const JsonValue* pid = event.Find("pid");
    CHECK_OR_FAIL(pid != nullptr && pid->is_number(),
                  "%s: event \"%s\": missing \"pid\"", path.c_str(),
                  name->string().c_str());
    if (phase == "M") {
      continue;  // metadata records carry "args", not timestamps
    }
    const JsonValue* ts = event.Find("ts");
    CHECK_OR_FAIL(ts != nullptr && ts->is_number() && ts->number() >= 0,
                  "%s: event \"%s\": missing or negative \"ts\"",
                  path.c_str(), name->string().c_str());
    const JsonValue* cat = event.Find("cat");
    CHECK_OR_FAIL(cat != nullptr && cat->is_string(),
                  "%s: event \"%s\": missing \"cat\"", path.c_str(),
                  name->string().c_str());
    if (phase == "X") {
      const JsonValue* dur = event.Find("dur");
      CHECK_OR_FAIL(dur != nullptr && dur->is_number() && dur->number() >= 0,
                    "%s: span \"%s\": missing or negative \"dur\"",
                    path.c_str(), name->string().c_str());
      ++spans;
      span_categories.insert(cat->string());
    }
  }
  CHECK_OR_FAIL(spans > 0, "%s: no \"X\" span events recorded", path.c_str());
  CHECK_OR_FAIL(span_categories.size() >= 5,
                "%s: only %zu distinct span categories (need >= 5)",
                path.c_str(), span_categories.size());
  std::printf("%s: OK (%zu events, %zu spans, %zu span categories)\n",
              path.c_str(), events->array().size(), spans,
              span_categories.size());
  return true;
}

// One row of the campaign schema table: a metric that must be present,
// with bounds on its value. max < 0 means unbounded above.
struct CampaignRule {
  const char* name;
  double min;
  double max;
};

constexpr CampaignRule kCampaignRules[] = {
    {"campaign.availability", 0.0, 1.0},
    {"campaign.invariant_violations", 0.0, 0.0},
    {"campaign.faults_injected", 1.0, -1.0},
    {"campaign.absorbed_by_retry", 1.0, -1.0},
    {"campaign.mean_recovery_ms", 0.0, -1.0},
    {"campaign.probes_issued", 1.0, -1.0},
    // Supervision summary (watchdog + recovery-box validation). Counts can
    // legitimately be zero for a campaign that injects no hangs/corruption,
    // but the fields themselves must always be exported.
    {"campaign.hangs_injected", 0.0, -1.0},
    {"campaign.box_corrupts_injected", 0.0, -1.0},
    {"campaign.boxes_rejected", 0.0, -1.0},
    {"campaign.heartbeat_timeout_ms", 0.0, -1.0},
    {"campaign.hang_detection_max_ms", 0.0, -1.0},
    {"campaign.watchdog_hangs_detected", 0.0, -1.0},
    {"campaign.watchdog_hangs_absorbed", 0.0, -1.0},
    {"campaign.watchdog_deaths_detected", 0.0, -1.0},
    {"campaign.watchdog_auto_restarts", 0.0, -1.0},
    {"campaign.watchdog_quarantines", 0.0, -1.0},
};

bool ValidateCampaign(const std::string& path) {
  // The report must be a well-formed BENCH export first.
  if (!ValidateMetrics(path)) {
    return false;
  }
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  const JsonValue* benchmarks = doc->Find("benchmarks");

  auto find_value = [&](const std::string& name) -> const JsonValue* {
    for (const JsonValue& entry : benchmarks->array()) {
      const JsonValue* n = entry.Find("name");
      if (n != nullptr && n->is_string() && n->string() == name) {
        return entry.Find("value");
      }
    }
    return nullptr;
  };

  for (const CampaignRule& rule : kCampaignRules) {
    const JsonValue* value = find_value(rule.name);
    CHECK_OR_FAIL(value != nullptr && value->is_number(),
                  "%s: missing campaign metric \"%s\"", path.c_str(),
                  rule.name);
    CHECK_OR_FAIL(value->number() >= rule.min,
                  "%s: %s = %g below minimum %g", path.c_str(), rule.name,
                  value->number(), rule.min);
    CHECK_OR_FAIL(rule.max < 0 || value->number() <= rule.max,
                  "%s: %s = %g above maximum %g", path.c_str(), rule.name,
                  value->number(), rule.max);
  }

  // At least one per-type injection counter must have fired, or the
  // campaign exercised nothing.
  double injected = 0;
  std::size_t injected_counters = 0;
  for (const JsonValue& entry : benchmarks->array()) {
    const JsonValue* n = entry.Find("name");
    if (n == nullptr || !n->is_string() ||
        n->string().rfind("fault.injected.", 0) != 0) {
      continue;
    }
    ++injected_counters;
    const JsonValue* value = entry.Find("value");
    CHECK_OR_FAIL(value != nullptr && value->is_number(),
                  "%s: %s has no numeric \"value\"", path.c_str(),
                  n->string().c_str());
    injected += value->number();
  }
  CHECK_OR_FAIL(injected_counters > 0,
                "%s: no fault.injected.* counters exported", path.c_str());
  CHECK_OR_FAIL(injected > 0,
                "%s: every fault.injected.* counter is zero", path.c_str());

  // Cross-field supervision invariants. Single-field bounds live in
  // kCampaignRules; these relate two exported values.
  auto number_of = [&](const char* name) {
    const JsonValue* value = find_value(name);
    return value != nullptr && value->is_number() ? value->number() : 0.0;
  };
  const double hangs_injected = number_of("campaign.hangs_injected");
  const double hangs_handled =
      number_of("campaign.watchdog_hangs_detected") +
      number_of("campaign.watchdog_hangs_absorbed");
  CHECK_OR_FAIL(hangs_handled == hangs_injected,
                "%s: %g hangs injected but %g detected+absorbed",
                path.c_str(), hangs_injected, hangs_handled);
  CHECK_OR_FAIL(number_of("campaign.hang_detection_max_ms") <=
                    number_of("campaign.heartbeat_timeout_ms"),
                "%s: hang detection latency %g ms exceeds heartbeat "
                "timeout %g ms",
                path.c_str(), number_of("campaign.hang_detection_max_ms"),
                number_of("campaign.heartbeat_timeout_ms"));
  CHECK_OR_FAIL(number_of("campaign.boxes_rejected") ==
                    number_of("campaign.box_corrupts_injected"),
                "%s: %g recovery boxes corrupted but %g rejected",
                path.c_str(), number_of("campaign.box_corrupts_injected"),
                number_of("campaign.boxes_rejected"));

  std::printf("%s: campaign OK (%zu fault types tracked, %g injections)\n",
              path.c_str(), injected_counters, injected);
  return true;
}

// One row of the sim-core schema table, same shape as CampaignRule.
struct SimRule {
  const char* name;
  double min;
  double max;
};

// Wall-clock throughput gauges and speedup ratios vary with the host and
// with iteration count (the smoke test runs tiny workloads), so they are
// only required to be present and positive; the ≥5x acceptance evidence is
// the committed BENCH_sim_core.json from a full run. The events-per-request
// cost of the batched ring-drain path is simulator-deterministic, so it
// gets a real upper bound: the pre-batching design paid one event per
// request on the backend alone (plus frontend timers and delivery hops);
// the drain-batched path must stay under 12 total events per request even
// with a 16-deep pipeline of 4 KiB writes.
constexpr SimRule kSimRules[] = {
    {"sim_core.schedule_fire.events_per_sec", 0.0, -1.0},
    {"sim_core.schedule_fire.baseline_events_per_sec", 0.0, -1.0},
    {"sim_core.schedule_fire.speedup", 0.0, -1.0},
    {"sim_core.schedule_cancel.ops_per_sec", 0.0, -1.0},
    {"sim_core.schedule_cancel.baseline_ops_per_sec", 0.0, -1.0},
    {"sim_core.schedule_cancel.speedup", 0.0, -1.0},
    {"sim_core.timer_churn.ops_per_sec", 0.0, -1.0},
    {"sim_core.timer_churn.baseline_ops_per_sec", 0.0, -1.0},
    {"sim_core.timer_churn.speedup", 0.0, -1.0},
    {"sim_core.ring_drain.requests_per_sec", 0.0, -1.0},
    {"sim_core.ring_drain.sim_events_per_request", 0.0, 12.0},
};

bool ValidateSimCore(const std::string& path) {
  // The report must be a well-formed BENCH export first.
  if (!ValidateMetrics(path)) {
    return false;
  }
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  const JsonValue* benchmarks = doc->Find("benchmarks");

  auto find_value = [&](const std::string& name) -> const JsonValue* {
    for (const JsonValue& entry : benchmarks->array()) {
      const JsonValue* n = entry.Find("name");
      if (n != nullptr && n->is_string() && n->string() == name) {
        return entry.Find("value");
      }
    }
    return nullptr;
  };

  for (const SimRule& rule : kSimRules) {
    const JsonValue* value = find_value(rule.name);
    CHECK_OR_FAIL(value != nullptr && value->is_number(),
                  "%s: missing sim-core metric \"%s\"", path.c_str(),
                  rule.name);
    CHECK_OR_FAIL(value->number() > rule.min,
                  "%s: %s = %g not above %g", path.c_str(), rule.name,
                  value->number(), rule.min);
    CHECK_OR_FAIL(rule.max < 0 || value->number() <= rule.max,
                  "%s: %s = %g above maximum %g", path.c_str(), rule.name,
                  value->number(), rule.max);
  }

  std::printf("%s: sim-core OK (%zu gauges checked)\n", path.c_str(),
              std::size(kSimRules));
  return true;
}

bool ValidateDensity(const std::string& path) {
  // The report must be a well-formed BENCH export first.
  if (!ValidateMetrics(path)) {
    return false;
  }
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  const JsonValue* benchmarks = doc->Find("benchmarks");

  auto find_value = [&](const std::string& name) -> const JsonValue* {
    for (const JsonValue& entry : benchmarks->array()) {
      const JsonValue* n = entry.Find("name");
      if (n != nullptr && n->is_string() && n->string() == name) {
        return entry.Find("value");
      }
    }
    return nullptr;
  };
  auto require = [&](const char* name, double min) -> bool {
    const JsonValue* value = find_value(name);
    if (value == nullptr || !value->is_number() || value->number() < min) {
      std::fprintf(stderr, "%s: missing density metric \"%s\" (>= %g)\n",
                   path.c_str(), name, min);
      return false;
    }
    return true;
  };
  if (!require("density.sweep_points", 1) ||
      !require("density.max_domains", 1) ||
      !require("density.total_created", 1) ||
      !require("xs.shard.count", 1)) {
    return false;
  }
  const JsonValue* scan_free = find_value("density.scan_free_create_path");
  CHECK_OR_FAIL(scan_free != nullptr && scan_free->is_number() &&
                    scan_free->number() == 1,
                "%s: create path performed O(n) domain-table scans "
                "(density.scan_free_create_path != 1)",
                path.c_str());

  const JsonValue* sweep = doc->Find("sweep");
  CHECK_OR_FAIL(sweep != nullptr && sweep->is_array(),
                "%s: missing \"sweep\" array", path.c_str());
  CHECK_OR_FAIL(!sweep->array().empty(), "%s: \"sweep\" array is empty",
                path.c_str());

  double prev_domains = 0;
  double prev_bytes = -1;
  for (const JsonValue& entry : sweep->array()) {
    CHECK_OR_FAIL(entry.is_object(), "%s: sweep entry is not an object",
                  path.c_str());
    auto field = [&](const char* name) -> const JsonValue* {
      const JsonValue* v = entry.Find(name);
      return v != nullptr && v->is_number() ? v : nullptr;
    };
    const JsonValue* domains = field("domains");
    CHECK_OR_FAIL(domains != nullptr && domains->number() >= 1,
                  "%s: sweep entry without a positive \"domains\"",
                  path.c_str());
    CHECK_OR_FAIL(domains->number() > prev_domains,
                  "%s: sweep domains not strictly ascending (%g after %g)",
                  path.c_str(), domains->number(), prev_domains);
    prev_domains = domains->number();
    const JsonValue* created = field("created");
    CHECK_OR_FAIL(created != nullptr && created->number() >= 1,
                  "%s: sweep@%g: nothing created", path.c_str(),
                  domains->number());
    const JsonValue* shard_count = field("shard_count");
    CHECK_OR_FAIL(shard_count != nullptr && shard_count->number() >= 1,
                  "%s: sweep@%g: missing \"shard_count\"", path.c_str(),
                  domains->number());
    const JsonValue* ops = field("create_ops_per_sec");
    CHECK_OR_FAIL(ops != nullptr && ops->number() > 0,
                  "%s: sweep@%g: missing \"create_ops_per_sec\"",
                  path.c_str(), domains->number());
    const JsonValue* scans = field("create_path_scans");
    CHECK_OR_FAIL(scans != nullptr && scans->number() == 0,
                  "%s: sweep@%g: %g O(n) domain-table scans on the create "
                  "path",
                  path.c_str(), domains->number(),
                  scans == nullptr ? -1 : scans->number());
    const JsonValue* bytes = field("per_domain_control_bytes");
    CHECK_OR_FAIL(bytes != nullptr && bytes->number() > 0,
                  "%s: sweep@%g: missing \"per_domain_control_bytes\"",
                  path.c_str(), domains->number());
    // Flatness: <= 10% growth per sweep step (§2.3.1 via SCALING.md).
    CHECK_OR_FAIL(prev_bytes < 0 || bytes->number() <= prev_bytes * 1.10,
                  "%s: per-domain control bytes grew %g -> %g (> 10%%)",
                  path.c_str(), prev_bytes, bytes->number());
    prev_bytes = bytes->number();
  }

  std::printf("%s: density OK (%zu sweep points, scan-free create path)\n",
              path.c_str(), sweep->array().size());
  return true;
}

// One row of the replay-selftest schema table, same shape as CampaignRule.
struct ReplayRule {
  const char* name;
  double min;
  double max;
};

constexpr ReplayRule kReplayRules[] = {
    {"replay.seed", 0.0, -1.0},
    {"replay.records", 1.0, -1.0},
    {"replay.journal_bytes", 1.0, -1.0},
    // Hard invariants of a passing selftest: the chain verified, the
    // replay matched everything, the diff and the planted perturbation
    // were both caught.
    {"replay.chain_verified", 1.0, 1.0},
    {"replay.replay_divergences", 0.0, 0.0},
    {"replay.replay_verified", 1.0, -1.0},
    {"replay.diff_seed_b", 0.0, -1.0},
    {"replay.diff_diverged", 1.0, 1.0},
    {"replay.diff_index", 0.0, -1.0},
    {"replay.perturb_index", 0.0, -1.0},
    {"replay.perturb_caught", 1.0, 1.0},
    {"replay.perturb_caught_index", 0.0, -1.0},
};

bool ValidateReplay(const std::string& path) {
  // The report must be a well-formed BENCH export first.
  if (!ValidateMetrics(path)) {
    return false;
  }
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  const JsonValue* benchmarks = doc->Find("benchmarks");

  auto find_value = [&](const std::string& name) -> const JsonValue* {
    for (const JsonValue& entry : benchmarks->array()) {
      const JsonValue* n = entry.Find("name");
      if (n != nullptr && n->is_string() && n->string() == name) {
        return entry.Find("value");
      }
    }
    return nullptr;
  };

  for (const ReplayRule& rule : kReplayRules) {
    const JsonValue* value = find_value(rule.name);
    CHECK_OR_FAIL(value != nullptr && value->is_number(),
                  "%s: missing replay metric \"%s\"", path.c_str(),
                  rule.name);
    CHECK_OR_FAIL(value->number() >= rule.min,
                  "%s: %s = %g below minimum %g", path.c_str(), rule.name,
                  value->number(), rule.min);
    CHECK_OR_FAIL(rule.max < 0 || value->number() <= rule.max,
                  "%s: %s = %g above maximum %g", path.c_str(), rule.name,
                  value->number(), rule.max);
  }

  // Cross-field invariants: the replay verified the whole journal, the
  // perturbation was caught exactly where it was planted, and the diff
  // divergence lies inside the journal.
  auto number_of = [&](const char* name) {
    const JsonValue* value = find_value(name);
    return value != nullptr && value->is_number() ? value->number() : 0.0;
  };
  CHECK_OR_FAIL(number_of("replay.replay_verified") ==
                    number_of("replay.records"),
                "%s: replay verified %g of %g journaled events",
                path.c_str(), number_of("replay.replay_verified"),
                number_of("replay.records"));
  CHECK_OR_FAIL(number_of("replay.perturb_caught_index") ==
                    number_of("replay.perturb_index"),
                "%s: perturbation planted at %g but caught at %g",
                path.c_str(), number_of("replay.perturb_index"),
                number_of("replay.perturb_caught_index"));
  CHECK_OR_FAIL(number_of("replay.diff_index") <=
                    number_of("replay.records"),
                "%s: diff divergence index %g past journal end %g",
                path.c_str(), number_of("replay.diff_index"),
                number_of("replay.records"));

  std::printf("%s: replay OK (%g records, chain verified, perturbation "
              "caught at %g)\n",
              path.c_str(), number_of("replay.records"),
              number_of("replay.perturb_caught_index"));
  return true;
}

// One row of the fleet schema table, same shape as CampaignRule.
struct FleetRule {
  const char* name;
  double min;
  double max;
};

constexpr FleetRule kFleetRules[] = {
    {"fleet.seed", 0.0, -1.0},
    {"fleet.hosts", 2.0, -1.0},
    {"fleet.guests_placed", 1.0, -1.0},
    {"fleet.invariant_violations", 0.0, 0.0},
    {"fleet.admission.accepted", 1.0, -1.0},
    {"fleet.admission.shed", 1.0, -1.0},  // the whale probe must shed
    {"fleet.migrations.attempted", 1.0, -1.0},
    {"fleet.migrations.completed", 1.0, -1.0},
    {"fleet.evacuations.started", 1.0, -1.0},
    {"fleet.evac.moved", 1.0, -1.0},
    {"fleet.evac.failed", 0.0, 0.0},
    {"fleet.faults.migration_stream_drops", 1.0, -1.0},
    {"fleet.controller.supervised", 1.0, 1.0},
    {"fleet.workload.p99_ms", 0.001, -1.0},
    {"fleet.workload.p999_ms", 0.001, -1.0},
    {"fleet.wave.clean.steps", 1.0, -1.0},
    {"fleet.wave.clean.aborted", 0.0, 0.0},
    {"fleet.wave.storm.aborted", 1.0, 1.0},
    {"fleet.wave.storm.converged", 1.0, 1.0},
    {"fleet.rebalance.spread_before", 0.0, -1.0},
    {"fleet.rebalance.spread_after", 0.0, -1.0},
};

bool ValidateFleet(const std::string& path) {
  // The report must be a well-formed BENCH export first.
  if (!ValidateMetrics(path)) {
    return false;
  }
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  const JsonValue* benchmarks = doc->Find("benchmarks");

  auto find_value = [&](const std::string& name) -> const JsonValue* {
    for (const JsonValue& entry : benchmarks->array()) {
      const JsonValue* n = entry.Find("name");
      if (n != nullptr && n->is_string() && n->string() == name) {
        return entry.Find("value");
      }
    }
    return nullptr;
  };

  for (const FleetRule& rule : kFleetRules) {
    const JsonValue* value = find_value(rule.name);
    CHECK_OR_FAIL(value != nullptr && value->is_number(),
                  "%s: missing fleet metric \"%s\"", path.c_str(), rule.name);
    CHECK_OR_FAIL(value->number() >= rule.min,
                  "%s: %s = %g below minimum %g", path.c_str(), rule.name,
                  value->number(), rule.min);
    CHECK_OR_FAIL(rule.max < 0 || value->number() <= rule.max,
                  "%s: %s = %g above maximum %g", path.c_str(), rule.name,
                  value->number(), rule.max);
  }

  auto number_of = [&](const char* name) {
    const JsonValue* value = find_value(name);
    return value != nullptr && value->is_number() ? value->number() : 0.0;
  };

  // Cross-field scenario invariants.
  CHECK_OR_FAIL(number_of("fleet.rebalance.spread_after") <=
                    number_of("fleet.rebalance.spread_before"),
                "%s: rebalance widened the spread (%g -> %g)", path.c_str(),
                number_of("fleet.rebalance.spread_before"),
                number_of("fleet.rebalance.spread_after"));
  CHECK_OR_FAIL(number_of("fleet.workload.p999_ms") >=
                    number_of("fleet.workload.p99_ms"),
                "%s: p999 %g ms below p99 %g ms", path.c_str(),
                number_of("fleet.workload.p999_ms"),
                number_of("fleet.workload.p99_ms"));
  CHECK_OR_FAIL(number_of("fleet.migrations.completed") <=
                    number_of("fleet.migrations.attempted"),
                "%s: %g migrations completed but only %g attempted",
                path.c_str(), number_of("fleet.migrations.completed"),
                number_of("fleet.migrations.attempted"));

  // Per-step wave health gauges: the waves must have exported at least one
  // per-step p99 reading each.
  std::size_t wave_step_gauges = 0;
  for (const JsonValue& entry : benchmarks->array()) {
    const JsonValue* n = entry.Find("name");
    if (n != nullptr && n->is_string() &&
        n->string().rfind("fleet.wave.", 0) == 0 &&
        n->string().find(".step.") != std::string::npos) {
      ++wave_step_gauges;
    }
  }
  CHECK_OR_FAIL(wave_step_gauges > 0,
                "%s: no per-step fleet.wave.*.step.* gauges exported",
                path.c_str());

  std::printf("%s: fleet OK (%g hosts, %g guests, %g migrations, %zu "
              "wave-step gauges)\n",
              path.c_str(), number_of("fleet.hosts"),
              number_of("fleet.guests_placed"),
              number_of("fleet.migrations.completed"), wave_step_gauges);
  return true;
}

// Shared finding-array checker for the --lint and --flow modes: every
// entry must be well-formed, suppressed findings must carry a
// justification, and the blocking/suppressed/warning counts must agree
// with the exported `<prefix>.findings.total` / `.suppressed.total` /
// `.warnings.total` metrics. The "warning" bool is optional per finding
// (absent means blocking), so older reports stay valid.
bool ValidateFindingsArray(const std::string& path, const JsonValue& doc,
                           const JsonValue* benchmarks,
                           const std::string& prefix, std::size_t* blocking,
                           std::size_t* suppressed_out) {
  auto number_of = [&](const std::string& name, double* out) -> bool {
    for (const JsonValue& entry : benchmarks->array()) {
      const JsonValue* n = entry.Find("name");
      if (n == nullptr || !n->is_string() || n->string() != name) {
        continue;
      }
      const JsonValue* value = entry.Find("value");
      if (value == nullptr || !value->is_number()) {
        return false;
      }
      *out = value->number();
      return true;
    }
    return false;
  };

  double findings_total = 0;
  double suppressed_total = 0;
  double warnings_total = 0;
  CHECK_OR_FAIL(number_of(prefix + ".findings.total", &findings_total),
                "%s: missing %s.findings.total counter", path.c_str(),
                prefix.c_str());
  CHECK_OR_FAIL(number_of(prefix + ".suppressed.total", &suppressed_total),
                "%s: missing %s.suppressed.total counter", path.c_str(),
                prefix.c_str());
  CHECK_OR_FAIL(number_of(prefix + ".warnings.total", &warnings_total),
                "%s: missing %s.warnings.total counter", path.c_str(),
                prefix.c_str());

  const JsonValue* findings = doc.Find("findings");
  CHECK_OR_FAIL(findings != nullptr && findings->is_array(),
                "%s: missing \"findings\" array", path.c_str());
  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  std::size_t warnings = 0;
  for (const JsonValue& finding : findings->array()) {
    CHECK_OR_FAIL(finding.is_object(), "%s: finding is not an object",
                  path.c_str());
    const JsonValue* rule = finding.Find("rule");
    CHECK_OR_FAIL(rule != nullptr && rule->is_string() &&
                      !rule->string().empty(),
                  "%s: finding without a \"rule\"", path.c_str());
    const JsonValue* file = finding.Find("file");
    CHECK_OR_FAIL(file != nullptr && file->is_string() &&
                      !file->string().empty(),
                  "%s: [%s] finding without a \"file\"", path.c_str(),
                  rule->string().c_str());
    const JsonValue* line = finding.Find("line");
    CHECK_OR_FAIL(line != nullptr && line->is_number() &&
                      line->number() >= 0,
                  "%s: %s: missing or negative \"line\"", path.c_str(),
                  file->string().c_str());
    const JsonValue* message = finding.Find("message");
    CHECK_OR_FAIL(message != nullptr && message->is_string() &&
                      !message->string().empty(),
                  "%s: %s: finding without a \"message\"", path.c_str(),
                  file->string().c_str());
    const JsonValue* is_suppressed = finding.Find("suppressed");
    CHECK_OR_FAIL(is_suppressed != nullptr && is_suppressed->is_bool(),
                  "%s: %s: missing \"suppressed\" bool", path.c_str(),
                  file->string().c_str());
    const JsonValue* is_warning = finding.Find("warning");
    CHECK_OR_FAIL(is_warning == nullptr || is_warning->is_bool(),
                  "%s: %s: \"warning\" is not a bool", path.c_str(),
                  file->string().c_str());
    if (is_suppressed->bool_value()) {
      ++suppressed;
      const JsonValue* justification = finding.Find("justification");
      CHECK_OR_FAIL(justification != nullptr && justification->is_string() &&
                        !justification->string().empty(),
                    "%s: %s:%g: suppressed finding without a justification",
                    path.c_str(), file->string().c_str(), line->number());
    } else if (is_warning != nullptr && is_warning->bool_value()) {
      ++warnings;
    } else {
      ++unsuppressed;
    }
  }
  CHECK_OR_FAIL(static_cast<double>(unsuppressed) == findings_total,
                "%s: %zu blocking findings but %s.findings.total = %g",
                path.c_str(), unsuppressed, prefix.c_str(), findings_total);
  CHECK_OR_FAIL(static_cast<double>(suppressed) == suppressed_total,
                "%s: %zu suppressed findings but %s.suppressed.total = %g",
                path.c_str(), suppressed, prefix.c_str(), suppressed_total);
  CHECK_OR_FAIL(static_cast<double>(warnings) == warnings_total,
                "%s: %zu warning findings but %s.warnings.total = %g",
                path.c_str(), warnings, prefix.c_str(), warnings_total);
  *blocking = unsuppressed;
  *suppressed_out = suppressed;
  return true;
}

bool ValidateLint(const std::string& path) {
  // The report must be a well-formed BENCH export first (context +
  // benchmarks with known run_types).
  if (!ValidateMetrics(path)) {
    return false;
  }
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  const JsonValue* benchmarks = doc->Find("benchmarks");

  auto number_of = [&](const std::string& name,
                       double* out) -> bool {
    for (const JsonValue& entry : benchmarks->array()) {
      const JsonValue* n = entry.Find("name");
      if (n == nullptr || !n->is_string() || n->string() != name) {
        continue;
      }
      const JsonValue* value = entry.Find("value");
      if (value == nullptr || !value->is_number()) {
        return false;
      }
      *out = value->number();
      return true;
    }
    return false;
  };

  double files_scanned = 0;
  CHECK_OR_FAIL(number_of("lint.files_scanned", &files_scanned),
                "%s: missing lint.files_scanned gauge", path.c_str());
  CHECK_OR_FAIL(files_scanned > 0,
                "%s: lint.files_scanned is zero — the scan saw no sources",
                path.c_str());
  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  if (!ValidateFindingsArray(path, *doc, benchmarks, "lint", &unsuppressed,
                             &suppressed)) {
    return false;
  }

  std::printf("%s: lint OK (%g files, %zu blocking, %zu suppressed)\n",
              path.c_str(), files_scanned, unsuppressed, suppressed);
  return true;
}

bool ValidateFlow(const std::string& path) {
  if (!ValidateMetrics(path)) {
    return false;
  }
  StatusOr<JsonValue> doc = ParseJsonFile(path);
  CHECK_OR_FAIL(doc.ok(), "%s: parse failed: %s", path.c_str(),
                doc.status().ToString().c_str());
  const JsonValue* benchmarks = doc->Find("benchmarks");

  auto find_number = [&](const std::string& name, double* out) -> bool {
    for (const JsonValue& entry : benchmarks->array()) {
      const JsonValue* n = entry.Find("name");
      if (n == nullptr || !n->is_string() || n->string() != name) {
        continue;
      }
      const JsonValue* value = entry.Find("value");
      if (value == nullptr || !value->is_number()) {
        return false;
      }
      *out = value->number();
      return true;
    }
    return false;
  };

  double files_scanned = 0;
  double functions = 0;
  double call_edges = 0;
  double widened = 0;
  CHECK_OR_FAIL(find_number("flow.files_scanned", &files_scanned),
                "%s: missing flow.files_scanned gauge", path.c_str());
  CHECK_OR_FAIL(files_scanned > 0,
                "%s: flow.files_scanned is zero — the scan saw no sources",
                path.c_str());
  CHECK_OR_FAIL(find_number("flow.functions", &functions),
                "%s: missing flow.functions gauge", path.c_str());
  CHECK_OR_FAIL(functions > 0,
                "%s: flow.functions is zero — no definitions recognized",
                path.c_str());
  CHECK_OR_FAIL(find_number("flow.call_edges", &call_edges),
                "%s: missing flow.call_edges gauge", path.c_str());
  CHECK_OR_FAIL(find_number("flow.widened_functions", &widened),
                "%s: missing flow.widened_functions gauge", path.c_str());

  // Side-by-side containment: both recomputations must be exported.
  for (const char* label : {"declared", "derived"}) {
    for (const char* field :
         {"nodes", "edges", "attack_surface", "max_reach",
          "mean_reach_milli"}) {
      const std::string name =
          std::string("flow.containment.") + label + "." + field;
      double value = 0;
      CHECK_OR_FAIL(find_number(name, &value), "%s: missing %s gauge",
                    path.c_str(), name.c_str());
    }
  }

  // The bench timing gauge is optional (only bench/micro_lint writes it),
  // but when present it must be a real measurement.
  double full_tree_us = 0;
  if (find_number("lint_cost.full_tree_us", &full_tree_us)) {
    CHECK_OR_FAIL(full_tree_us > 0,
                  "%s: lint_cost.full_tree_us present but not positive",
                  path.c_str());
  }

  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  if (!ValidateFindingsArray(path, *doc, benchmarks, "flow", &unsuppressed,
                             &suppressed)) {
    return false;
  }

  const JsonValue* comm = doc->Find("comm_graph");
  CHECK_OR_FAIL(comm != nullptr && comm->is_array(),
                "%s: missing \"comm_graph\" array", path.c_str());
  for (const JsonValue& edge : comm->array()) {
    CHECK_OR_FAIL(edge.is_object(), "%s: comm_graph entry is not an object",
                  path.c_str());
    for (const char* field : {"from", "to", "kind"}) {
      const JsonValue* value = edge.Find(field);
      CHECK_OR_FAIL(value != nullptr && value->is_string() &&
                        !value->string().empty(),
                    "%s: comm_graph entry without \"%s\"", path.c_str(),
                    field);
    }
    const JsonValue* line = edge.Find("witness_line");
    CHECK_OR_FAIL(line != nullptr && line->is_number() && line->number() >= 0,
                  "%s: comm_graph entry with bad witness_line", path.c_str());
  }

  std::printf(
      "%s: flow OK (%g files, %g functions, %g edges, %zu comm edges, "
      "%zu blocking, %zu suppressed)\n",
      path.c_str(), files_scanned, functions, call_edges,
      comm->array().size(), unsuppressed, suppressed);
  return true;
}

}  // namespace
}  // namespace xoar

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--campaign") {
    return xoar::ValidateCampaign(argv[2]) ? 0 : 1;
  }
  if (argc == 3 && std::string(argv[1]) == "--lint") {
    return xoar::ValidateLint(argv[2]) ? 0 : 1;
  }
  if (argc == 3 && std::string(argv[1]) == "--flow") {
    return xoar::ValidateFlow(argv[2]) ? 0 : 1;
  }
  if (argc == 3 && std::string(argv[1]) == "--sim") {
    return xoar::ValidateSimCore(argv[2]) ? 0 : 1;
  }
  if (argc == 3 && std::string(argv[1]) == "--density") {
    return xoar::ValidateDensity(argv[2]) ? 0 : 1;
  }
  if (argc == 3 && std::string(argv[1]) == "--replay") {
    return xoar::ValidateReplay(argv[2]) ? 0 : 1;
  }
  if (argc == 3 && std::string(argv[1]) == "--fleet") {
    return xoar::ValidateFleet(argv[2]) ? 0 : 1;
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s <metrics.json> <trace.json>\n"
                 "       %s --campaign <BENCH_fault_campaign.json>\n"
                 "       %s --lint <xoar_lint_report.json>\n"
                 "       %s --flow <BENCH_analysis.json>\n"
                 "       %s --sim <BENCH_sim_core.json>\n"
                 "       %s --density <BENCH_density.json>\n"
                 "       %s --replay <BENCH_replay.json>\n"
                 "       %s --fleet <BENCH_fleet.json>\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0],
                 argv[0], argv[0]);
    return 2;
  }
  if (!xoar::ValidateMetrics(argv[1])) {
    return 1;
  }
  if (!xoar::ValidateTrace(argv[2])) {
    return 1;
  }
  return 0;
}
