// Live migration between two hosts (§2.1.1): the interposition-dependent
// enterprise feature Xoar preserves and the from-scratch alternatives of
// §2.3.1 lose. Migrates a guest from a legacy monolithic host onto a Xoar
// host (the drop-in upgrade path, §8), then between Xoar hosts under
// different memory-dirtying loads.
#include <cstdio>

#include "src/base/log.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/migration.h"
#include "src/ctl/monolithic_platform.h"

using namespace xoar;

namespace {

void Report(const char* label, const StatusOr<MigrationResult>& result) {
  if (!result.ok()) {
    std::printf("%-40s FAILED: %s\n", label, result.status().ToString().c_str());
    return;
  }
  std::printf("%-40s %2d rounds %s  total %6.2fs  downtime %7.1fms  sent "
              "%5.0f MB\n",
              label, result->precopy_rounds,
              result->converged ? "(converged)" : "(forced)   ",
              ToSeconds(result->total_time),
              ToMilliseconds(result->downtime),
              static_cast<double>(result->bytes_transferred) / 1e6);
}

}  // namespace

int main() {
  Logger::Get().set_level(LogLevel::kWarning);

  // --- Act 1: evacuate a legacy Dom0 host onto a fresh Xoar host. ---
  MonolithicPlatform legacy;
  XoarPlatform modern;
  if (!legacy.Boot().ok() || !modern.Boot().ok()) {
    return 1;
  }
  DomainId vm = *legacy.CreateGuest(GuestSpec{.name = "prod-db"});
  std::printf("prod-db running on '%s'; evacuating to '%s'...\n\n",
              std::string(legacy.name()).c_str(),
              std::string(modern.name()).c_str());
  auto lift = LiveMigrate(&legacy, vm, &modern, MigrationParams{});
  Report("Dom0 -> Xoar (idle guest)", lift);
  if (lift.ok()) {
    std::printf("  prod-db is now dom%u on Xoar; the legacy host can be "
                "retired.\n\n",
                lift->destination_guest.value());
  }

  // --- Act 2: Xoar -> Xoar under increasing write pressure. ---
  std::printf("Xoar -> Xoar, 1 GiB guest, varying page-dirty rates:\n");
  for (double dirty_mbps : {10.0, 60.0, 120.0}) {
    XoarPlatform source, destination;
    if (!source.Boot().ok() || !destination.Boot().ok()) {
      return 1;
    }
    DomainId guest =
        *source.CreateGuest(GuestSpec{.name = "worker", .memory_mb = 1024});
    MigrationParams params;
    params.dirty_rate_bytes_per_sec = dirty_mbps * 1e6;
    char label[64];
    std::snprintf(label, sizeof(label), "  dirtying %3.0f MB/s", dirty_mbps);
    Report(label, LiveMigrate(&source, guest, &destination, params));
  }

  std::printf(
      "\nBelow the GbE stream rate pre-copy converges in a handful of rounds "
      "with\ntens-of-milliseconds downtime; a guest dirtying faster than the "
      "link forces\nstop-and-copy. The migration stream is just another flow "
      "through NetBack —\ndisaggregation did not cost the feature.\n");
  return 0;
}
