// Live driver-domain microreboots under load (§3.3, Fig 6.3).
//
// Streams a 1 GB transfer into a guest while NetBack restarts on a timer,
// printing a per-second throughput trace so the outage/recovery cycle is
// visible: the device downtime, the TCP retransmission backoff, and the
// slow-start ramp after each reconnect. Then compares the slow and fast
// recovery grades.
#include <cstdio>
#include <vector>

#include "src/base/log.h"
#include "src/core/xoar_platform.h"
#include "src/net/tcp.h"

using namespace xoar;

namespace {

// Runs a transfer with a per-second throughput probe.
std::vector<double> TraceTransfer(XoarPlatform& platform, DomainId guest,
                                  std::uint64_t bytes) {
  std::vector<double> samples;
  bool done = false;
  std::uint64_t last_bytes = 0;

  TcpFlow flow(
      &platform.sim(), TcpParams{}, bytes,
      [&platform, guest] {
        NetBack* nb = platform.netback_of(guest);
        return nb != nullptr && nb->IsVifConnected(guest);
      },
      [&platform, guest] { return platform.EffectiveNetRateBps(guest); },
      [&done](const TcpFlow::Result&) { done = true; });

  PeriodicTimer sampler(&platform.sim(), kSecond, [&] {
    const std::uint64_t now_bytes = flow.bytes_delivered();
    samples.push_back(static_cast<double>(now_bytes - last_bytes) / 1e6);
    last_bytes = now_bytes;
  });
  sampler.Start();
  flow.Start();
  while (!done && platform.sim().Step()) {
  }
  sampler.Stop();
  return samples;
}

void PrintTrace(const char* label, const std::vector<double>& samples) {
  std::printf("%s\n", label);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::printf("  t=%2zus %6.1f MB/s |", i + 1, samples[i]);
    const int bar = static_cast<int>(samples[i] / 2.5);
    for (int j = 0; j < bar; ++j) {
      std::printf("#");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Logger::Get().set_level(LogLevel::kWarning);

  XoarPlatform platform;
  if (!platform.Boot().ok()) {
    return 1;
  }
  DomainId guest = *platform.CreateGuest(GuestSpec{.name = "streamer"});

  std::printf("=== no restarts ===\n");
  PrintTrace("baseline:", TraceTransfer(platform, guest, 500ull * 1000 * 1000));

  std::printf("\n=== NetBack restarting every 3 s, slow recovery (260 ms "
              "device downtime + XenStore renegotiation) ===\n");
  (void)platform.EnableNetBackRestarts(FromSeconds(3), /*fast=*/false);
  PrintTrace("slow:", TraceTransfer(platform, guest, 500ull * 1000 * 1000));
  (void)platform.DisableNetBackRestarts();

  std::printf("\n=== NetBack restarting every 3 s, fast recovery (recovery "
              "box persists device config, 140 ms) ===\n");
  (void)platform.EnableNetBackRestarts(FromSeconds(3), /*fast=*/true);
  PrintTrace("fast:", TraceTransfer(platform, guest, 500ull * 1000 * 1000));
  (void)platform.DisableNetBackRestarts();

  std::printf("\nNetBack restarted %d times in total; every cycle "
              "renegotiated via XenStore\nwatch events, and the guest's "
              "frontend retransmitted whatever was in flight.\n",
              platform.restarts().RestartCount("NetBack"));
  return 0;
}
