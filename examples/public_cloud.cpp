// Public-cloud scenario (§3.4.1): a densely packed multi-tenant host.
//
// Three tenants share one physical machine. Tenants A and B accept the
// default sharing configuration; tenant C pays for isolation by tagging its
// VMs with a constraint group (§3.2.1), so Xoar refuses to co-locate C's
// I/O on shards serving other tenants. A NetBack compromise is then
// detected, and the audit log answers the §3.2.2 question: who must be
// notified?
#include <cstdio>

#include "src/base/log.h"
#include "src/core/xoar_platform.h"
#include "src/security/containment.h"

using namespace xoar;

int main() {
  Logger::Get().set_level(LogLevel::kWarning);

  XoarPlatform platform;
  if (!platform.Boot().ok()) {
    return 1;
  }
  std::printf("public cloud host up (%s)\n\n",
              std::string(platform.name()).c_str());

  // Tenants A and B: default sharing (they share NetBack/BlkBack).
  DomainId a1 = *platform.CreateGuest(GuestSpec{.name = "tenantA-web"});
  DomainId a2 = *platform.CreateGuest(GuestSpec{.name = "tenantA-db"});
  DomainId b1 = *platform.CreateGuest(GuestSpec{.name = "tenantB-api"});
  std::printf("tenant A: dom%u dom%u; tenant B: dom%u — sharing the default "
              "driver domains\n",
              a1.value(), a2.value(), b1.value());

  // Tenant C insists on not sharing I/O paths with strangers. With only one
  // NetBack on the host, Xoar refuses the build outright rather than
  // silently co-locating (§3.2.1: "VM creation fails").
  auto c1 = platform.CreateGuest(
      GuestSpec{.name = "tenantC-secure", .constraint_tag = "tenant-c"});
  std::printf("tenant C with constraint tag 'tenant-c': %s\n",
              c1.ok() ? "created (unexpected!)"
                      : c1.status().ToString().c_str());

  // The operator can give tenant C disk-only service (no shared NetBack):
  auto c2 = platform.CreateGuest(GuestSpec{.name = "tenantC-batch",
                                           .memory_mb = 512,
                                           .constraint_tag = "tenant-c",
                                           .with_net = false,
                                           .with_disk = false});
  std::printf("tenant C, no shared I/O at all: %s\n\n",
              c2.ok() ? "created" : c2.status().ToString().c_str());

  // --- Incident: the NetBack shard is found compromised. ---
  const DomainId netback = platform.shard_domain(ShardClass::kNetBack);
  const SimTime detected_at = platform.sim().Now();
  AuditEvent marker;
  marker.time = detected_at;
  marker.kind = AuditEventKind::kCompromise;
  marker.object = netback;
  marker.detail = "IDS flagged NetBack";
  platform.audit().Record(std::move(marker));

  std::printf("NetBack (dom%u) compromise detected at t=%.1fs\n",
              netback.value(), ToSeconds(detected_at));

  // What can the attacker actually do from there? Computed from the live
  // privilege state, not from assumptions:
  CompromiseAnalyzer analyzer(&platform, /*deprivilege=*/true);
  for (const auto& vuln : GuestOriginatedVulnerabilities()) {
    if (vuln.vector == AttackVector::kVirtualizedDevice &&
        vuln.effect == AttackEffect::kCodeExecution) {
      auto result = analyzer.Analyze(a1, vuln);
      if (result.ok()) {
        std::printf("  attacker reach (%s): %s\n", vuln.id.c_str(),
                    result->Summary().c_str());
      }
      break;
    }
  }

  // Forensics: every guest that relied on that NetBack during the exposure
  // window gets a notification (§3.2.2).
  auto exposed = platform.audit().GuestsExposedToShard(netback, 0, detected_at);
  std::printf("  customers to notify (exposed to dom%u):", netback.value());
  for (DomainId guest : exposed) {
    std::printf(" dom%u", guest.value());
  }
  std::printf("\n");

  // Remediation: microreboot NetBack to a known good state and record the
  // driver upgrade for future release-scoped queries.
  (void)platform.restarts().RestartNow("NetBack", /*fast=*/false);
  platform.Settle(kSecond);
  AuditEvent upgrade;
  upgrade.time = platform.sim().Now();
  upgrade.kind = AuditEventKind::kShardUpgraded;
  upgrade.object = netback;
  upgrade.detail = "netback-patched-v2";
  platform.audit().Record(std::move(upgrade));
  std::printf("  NetBack microrebooted to a clean image and upgraded "
              "in place (downtime %.0f ms)\n",
              ToMilliseconds(platform.restarts().LastDowntime("NetBack")));

  std::printf("\naudit log integrity: %s (%zu records)\n",
              platform.audit().FirstCorruptedRecord() == -1 ? "OK" : "BROKEN",
              platform.audit().size());
  return 0;
}
