// Private-cloud scenario (§3.4.2): coarse-grained resource partitioning.
//
// Two departments each receive a personal Toolstack shard with the driver
// domains delegated to it and a hard memory quota. Each administers its own
// guests; the hypervisor's parent-toolstack audit (§5.6) blocks one
// department from touching the other's VMs, and the quota caps what each
// can consume.
#include <cstdio>

#include "src/base/log.h"
#include "src/core/xoar_platform.h"

using namespace xoar;

int main() {
  Logger::Get().set_level(LogLevel::kWarning);

  XoarPlatform::Config config;
  config.num_toolstacks = 1;  // engineering gets the boot-time toolstack
  XoarPlatform platform(config);
  if (!platform.Boot().ok()) {
    return 1;
  }

  // The operator carves out a second management domain for "finance" with
  // a 2 GiB quota.
  auto finance_index = platform.AddToolstack(/*memory_quota_mb=*/2048);
  if (!finance_index.ok()) {
    std::fprintf(stderr, "AddToolstack: %s\n",
                 finance_index.status().ToString().c_str());
    return 1;
  }
  platform.Settle();
  Toolstack& engineering = platform.toolstack(0);
  Toolstack& finance = platform.toolstack(*finance_index);
  engineering.set_memory_quota_mb(2048);
  std::printf("engineering toolstack: dom%u  | finance toolstack: dom%u\n",
              engineering.self().value(), finance.self().value());

  // Each department manages its own fleet.
  DomainId eng_ci = *engineering.CreateGuest(
      GuestSpec{.name = "eng-ci", .memory_mb = 1024});
  DomainId fin_ledger = *finance.CreateGuest(
      GuestSpec{.name = "fin-ledger", .memory_mb = 1024});
  platform.Settle();
  std::printf("eng-ci = dom%u (parent dom%u), fin-ledger = dom%u (parent "
              "dom%u)\n",
              eng_ci.value(),
              platform.hv().domain(eng_ci)->parent_toolstack().value(),
              fin_ledger.value(),
              platform.hv().domain(fin_ledger)->parent_toolstack().value());

  // Department autonomy: engineering manages its own guest freely...
  Status own = engineering.PauseGuest(eng_ci);
  std::printf("\nengineering pauses its own CI runner: %s\n",
              own.ToString().c_str());
  (void)engineering.UnpauseGuest(eng_ci);

  // ...but the hypervisor refuses cross-department management outright.
  Status cross = platform.hv().PauseDomain(engineering.self(), fin_ledger);
  std::printf("engineering tries to pause finance's ledger: %s\n",
              cross.ToString().c_str());

  // Quotas bound each slice: finance cannot blow past its 2 GiB.
  auto too_big = finance.CreateGuest(
      GuestSpec{.name = "fin-warehouse", .memory_mb = 1536});
  std::printf("finance requests another 1.5 GiB guest: %s\n",
              too_big.ok() ? "created (unexpected!)"
                           : too_big.status().ToString().c_str());

  // Delegation is explicit and auditable: the driver domains list exactly
  // which toolstacks may hand them to guests.
  const Domain* netback =
      platform.hv().domain(platform.shard_domain(ShardClass::kNetBack));
  std::printf("\nNetBack (dom%u) delegated to toolstacks:",
              netback->id().value());
  for (DomainId toolstack : netback->delegated_toolstacks()) {
    std::printf(" dom%u", toolstack.value());
  }
  std::printf("\n");

  std::printf("\nmemory in use: engineering %llu MB / 2048 MB, finance "
              "%llu MB / 2048 MB\n",
              (unsigned long long)engineering.guest_memory_in_use_mb(),
              (unsigned long long)finance.guest_memory_in_use_mb());
  return 0;
}
