// Quickstart: boot a Xoar platform, create a guest, run some I/O, and look
// at the audit trail.
//
//   $ ./build/examples/quickstart
//
// This walks the public API end to end: platform boot (§5.2), guest
// creation through the Toolstack/Builder pair (§5.6), paravirtual disk and
// network I/O over grant-mapped rings, a live NetBack microreboot (§3.3),
// the secure audit log (§3.2.2), and the observability exports
// (OBSERVABILITY.md): metrics as quickstart_metrics.json and a
// chrome://tracing-loadable event trace as quickstart_trace.json.
#include <cstdio>

#include "src/base/log.h"
#include "src/core/xoar_platform.h"
#include "src/workloads/wget.h"

using namespace xoar;

int main() {
  Logger::Get().set_level(LogLevel::kInfo);

  // 1. Power on. Xen starts the Bootstrapper, which brings up XenStore,
  //    the Console Manager, the Builder, PCIBack, the driver domains, and
  //    a Toolstack — in dependency order, in parallel where possible.
  //    Tracing is opt-in and must be armed before Boot() to capture the
  //    §5.2 boot phases.
  XoarPlatform platform;
  platform.obs().tracer().set_enabled(true);
  Status status = platform.Boot();
  if (!status.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nXoar is up: console at %.1fs, network at %.1fs\n",
              ToSeconds(platform.console_ready_at()),
              ToSeconds(platform.network_ready_at()));
  std::printf("control-plane memory: %llu MB across %zu live domains\n",
              (unsigned long long)platform.ControlPlaneMemoryMb(),
              platform.hv().LiveDomainCount());

  // 2. Create a guest. The Toolstack asks the Builder to instantiate it
  //    from the known-good image library; the hypervisor records the
  //    parent-toolstack flag it will audit on every management call.
  GuestSpec spec;
  spec.name = "demo-guest";
  spec.memory_mb = 1024;
  StatusOr<DomainId> guest = platform.CreateGuest(spec);
  if (!guest.ok()) {
    std::fprintf(stderr, "guest creation failed: %s\n",
                 guest.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncreated %s as dom%u\n", spec.name.c_str(), guest->value());

  // 3. Disk I/O through the paravirtual block path: BlkFront ring ->
  //    BlkBack driver domain -> simulated SATA disk.
  BlkFront* blk = platform.blkfront(*guest);
  int ios_done = 0;
  for (int i = 0; i < 8; ++i) {
    blk->WriteBytes(static_cast<std::uint64_t>(i) * kMiB, 256 * kKiB,
                    [&](Status s) {
                      if (s.ok()) {
                        ++ios_done;
                      }
                    });
  }
  platform.Settle();
  std::printf("block path: %d/8 writes completed, %llu bytes reached the "
              "disk\n",
              ios_done,
              (unsigned long long)platform.disk().bytes_written());

  // 4. Network: fetch 512 MB from a LAN peer, then repeat while NetBack
  //    microreboots every 2 seconds underneath the transfer.
  auto baseline = RunWget(&platform, *guest, 512ull * 1000 * 1000,
                          WgetSink::kDevNull);
  std::printf("wget 512MB: %.1f MB/s\n", baseline->throughput_mbps);

  (void)platform.EnableNetBackRestarts(FromSeconds(2), /*fast=*/true);
  auto under_restarts = RunWget(&platform, *guest, 512ull * 1000 * 1000,
                                WgetSink::kDevNull);
  (void)platform.DisableNetBackRestarts();
  std::printf("wget 512MB with NetBack microreboots every 2s: %.1f MB/s "
              "(%u TCP timeouts, %d restarts)\n",
              under_restarts->throughput_mbps, under_restarts->tcp_timeouts,
              platform.restarts().RestartCount("NetBack"));

  // 5. The audit log recorded everything: guest creation, every shard the
  //    guest was linked to, every restart.
  std::printf("\naudit log: %zu records, integrity %s\n",
              platform.audit().size(),
              platform.audit().FirstCorruptedRecord() == -1 ? "OK"
                                                            : "VIOLATED");
  int shown = 0;
  for (const auto& event : platform.audit().events()) {
    if (event.kind == AuditEventKind::kHypervisor) {
      continue;
    }
    std::printf("  [%8.3fs] %-15s subject=dom%-3u object=dom%-3u %s\n",
                ToSeconds(event.time),
                std::string(AuditEventKindName(event.kind)).c_str(),
                event.subject.valid() ? event.subject.value() : 0,
                event.object.valid() ? event.object.value() : 0,
                event.detail.c_str());
    if (++shown >= 12) {
      std::printf("  ... (%zu more)\n", platform.audit().size());
      break;
    }
  }

  // 6. Export the observability artifacts: every platform metric in the
  //    BENCH_*.json shape, and the event trace — load the latter in
  //    chrome://tracing (or https://ui.perfetto.dev) to see the boot
  //    phases, hypercalls, and microreboot windows on per-domain tracks.
  status = platform.obs().metrics().WriteJsonFile(
      "quickstart_metrics.json", "quickstart", platform.sim().Now());
  if (!status.ok()) {
    std::fprintf(stderr, "metrics export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  status = platform.obs().tracer().WriteJsonFile("quickstart_trace.json");
  if (!status.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nobservability: %zu metrics -> quickstart_metrics.json, "
              "%zu trace events -> quickstart_trace.json\n",
              platform.obs().metrics().MetricCount(),
              platform.obs().tracer().size());

  // 7. Clean up.
  (void)platform.DestroyGuest(*guest);
  std::printf("\ndone.\n");
  return 0;
}
