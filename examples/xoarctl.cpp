// xoarctl: an xl-style administrative CLI over the platform API.
//
// Runs a command script against a freshly booted Xoar host:
//
//   ./build/examples/xoarctl                    # runs the built-in demo
//   ./build/examples/xoarctl script.xctl        # runs commands from a file
//
// Commands (one per line, '#' comments):
//   create <name> [mem_mb] [tag]     create a guest
//   destroy <name>                   destroy a guest
//   pause <name> | unpause <name>    VM lifecycle
//   list                             list domains with state and privileges
//   restart <component> [fast]      microreboot NetBack/BlkBack/...
//   restart-every <component> <sec> periodic restarts
//   balloon <name> <+/-mb>           balloon a guest up or down
//   migrate-out <name>               live-migrate to a scratch peer host
//   audit [n]                        show the last n audit records
//   exposure <component>             guests exposed to a shard (forensics)
//   run <seconds>                    advance simulated time
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/core/xoar_platform.h"
#include "src/ctl/migration.h"

using namespace xoar;

namespace {

class XoarCtl {
 public:
  bool Boot() {
    if (!platform_.Boot().ok()) {
      return false;
    }
    std::printf("xoarctl: host up (console %.1fs, network %.1fs)\n",
                ToSeconds(platform_.console_ready_at()),
                ToSeconds(platform_.network_ready_at()));
    return true;
  }

  void Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') {
      return;
    }
    std::printf("xoarctl> %s\n", line.c_str());
    if (cmd == "create") {
      std::string name, tag;
      std::uint64_t mem = 512;
      in >> name >> mem >> tag;
      GuestSpec spec;
      spec.name = name;
      spec.memory_mb = mem == 0 ? 512 : mem;
      spec.constraint_tag = tag;
      auto guest = platform_.CreateGuest(spec);
      if (guest.ok()) {
        names_[name] = *guest;
        std::printf("  created %s as dom%u\n", name.c_str(), guest->value());
      } else {
        std::printf("  error: %s\n", guest.status().ToString().c_str());
      }
    } else if (cmd == "destroy") {
      WithGuest(in, [&](DomainId id, const std::string& name) {
        Report(platform_.DestroyGuest(id));
        names_.erase(name);
      });
    } else if (cmd == "pause") {
      WithGuest(in, [&](DomainId id, const std::string&) {
        Report(platform_.toolstack().PauseGuest(id));
      });
    } else if (cmd == "unpause") {
      WithGuest(in, [&](DomainId id, const std::string&) {
        Report(platform_.toolstack().UnpauseGuest(id));
      });
    } else if (cmd == "list") {
      List();
    } else if (cmd == "restart") {
      std::string component, grade;
      in >> component >> grade;
      Report(platform_.restarts().RestartNow(component, grade == "fast"));
      platform_.Settle(kSecond);
    } else if (cmd == "restart-every") {
      std::string component;
      double seconds = 0;
      in >> component >> seconds;
      Report(platform_.restarts().EnablePeriodicRestarts(
          component, FromSeconds(seconds), /*fast=*/true));
    } else if (cmd == "balloon") {
      std::string name;
      long delta = 0;
      in >> name >> delta;
      auto it = names_.find(name);
      if (it == names_.end()) {
        std::printf("  no such guest\n");
        return;
      }
      Report(delta < 0 ? platform_.hv().BalloonDown(
                             it->second, static_cast<std::uint64_t>(-delta))
                       : platform_.hv().BalloonUp(
                             it->second, static_cast<std::uint64_t>(delta)));
    } else if (cmd == "migrate-out") {
      WithGuest(in, [&](DomainId id, const std::string& name) {
        XoarPlatform peer;
        if (!peer.Boot().ok()) {
          std::printf("  peer host failed to boot\n");
          return;
        }
        auto result = LiveMigrate(&platform_, id, &peer, MigrationParams{});
        if (result.ok()) {
          std::printf("  %s migrated: %d rounds, downtime %.0fms\n",
                      name.c_str(), result->precopy_rounds,
                      ToMilliseconds(result->downtime));
          names_.erase(name);
        } else {
          std::printf("  error: %s\n", result.status().ToString().c_str());
        }
      });
    } else if (cmd == "audit") {
      int n = 8;
      in >> n;
      const auto& events = platform_.audit().events();
      const std::size_t start =
          events.size() > static_cast<std::size_t>(n) ? events.size() - n : 0;
      for (std::size_t i = start; i < events.size(); ++i) {
        if (events[i].kind == AuditEventKind::kHypervisor) {
          continue;
        }
        std::printf("  [%8.3fs] %-15s %s\n", ToSeconds(events[i].time),
                    std::string(AuditEventKindName(events[i].kind)).c_str(),
                    events[i].detail.c_str());
      }
      std::printf("  integrity: %s\n",
                  platform_.audit().FirstCorruptedRecord() == -1 ? "OK"
                                                                 : "BROKEN");
    } else if (cmd == "exposure") {
      std::string component;
      in >> component;
      const DomainId shard =
          component == "BlkBack" ? platform_.shard_domain(ShardClass::kBlkBack)
                                 : platform_.shard_domain(ShardClass::kNetBack);
      auto exposed = platform_.audit().GuestsExposedToShard(
          shard, 0, platform_.sim().Now());
      std::printf("  guests exposed to %s:", component.c_str());
      for (DomainId g : exposed) {
        std::printf(" dom%u", g.value());
      }
      std::printf("\n");
    } else if (cmd == "run") {
      double seconds = 1;
      in >> seconds;
      platform_.Settle(FromSeconds(seconds));
      std::printf("  t=%.1fs\n", ToSeconds(platform_.sim().Now()));
    } else {
      std::printf("  unknown command: %s\n", cmd.c_str());
    }
  }

 private:
  template <typename Fn>
  void WithGuest(std::istringstream& in, Fn fn) {
    std::string name;
    in >> name;
    auto it = names_.find(name);
    if (it == names_.end()) {
      std::printf("  no such guest: %s\n", name.c_str());
      return;
    }
    fn(it->second, name);
  }

  void Report(const Status& status) {
    std::printf("  %s\n", status.ToString().c_str());
  }

  void List() {
    std::printf("  %-4s %-18s %-10s %-6s %s\n", "ID", "NAME", "STATE", "MEM",
                "FLAGS");
    for (DomainId id : platform_.hv().AllDomains()) {
      const Domain* dom = platform_.hv().domain(id);
      std::string flags;
      if (dom->is_shard()) {
        flags += "shard ";
      }
      if (dom->hypercall_policy().PermittedCount() > 0) {
        flags += StrFormat("priv(%zu) ",
                           dom->hypercall_policy().PermittedCount());
      }
      if (!dom->pci_devices().empty()) {
        flags += "pci ";
      }
      std::printf("  %-4u %-18s %-10s %-6llu %s\n", id.value(),
                  dom->name().c_str(),
                  std::string(DomainStateName(dom->state())).c_str(),
                  (unsigned long long)dom->config().memory_mb, flags.c_str());
    }
  }

  XoarPlatform platform_;
  std::map<std::string, DomainId> names_;
};

const char* kDemoScript = R"(# xoarctl demo script
list
create web 1024
create db 1024
list
balloon web -256
restart NetBack fast
run 2
audit 10
exposure NetBack
pause db
unpause db
migrate-out db
destroy web
list
)";

}  // namespace

int main(int argc, char** argv) {
  Logger::Get().set_level(LogLevel::kWarning);
  XoarCtl ctl;
  if (!ctl.Boot()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  std::istringstream demo(kDemoScript);
  std::ifstream file;
  std::istream* input = &demo;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    input = &file;
  }
  std::string line;
  while (std::getline(*input, line)) {
    ctl.Execute(line);
  }
  return 0;
}
