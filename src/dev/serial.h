// Serial console device (§5.5).
//
// The hypervisor retains control of the serial controller; the holder of the
// kSerialConsole capability receives console input via the console VIRQ and
// writes output through I/O ports. Output is captured into a transcript so
// tests and examples can assert on what reached the physical console.
#ifndef XOAR_SRC_DEV_SERIAL_H_
#define XOAR_SRC_DEV_SERIAL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/sim/simulator.h"

namespace xoar {

class SerialDevice {
 public:
  // 115200 baud, 8N1: ~11.5 KB/s of character throughput.
  explicit SerialDevice(Simulator* sim, double bytes_per_second = 11520.0)
      : sim_(sim), rate_(bytes_per_second) {}

  // Output path (console writes from the console owner).
  void Write(std::string_view text);

  // Input path: characters typed at the physical console; the owner drains
  // them after the console VIRQ fires.
  void InjectInput(std::string_view text);
  std::string DrainInput();
  bool HasInput() const { return !input_.empty(); }

  // Fires when input arrives (wired to Hypervisor::RaiseVirq by the owner).
  void set_input_notifier(std::function<void()> fn) {
    input_notifier_ = std::move(fn);
  }

  const std::string& transcript() const { return transcript_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  // Simulated time at which all queued output has drained.
  SimTime output_drained_at() const { return busy_until_; }

 private:
  Simulator* sim_;
  double rate_;
  SimTime busy_until_ = 0;
  std::string transcript_;
  std::string input_;
  std::function<void()> input_notifier_;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_DEV_SERIAL_H_
