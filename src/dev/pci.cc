#include "src/dev/pci.h"

#include "src/base/strings.h"

namespace xoar {

std::string_view PciClassName(PciClass cls) {
  switch (cls) {
    case PciClass::kNetwork:
      return "network";
    case PciClass::kStorage:
      return "storage";
    case PciClass::kSerial:
      return "serial";
    case PciClass::kBridge:
      return "bridge";
    case PciClass::kOther:
      return "other";
  }
  return "unknown";
}

Status PciBus::AddDevice(const PciDeviceInfo& info) {
  if (devices_.count(info.slot) > 0) {
    return AlreadyExistsError(StrFormat("PCI slot %s already populated",
                                        info.slot.ToString().c_str()));
  }
  DeviceRecord record;
  record.info = info;
  // Standard header: vendor/device id at offset 0.
  record.config[0] = static_cast<std::uint8_t>(info.vendor_id & 0xff);
  record.config[1] = static_cast<std::uint8_t>(info.vendor_id >> 8);
  record.config[2] = static_cast<std::uint8_t>(info.device_id & 0xff);
  record.config[3] = static_cast<std::uint8_t>(info.device_id >> 8);
  devices_.emplace(info.slot, std::move(record));
  return Status::Ok();
}

std::vector<PciDeviceInfo> PciBus::Enumerate() const {
  std::vector<PciDeviceInfo> out;
  out.reserve(devices_.size());
  for (const auto& [slot, record] : devices_) {
    out.push_back(record.info);
  }
  return out;
}

StatusOr<PciDeviceInfo> PciBus::Find(const PciSlot& slot) const {
  auto it = devices_.find(slot);
  if (it == devices_.end()) {
    return NotFoundError(
        StrFormat("no device at PCI slot %s", slot.ToString().c_str()));
  }
  return it->second.info;
}

std::vector<PciDeviceInfo> PciBus::FindByClass(PciClass cls) const {
  std::vector<PciDeviceInfo> out;
  for (const auto& [slot, record] : devices_) {
    if (record.info.device_class == cls) {
      out.push_back(record.info);
    }
  }
  return out;
}

StatusOr<std::uint32_t> PciBus::ReadConfig(const PciSlot& slot,
                                           std::uint8_t offset) {
  auto it = devices_.find(slot);
  if (it == devices_.end()) {
    return NotFoundError(
        StrFormat("no device at PCI slot %s", slot.ToString().c_str()));
  }
  ++config_accesses_;
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) |
            it->second.config[static_cast<std::uint8_t>(offset + i)];
  }
  return value;
}

Status PciBus::WriteConfig(const PciSlot& slot, std::uint8_t offset,
                           std::uint32_t value) {
  auto it = devices_.find(slot);
  if (it == devices_.end()) {
    return NotFoundError(
        StrFormat("no device at PCI slot %s", slot.ToString().c_str()));
  }
  ++config_accesses_;
  for (int i = 0; i < 4; ++i) {
    it->second.config[static_cast<std::uint8_t>(offset + i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
  return Status::Ok();
}

}  // namespace xoar
