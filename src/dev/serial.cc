#include "src/dev/serial.h"

namespace xoar {

void SerialDevice::Write(std::string_view text) {
  transcript_.append(text);
  bytes_written_ += text.size();
  const SimTime start = std::max(sim_->Now(), busy_until_);
  busy_until_ = start + static_cast<SimDuration>(
                            static_cast<double>(text.size()) / rate_ *
                            static_cast<double>(kSecond));
}

void SerialDevice::InjectInput(std::string_view text) {
  input_.append(text);
  if (input_notifier_) {
    input_notifier_();
  }
}

std::string SerialDevice::DrainInput() {
  std::string out;
  out.swap(input_);
  return out;
}

}  // namespace xoar
