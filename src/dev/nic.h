// Gigabit NIC model (the paper's Tigon-3).
//
// A transmit queue serialized onto a fixed-rate link. Transmissions complete
// after queueing delay plus wire time; received frames are injected by the
// network fabric (src/net) and handed to the registered rx handler — in a
// running platform that handler is NetBack's interrupt path.
#ifndef XOAR_SRC_DEV_NIC_H_
#define XOAR_SRC_DEV_NIC_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/base/units.h"
#include "src/hv/pci_slot.h"
#include "src/sim/simulator.h"

namespace xoar {

class NicDevice {
 public:
  using RxHandler = std::function<void(std::uint32_t bytes)>;
  using TxDone = std::function<void()>;

  NicDevice(Simulator* sim, PciSlot slot, double link_bits_per_second)
      : sim_(sim), slot_(slot), link_rate_(link_bits_per_second) {}

  PciSlot slot() const { return slot_; }
  double link_rate() const { return link_rate_; }

  bool link_up() const { return link_up_; }
  void set_link_up(bool up) { link_up_ = up; }

  // Queues `bytes` for transmission; `done` fires when the frame has left
  // the wire. Dropped (done never fires) if the link is down.
  void Transmit(std::uint32_t bytes, TxDone done);

  // Frame arrival from the fabric. Dropped if no handler (driver rebooting).
  void DeliverFrame(std::uint32_t bytes);

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }
  void clear_rx_handler() { rx_handler_ = nullptr; }
  bool has_rx_handler() const { return static_cast<bool>(rx_handler_); }

  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  std::uint64_t tx_frames() const { return tx_frames_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t dropped_frames() const { return dropped_frames_; }

 private:
  Simulator* sim_;
  PciSlot slot_;
  double link_rate_;
  bool link_up_ = true;
  SimTime tx_busy_until_ = 0;
  RxHandler rx_handler_;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t dropped_frames_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_DEV_NIC_H_
