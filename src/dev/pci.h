// Simulated PCI bus (§5.3).
//
// The bus carries the machine's peripherals and their configuration spaces.
// The configuration space is a *shared* resource: even with devices passed
// through to driver domains, a single component (PCIBack, or Dom0 in stock
// Xen) must multiplex access to it. Config-space reads/writes are gated by
// the hypervisor's kPciBusControl hardware capability at the service layer.
#ifndef XOAR_SRC_DEV_PCI_H_
#define XOAR_SRC_DEV_PCI_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/hv/pci_slot.h"

namespace xoar {

enum class PciClass : std::uint8_t {
  kNetwork,
  kStorage,
  kSerial,
  kBridge,
  kOther,
};

std::string_view PciClassName(PciClass cls);

struct PciDeviceInfo {
  PciSlot slot;
  std::uint16_t vendor_id = 0;
  std::uint16_t device_id = 0;
  PciClass device_class = PciClass::kOther;
  std::string name;
};

class PciBus {
 public:
  // Registers a device on the bus (platform assembly time).
  Status AddDevice(const PciDeviceInfo& info);

  // Bus enumeration, as performed by Dom0 or PCIBack during boot.
  std::vector<PciDeviceInfo> Enumerate() const;
  StatusOr<PciDeviceInfo> Find(const PciSlot& slot) const;
  // First device of a class, if any (used by udev-style rules).
  std::vector<PciDeviceInfo> FindByClass(PciClass cls) const;

  // 256-byte configuration space per device. Device initialisation uses
  // these registers; steady-state operation does not (§5.3).
  StatusOr<std::uint32_t> ReadConfig(const PciSlot& slot, std::uint8_t offset);
  Status WriteConfig(const PciSlot& slot, std::uint8_t offset,
                     std::uint32_t value);

  std::uint64_t config_accesses() const { return config_accesses_; }

 private:
  struct DeviceRecord {
    PciDeviceInfo info;
    std::array<std::uint8_t, 256> config{};
  };

  std::map<PciSlot, DeviceRecord> devices_;
  std::uint64_t config_accesses_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_DEV_PCI_H_
