#include "src/dev/nic.h"

namespace xoar {

void NicDevice::Transmit(std::uint32_t bytes, TxDone done) {
  if (!link_up_) {
    ++dropped_frames_;
    return;
  }
  const SimTime start = std::max(sim_->Now(), tx_busy_until_);
  const SimDuration wire_time = TransferTime(bytes, link_rate_);
  tx_busy_until_ = start + wire_time;
  tx_bytes_ += bytes;
  ++tx_frames_;
  if (done) {
    sim_->ScheduleAt(tx_busy_until_, std::move(done));
  }
}

void NicDevice::DeliverFrame(std::uint32_t bytes) {
  if (!link_up_ || !rx_handler_) {
    ++dropped_frames_;
    return;
  }
  rx_bytes_ += bytes;
  ++rx_frames_;
  rx_handler_(bytes);
}

}  // namespace xoar
