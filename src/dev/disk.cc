#include "src/dev/disk.h"

#include <cstdlib>

namespace xoar {

SimDuration DiskDevice::ServiceTime(std::uint64_t offset,
                                    std::uint32_t bytes) {
  SimDuration t = 0;
  const std::uint64_t distance = offset > head_position_
                                     ? offset - head_position_
                                     : head_position_ - offset;
  if (distance > geometry_.sequential_window) {
    // Scale the seek with distance (short seeks are cheaper), capped at the
    // average for a full-stroke-ish move.
    const double frac =
        std::min(1.0, static_cast<double>(distance) /
                          (static_cast<double>(geometry_.capacity_bytes) / 3));
    t += static_cast<SimDuration>(
             static_cast<double>(geometry_.average_seek) * (0.3 + 0.7 * frac)) +
         geometry_.rotational_latency;
    ++seek_count_;
  }
  t += static_cast<SimDuration>(static_cast<double>(bytes) /
                                geometry_.sequential_rate *
                                static_cast<double>(kSecond));
  return t;
}

void DiskDevice::SubmitIo(std::uint64_t offset, std::uint32_t bytes,
                          bool is_write, IoDone done) {
  const SimTime start = std::max(sim_->Now(), busy_until_);
  const SimDuration service = ServiceTime(offset, bytes);
  busy_until_ = start + service;
  head_position_ = offset + bytes;
  ++io_count_;
  if (is_write) {
    bytes_written_ += bytes;
  } else {
    bytes_read_ += bytes;
  }
  if (done) {
    sim_->ScheduleAt(busy_until_, std::move(done));
  }
}

}  // namespace xoar
