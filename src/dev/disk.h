// SATA disk model (the paper's WD3200AAKS, 7200 RPM).
//
// FIFO service of I/O requests with a positional cost model: sequential
// access streams at the platter rate; a discontiguous request first pays
// seek plus rotational latency. This is enough to make Postmark-style
// small-file workloads behave qualitatively like the paper's testbed.
#ifndef XOAR_SRC_DEV_DISK_H_
#define XOAR_SRC_DEV_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/base/units.h"
#include "src/hv/pci_slot.h"
#include "src/sim/simulator.h"

namespace xoar {

struct DiskGeometry {
  std::uint64_t capacity_bytes = 320 * 1000ULL * 1000ULL * 1000ULL;
  double sequential_rate = 90.0 * 1e6;    // bytes/second at the platter
  SimDuration average_seek = FromMilliseconds(8.9);
  SimDuration rotational_latency = FromMilliseconds(4.2);  // half-rotation
  // Requests within this distance of the previous request's end are treated
  // as sequential (track buffer / readahead).
  std::uint64_t sequential_window = 2 * kMiB;
};

class DiskDevice {
 public:
  using IoDone = std::function<void()>;

  DiskDevice(Simulator* sim, PciSlot slot, DiskGeometry geometry = {})
      : sim_(sim), slot_(slot), geometry_(geometry) {}

  PciSlot slot() const { return slot_; }
  const DiskGeometry& geometry() const { return geometry_; }

  // Submits an I/O; `done` fires at completion. Requests are serviced in
  // submission order.
  void SubmitIo(std::uint64_t offset, std::uint32_t bytes, bool is_write,
                IoDone done);

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t io_count() const { return io_count_; }
  std::uint64_t seek_count() const { return seek_count_; }

 private:
  SimDuration ServiceTime(std::uint64_t offset, std::uint32_t bytes);

  Simulator* sim_;
  PciSlot slot_;
  DiskGeometry geometry_;
  SimTime busy_until_ = 0;
  std::uint64_t head_position_ = 0;  // byte offset after the last request
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t io_count_ = 0;
  std::uint64_t seek_count_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_DEV_DISK_H_
