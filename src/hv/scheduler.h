// Credit CPU scheduler, modeled on Xen's default scheduler (Chapter 4: the
// platform "must isolate and schedule VMs").
//
// Each domain gets a weight (proportional share) and an optional cap (hard
// ceiling as a percentage of one physical CPU). The scheduler distributes
// credit each accounting period in proportion to weights; runnable VCPUs in
// credit run at UNDER priority ahead of those that have exhausted it
// (OVER), which yields proportional sharing under contention while staying
// work-conserving when CPUs are idle.
//
// This implementation is an epoch-based fluid approximation: given the set
// of runnable VCPUs, `ComputeAllocation` returns each domain's CPU share
// for the next epoch, and `Account` charges consumed time against credit.
// The experiments in bench/ use it to answer the §6.1 question of whether
// single-VCPU shards can starve guests (they cannot: weights bound them).
#ifndef XOAR_SRC_HV_SCHEDULER_H_
#define XOAR_SRC_HV_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/obs/obs.h"

namespace xoar {

struct SchedParams {
  std::uint32_t weight = 256;  // Xen's default
  std::uint32_t cap_percent = 0;  // 0 = uncapped; 100 = one full PCPU
};

class CreditScheduler {
 public:
  // `obs` receives `hv.sched.*` counters; nullptr falls back to
  // Obs::Global(). Platforms rebind via set_obs() after constructing their
  // own Obs (the scheduler is a by-value Platform member built first).
  explicit CreditScheduler(int physical_cpus, Obs* obs = nullptr)
      : pcpus_(physical_cpus) {
    set_obs(obs);
  }

  void set_obs(Obs* obs) {
    obs_ = Obs::OrGlobal(obs);
    m_allocations_ = obs_->metrics().GetCounter("hv.sched.allocations");
    m_accounts_ = obs_->metrics().GetCounter("hv.sched.accounts");
  }

  // Registers a domain's VCPUs for scheduling.
  Status AddDomain(DomainId domain, int vcpus, SchedParams params = {});
  Status RemoveDomain(DomainId domain);
  Status SetParams(DomainId domain, SchedParams params);
  StatusOr<SchedParams> GetParams(DomainId domain) const;

  // Marks a domain runnable (demanding `demand_cpus` worth of CPU, capped
  // by its VCPU count) or idle.
  Status SetDemand(DomainId domain, double demand_cpus);

  // Computes each domain's CPU allocation (in units of physical CPUs) for
  // the next epoch: proportional to weight among runnable domains, bounded
  // by demand, VCPU count, and cap; work-conserving (unused share is
  // redistributed).
  std::map<DomainId, double> ComputeAllocation() const;

  // Charges `used` CPU-time against the domain's credit and tops credit up
  // by its weight share for the elapsed epoch. Negative credit marks the
  // domain OVER until it earns back.
  Status Account(DomainId domain, SimDuration epoch, SimDuration used);

  // Credit balance in CPU-nanoseconds (positive = UNDER priority).
  StatusOr<double> CreditOf(DomainId domain) const;
  bool IsOver(DomainId domain) const;

  int physical_cpus() const { return pcpus_; }
  std::size_t domain_count() const { return domains_.size(); }

 private:
  struct Entry {
    int vcpus = 1;
    SchedParams params;
    double demand_cpus = 0;
    double credit_ns = 0;
  };

  double TotalRunnableWeight() const;

  int pcpus_;
  Obs* obs_ = nullptr;
  Counter* m_allocations_ = nullptr;  // hv.sched.allocations
  Counter* m_accounts_ = nullptr;     // hv.sched.accounts
  std::map<DomainId, Entry> domains_;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_SCHEDULER_H_
