#include "src/hv/event_channel.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

std::string_view VirqName(Virq virq) {
  switch (virq) {
    case Virq::kConsole:
      return "console";
    case Virq::kTimer:
      return "timer";
    case Virq::kDebug:
      return "debug";
    case Virq::kDomExc:
      return "dom_exc";
    case Virq::kCount:
      break;
  }
  return "unknown";
}

EventChannelManager::Channel* EventChannelManager::Find(DomainId domain,
                                                        EvtchnPort port) {
  auto it = channels_.find(Key(domain.value(), port.value()));
  return it == channels_.end() ? nullptr : &it->second;
}

const EventChannelManager::Channel* EventChannelManager::Find(
    DomainId domain, EvtchnPort port) const {
  auto it = channels_.find(Key(domain.value(), port.value()));
  return it == channels_.end() ? nullptr : &it->second;
}

EvtchnPort EventChannelManager::NextPort(DomainId domain) {
  std::uint32_t& next = next_port_[domain.value()];
  return EvtchnPort(next++);
}

StatusOr<EvtchnPort> EventChannelManager::AllocUnbound(DomainId owner,
                                                       DomainId remote) {
  if (!owner.valid() || !remote.valid()) {
    return InvalidArgumentError("invalid domain for alloc_unbound");
  }
  EvtchnPort port = NextPort(owner);
  Channel channel;
  channel.state = ChannelState::kUnbound;
  channel.remote = remote;
  channels_[Key(owner.value(), port.value())] = std::move(channel);
  return port;
}

StatusOr<EvtchnPort> EventChannelManager::BindInterdomain(
    DomainId caller, DomainId remote, EvtchnPort remote_port) {
  Channel* remote_channel = Find(remote, remote_port);
  if (remote_channel == nullptr) {
    return NotFoundError(StrFormat("no unbound port %u on dom%u",
                                   remote_port.value(), remote.value()));
  }
  if (remote_channel->state != ChannelState::kUnbound) {
    return FailedPreconditionError("remote port is not unbound");
  }
  if (remote_channel->remote != caller) {
    return PermissionDeniedError(
        StrFormat("port %u on dom%u is reserved for dom%u, not dom%u",
                  remote_port.value(), remote.value(),
                  remote_channel->remote.value(), caller.value()));
  }
  EvtchnPort local_port = NextPort(caller);
  Channel local;
  local.state = ChannelState::kConnected;
  local.remote = remote;
  local.remote_port = remote_port;
  channels_[Key(caller.value(), local_port.value())] = std::move(local);

  remote_channel = Find(remote, remote_port);  // map may have rehashed
  remote_channel->state = ChannelState::kConnected;
  remote_channel->remote = caller;
  remote_channel->remote_port = local_port;
  return local_port;
}

StatusOr<EvtchnPort> EventChannelManager::BindVirq(DomainId domain, Virq virq) {
  // One binding per VIRQ per domain.
  const Key vkey(domain.value(), static_cast<std::uint32_t>(virq));
  if (virq_ports_.count(vkey) > 0) {
    return AlreadyExistsError(StrFormat("virq %d already bound on dom%u",
                                        static_cast<int>(virq),
                                        domain.value()));
  }
  EvtchnPort port = NextPort(domain);
  Channel channel;
  channel.state = ChannelState::kVirq;
  channel.virq = virq;
  channels_[Key(domain.value(), port.value())] = std::move(channel);
  virq_ports_[vkey] = port.value();
  return port;
}

Status EventChannelManager::SetHandler(DomainId domain, EvtchnPort port,
                                       Handler handler) {
  Channel* channel = Find(domain, port);
  if (channel == nullptr) {
    return NotFoundError("no such event channel");
  }
  channel->handler = std::move(handler);
  return Status::Ok();
}

Status EventChannelManager::Send(DomainId caller, EvtchnPort port) {
  Channel* channel = Find(caller, port);
  if (channel == nullptr) {
    return NotFoundError(StrFormat("dom%u has no port %u", caller.value(),
                                   port.value()));
  }
  if (channel->state == ChannelState::kBroken) {
    return UnavailableError("peer end of event channel is closed");
  }
  if (channel->state != ChannelState::kConnected) {
    return FailedPreconditionError("event channel not connected");
  }
  ++sends_;
  m_sends_->Increment();
  obs_->tracer().Op(TraceCategory::kEvtchn, "evtchn_send", caller.value());
  SimDuration latency = kEventDeliveryLatency;
  if (send_fault_hook_) {
    const SendFaultDecision decision = send_fault_hook_(caller, port);
    if (decision.action == SendFaultAction::kDrop) {
      // The notification is lost in flight; the sender already observed
      // success. Receivers recover via their request timeouts (§RESILIENCE).
      return Status::Ok();
    }
    if (decision.action == SendFaultAction::kDelay) {
      latency += decision.extra_delay;
    }
  }
  const DomainId remote = channel->remote;
  const EvtchnPort remote_port = channel->remote_port;
  sim_->ScheduleAfter(latency, [this, remote, remote_port] {
    const Channel* peer = Find(remote, remote_port);
    if (peer != nullptr && peer->handler &&
        peer->state == ChannelState::kConnected) {
      ++deliveries_;
      m_deliveries_->Increment();
      obs_->tracer().Op(TraceCategory::kEvtchn, "evtchn_deliver",
                        remote.value());
      peer->handler();
    }
  });
  return Status::Ok();
}

Status EventChannelManager::RaiseVirq(DomainId domain, Virq virq) {
  auto it = virq_ports_.find(Key(domain.value(), static_cast<std::uint32_t>(virq)));
  if (it == virq_ports_.end()) {
    return NotFoundError(StrFormat("dom%u has no binding for virq %s",
                                   domain.value(),
                                   std::string(VirqName(virq)).c_str()));
  }
  Channel* channel = Find(domain, EvtchnPort(it->second));
  if (channel != nullptr && channel->handler) {
    // Copy the handler: the channel may be closed before delivery fires.
    Handler handler = channel->handler;
    sim_->ScheduleAfter(kEventDeliveryLatency,
                        [handler = std::move(handler)] { handler(); });
    ++deliveries_;
    m_deliveries_->Increment();
  }
  return Status::Ok();
}

Status EventChannelManager::Close(DomainId domain, EvtchnPort port) {
  auto it = channels_.find(Key(domain.value(), port.value()));
  if (it == channels_.end()) {
    return NotFoundError("no such event channel");
  }
  if (it->second.state == ChannelState::kConnected) {
    Channel* peer = Find(it->second.remote, it->second.remote_port);
    if (peer != nullptr) {
      peer->state = ChannelState::kBroken;
    }
  } else if (it->second.state == ChannelState::kVirq) {
    virq_ports_.erase(
        Key(domain.value(), static_cast<std::uint32_t>(it->second.virq)));
  }
  channels_.erase(it);
  return Status::Ok();
}

int EventChannelManager::CloseAll(DomainId domain) {
  int closed = 0;
  auto it = channels_.lower_bound(Key(domain.value(), 0));
  while (it != channels_.end() && it->first.first == domain.value()) {
    if (it->second.state == ChannelState::kConnected) {
      Channel* peer = Find(it->second.remote, it->second.remote_port);
      if (peer != nullptr) {
        peer->state = ChannelState::kBroken;
      }
    } else if (it->second.state == ChannelState::kVirq) {
      virq_ports_.erase(
          Key(domain.value(), static_cast<std::uint32_t>(it->second.virq)));
    }
    it = channels_.erase(it);
    ++closed;
  }
  return closed;
}

bool EventChannelManager::IsConnected(DomainId domain, EvtchnPort port) const {
  const Channel* channel = Find(domain, port);
  return channel != nullptr && channel->state == ChannelState::kConnected;
}

}  // namespace xoar
