#include "src/hv/scheduler.h"

#include <algorithm>

#include "src/base/strings.h"

namespace xoar {

Status CreditScheduler::AddDomain(DomainId domain, int vcpus,
                                  SchedParams params) {
  if (!domain.valid() || vcpus <= 0) {
    return InvalidArgumentError("invalid domain or vcpu count");
  }
  if (domains_.count(domain) > 0) {
    return AlreadyExistsError(
        StrFormat("dom%u already scheduled", domain.value()));
  }
  if (params.weight == 0) {
    return InvalidArgumentError("weight must be positive");
  }
  Entry entry;
  entry.vcpus = vcpus;
  entry.params = params;
  domains_.emplace(domain, entry);
  obs_->tracer().Op(TraceCategory::kSched, "sched_add_domain",
                    domain.value());
  return Status::Ok();
}

Status CreditScheduler::RemoveDomain(DomainId domain) {
  if (domains_.erase(domain) == 0) {
    return NotFoundError(StrFormat("dom%u not scheduled", domain.value()));
  }
  return Status::Ok();
}

Status CreditScheduler::SetParams(DomainId domain, SchedParams params) {
  auto it = domains_.find(domain);
  if (it == domains_.end()) {
    return NotFoundError(StrFormat("dom%u not scheduled", domain.value()));
  }
  if (params.weight == 0) {
    return InvalidArgumentError("weight must be positive");
  }
  it->second.params = params;
  return Status::Ok();
}

StatusOr<SchedParams> CreditScheduler::GetParams(DomainId domain) const {
  auto it = domains_.find(domain);
  if (it == domains_.end()) {
    return NotFoundError(StrFormat("dom%u not scheduled", domain.value()));
  }
  return it->second.params;
}

Status CreditScheduler::SetDemand(DomainId domain, double demand_cpus) {
  auto it = domains_.find(domain);
  if (it == domains_.end()) {
    return NotFoundError(StrFormat("dom%u not scheduled", domain.value()));
  }
  if (demand_cpus < 0) {
    return InvalidArgumentError("demand cannot be negative");
  }
  it->second.demand_cpus = demand_cpus;
  return Status::Ok();
}

double CreditScheduler::TotalRunnableWeight() const {
  double total = 0;
  for (const auto& [id, entry] : domains_) {
    if (entry.demand_cpus > 0) {
      total += entry.params.weight;
    }
  }
  return total;
}

std::map<DomainId, double> CreditScheduler::ComputeAllocation() const {
  m_allocations_->Increment();
  obs_->tracer().Op(TraceCategory::kSched, "sched_allocate");
  std::map<DomainId, double> allocation;
  // The effective demand ceiling per domain: min(demand, vcpus, cap).
  auto ceiling = [](const Entry& entry) {
    double limit = std::min(entry.demand_cpus,
                            static_cast<double>(entry.vcpus));
    if (entry.params.cap_percent > 0) {
      limit = std::min(limit,
                       static_cast<double>(entry.params.cap_percent) / 100.0);
    }
    return limit;
  };

  // Iterative water-filling: hand out capacity proportionally to weight;
  // domains that hit their ceiling release the residue for redistribution
  // (work-conserving).
  std::map<DomainId, double> remaining_ceiling;
  double capacity = static_cast<double>(pcpus_);
  for (const auto& [id, entry] : domains_) {
    allocation[id] = 0;
    remaining_ceiling[id] = ceiling(entry);
  }
  for (int round = 0; round < 16 && capacity > 1e-9; ++round) {
    double active_weight = 0;
    for (const auto& [id, entry] : domains_) {
      if (remaining_ceiling[id] > 1e-9) {
        active_weight += entry.params.weight;
      }
    }
    if (active_weight <= 0) {
      break;
    }
    double distributed = 0;
    for (const auto& [id, entry] : domains_) {
      if (remaining_ceiling[id] <= 1e-9) {
        continue;
      }
      const double share =
          capacity * entry.params.weight / active_weight;
      const double granted = std::min(share, remaining_ceiling[id]);
      allocation[id] += granted;
      remaining_ceiling[id] -= granted;
      distributed += granted;
    }
    capacity -= distributed;
    if (distributed < 1e-9) {
      break;
    }
  }
  return allocation;
}

Status CreditScheduler::Account(DomainId domain, SimDuration epoch,
                                SimDuration used) {
  auto it = domains_.find(domain);
  if (it == domains_.end()) {
    return NotFoundError(StrFormat("dom%u not scheduled", domain.value()));
  }
  m_accounts_->Increment();
  const double total_weight = TotalRunnableWeight();
  // Credit earned this epoch: the domain's weight share of total capacity.
  const double earned =
      total_weight > 0
          ? static_cast<double>(epoch) * pcpus_ *
                it->second.params.weight / total_weight
          : static_cast<double>(epoch);
  it->second.credit_ns += earned - static_cast<double>(used);
  // Clamp: Xen bounds accumulated credit so idle domains cannot hoard.
  const double bound = static_cast<double>(epoch) * pcpus_;
  it->second.credit_ns =
      std::clamp(it->second.credit_ns, -bound, bound);
  return Status::Ok();
}

StatusOr<double> CreditScheduler::CreditOf(DomainId domain) const {
  auto it = domains_.find(domain);
  if (it == domains_.end()) {
    return NotFoundError(StrFormat("dom%u not scheduled", domain.value()));
  }
  return it->second.credit_ns;
}

bool CreditScheduler::IsOver(DomainId domain) const {
  auto it = domains_.find(domain);
  return it != domains_.end() && it->second.credit_ns < 0;
}

}  // namespace xoar
