#include "src/hv/domain.h"

namespace xoar {

std::string_view DomainStateName(DomainState state) {
  switch (state) {
    case DomainState::kBuilding:
      return "building";
    case DomainState::kPaused:
      return "paused";
    case DomainState::kRunning:
      return "running";
    case DomainState::kRebooting:
      return "rebooting";
    case DomainState::kDead:
      return "dead";
  }
  return "unknown";
}

std::string_view OsProfileName(OsProfile os) {
  switch (os) {
    case OsProfile::kNanOs:
      return "nanOS";
    case OsProfile::kMiniOs:
      return "miniOS";
    case OsProfile::kLinux:
      return "Linux";
    case OsProfile::kGuestLinux:
      return "Linux (guest)";
    case OsProfile::kHvmGuest:
      return "HVM guest";
  }
  return "unknown";
}

}  // namespace xoar
