#include "src/hv/grant_table.h"

#include "src/base/strings.h"

namespace xoar {

namespace {
constexpr std::size_t kMaxGrantEntries = 4096;
}  // namespace

StatusOr<GrantRef> GrantTable::CreateGrant(DomainId grantee, Pfn pfn,
                                           bool writable) {
  if (!grantee.valid()) {
    return InvalidArgumentError("grantee domain is invalid");
  }
  if (!pfn.valid()) {
    return InvalidArgumentError("pfn is invalid");
  }
  // Reuse a free slot if one exists.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].in_use) {
      entries_[i] = GrantEntry{grantee, pfn, writable, true, 0};
      return GrantRef(static_cast<std::uint32_t>(i));
    }
  }
  if (entries_.size() >= kMaxGrantEntries) {
    return ResourceExhaustedError("grant table full");
  }
  entries_.push_back(GrantEntry{grantee, pfn, writable, true, 0});
  return GrantRef(static_cast<std::uint32_t>(entries_.size() - 1));
}

StatusOr<GrantEntry> GrantTable::Lookup(GrantRef ref) const {
  if (!ref.valid() || ref.value() >= entries_.size() ||
      !entries_[ref.value()].in_use) {
    return NotFoundError(StrFormat("grant ref %u not active", ref.value()));
  }
  return entries_[ref.value()];
}

Status GrantTable::NoteMapped(GrantRef ref) {
  XOAR_ASSIGN_OR_RETURN(GrantEntry entry, Lookup(ref));
  (void)entry;
  ++entries_[ref.value()].map_count;
  return Status::Ok();
}

Status GrantTable::NoteUnmapped(GrantRef ref) {
  XOAR_ASSIGN_OR_RETURN(GrantEntry entry, Lookup(ref));
  if (entry.map_count <= 0) {
    return FailedPreconditionError("grant ref not mapped");
  }
  --entries_[ref.value()].map_count;
  return Status::Ok();
}

Status GrantTable::EndAccess(GrantRef ref) {
  XOAR_ASSIGN_OR_RETURN(GrantEntry entry, Lookup(ref));
  if (entry.map_count > 0) {
    return FailedPreconditionError(
        StrFormat("grant ref %u still mapped %d time(s)", ref.value(),
                  entry.map_count));
  }
  entries_[ref.value()].in_use = false;
  return Status::Ok();
}

int GrantTable::RevokeAll() {
  int dangling = 0;
  for (auto& entry : entries_) {
    if (entry.in_use && entry.map_count > 0) {
      ++dangling;
    }
    entry.in_use = false;
    entry.map_count = 0;
  }
  return dangling;
}

std::size_t GrantTable::ActiveEntries() const {
  std::size_t n = 0;
  for (const auto& entry : entries_) {
    if (entry.in_use) {
      ++n;
    }
  }
  return n;
}

}  // namespace xoar
