// Machine memory model.
//
// The MemoryManager tracks ownership of 4 KiB page frames and hands out the
// backing bytes for pages that are actually touched (rings, XenStore wire
// buffers). Ownership is the basis of every memory access-control decision
// the hypervisor makes: foreign mapping and grant mapping both resolve
// through here.
//
// Ownership is recorded per allocation *extent*, not per page: a host packed
// with 10^4 guests holds tens of millions of frames, and a per-frame table
// is the single largest control-plane structure on the box. Each
// AllocatePages call produces one contiguous extent (frames are handed out
// monotonically and never reused), so ownership queries are an ordered-map
// range lookup and domain teardown walks the owner's extent list instead of
// every frame in the machine. Backing bytes stay per-page and lazy — only
// the handful of frames a domain actually touches (rings, wire buffers) are
// ever materialized.
#ifndef XOAR_SRC_HV_MEMORY_H_
#define XOAR_SRC_HV_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"

namespace xoar {

class MemoryManager {
 public:
  explicit MemoryManager(std::uint64_t total_bytes)
      : total_pages_(total_bytes / kPageSize), free_pages_(total_pages_) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  // Allocates `count` contiguous frames owned by `owner`; returns the first
  // Pfn of the range.
  StatusOr<Pfn> AllocatePages(DomainId owner, std::uint64_t count);

  // Releases every frame owned by `owner` (domain destruction).
  std::uint64_t FreeDomainPages(DomainId owner);

  // Releases `count` frames starting at `first`, all of which must be
  // owned by `owner` (ballooning).
  Status FreeSpecificPages(DomainId owner, Pfn first, std::uint64_t count);

  // Owner of a frame; error if the frame was never allocated.
  StatusOr<DomainId> OwnerOf(Pfn pfn) const;

  bool IsOwnedBy(Pfn pfn, DomainId domain) const;

  // Backing bytes of a frame (allocated lazily, zero-filled). Returns nullptr
  // for unallocated frames. Access control is the hypervisor's job; this is
  // the "physical" memory itself.
  std::byte* PageData(Pfn pfn);

  std::uint64_t PagesOwnedBy(DomainId owner) const;
  std::uint64_t total_pages() const { return total_pages_; }
  std::uint64_t free_pages() const { return free_pages_; }

  // Number of ownership records currently held (extents, not frames). The
  // density bench reads this to show control-plane memory stays flat as the
  // guest count grows.
  std::uint64_t extent_count() const { return extents_.size(); }

 private:
  struct Extent {
    std::uint64_t count;
    DomainId owner;
  };

  // Iterator to the extent containing `pfn`, or extents_.end().
  std::map<std::uint64_t, Extent>::const_iterator FindExtent(
      std::uint64_t pfn) const;

  // Drops the backing bytes for [first, first + count).
  void DropPageData(std::uint64_t first, std::uint64_t count);

  std::uint64_t total_pages_;
  std::uint64_t free_pages_;
  std::uint64_t next_pfn_ = 0x1000;  // low frames reserved for the hypervisor

  // Keyed by first pfn of the extent; extents never overlap.
  std::map<std::uint64_t, Extent> extents_;
  // Extent start pfns per owner, so teardown is O(extents owned), not
  // O(extents in the machine).
  std::unordered_map<DomainId, std::set<std::uint64_t>> owner_extents_;
  std::unordered_map<DomainId, std::uint64_t> owned_count_;
  // Lazily materialized backing bytes, keyed by pfn. Ordered so a freed
  // extent's touched pages are erased with one range walk.
  std::map<std::uint64_t, std::unique_ptr<std::byte[]>> page_data_;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_MEMORY_H_
