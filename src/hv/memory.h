// Machine memory model.
//
// The MemoryManager tracks ownership of 4 KiB page frames and hands out the
// backing bytes for pages that are actually touched (rings, XenStore wire
// buffers). Ownership is the basis of every memory access-control decision
// the hypervisor makes: foreign mapping and grant mapping both resolve
// through here.
#ifndef XOAR_SRC_HV_MEMORY_H_
#define XOAR_SRC_HV_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"

namespace xoar {

class MemoryManager {
 public:
  explicit MemoryManager(std::uint64_t total_bytes)
      : total_pages_(total_bytes / kPageSize), free_pages_(total_pages_) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  // Allocates `count` contiguous frames owned by `owner`; returns the first
  // Pfn of the range.
  StatusOr<Pfn> AllocatePages(DomainId owner, std::uint64_t count);

  // Releases every frame owned by `owner` (domain destruction).
  std::uint64_t FreeDomainPages(DomainId owner);

  // Releases `count` frames starting at `first`, all of which must be
  // owned by `owner` (ballooning).
  Status FreeSpecificPages(DomainId owner, Pfn first, std::uint64_t count);

  // Owner of a frame; error if the frame was never allocated.
  StatusOr<DomainId> OwnerOf(Pfn pfn) const;

  bool IsOwnedBy(Pfn pfn, DomainId domain) const;

  // Backing bytes of a frame (allocated lazily, zero-filled). Returns nullptr
  // for unallocated frames. Access control is the hypervisor's job; this is
  // the "physical" memory itself.
  std::byte* PageData(Pfn pfn);

  std::uint64_t PagesOwnedBy(DomainId owner) const;
  std::uint64_t total_pages() const { return total_pages_; }
  std::uint64_t free_pages() const { return free_pages_; }

 private:
  struct Frame {
    DomainId owner;
    std::unique_ptr<std::byte[]> data;  // lazily allocated kPageSize bytes
  };

  std::uint64_t total_pages_;
  std::uint64_t free_pages_;
  std::uint64_t next_pfn_ = 0x1000;  // low frames reserved for the hypervisor
  std::unordered_map<std::uint64_t, Frame> frames_;
  std::unordered_map<DomainId, std::uint64_t> owned_count_;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_MEMORY_H_
