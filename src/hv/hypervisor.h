// The hypervisor: domain lifecycle, privilege enforcement, memory sharing.
//
// Every cross-domain operation in the simulator funnels through this class
// as a "hypercall" with an explicit caller DomainId; the privilege checks
// here are the mechanism Xoar's design (Chapter 3) relies on:
//
//  * hypercall whitelisting (Fig 3.1: permit_hypercall),
//  * PCI device assignment (Fig 3.1: assign_pci_device),
//  * delegation of shard administration (Fig 3.1: allow_delegation),
//  * the parent-toolstack audit on VM-management hypercalls (§5.6),
//  * the shard-sharing check on grant and event-channel setup (§5.6),
//  * per-guest memory privilege for device-emulation stubs (§5.6).
//
// With `enforce_shard_sharing_policy=false` and a control domain configured,
// the same class behaves like stock Xen with a monolithic Dom0 — the
// baseline platform in the evaluation.
#ifndef XOAR_SRC_HV_HYPERVISOR_H_
#define XOAR_SRC_HV_HYPERVISOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/hv/domain.h"
#include "src/hv/event_channel.h"
#include "src/hv/hypercall.h"
#include "src/hv/memory.h"
#include "src/hv/pci_slot.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"

namespace xoar {

// Hardware resources the hypervisor parcels out at boot (§5.8): stock Xen
// hard-codes these to Dom0; Xoar maps each to the correct shard.
enum class HwCapability : std::uint8_t {
  kSerialConsole = 0,   // console I/O ports + console VIRQ delivery
  kIoPorts,             // legacy I/O-port ranges
  kMmio,                // device MMIO regions
  kInterruptRouting,    // PCI interrupt routing policy
  kPciBusControl,       // PCI configuration space multiplexing
  kCount,
};

std::string_view HwCapabilityName(HwCapability cap);

// Result of mapping another domain's page (foreign map or grant map).
struct MappedPage {
  Pfn pfn;
  std::byte* data = nullptr;
  bool writable = false;
};

class Hypervisor {
 public:
  struct Options {
    // Xoar mode: IVC setup requires shard/delegation relationships (§5.6).
    // Stock Xen mode (false): any two domains may exchange grants/channels.
    bool enforce_shard_sharing_policy = false;
    // Stock Xen assumption: a control-domain crash reboots the host (§5.8).
    bool control_domain_crash_reboots_host = true;
    std::uint64_t total_memory_bytes = 4 * kGiB;
  };

  // Called on every privilege-relevant action; the platform's audit log
  // subscribes here (§3.2.2).
  using AuditHook = std::function<void(const std::string& event)>;

  // `obs` receives hypercall/grant/domain-lifecycle metrics and trace
  // events; nullptr falls back to the process-wide Obs::Global().
  Hypervisor(Simulator* sim, Options options, Obs* obs = nullptr);

  Simulator* sim() { return sim_; }
  MemoryManager& memory() { return memory_; }
  EventChannelManager& evtchn() { return evtchn_; }
  const Options& options() const { return options_; }
  Obs* obs() { return obs_; }

  void set_audit_hook(AuditHook hook) { audit_hook_ = std::move(hook); }

  // --- Domain lifecycle ---

  // Creates the initial domain at power-on. Only callable before any other
  // domain exists; bypasses privilege checks the way the real hypervisor
  // constructs Dom0 (stock) or the Bootstrapper (Xoar).
  StatusOr<DomainId> CreateInitialDomain(const DomainConfig& config,
                                         bool as_control_domain);

  // kDomctlCreate. `on_behalf_of`, when valid, becomes the new domain's
  // parent toolstack (the Builder creates VMs for requesting toolstacks);
  // otherwise the caller is recorded as parent.
  StatusOr<DomainId> CreateDomain(DomainId caller, const DomainConfig& config,
                                  DomainId on_behalf_of = DomainId::Invalid());

  // Marks a build complete: kBuilding -> kPaused.
  Status FinishBuild(DomainId caller, DomainId target);

  Status UnpauseDomain(DomainId caller, DomainId target);  // kDomctlUnpause
  Status PauseDomain(DomainId caller, DomainId target);    // kDomctlPause
  Status DestroyDomain(DomainId caller, DomainId target);  // kDomctlDestroy

  // Microreboot transitions (§3.3). BeginReboot tears down the domain's
  // event channels (peers observe broken channels and renegotiate) but, by
  // design, preserves memory: the snapshot/rollback engine in src/core owns
  // the state reset. CompleteReboot returns the domain to kRunning.
  Status BeginReboot(DomainId caller, DomainId target);
  Status CompleteReboot(DomainId caller, DomainId target);

  // Crash reporting. Stock Xen: a control-domain crash is fatal to the host.
  // Xoar modifies this so the Bootstrapper may exit cleanly (§5.8).
  void ReportCrash(DomainId domain);
  bool host_failed() const { return host_failed_; }

  Domain* domain(DomainId id);
  const Domain* domain(DomainId id) const;
  // Materializes the full live-domain list — an O(n) walk of the domain
  // table. Control-plane hot paths (create/destroy) must not call this; the
  // density bench asserts domain_table_scans() stays flat across a sweep.
  std::vector<DomainId> AllDomains() const;
  // O(1): maintained incrementally on every alive<->dead transition.
  std::size_t LiveDomainCount() const { return live_count_; }

  // --- Fig 3.1 privilege-assignment API ---

  // assign_pci_device(PCI domain, bus, slot): validates the device is not
  // already assigned, then passes it through to `target`.
  Status AssignPciDevice(DomainId caller, DomainId target, const PciSlot& slot);

  // permit_hypercall(hypercall id): whitelists a privileged hypercall.
  // Only shards may be given extra privilege (§3.1).
  Status PermitHypercall(DomainId caller, DomainId target, Hypercall hc);

  // allow_delegation(guest id): delegates administration of shard `target`
  // to toolstack `toolstack`.
  Status AllowDelegation(DomainId caller, DomainId target, DomainId toolstack);

  // Flags `subject` as privileged for `target`'s memory (QemuVM DMA, §5.6).
  Status SetPrivilegedFor(DomainId caller, DomainId subject, DomainId target);

  // Toolstack links a guest to a shard it may consume. Audited: the caller
  // must manage the guest, and the shard must be delegated to the caller
  // (or the caller is the control domain).
  Status AuthorizeShardUse(DomainId caller, DomainId guest, DomainId shard);

  // --- Hardware capabilities (§5.8) ---
  Status GrantHwCapability(DomainId caller, DomainId target, HwCapability cap);
  DomainId HwCapabilityHolder(HwCapability cap) const;
  // kPhysdevOp-class check used by device backends.
  Status CheckHwCapability(DomainId caller, HwCapability cap) const;

  // --- Memory ---

  // Allocates pages for `target` during its build (kForeignMemoryMap class).
  StatusOr<Pfn> PopulateDomainMemory(DomainId caller, DomainId target,
                                     std::uint64_t bytes);

  // Maps a page of `target` into `caller` (Dom0 tools, Builder, QemuVM).
  StatusOr<MappedPage> ForeignMap(DomainId caller, DomainId target, Pfn pfn);

  // Ballooning (kMemoryOp): a guest shrinks its own reservation, returning
  // the tail of its allocation to the free pool, or reclaims previously
  // ballooned-out memory (subject to availability). This is the mechanism
  // behind the memory-overcommit features of §1.
  Status BalloonDown(DomainId caller, std::uint64_t mb);
  Status BalloonUp(DomainId caller, std::uint64_t mb);

  // --- Grant table operations (kGrantTableOp) ---

  StatusOr<GrantRef> GrantAccess(DomainId caller, DomainId grantee, Pfn pfn,
                                 bool writable);
  StatusOr<MappedPage> MapGrant(DomainId caller, DomainId owner, GrantRef ref);
  Status UnmapGrant(DomainId caller, DomainId owner, GrantRef ref);
  Status EndGrantAccess(DomainId caller, GrantRef ref);

  // Fault-injection hook (src/fault), consulted by MapGrant after every
  // privilege and grantee check has passed — injected failures never mask a
  // real denial (DESIGN.md §5c). Returning true fails the map with
  // UNAVAILABLE, the retryable code backends treat as "try again later".
  using GrantMapFaultHook = std::function<bool(DomainId caller, DomainId owner)>;
  void set_grant_map_fault_hook(GrantMapFaultHook hook) {
    grant_map_fault_hook_ = std::move(hook);
  }

  // --- Event channel operations (kEventChannelOp) ---

  StatusOr<EvtchnPort> EvtchnAllocUnbound(DomainId caller, DomainId remote);
  StatusOr<EvtchnPort> EvtchnBindInterdomain(DomainId caller, DomainId remote,
                                             EvtchnPort remote_port);
  Status EvtchnSend(DomainId caller, EvtchnPort port);
  Status EvtchnSetHandler(DomainId caller, EvtchnPort port,
                          EventChannelManager::Handler handler);
  Status EvtchnClose(DomainId caller, EvtchnPort port);
  StatusOr<EvtchnPort> BindVirq(DomainId caller, Virq virq);
  Status RaiseVirq(DomainId target, Virq virq);  // hypervisor-internal

  // --- Introspection / statistics ---

  std::uint64_t HypercallCount(Hypercall hc) const {
    return hypercall_counts_[static_cast<std::size_t>(hc)];
  }
  std::uint64_t TotalHypercalls() const;
  std::uint64_t denied_hypercalls() const { return denied_; }
  // Number of full domain-table walks performed (AllDomains and friends).
  // The density bench reads the delta across a create sweep to prove no
  // O(n) scan remains on the guest create/destroy path.
  std::uint64_t domain_table_scans() const { return domain_table_scans_; }

  // Exposed for tests: the raw policy checks.
  Status CheckHypercall(DomainId caller, Hypercall hc);
  Status CheckManagement(DomainId caller, DomainId target) const;
  Status CheckIvcAllowed(DomainId a, DomainId b) const;

 private:
  Status CheckCallerAlive(DomainId caller) const;
  void Audit(const std::string& event);
  DomainId NextDomainId();

  Simulator* sim_;
  Options options_;
  Obs* obs_;
  // Metric handles cached at construction so hot paths never re-resolve
  // names (see src/obs/metrics.h on the cost model).
  Counter* m_hypercalls_;       // hv.hypercall.total
  Counter* m_denied_;           // hv.hypercall.denied
  Counter* m_grant_creates_;    // hv.grant.creates
  Counter* m_grant_maps_;       // hv.grant.maps
  Counter* m_grant_unmaps_;     // hv.grant.unmaps
  Counter* m_domain_creates_;   // hv.domain.creates
  Counter* m_domain_destroys_;  // hv.domain.destroys
  Gauge* m_domains_live_;       // hv.domain.live
  MemoryManager memory_;
  EventChannelManager evtchn_;
  std::map<std::uint32_t, std::unique_ptr<Domain>> domains_;
  std::size_t live_count_ = 0;
  // PCI assignment index: slot -> owning domain, so assign_pci_device's
  // already-assigned check (§3.1) is a lookup, not a domain-table scan.
  std::map<PciSlot, DomainId> pci_owner_;
  mutable std::uint64_t domain_table_scans_ = 0;
  std::array<DomainId, static_cast<std::size_t>(HwCapability::kCount)>
      hw_capability_holder_;
  std::array<std::uint64_t, kHypercallCount> hypercall_counts_{};
  std::uint64_t denied_ = 0;
  std::uint32_t next_domid_ = 0;
  bool host_failed_ = false;
  AuditHook audit_hook_;
  GrantMapFaultHook grant_map_fault_hook_;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_HYPERVISOR_H_
