// Hypercall numbering and per-domain hypercall policy.
//
// Xen exposes ~40 hypercalls; the set below models the ones the control
// plane actually exercises, split by privilege class. Xoar's Fig 3.1
// `permit_hypercall(hypercall id)` API whitelists individual *privileged*
// hypercalls per shard; everything in the unprivileged class is available to
// all guests, exactly as in the paper (§3.1).
#ifndef XOAR_SRC_HV_HYPERCALL_H_
#define XOAR_SRC_HV_HYPERCALL_H_

#include <bitset>
#include <cstdint>
#include <string_view>

namespace xoar {

enum class Hypercall : std::uint8_t {
  // --- Unprivileged: available to every guest VM. ---
  kEventChannelOp = 0,   // alloc/bind/send/close event channels
  kGrantTableOp,         // grant/map/unmap/end-access
  kSchedOp,              // yield, block
  kXenVersion,           // version probe
  kConsoleIo,            // write to own virtual console
  kMemoryOp,             // balloon own reservation

  // --- Privileged: Dom0-class operations, whitelisted per shard in Xoar. ---
  kDomctlCreate,         // create a domain shell
  kDomctlDestroy,        // destroy a domain
  kDomctlPause,          // pause a domain
  kDomctlUnpause,        // unpause a domain
  kDomctlSetPrivileges,  // assign privileges (Fig 3.1 API)
  kDomctlDelegate,       // delegate shard administration to a toolstack
  kForeignMemoryMap,     // map another domain's memory (VM building, QEMU DMA)
  kSetupGuestRings,      // install XenStore/console rings into a new guest
  kPhysdevOp,            // interrupt routing, I/O-port assignment
  kPciConfigOp,          // PCI configuration space access
  kSysctlReboot,         // reboot the physical host
  kSnapshotOp,           // vm_snapshot()/rollback (§3.3)
  kVirqBind,             // bind a hardware VIRQ (console, timer)

  kCount,
};

constexpr std::size_t kHypercallCount = static_cast<std::size_t>(Hypercall::kCount);

std::string_view HypercallName(Hypercall hc);

// True for hypercalls every guest may always issue.
constexpr bool IsUnprivilegedHypercall(Hypercall hc) {
  switch (hc) {
    case Hypercall::kEventChannelOp:
    case Hypercall::kGrantTableOp:
    case Hypercall::kSchedOp:
    case Hypercall::kXenVersion:
    case Hypercall::kConsoleIo:
    case Hypercall::kMemoryOp:
      return true;
    // VIRQ binding is unprivileged in itself; sensitive VIRQs (console) are
    // gated by hardware capabilities instead (§5.8).
    case Hypercall::kVirqBind:
      return true;
    default:
      return false;
  }
}

// Per-domain whitelist of privileged hypercalls (Fig 3.1: permit_hypercall).
class HypercallPolicy {
 public:
  void Permit(Hypercall hc) { permitted_.set(static_cast<std::size_t>(hc)); }
  void Revoke(Hypercall hc) { permitted_.reset(static_cast<std::size_t>(hc)); }
  bool Permits(Hypercall hc) const {
    return permitted_.test(static_cast<std::size_t>(hc));
  }
  bool Empty() const { return permitted_.none(); }
  std::size_t PermittedCount() const { return permitted_.count(); }

  // Grants the full privileged set — the stock-Xen Dom0 configuration.
  void PermitAll() { permitted_.set(); }

 private:
  std::bitset<kHypercallCount> permitted_;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_HYPERCALL_H_
