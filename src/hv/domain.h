// Domain (virtual machine) state as tracked by the hypervisor.
//
// A Domain carries the privilege state that Xoar's security argument rests
// on: the hypercall whitelist, assigned PCI devices, the parent-toolstack
// flag audited on management hypercalls (§5.6), delegation of shard
// administration, the privileged-for set used by QemuVM stub domains, and
// the list of shards a guest has been authorized to consume.
#ifndef XOAR_SRC_HV_DOMAIN_H_
#define XOAR_SRC_HV_DOMAIN_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "src/base/ids.h"
#include "src/base/units.h"
#include "src/hv/grant_table.h"
#include "src/hv/hypercall.h"
#include "src/hv/pci_slot.h"

namespace xoar {

enum class DomainState : std::uint8_t {
  kBuilding,   // shell created; builder is populating memory
  kPaused,     // built, not scheduled
  kRunning,
  kRebooting,  // microreboot in flight (§3.3): data path down
  kDead,
};

std::string_view DomainStateName(DomainState state);

// The OS a domain boots. Profiles differ in boot time, memory floor, and
// their contribution to the TCB line count (§5.7, §6.2).
enum class OsProfile : std::uint8_t {
  kNanOs,       // single-threaded minimal kernel (Bootstrapper, Builder)
  kMiniOs,      // stub-domain environment (XenStore, QemuVM)
  kLinux,       // full paravirtual Linux (driver domains, toolstack)
  kGuestLinux,  // a hosted guest's paravirtual Linux
  kHvmGuest,    // unmodified guest needing device emulation
};

std::string_view OsProfileName(OsProfile os);

struct DomainConfig {
  std::string name;
  std::uint64_t memory_mb = 128;
  int vcpus = 1;
  OsProfile os = OsProfile::kGuestLinux;
  // Declared through a `shard` block in the VM config file (§3.1). Only
  // shards may receive additional privileges or host service backends.
  bool is_shard = false;
  // Constraint tag for shard-sharing policy (§3.2.1). Empty = unconstrained.
  std::string constraint_tag;
};

class Domain {
 public:
  Domain(DomainId id, DomainConfig config)
      : id_(id), config_(std::move(config)) {}

  DomainId id() const { return id_; }
  const DomainConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }

  DomainState state() const { return state_; }
  void set_state(DomainState state) { state_ = state; }
  bool alive() const { return state_ != DomainState::kDead; }

  // --- Privilege state ---

  // Stock-Xen Dom0: unrestricted access to every interface.
  bool is_control_domain() const { return is_control_domain_; }
  void set_control_domain(bool v) { is_control_domain_ = v; }

  bool is_shard() const { return config_.is_shard; }

  HypercallPolicy& hypercall_policy() { return hypercall_policy_; }
  const HypercallPolicy& hypercall_policy() const { return hypercall_policy_; }

  const std::set<PciSlot>& pci_devices() const { return pci_devices_; }
  void AddPciDevice(const PciSlot& slot) { pci_devices_.insert(slot); }
  bool RemovePciDevice(const PciSlot& slot) {
    return pci_devices_.erase(slot) > 0;
  }

  // Toolstack that requested this VM's build; management hypercalls are
  // audited against it (§5.6).
  DomainId parent_toolstack() const { return parent_toolstack_; }
  void set_parent_toolstack(DomainId id) { parent_toolstack_ = id; }

  // Domain that issued kDomctlCreate (the Builder in Xoar); retains
  // management rights so it can finish and start the build.
  DomainId creator() const { return creator_; }
  void set_creator(DomainId id) { creator_ = id; }

  // Toolstacks this shard's administration has been delegated to (Fig 3.1:
  // allow_delegation).
  const std::set<DomainId>& delegated_toolstacks() const {
    return delegated_toolstacks_;
  }
  void AddDelegation(DomainId toolstack) {
    delegated_toolstacks_.insert(toolstack);
  }
  bool IsDelegatedTo(DomainId toolstack) const {
    return delegated_toolstacks_.count(toolstack) > 0;
  }

  // Domains whose memory this domain may map (QemuVM ↔ its guest, §5.6).
  const std::set<DomainId>& privileged_for() const { return privileged_for_; }
  void AddPrivilegedFor(DomainId target) { privileged_for_.insert(target); }
  bool IsPrivilegedFor(DomainId target) const {
    return privileged_for_.count(target) > 0;
  }

  // Shards this (guest) domain has been authorized to consume; IVC setup to
  // any other shard is blocked by the hypervisor (§5.6).
  const std::set<DomainId>& usable_shards() const { return usable_shards_; }
  void AuthorizeShard(DomainId shard) { usable_shards_.insert(shard); }
  void RevokeShard(DomainId shard) { usable_shards_.erase(shard); }
  bool MayUseShard(DomainId shard) const {
    return usable_shards_.count(shard) > 0;
  }

  GrantTable& grant_table() { return grant_table_; }
  const GrantTable& grant_table() const { return grant_table_; }

  // --- Memory accounting ---
  Pfn first_pfn() const { return first_pfn_; }
  std::uint64_t page_count() const { return page_count_; }
  void SetMemoryRange(Pfn first, std::uint64_t count) {
    first_pfn_ = first;
    page_count_ = count;
  }
  std::uint64_t memory_bytes() const { return page_count_ * kPageSize; }

  // Pages returned to the hypervisor by ballooning, reclaimable later.
  std::uint64_t ballooned_out_pages() const { return ballooned_out_pages_; }
  void set_ballooned_out_pages(std::uint64_t n) { ballooned_out_pages_ = n; }

  // --- Lifecycle accounting ---
  int reboot_count() const { return reboot_count_; }
  void IncrementRebootCount() { ++reboot_count_; }
  SimTime created_at() const { return created_at_; }
  void set_created_at(SimTime t) { created_at_ = t; }

 private:
  DomainId id_;
  DomainConfig config_;
  DomainState state_ = DomainState::kBuilding;

  bool is_control_domain_ = false;
  HypercallPolicy hypercall_policy_;
  std::set<PciSlot> pci_devices_;
  DomainId parent_toolstack_;
  DomainId creator_;
  std::set<DomainId> delegated_toolstacks_;
  std::set<DomainId> privileged_for_;
  std::set<DomainId> usable_shards_;
  GrantTable grant_table_;

  Pfn first_pfn_;
  std::uint64_t page_count_ = 0;
  std::uint64_t ballooned_out_pages_ = 0;
  int reboot_count_ = 0;
  SimTime created_at_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_DOMAIN_H_
