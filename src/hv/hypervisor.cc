#include "src/hv/hypervisor.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

std::string_view HwCapabilityName(HwCapability cap) {
  switch (cap) {
    case HwCapability::kSerialConsole:
      return "serial_console";
    case HwCapability::kIoPorts:
      return "io_ports";
    case HwCapability::kMmio:
      return "mmio";
    case HwCapability::kInterruptRouting:
      return "interrupt_routing";
    case HwCapability::kPciBusControl:
      return "pci_bus_control";
    case HwCapability::kCount:
      break;
  }
  return "unknown";
}

Hypervisor::Hypervisor(Simulator* sim, Options options, Obs* obs)
    : sim_(sim),
      options_(options),
      obs_(Obs::OrGlobal(obs)),
      m_hypercalls_(obs_->metrics().GetCounter("hv.hypercall.total")),
      m_denied_(obs_->metrics().GetCounter("hv.hypercall.denied")),
      m_grant_creates_(obs_->metrics().GetCounter("hv.grant.creates")),
      m_grant_maps_(obs_->metrics().GetCounter("hv.grant.maps")),
      m_grant_unmaps_(obs_->metrics().GetCounter("hv.grant.unmaps")),
      m_domain_creates_(obs_->metrics().GetCounter("hv.domain.creates")),
      m_domain_destroys_(obs_->metrics().GetCounter("hv.domain.destroys")),
      m_domains_live_(obs_->metrics().GetGauge("hv.domain.live")),
      memory_(options.total_memory_bytes),
      evtchn_(sim, obs_) {
  hw_capability_holder_.fill(DomainId::Invalid());
}

void Hypervisor::Audit(const std::string& event) {
  XLOG(kDebug) << "[hv] " << event;
  if (audit_hook_) {
    audit_hook_(event);
  }
}

DomainId Hypervisor::NextDomainId() { return DomainId(next_domid_++); }

Domain* Hypervisor::domain(DomainId id) {
  auto it = domains_.find(id.value());
  return it == domains_.end() ? nullptr : it->second.get();
}

const Domain* Hypervisor::domain(DomainId id) const {
  auto it = domains_.find(id.value());
  return it == domains_.end() ? nullptr : it->second.get();
}

std::vector<DomainId> Hypervisor::AllDomains() const {
  ++domain_table_scans_;
  std::vector<DomainId> out;
  out.reserve(live_count_);
  for (const auto& [raw, dom] : domains_) {
    if (dom->alive()) {
      out.push_back(DomainId(raw));
    }
  }
  return out;
}

Status Hypervisor::CheckCallerAlive(DomainId caller) const {
  const Domain* dom = domain(caller);
  if (dom == nullptr || !dom->alive()) {
    return PermissionDeniedError(
        StrFormat("caller dom%u does not exist or is dead", caller.value()));
  }
  return Status::Ok();
}

Status Hypervisor::CheckHypercall(DomainId caller, Hypercall hc) {
  ++hypercall_counts_[static_cast<std::size_t>(hc)];
  m_hypercalls_->Increment();
  obs_->tracer().Op(TraceCategory::kHypercall, HypercallName(hc),
                    caller.value());
  Status alive = CheckCallerAlive(caller);
  if (!alive.ok()) {
    ++denied_;
    m_denied_->Increment();
    return alive;
  }
  if (IsUnprivilegedHypercall(hc)) {
    return Status::Ok();
  }
  const Domain* dom = domain(caller);
  if (dom->is_control_domain()) {
    return Status::Ok();
  }
  if (dom->is_shard() && dom->hypercall_policy().Permits(hc)) {
    return Status::Ok();
  }
  ++denied_;
  m_denied_->Increment();
  Audit(StrFormat("DENY hypercall %s from dom%u (%s)",
                  std::string(HypercallName(hc)).c_str(), caller.value(),
                  dom->name().c_str()));
  return PermissionDeniedError(
      StrFormat("dom%u may not invoke %s", caller.value(),
                std::string(HypercallName(hc)).c_str()));
}

Status Hypervisor::CheckManagement(DomainId caller, DomainId target) const {
  const Domain* caller_dom = domain(caller);
  const Domain* target_dom = domain(target);
  if (caller_dom == nullptr || target_dom == nullptr) {
    return NotFoundError("caller or target domain does not exist");
  }
  if (caller_dom->is_control_domain()) {
    return Status::Ok();
  }
  if (caller == target) {
    return Status::Ok();  // self-management (self-destructing shards, §5.2)
  }
  // §5.6: privileged VM-management hypercalls are audited against the parent
  // toolstack flag set at creation.
  if (target_dom->parent_toolstack() == caller) {
    return Status::Ok();
  }
  // The Builder keeps management rights over domains it instantiated.
  if (target_dom->creator() == caller) {
    return Status::Ok();
  }
  // Fig 3.1: shards delegated to a toolstack may be administered by it.
  if (target_dom->IsDelegatedTo(caller)) {
    return Status::Ok();
  }
  return PermissionDeniedError(
      StrFormat("dom%u is neither parent toolstack nor delegate of dom%u",
                caller.value(), target.value()));
}

Status Hypervisor::CheckIvcAllowed(DomainId a, DomainId b) const {
  if (!options_.enforce_shard_sharing_policy) {
    return Status::Ok();
  }
  if (a == b) {
    return Status::Ok();
  }
  const Domain* da = domain(a);
  const Domain* db = domain(b);
  if (da == nullptr || db == nullptr) {
    return NotFoundError("IVC endpoint does not exist");
  }
  if (da->is_control_domain() || db->is_control_domain()) {
    return Status::Ok();
  }
  // Two shards may communicate with each other (e.g. Toolstack <-> Builder,
  // XenStore-Logic <-> XenStore-State).
  if (da->is_shard() && db->is_shard()) {
    return Status::Ok();
  }
  // Shard <-> guest requires the guest to be delegated to use that shard
  // (§5.6: "requests ... are blocked if at least one of the VMs is not a
  // shard, or if the guest VM is not delegated to use that particular
  // shard").
  if (da->is_shard() && db->MayUseShard(a)) {
    return Status::Ok();
  }
  if (db->is_shard() && da->MayUseShard(b)) {
    return Status::Ok();
  }
  // Device-emulation stubs are privileged for exactly their guest.
  if (da->IsPrivilegedFor(b) || db->IsPrivilegedFor(a)) {
    return Status::Ok();
  }
  return PermissionDeniedError(
      StrFormat("IVC between dom%u and dom%u violates sharing policy",
                a.value(), b.value()));
}

// --- Domain lifecycle -------------------------------------------------------

StatusOr<DomainId> Hypervisor::CreateInitialDomain(const DomainConfig& config,
                                                   bool as_control_domain) {
  if (!domains_.empty()) {
    return FailedPreconditionError("initial domain already exists");
  }
  DomainId id = NextDomainId();
  auto dom = std::make_unique<Domain>(id, config);
  dom->set_control_domain(as_control_domain);
  dom->set_created_at(sim_->Now());
  XOAR_ASSIGN_OR_RETURN(
      Pfn first,
      memory_.AllocatePages(id, config.memory_mb * kMiB / kPageSize));
  dom->SetMemoryRange(first, config.memory_mb * kMiB / kPageSize);
  dom->set_state(DomainState::kRunning);
  Audit(StrFormat("create-initial dom%u name=%s control=%d", id.value(),
                  config.name.c_str(), as_control_domain ? 1 : 0));
  domains_.emplace(id.value(), std::move(dom));
  ++live_count_;
  m_domain_creates_->Increment();
  m_domains_live_->Set(static_cast<double>(live_count_));
  obs_->tracer().SetTrackName(id.value(),
                              StrFormat("dom%u %s", id.value(),
                                        config.name.c_str()));
  return id;
}

StatusOr<DomainId> Hypervisor::CreateDomain(DomainId caller,
                                            const DomainConfig& config,
                                            DomainId on_behalf_of) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlCreate));
  if (config.memory_mb == 0) {
    return InvalidArgumentError("domain memory must be nonzero");
  }
  DomainId id = NextDomainId();
  auto dom = std::make_unique<Domain>(id, config);
  dom->set_created_at(sim_->Now());
  dom->set_parent_toolstack(on_behalf_of.valid() ? on_behalf_of : caller);
  dom->set_creator(caller);
  StatusOr<Pfn> first =
      memory_.AllocatePages(id, config.memory_mb * kMiB / kPageSize);
  if (!first.ok()) {
    return first.status();
  }
  dom->SetMemoryRange(*first, config.memory_mb * kMiB / kPageSize);
  dom->set_state(DomainState::kBuilding);
  Audit(StrFormat("create dom%u name=%s by=dom%u parent=dom%u shard=%d",
                  id.value(), config.name.c_str(), caller.value(),
                  dom->parent_toolstack().value(), config.is_shard ? 1 : 0));
  domains_.emplace(id.value(), std::move(dom));
  ++live_count_;
  m_domain_creates_->Increment();
  m_domains_live_->Set(static_cast<double>(live_count_));
  obs_->tracer().SetTrackName(id.value(),
                              StrFormat("dom%u %s", id.value(),
                                        config.name.c_str()));
  return id;
}

Status Hypervisor::FinishBuild(DomainId caller, DomainId target) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlCreate));
  Domain* dom = domain(target);
  if (dom == nullptr) {
    return NotFoundError("no such domain");
  }
  if (dom->state() != DomainState::kBuilding) {
    return FailedPreconditionError("domain is not being built");
  }
  dom->set_state(DomainState::kPaused);
  return Status::Ok();
}

Status Hypervisor::UnpauseDomain(DomainId caller, DomainId target) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlUnpause));
  XOAR_RETURN_IF_ERROR(CheckManagement(caller, target));
  Domain* dom = domain(target);
  if (dom->state() != DomainState::kPaused) {
    return FailedPreconditionError(
        StrFormat("dom%u is %s, not paused", target.value(),
                  std::string(DomainStateName(dom->state())).c_str()));
  }
  dom->set_state(DomainState::kRunning);
  Audit(StrFormat("unpause dom%u by dom%u", target.value(), caller.value()));
  return Status::Ok();
}

Status Hypervisor::PauseDomain(DomainId caller, DomainId target) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlPause));
  XOAR_RETURN_IF_ERROR(CheckManagement(caller, target));
  Domain* dom = domain(target);
  if (dom->state() != DomainState::kRunning) {
    return FailedPreconditionError("domain is not running");
  }
  dom->set_state(DomainState::kPaused);
  Audit(StrFormat("pause dom%u by dom%u", target.value(), caller.value()));
  return Status::Ok();
}

Status Hypervisor::DestroyDomain(DomainId caller, DomainId target) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlDestroy));
  XOAR_RETURN_IF_ERROR(CheckManagement(caller, target));
  Domain* dom = domain(target);
  if (!dom->alive()) {
    return FailedPreconditionError("domain already dead");
  }
  dom->set_state(DomainState::kDead);
  --live_count_;
  dom->grant_table().RevokeAll();
  evtchn_.CloseAll(target);
  memory_.FreeDomainPages(target);
  for (const PciSlot& slot : dom->pci_devices()) {
    pci_owner_.erase(slot);
  }
  // Hardware capabilities held by a destroyed domain return to the pool
  // (PCIBack self-destructs after boot, §5.3).
  for (auto& holder : hw_capability_holder_) {
    if (holder == target) {
      holder = DomainId::Invalid();
    }
  }
  Audit(StrFormat("destroy dom%u by dom%u", target.value(), caller.value()));
  m_domain_destroys_->Increment();
  m_domains_live_->Set(static_cast<double>(live_count_));
  return Status::Ok();
}

Status Hypervisor::BeginReboot(DomainId caller, DomainId target) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kSnapshotOp));
  XOAR_RETURN_IF_ERROR(CheckManagement(caller, target));
  Domain* dom = domain(target);
  // A dead domain may also be rebooted: that is precisely how a crashed
  // shard is recovered (the watchdog's dead-domain path). CloseAll and
  // RevokeAll are idempotent, so re-tearing-down a crashed domain's
  // already-torn-down channels is harmless.
  if (dom->state() != DomainState::kRunning &&
      dom->state() != DomainState::kDead) {
    return FailedPreconditionError("only running or dead domains can microreboot");
  }
  if (dom->state() == DomainState::kDead) {
    ++live_count_;  // resurrection: the crashed shard is coming back
  }
  dom->set_state(DomainState::kRebooting);
  // Peers observe their channels break and renegotiate on reconnect.
  evtchn_.CloseAll(target);
  dom->grant_table().RevokeAll();
  Audit(StrFormat("microreboot-begin dom%u by dom%u", target.value(),
                  caller.value()));
  return Status::Ok();
}

Status Hypervisor::CompleteReboot(DomainId caller, DomainId target) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kSnapshotOp));
  XOAR_RETURN_IF_ERROR(CheckManagement(caller, target));
  Domain* dom = domain(target);
  if (dom->state() != DomainState::kRebooting) {
    return FailedPreconditionError("domain is not rebooting");
  }
  dom->set_state(DomainState::kRunning);
  dom->IncrementRebootCount();
  // A reboot can resurrect a crashed (dead) domain, so the live-domain
  // gauge ReportCrash decremented has to be refreshed here.
  m_domains_live_->Set(static_cast<double>(live_count_));
  Audit(StrFormat("microreboot-complete dom%u (count=%d)", target.value(),
                  dom->reboot_count()));
  return Status::Ok();
}

void Hypervisor::ReportCrash(DomainId id) {
  Domain* dom = domain(id);
  if (dom == nullptr) {
    return;
  }
  Audit(StrFormat("crash dom%u (%s)", id.value(), dom->name().c_str()));
  if (dom->is_control_domain() && options_.control_domain_crash_reboots_host) {
    // §5.8: stock Xen assumes a Dom0 failure is critical and reboots the
    // entire host. Xoar removes this assumption.
    host_failed_ = true;
    Audit("HOST REBOOT: control domain failure is fatal in stock Xen");
    return;
  }
  if (dom->alive()) {
    --live_count_;
  }
  dom->set_state(DomainState::kDead);
  dom->grant_table().RevokeAll();
  evtchn_.CloseAll(id);
  m_domains_live_->Set(static_cast<double>(live_count_));
}

// --- Fig 3.1 privilege-assignment API ---------------------------------------

Status Hypervisor::AssignPciDevice(DomainId caller, DomainId target,
                                   const PciSlot& slot) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlSetPrivileges));
  Domain* target_dom = domain(target);
  if (target_dom == nullptr || !target_dom->alive()) {
    return NotFoundError("target domain does not exist");
  }
  // Note: guests may also receive direct device assignment (§4.5.3; the
  // §3.4.2 private-cloud scenario assigns SR-IOV virtual functions straight
  // to user VMs), so there is deliberately no shard-only restriction here.
  // "the hypervisor checks the availability of the device to ensure it is
  // not already assigned to another VM" (§3.1). Resolved through the slot
  // index; an entry whose holder has since died does not block reassignment
  // (the old domain-table scan skipped dead domains too).
  auto assigned = pci_owner_.find(slot);
  if (assigned != pci_owner_.end()) {
    const Domain* holder = domain(assigned->second);
    if (holder != nullptr && holder->alive()) {
      return AlreadyExistsError(StrFormat(
          "PCI device %s already assigned to dom%u", slot.ToString().c_str(),
          assigned->second.value()));
    }
  }
  target_dom->AddPciDevice(slot);
  pci_owner_[slot] = target;
  Audit(StrFormat("assign-pci %s -> dom%u by dom%u", slot.ToString().c_str(),
                  target.value(), caller.value()));
  return Status::Ok();
}

Status Hypervisor::PermitHypercall(DomainId caller, DomainId target,
                                   Hypercall hc) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlSetPrivileges));
  Domain* target_dom = domain(target);
  if (target_dom == nullptr || !target_dom->alive()) {
    return NotFoundError("target domain does not exist");
  }
  if (!target_dom->is_shard() && !target_dom->is_control_domain()) {
    return PermissionDeniedError(
        StrFormat("dom%u is not a shard; cannot whitelist %s", target.value(),
                  std::string(HypercallName(hc)).c_str()));
  }
  target_dom->hypercall_policy().Permit(hc);
  Audit(StrFormat("permit-hypercall %s -> dom%u by dom%u",
                  std::string(HypercallName(hc)).c_str(), target.value(),
                  caller.value()));
  return Status::Ok();
}

Status Hypervisor::AllowDelegation(DomainId caller, DomainId target,
                                   DomainId toolstack) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlDelegate));
  Domain* target_dom = domain(target);
  Domain* ts_dom = domain(toolstack);
  if (target_dom == nullptr || ts_dom == nullptr) {
    return NotFoundError("target or toolstack domain does not exist");
  }
  if (!target_dom->is_shard()) {
    return PermissionDeniedError("only shards can be delegated");
  }
  target_dom->AddDelegation(toolstack);
  Audit(StrFormat("delegate dom%u -> toolstack dom%u by dom%u", target.value(),
                  toolstack.value(), caller.value()));
  return Status::Ok();
}

Status Hypervisor::SetPrivilegedFor(DomainId caller, DomainId subject,
                                    DomainId target) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlSetPrivileges));
  Domain* subject_dom = domain(subject);
  Domain* target_dom = domain(target);
  if (subject_dom == nullptr || target_dom == nullptr) {
    return NotFoundError("subject or target domain does not exist");
  }
  subject_dom->AddPrivilegedFor(target);
  Audit(StrFormat("privileged-for dom%u over dom%u by dom%u", subject.value(),
                  target.value(), caller.value()));
  return Status::Ok();
}

Status Hypervisor::AuthorizeShardUse(DomainId caller, DomainId guest,
                                     DomainId shard) {
  XOAR_RETURN_IF_ERROR(CheckCallerAlive(caller));
  Domain* guest_dom = domain(guest);
  Domain* shard_dom = domain(shard);
  if (guest_dom == nullptr || shard_dom == nullptr) {
    return NotFoundError("guest or shard domain does not exist");
  }
  const Domain* caller_dom = domain(caller);
  if (!caller_dom->is_control_domain()) {
    // §5.6: "A Toolstack can only use shards that have been delegated to it
    // as shared resource providers for VMs that it requests built."
    XOAR_RETURN_IF_ERROR(CheckManagement(caller, guest));
    if (!shard_dom->is_shard()) {
      return PermissionDeniedError(
          StrFormat("dom%u is not a shard and cannot be used as a resource "
                    "provider",
                    shard.value()));
    }
    if (!shard_dom->IsDelegatedTo(caller)) {
      return PermissionDeniedError(
          StrFormat("shard dom%u is not delegated to toolstack dom%u",
                    shard.value(), caller.value()));
    }
  }
  guest_dom->AuthorizeShard(shard);
  Audit(StrFormat("authorize-shard guest=dom%u shard=dom%u by dom%u",
                  guest.value(), shard.value(), caller.value()));
  return Status::Ok();
}

// --- Hardware capabilities ---------------------------------------------------

Status Hypervisor::GrantHwCapability(DomainId caller, DomainId target,
                                     HwCapability cap) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kDomctlSetPrivileges));
  Domain* target_dom = domain(target);
  if (target_dom == nullptr || !target_dom->alive()) {
    return NotFoundError("target domain does not exist");
  }
  DomainId& holder = hw_capability_holder_[static_cast<std::size_t>(cap)];
  if (holder.valid() && holder != target) {
    const Domain* current = domain(holder);
    if (current != nullptr && current->alive()) {
      return AlreadyExistsError(
          StrFormat("capability %s already held by dom%u",
                    std::string(HwCapabilityName(cap)).c_str(), holder.value()));
    }
  }
  holder = target;
  Audit(StrFormat("grant-hw %s -> dom%u by dom%u",
                  std::string(HwCapabilityName(cap)).c_str(), target.value(),
                  caller.value()));
  return Status::Ok();
}

DomainId Hypervisor::HwCapabilityHolder(HwCapability cap) const {
  return hw_capability_holder_[static_cast<std::size_t>(cap)];
}

Status Hypervisor::CheckHwCapability(DomainId caller, HwCapability cap) const {
  const Domain* dom = domain(caller);
  if (dom == nullptr || !dom->alive()) {
    return PermissionDeniedError("caller does not exist");
  }
  if (dom->is_control_domain()) {
    return Status::Ok();
  }
  if (hw_capability_holder_[static_cast<std::size_t>(cap)] == caller) {
    return Status::Ok();
  }
  return PermissionDeniedError(
      StrFormat("dom%u does not hold hardware capability %s", caller.value(),
                std::string(HwCapabilityName(cap)).c_str()));
}

// --- Memory -------------------------------------------------------------------

StatusOr<Pfn> Hypervisor::PopulateDomainMemory(DomainId caller, DomainId target,
                                               std::uint64_t bytes) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kForeignMemoryMap));
  Domain* dom = domain(target);
  if (dom == nullptr) {
    return NotFoundError("target domain does not exist");
  }
  return memory_.AllocatePages(target, (bytes + kPageSize - 1) / kPageSize);
}

StatusOr<MappedPage> Hypervisor::ForeignMap(DomainId caller, DomainId target,
                                            Pfn pfn) {
  XOAR_RETURN_IF_ERROR(CheckCallerAlive(caller));
  const Domain* caller_dom = domain(caller);
  const Domain* target_dom = domain(target);
  if (target_dom == nullptr) {
    return NotFoundError("target domain does not exist");
  }
  // Three ways in: full control domain, the Builder-class whitelist, or a
  // per-guest privileged-for flag (QemuVM DMA, §5.6).
  const bool allowed =
      caller_dom->is_control_domain() ||
      (caller_dom->is_shard() &&
       caller_dom->hypercall_policy().Permits(Hypercall::kForeignMemoryMap)) ||
      caller_dom->IsPrivilegedFor(target);
  ++hypercall_counts_[static_cast<std::size_t>(Hypercall::kForeignMemoryMap)];
  m_hypercalls_->Increment();
  if (!allowed) {
    ++denied_;
    m_denied_->Increment();
    Audit(StrFormat("DENY foreign-map dom%u -> dom%u pfn=%llu", caller.value(),
                    target.value(),
                    static_cast<unsigned long long>(pfn.value())));
    return PermissionDeniedError(
        StrFormat("dom%u may not map memory of dom%u", caller.value(),
                  target.value()));
  }
  if (!memory_.IsOwnedBy(pfn, target)) {
    return PermissionDeniedError(
        StrFormat("pfn %llu is not owned by dom%u",
                  static_cast<unsigned long long>(pfn.value()), target.value()));
  }
  std::byte* data = memory_.PageData(pfn);
  return MappedPage{pfn, data, /*writable=*/true};
}

Status Hypervisor::BalloonDown(DomainId caller, std::uint64_t mb) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kMemoryOp));
  Domain* dom = domain(caller);
  const std::uint64_t pages = mb * kMiB / kPageSize;
  constexpr std::uint64_t kFloorPages = 16 * kMiB / kPageSize;
  if (pages == 0 || dom->page_count() < pages + kFloorPages) {
    return InvalidArgumentError(
        StrFormat("dom%u cannot balloon %llu MB below its %u MB floor",
                  caller.value(), static_cast<unsigned long long>(mb), 16));
  }
  // The guest surrenders the tail of its primary allocation.
  const Pfn tail(dom->first_pfn().value() + dom->page_count() - pages);
  XOAR_RETURN_IF_ERROR(memory_.FreeSpecificPages(caller, tail, pages));
  dom->SetMemoryRange(dom->first_pfn(), dom->page_count() - pages);
  dom->set_ballooned_out_pages(dom->ballooned_out_pages() + pages);
  Audit(StrFormat("balloon-down dom%u by %lluMB", caller.value(),
                  static_cast<unsigned long long>(mb)));
  return Status::Ok();
}

Status Hypervisor::BalloonUp(DomainId caller, std::uint64_t mb) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kMemoryOp));
  Domain* dom = domain(caller);
  const std::uint64_t pages = mb * kMiB / kPageSize;
  if (pages == 0 || pages > dom->ballooned_out_pages()) {
    return InvalidArgumentError(
        StrFormat("dom%u may only reclaim memory it ballooned out",
                  caller.value()));
  }
  // Reclaimed pages come from the free pool as a fresh extent; the
  // domain's allocation is no longer physically contiguous, which nothing
  // in the model depends on.
  XOAR_ASSIGN_OR_RETURN(Pfn extent, memory_.AllocatePages(caller, pages));
  (void)extent;
  dom->SetMemoryRange(dom->first_pfn(), dom->page_count() + pages);
  dom->set_ballooned_out_pages(dom->ballooned_out_pages() - pages);
  Audit(StrFormat("balloon-up dom%u by %lluMB", caller.value(),
                  static_cast<unsigned long long>(mb)));
  return Status::Ok();
}

// --- Grant table ops ---------------------------------------------------------

StatusOr<GrantRef> Hypervisor::GrantAccess(DomainId caller, DomainId grantee,
                                           Pfn pfn, bool writable) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kGrantTableOp));
  XOAR_RETURN_IF_ERROR(CheckIvcAllowed(caller, grantee));
  Domain* caller_dom = domain(caller);
  if (!memory_.IsOwnedBy(pfn, caller)) {
    return PermissionDeniedError(
        StrFormat("dom%u cannot grant pfn %llu it does not own",
                  caller.value(), static_cast<unsigned long long>(pfn.value())));
  }
  m_grant_creates_->Increment();
  obs_->tracer().Op(TraceCategory::kGrant, "grant_access", caller.value());
  return caller_dom->grant_table().CreateGrant(grantee, pfn, writable);
}

StatusOr<MappedPage> Hypervisor::MapGrant(DomainId caller, DomainId owner,
                                          GrantRef ref) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kGrantTableOp));
  XOAR_RETURN_IF_ERROR(CheckIvcAllowed(caller, owner));
  Domain* owner_dom = domain(owner);
  if (owner_dom == nullptr || !owner_dom->alive()) {
    return NotFoundError("grant owner does not exist");
  }
  XOAR_ASSIGN_OR_RETURN(GrantEntry entry, owner_dom->grant_table().Lookup(ref));
  if (entry.grantee != caller) {
    ++denied_;
    Audit(StrFormat("DENY grant-map dom%u tried ref %u of dom%u (grantee "
                    "dom%u)",
                    caller.value(), ref.value(), owner.value(),
                    entry.grantee.value()));
    return PermissionDeniedError(
        StrFormat("grant ref %u of dom%u is for dom%u, not dom%u", ref.value(),
                  owner.value(), entry.grantee.value(), caller.value()));
  }
  if (grant_map_fault_hook_ && grant_map_fault_hook_(caller, owner)) {
    return UnavailableError(
        StrFormat("grant map of ref %u failed (injected fault)", ref.value()));
  }
  XOAR_RETURN_IF_ERROR(owner_dom->grant_table().NoteMapped(ref));
  m_grant_maps_->Increment();
  obs_->tracer().Op(TraceCategory::kGrant, "grant_map", caller.value());
  std::byte* data = memory_.PageData(entry.pfn);
  return MappedPage{entry.pfn, data, entry.writable};
}

Status Hypervisor::UnmapGrant(DomainId caller, DomainId owner, GrantRef ref) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kGrantTableOp));
  Domain* owner_dom = domain(owner);
  if (owner_dom == nullptr) {
    return NotFoundError("grant owner does not exist");
  }
  m_grant_unmaps_->Increment();
  obs_->tracer().Op(TraceCategory::kGrant, "grant_unmap", caller.value());
  return owner_dom->grant_table().NoteUnmapped(ref);
}

Status Hypervisor::EndGrantAccess(DomainId caller, GrantRef ref) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kGrantTableOp));
  return domain(caller)->grant_table().EndAccess(ref);
}

// --- Event channel ops -------------------------------------------------------

StatusOr<EvtchnPort> Hypervisor::EvtchnAllocUnbound(DomainId caller,
                                                    DomainId remote) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kEventChannelOp));
  XOAR_RETURN_IF_ERROR(CheckIvcAllowed(caller, remote));
  return evtchn_.AllocUnbound(caller, remote);
}

StatusOr<EvtchnPort> Hypervisor::EvtchnBindInterdomain(DomainId caller,
                                                       DomainId remote,
                                                       EvtchnPort remote_port) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kEventChannelOp));
  XOAR_RETURN_IF_ERROR(CheckIvcAllowed(caller, remote));
  return evtchn_.BindInterdomain(caller, remote, remote_port);
}

Status Hypervisor::EvtchnSend(DomainId caller, EvtchnPort port) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kEventChannelOp));
  return evtchn_.Send(caller, port);
}

Status Hypervisor::EvtchnSetHandler(DomainId caller, EvtchnPort port,
                                    EventChannelManager::Handler handler) {
  XOAR_RETURN_IF_ERROR(CheckCallerAlive(caller));
  return evtchn_.SetHandler(caller, port, std::move(handler));
}

Status Hypervisor::EvtchnClose(DomainId caller, EvtchnPort port) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kEventChannelOp));
  return evtchn_.Close(caller, port);
}

StatusOr<EvtchnPort> Hypervisor::BindVirq(DomainId caller, Virq virq) {
  XOAR_RETURN_IF_ERROR(CheckHypercall(caller, Hypercall::kVirqBind));
  // The console VIRQ goes to whichever domain holds the serial console
  // capability (§5.8); stock Xen hard-codes Dom0.
  if (virq == Virq::kConsole) {
    XOAR_RETURN_IF_ERROR(CheckHwCapability(caller, HwCapability::kSerialConsole));
  }
  return evtchn_.BindVirq(caller, virq);
}

Status Hypervisor::RaiseVirq(DomainId target, Virq virq) {
  return evtchn_.RaiseVirq(target, virq);
}

std::uint64_t Hypervisor::TotalHypercalls() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : hypercall_counts_) {
    total += c;
  }
  return total;
}

}  // namespace xoar
