// Shared-memory I/O rings (§4.3), modeled on Xen's public/io/ring.h.
//
// A ring lives inside a single granted page: a small header of producer and
// consumer indices followed by fixed-size request and response arrays. The
// frontend and backend each construct an IoRing view over the *same* page
// bytes (obtained via grant mapping), so index updates are naturally visible
// to the peer — exactly the shared-page protocol real split drivers use.
// Notifications travel separately over an event channel.
#ifndef XOAR_SRC_HV_IO_RING_H_
#define XOAR_SRC_HV_IO_RING_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>

#include "src/base/units.h"

namespace xoar {

namespace ring_detail {
struct RingHeader {
  std::uint32_t req_prod;
  std::uint32_t req_cons;
  std::uint32_t rsp_prod;
  std::uint32_t rsp_cons;
};
}  // namespace ring_detail

// View over a ring in `page` (kPageSize bytes). Req and Rsp must be
// trivially copyable PODs small enough that kEntries of each fit in a page.
template <typename Req, typename Rsp, std::size_t kEntriesParam = 32>
class IoRing {
 public:
  static constexpr std::size_t kEntries = kEntriesParam;

  static_assert(std::is_trivially_copyable_v<Req>);
  static_assert(std::is_trivially_copyable_v<Rsp>);
  static_assert(sizeof(ring_detail::RingHeader) +
                        kEntries * (sizeof(Req) + sizeof(Rsp)) <=
                    kPageSize,
                "ring layout does not fit in one page");

  // Wraps an existing ring without touching its indices (backend attach).
  static IoRing Attach(std::byte* page) { return IoRing(page); }

  // Zeroes the indices and wraps (frontend initialization).
  static IoRing Create(std::byte* page) {
    std::memset(page, 0, sizeof(ring_detail::RingHeader));
    return IoRing(page);
  }

  // --- Frontend side ---

  bool PushRequest(const Req& req) {
    if (FullRequests()) {
      return false;
    }
    RequestAt(header()->req_prod % kEntries) = req;
    ++header()->req_prod;
    return true;
  }

  std::optional<Rsp> PopResponse() {
    if (header()->rsp_cons == header()->rsp_prod) {
      return std::nullopt;
    }
    Rsp rsp = ResponseAt(header()->rsp_cons % kEntries);
    ++header()->rsp_cons;
    return rsp;
  }

  // --- Backend side ---

  std::optional<Req> PopRequest() {
    if (header()->req_cons == header()->req_prod) {
      return std::nullopt;
    }
    Req req = RequestAt(header()->req_cons % kEntries);
    ++header()->req_cons;
    return req;
  }

  bool PushResponse(const Rsp& rsp) {
    if (FullResponses()) {
      return false;
    }
    ResponseAt(header()->rsp_prod % kEntries) = rsp;
    ++header()->rsp_prod;
    return true;
  }

  // --- Introspection ---

  std::uint32_t PendingRequests() const {
    return header()->req_prod - header()->req_cons;
  }
  std::uint32_t PendingResponses() const {
    return header()->rsp_prod - header()->rsp_cons;
  }
  bool FullRequests() const { return PendingRequests() >= kEntries; }
  bool FullResponses() const { return PendingResponses() >= kEntries; }
  std::uint32_t FreeRequestSlots() const { return kEntries - PendingRequests(); }

 private:
  explicit IoRing(std::byte* page) : page_(page) {}

  ring_detail::RingHeader* header() {
    return reinterpret_cast<ring_detail::RingHeader*>(page_);
  }
  const ring_detail::RingHeader* header() const {
    return reinterpret_cast<const ring_detail::RingHeader*>(page_);
  }
  Req& RequestAt(std::size_t i) {
    return *reinterpret_cast<Req*>(page_ + sizeof(ring_detail::RingHeader) +
                                   i * sizeof(Req));
  }
  const Req& RequestAt(std::size_t i) const {
    return *reinterpret_cast<const Req*>(
        page_ + sizeof(ring_detail::RingHeader) + i * sizeof(Req));
  }
  Rsp& ResponseAt(std::size_t i) {
    return *reinterpret_cast<Rsp*>(page_ + sizeof(ring_detail::RingHeader) +
                                   kEntries * sizeof(Req) + i * sizeof(Rsp));
  }
  const Rsp& ResponseAt(std::size_t i) const {
    return *reinterpret_cast<const Rsp*>(page_ +
                                         sizeof(ring_detail::RingHeader) +
                                         kEntries * sizeof(Req) +
                                         i * sizeof(Rsp));
  }

  std::byte* page_;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_IO_RING_H_
