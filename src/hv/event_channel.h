// Event channels (§4.2): data-free signalling between domains and from the
// hypervisor (VIRQs).
//
// Bi-directional interdomain channels connect two (domain, port) endpoints;
// a Send on one side schedules the registered handler on the other after a
// small delivery latency. Uni-directional VIRQs deliver virtualized hardware
// interrupts. Handlers model the guest kernel's upcall path.
#ifndef XOAR_SRC_HV_EVENT_CHANNEL_H_
#define XOAR_SRC_HV_EVENT_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"

namespace xoar {

enum class Virq : std::uint8_t {
  kConsole = 0,  // serial console input, owned by the hypervisor
  kTimer,
  kDebug,
  kDomExc,  // domain exception (crash notification to the control plane)
  kCount,
};

std::string_view VirqName(Virq virq);

// Latency from evtchn_send to the peer's handler running.
constexpr SimDuration kEventDeliveryLatency = 1 * kMicrosecond;

// What a fault-injection hook may do to one Send() (src/fault). kDrop
// silently loses the notification — the sender still sees success, which is
// exactly what a lost interrupt looks like; kDelay adds extra_delay to the
// delivery latency.
enum class SendFaultAction { kDeliver, kDrop, kDelay };

struct SendFaultDecision {
  SendFaultAction action = SendFaultAction::kDeliver;
  SimDuration extra_delay = 0;  // only read for kDelay
};

class EventChannelManager {
 public:
  using Handler = std::function<void()>;

  // Fault-injection hook, consulted once per Send() after all state checks
  // pass (DESIGN.md §5c: injection sites sit after validation so error
  // semantics stay unchanged). Must not call back into the manager. Unset
  // or returning kDeliver means normal delivery.
  using SendFaultHook =
      std::function<SendFaultDecision(DomainId caller, EvtchnPort port)>;

  // `obs` receives `hv.evtchn.*` counters and kEvtchn trace instants;
  // nullptr falls back to Obs::Global().
  explicit EventChannelManager(Simulator* sim, Obs* obs = nullptr)
      : sim_(sim),
        obs_(Obs::OrGlobal(obs)),
        m_sends_(obs_->metrics().GetCounter("hv.evtchn.sends")),
        m_deliveries_(obs_->metrics().GetCounter("hv.evtchn.deliveries")) {}

  // Allocates an unbound port on `owner` that only `remote` may bind.
  StatusOr<EvtchnPort> AllocUnbound(DomainId owner, DomainId remote);

  // Binds a local port on `caller` to an unbound port `remote_port` on
  // `remote`. Completes the interdomain pair.
  StatusOr<EvtchnPort> BindInterdomain(DomainId caller, DomainId remote,
                                       EvtchnPort remote_port);

  // Binds a VIRQ to a fresh local port.
  StatusOr<EvtchnPort> BindVirq(DomainId domain, Virq virq);

  // Registers the upcall handler for a local port.
  Status SetHandler(DomainId domain, EvtchnPort port, Handler handler);

  // Signals the peer of an interdomain channel.
  Status Send(DomainId caller, EvtchnPort port);

  // Raises a VIRQ into `domain` if it has bound one.
  Status RaiseVirq(DomainId domain, Virq virq);

  // Closes a local port; the peer end (if any) is marked broken so later
  // sends fail with UNAVAILABLE — this is what a frontend observes when its
  // backend reboots, triggering reconnection (§3.3).
  Status Close(DomainId domain, EvtchnPort port);

  // Closes every port of `domain` (domain destruction / microreboot).
  int CloseAll(DomainId domain);

  // True if the channel exists and is connected to a live peer.
  bool IsConnected(DomainId domain, EvtchnPort port) const;

  void set_send_fault_hook(SendFaultHook hook) {
    send_fault_hook_ = std::move(hook);
  }

  std::uint64_t sends() const { return sends_; }
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  enum class ChannelState { kUnbound, kConnected, kVirq, kBroken };

  struct Channel {
    ChannelState state = ChannelState::kUnbound;
    DomainId remote;          // peer domain (or allowed binder while unbound)
    EvtchnPort remote_port;   // peer port when connected
    Virq virq = Virq::kCount;
    Handler handler;
  };

  using Key = std::pair<std::uint32_t, std::uint32_t>;  // (domain, port)

  Channel* Find(DomainId domain, EvtchnPort port);
  const Channel* Find(DomainId domain, EvtchnPort port) const;
  EvtchnPort NextPort(DomainId domain);

  Simulator* sim_;
  Obs* obs_;
  Counter* m_sends_;       // hv.evtchn.sends
  Counter* m_deliveries_;  // hv.evtchn.deliveries
  SendFaultHook send_fault_hook_;
  // Keyed (domain, port): one domain's channels are contiguous, so per-domain
  // teardown is a range erase, not a walk of every channel on the host.
  std::map<Key, Channel> channels_;
  // (domain, virq) -> bound port, so VIRQ raise/duplicate checks are lookups.
  std::map<Key, std::uint32_t> virq_ports_;
  std::map<std::uint32_t, std::uint32_t> next_port_;
  std::uint64_t sends_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_EVENT_CHANNEL_H_
