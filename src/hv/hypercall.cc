#include "src/hv/hypercall.h"

namespace xoar {

std::string_view HypercallName(Hypercall hc) {
  switch (hc) {
    case Hypercall::kEventChannelOp:
      return "event_channel_op";
    case Hypercall::kGrantTableOp:
      return "grant_table_op";
    case Hypercall::kSchedOp:
      return "sched_op";
    case Hypercall::kXenVersion:
      return "xen_version";
    case Hypercall::kConsoleIo:
      return "console_io";
    case Hypercall::kMemoryOp:
      return "memory_op";
    case Hypercall::kDomctlCreate:
      return "domctl_create";
    case Hypercall::kDomctlDestroy:
      return "domctl_destroy";
    case Hypercall::kDomctlPause:
      return "domctl_pause";
    case Hypercall::kDomctlUnpause:
      return "domctl_unpause";
    case Hypercall::kDomctlSetPrivileges:
      return "domctl_set_privileges";
    case Hypercall::kDomctlDelegate:
      return "domctl_delegate";
    case Hypercall::kForeignMemoryMap:
      return "foreign_memory_map";
    case Hypercall::kSetupGuestRings:
      return "setup_guest_rings";
    case Hypercall::kPhysdevOp:
      return "physdev_op";
    case Hypercall::kPciConfigOp:
      return "pci_config_op";
    case Hypercall::kSysctlReboot:
      return "sysctl_reboot";
    case Hypercall::kSnapshotOp:
      return "snapshot_op";
    case Hypercall::kVirqBind:
      return "virq_bind";
    case Hypercall::kCount:
      break;
  }
  return "unknown";
}

}  // namespace xoar
