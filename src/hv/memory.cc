#include "src/hv/memory.h"

#include <cstring>

#include "src/base/strings.h"

namespace xoar {

StatusOr<Pfn> MemoryManager::AllocatePages(DomainId owner, std::uint64_t count) {
  if (count == 0) {
    return InvalidArgumentError("cannot allocate zero pages");
  }
  if (!owner.valid()) {
    return InvalidArgumentError("invalid owner domain");
  }
  if (count > free_pages_) {
    return ResourceExhaustedError(
        StrFormat("out of memory: want %llu pages, %llu free",
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(free_pages_)));
  }
  const std::uint64_t first = next_pfn_;
  for (std::uint64_t i = 0; i < count; ++i) {
    frames_.emplace(next_pfn_ + i, Frame{owner, nullptr});
  }
  next_pfn_ += count;
  free_pages_ -= count;
  owned_count_[owner] += count;
  return Pfn(first);
}

std::uint64_t MemoryManager::FreeDomainPages(DomainId owner) {
  std::uint64_t freed = 0;
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.owner == owner) {
      it = frames_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  free_pages_ += freed;
  owned_count_.erase(owner);
  return freed;
}

Status MemoryManager::FreeSpecificPages(DomainId owner, Pfn first,
                                        std::uint64_t count) {
  // Validate the whole range before mutating anything.
  for (std::uint64_t i = 0; i < count; ++i) {
    auto it = frames_.find(first.value() + i);
    if (it == frames_.end() || it->second.owner != owner) {
      return PermissionDeniedError(
          StrFormat("pfn %llu is not owned by dom%u",
                    static_cast<unsigned long long>(first.value() + i),
                    owner.value()));
    }
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    frames_.erase(first.value() + i);
  }
  free_pages_ += count;
  owned_count_[owner] -= count;
  return Status::Ok();
}

StatusOr<DomainId> MemoryManager::OwnerOf(Pfn pfn) const {
  auto it = frames_.find(pfn.value());
  if (it == frames_.end()) {
    return NotFoundError(StrFormat("pfn %llu not allocated",
                                   static_cast<unsigned long long>(pfn.value())));
  }
  return it->second.owner;
}

bool MemoryManager::IsOwnedBy(Pfn pfn, DomainId domain) const {
  auto it = frames_.find(pfn.value());
  return it != frames_.end() && it->second.owner == domain;
}

std::byte* MemoryManager::PageData(Pfn pfn) {
  auto it = frames_.find(pfn.value());
  if (it == frames_.end()) {
    return nullptr;
  }
  if (!it->second.data) {
    it->second.data = std::make_unique<std::byte[]>(kPageSize);
    std::memset(it->second.data.get(), 0, kPageSize);
  }
  return it->second.data.get();
}

std::uint64_t MemoryManager::PagesOwnedBy(DomainId owner) const {
  auto it = owned_count_.find(owner);
  return it == owned_count_.end() ? 0 : it->second;
}

}  // namespace xoar
