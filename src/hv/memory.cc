#include "src/hv/memory.h"

#include <cstring>

#include "src/base/strings.h"

namespace xoar {

std::map<std::uint64_t, MemoryManager::Extent>::const_iterator
MemoryManager::FindExtent(std::uint64_t pfn) const {
  auto it = extents_.upper_bound(pfn);
  if (it == extents_.begin()) {
    return extents_.end();
  }
  --it;
  if (pfn >= it->first + it->second.count) {
    return extents_.end();
  }
  return it;
}

void MemoryManager::DropPageData(std::uint64_t first, std::uint64_t count) {
  auto it = page_data_.lower_bound(first);
  while (it != page_data_.end() && it->first < first + count) {
    it = page_data_.erase(it);
  }
}

StatusOr<Pfn> MemoryManager::AllocatePages(DomainId owner, std::uint64_t count) {
  if (count == 0) {
    return InvalidArgumentError("cannot allocate zero pages");
  }
  if (!owner.valid()) {
    return InvalidArgumentError("invalid owner domain");
  }
  if (count > free_pages_) {
    return ResourceExhaustedError(
        StrFormat("out of memory: want %llu pages, %llu free",
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(free_pages_)));
  }
  const std::uint64_t first = next_pfn_;
  extents_.emplace(first, Extent{count, owner});
  owner_extents_[owner].insert(first);
  next_pfn_ += count;
  free_pages_ -= count;
  owned_count_[owner] += count;
  return Pfn(first);
}

std::uint64_t MemoryManager::FreeDomainPages(DomainId owner) {
  std::uint64_t freed = 0;
  auto owned = owner_extents_.find(owner);
  if (owned != owner_extents_.end()) {
    for (std::uint64_t start : owned->second) {
      auto it = extents_.find(start);
      freed += it->second.count;
      DropPageData(start, it->second.count);
      extents_.erase(it);
    }
    owner_extents_.erase(owned);
  }
  free_pages_ += freed;
  owned_count_.erase(owner);
  return freed;
}

Status MemoryManager::FreeSpecificPages(DomainId owner, Pfn first,
                                        std::uint64_t count) {
  // Validate the whole range before mutating anything: it must be fully
  // covered by extents, all owned by `owner`. The range may span several
  // extents (adjacent allocations are contiguous because frames are handed
  // out monotonically).
  std::uint64_t pfn = first.value();
  const std::uint64_t end = first.value() + count;
  while (pfn < end) {
    auto it = FindExtent(pfn);
    if (it == extents_.end() || it->second.owner != owner) {
      return PermissionDeniedError(
          StrFormat("pfn %llu is not owned by dom%u",
                    static_cast<unsigned long long>(pfn), owner.value()));
    }
    pfn = it->first + it->second.count;
  }

  // Carve [first, end) out of each overlapping extent, keeping any head or
  // tail remainder as a fresh extent.
  pfn = first.value();
  while (pfn < end) {
    auto it = extents_.upper_bound(pfn);
    --it;
    const std::uint64_t ext_start = it->first;
    const std::uint64_t ext_end = ext_start + it->second.count;
    auto& starts = owner_extents_[owner];
    extents_.erase(it);
    starts.erase(ext_start);
    if (ext_start < pfn) {
      extents_.emplace(ext_start, Extent{pfn - ext_start, owner});
      starts.insert(ext_start);
    }
    if (ext_end > end) {
      extents_.emplace(end, Extent{ext_end - end, owner});
      starts.insert(end);
    }
    const std::uint64_t removed_end = ext_end < end ? ext_end : end;
    DropPageData(pfn, removed_end - pfn);
    pfn = ext_end;
  }
  free_pages_ += count;
  owned_count_[owner] -= count;
  return Status::Ok();
}

StatusOr<DomainId> MemoryManager::OwnerOf(Pfn pfn) const {
  auto it = FindExtent(pfn.value());
  if (it == extents_.end()) {
    return NotFoundError(StrFormat("pfn %llu not allocated",
                                   static_cast<unsigned long long>(pfn.value())));
  }
  return it->second.owner;
}

bool MemoryManager::IsOwnedBy(Pfn pfn, DomainId domain) const {
  auto it = FindExtent(pfn.value());
  return it != extents_.end() && it->second.owner == domain;
}

std::byte* MemoryManager::PageData(Pfn pfn) {
  if (FindExtent(pfn.value()) == extents_.end()) {
    return nullptr;
  }
  auto it = page_data_.find(pfn.value());
  if (it == page_data_.end()) {
    auto data = std::make_unique<std::byte[]>(kPageSize);
    std::memset(data.get(), 0, kPageSize);
    it = page_data_.emplace(pfn.value(), std::move(data)).first;
  }
  return it->second.get();
}

std::uint64_t MemoryManager::PagesOwnedBy(DomainId owner) const {
  auto it = owned_count_.find(owner);
  return it == owned_count_.end() ? 0 : it->second;
}

}  // namespace xoar
