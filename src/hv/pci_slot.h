// PCI device addressing as used by the Fig 3.1 privilege-assignment API:
// assign_pci_device(PCI domain, bus, slot).
#ifndef XOAR_SRC_HV_PCI_SLOT_H_
#define XOAR_SRC_HV_PCI_SLOT_H_

#include <cstdint>
#include <ostream>
#include <tuple>

#include "src/base/strings.h"

namespace xoar {

struct PciSlot {
  std::uint16_t pci_domain = 0;
  std::uint8_t bus = 0;
  std::uint8_t slot = 0;

  friend bool operator==(const PciSlot& a, const PciSlot& b) {
    return std::tie(a.pci_domain, a.bus, a.slot) ==
           std::tie(b.pci_domain, b.bus, b.slot);
  }
  friend bool operator<(const PciSlot& a, const PciSlot& b) {
    return std::tie(a.pci_domain, a.bus, a.slot) <
           std::tie(b.pci_domain, b.bus, b.slot);
  }

  std::string ToString() const {
    return StrFormat("%04x:%02x:%02x", pci_domain, bus, slot);
  }

  friend std::ostream& operator<<(std::ostream& os, const PciSlot& s) {
    return os << s.ToString();
  }
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_PCI_SLOT_H_
