// Grant tables (§4.3): page-granularity capability-style memory sharing.
//
// A domain exports a page by creating a grant entry naming a specific
// grantee; the grantee redeems the GrantRef through the hypervisor, which
// audits the mapping against the table. Revocation (end-access) fails while
// mappings are outstanding, matching Xen's behaviour.
#ifndef XOAR_SRC_HV_GRANT_TABLE_H_
#define XOAR_SRC_HV_GRANT_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"

namespace xoar {

struct GrantEntry {
  DomainId grantee;
  Pfn pfn;
  bool writable = false;
  bool in_use = false;
  int map_count = 0;
};

class GrantTable {
 public:
  // Creates an entry allowing `grantee` to map `pfn`.
  StatusOr<GrantRef> CreateGrant(DomainId grantee, Pfn pfn, bool writable);

  // Read-only view of an active entry.
  StatusOr<GrantEntry> Lookup(GrantRef ref) const;

  // Mapping bookkeeping, called by the hypervisor on map/unmap.
  Status NoteMapped(GrantRef ref);
  Status NoteUnmapped(GrantRef ref);

  // Revokes an entry. Fails with FAILED_PRECONDITION while mapped.
  Status EndAccess(GrantRef ref);

  // Force-revokes everything (domain destruction); returns how many entries
  // were still mapped — a nonzero value indicates a peer held a dangling
  // mapping, which the hypervisor must tear down.
  int RevokeAll();

  std::size_t ActiveEntries() const;

 private:
  std::vector<GrantEntry> entries_;
};

}  // namespace xoar

#endif  // XOAR_SRC_HV_GRANT_TABLE_H_
