// Structural first-divergence diffing of journals (DEBUGGING.md).
//
// A golden digest can only say "these two runs differ"; the differ says
// *where*: the earliest `(when, seq)` at which two journals disagree, with
// the N preceding records from each side so the reader sees the last agreed
// history leading into the split. The same report type is produced live by
// the replay verifier (src/replay/verify.h), which additionally knows the
// human-readable names of the run it is observing.
#ifndef XOAR_SRC_REPLAY_DIFF_H_
#define XOAR_SRC_REPLAY_DIFF_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/replay/journal.h"

namespace xoar {

// How two event streams disagree at one position. Sides are "a" (the
// reference/expected journal) and "b" (the other journal, or the live run
// under verification). has_a/has_b are false when that side simply ended —
// a prefix relationship is still a divergence, at the shorter length.
struct DivergenceReport {
  bool diverged = false;
  std::size_t index = 0;  // first disagreeing position (record index)
  bool has_a = false;
  bool has_b = false;
  JournalRecord a{};
  JournalRecord b{};
  // Up to `context` records preceding `index` on each side (oldest first).
  // Until the divergence the sides agree, so the two vectors are equal for
  // a journal/journal diff; the live verifier keeps side b anyway because
  // it can attach names to it.
  std::vector<JournalRecord> a_context;
  std::vector<JournalRecord> b_context;
  // Live verification only: the name of the diverging event and of the
  // b_context events (parallel vector), recovered from the run being
  // verified. Empty for a journal/journal diff — names are not journaled
  // (DESIGN.md §5h).
  std::string b_name;
  std::vector<std::string> b_context_names;

  // Human-readable multi-line report: the verdict line naming the exact
  // (when, seq), then the context table from each side.
  std::string ToString(std::string_view a_label = "expected",
                       std::string_view b_label = "actual") const;
};

// "t=+1.234567ms seq=42 shard=dom7 kind=xenstore phase=op payload=0x...".
std::string FormatJournalRecord(const JournalRecord& record);

// Compares two journals and reports the earliest position where they
// disagree, with up to `context` preceding records per side. Identical
// journals (including both empty) return diverged=false.
DivergenceReport DiffJournals(const Journal& a, const Journal& b,
                              std::size_t context = 8);

}  // namespace xoar

#endif  // XOAR_SRC_REPLAY_DIFF_H_
