// Deterministic record/replay event journal (DEBUGGING.md, DESIGN.md §5h).
//
// A Journal is the recorded execution of one run: every event the src/obs
// tracer observed, reduced to a fixed-size 32-byte record
// `(when, seq, shard, kind, phase, payload-hash)` and FNV-1a-chained exactly
// like the secure audit log (the fold is the shared `ChainNext` in
// src/base/hash_chain.h). Because the whole platform is a deterministic
// discrete-event simulation, re-executing the same seed + FaultPlan must
// reproduce the identical record stream — the replay verifier
// (src/replay/verify.h) checks that event by event, and the structural
// differ (src/replay/diff.h) explains how two journals disagree.
//
// What is journaled: the trace stream — hypercalls, event-channel traffic,
// grant ops, XenStore ops, boot phases, microreboot windows, scheduler
// epochs, driver negotiation, and every watchdog *decision* (detection,
// escalation grade, quarantine). What is not: event names and arguments are
// stored only as a 64-bit payload hash, which keeps records fixed-size and
// the append path allocation-free; the journal pinpoints *where* two runs
// diverge, and the live run being verified supplies the human-readable
// context at that point (see ReplayVerifier).
//
// Storage: records append into 2 MB chunks (64 Ki records each) that are
// huge-page-aligned and madvise'd as huge-page candidates, mirroring the
// simulator slab (DESIGN.md §5f) — a multi-million-event campaign journal
// stays sequential and TLB-cheap. The on-disk format is little-endian,
// versioned, and closed by the chain head, so truncation or any flipped
// byte is rejected at load time.
#ifndef XOAR_SRC_REPLAY_JOURNAL_H_
#define XOAR_SRC_REPLAY_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/obs/trace.h"

namespace xoar {

// One journaled event. POD, exactly 32 bytes, serialized field-by-field in
// little-endian order (never memcpy'd as a struct), so the on-disk format
// does not depend on host padding.
struct JournalRecord {
  SimTime when = 0;               // simulated timestamp (TraceEvent::ts)
  std::uint64_t seq = 0;          // global trace order (TraceEvent::seq)
  std::uint32_t shard = 0;        // track, by convention a DomainId value
  std::uint8_t kind = 0;          // TraceCategory
  std::uint8_t phase = 0;         // TraceEvent::Phase
  std::uint16_t reserved = 0;     // zero; keeps the record at 32 bytes
  std::uint64_t payload_hash = 0; // FNV-1a over (dur, name)

  // The 32-byte canonical serialization fed to the hash chain and the file.
  static constexpr std::size_t kWireBytes = 32;
  void SerializeTo(char out[kWireBytes]) const;
  static JournalRecord Deserialize(const char in[kWireBytes]);

  friend bool operator==(const JournalRecord& a, const JournalRecord& b) {
    return a.when == b.when && a.seq == b.seq && a.shard == b.shard &&
           a.kind == b.kind && a.phase == b.phase &&
           a.payload_hash == b.payload_hash;
  }
  friend bool operator!=(const JournalRecord& a, const JournalRecord& b) {
    return !(a == b);
  }
};

// Reduces a trace event to its journal record. The payload hash covers the
// span duration and the event name — everything `(when, seq, shard, kind,
// phase)` does not already pin.
JournalRecord RecordFromTraceEvent(const TraceEvent& event);

class Journal {
 public:
  // 64 Ki 32-byte records = one 2 MB huge page per chunk.
  static constexpr std::size_t kRecordsPerChunk = 65536;

  Journal() = default;
  Journal(Journal&&) noexcept = default;
  Journal& operator=(Journal&&) noexcept = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void Append(const JournalRecord& record);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const JournalRecord& operator[](std::size_t i) const {
    return chunks_[i / kRecordsPerChunk].get()[i % kRecordsPerChunk];
  }

  // Running chain head over every appended record (ChainNext fold; 0 when
  // empty). Two byte-identical runs have equal heads — the cheap
  // whole-journal equality check before a structural diff.
  std::uint64_t chain_head() const { return chain_head_; }

  // Free-form metadata recorded alongside the events — the campaign
  // parameters (seed, fault counts, duration) a replay needs to re-execute
  // the run. Keys iterate sorted, so serialization is byte-stable.
  void SetMeta(const std::string& key, const std::string& value) {
    meta_[key] = value;
  }
  // Empty string when absent.
  std::string Meta(const std::string& key) const;
  const std::map<std::string, std::string>& meta() const { return meta_; }

  // On-disk round trip. WriteFile is byte-stable for identical journals;
  // ReadFile re-verifies the hash chain over every record and rejects a
  // truncated or corrupted file with FAILED_PRECONDITION.
  Status WriteFile(const std::string& path) const;
  static StatusOr<Journal> ReadFile(const std::string& path);

  // Test hook: overwrite one record's payload hash and recompute the chain
  // suffix so the journal stays self-consistent — the in-memory analogue of
  // "this run made a different decision at index i", used to prove the
  // verifier halts at exactly that event.
  void TamperForTest(std::size_t index, std::uint64_t new_payload_hash);

 private:
  struct ChunkFree {
    void operator()(JournalRecord* p) const;
  };
  using Chunk = std::unique_ptr<JournalRecord[], ChunkFree>;
  static Chunk AllocChunk();

  std::vector<Chunk> chunks_;
  std::size_t size_ = 0;
  std::uint64_t chain_head_ = 0;
  std::map<std::string, std::string> meta_;
};

}  // namespace xoar

#endif  // XOAR_SRC_REPLAY_JOURNAL_H_
