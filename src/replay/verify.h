// Recording and verifying trace-event streams against a Journal.
//
// Both classes are Tracer sinks (src/obs/trace.h): attach one with
// `tracer.set_sink(...)` before the run starts, and every event the tracer
// records flows through it in order. Both are pure observers — they never
// schedule simulator work or read any clock, so attaching them cannot
// change the execution they observe (the property the whole record/replay
// story rests on; xoar_lint's determinism rule enforces it statically for
// all of src/replay).
//
// JournalRecorder appends each event to a Journal. ReplayVerifier replays
// the other direction: the run executes normally, and each event it
// produces is checked against the next journal record; the first mismatch
// is captured as a DivergenceReport with the N preceding events from both
// sides — including the live run's event *names*, which the journal itself
// does not store — and verification halts (subsequent events are ignored,
// so a diverged run finishes quickly and the report stays pinned to the
// first bad decision).
#ifndef XOAR_SRC_REPLAY_VERIFY_H_
#define XOAR_SRC_REPLAY_VERIFY_H_

#include <cstddef>
#include <deque>
#include <string>

#include "src/replay/diff.h"
#include "src/replay/journal.h"

namespace xoar {

// Appends every observed trace event to `journal` (not owned).
class JournalRecorder : public TraceSink {
 public:
  explicit JournalRecorder(Journal* journal) : journal_(journal) {}

  void OnTraceEvent(const TraceEvent& event) override {
    journal_->Append(RecordFromTraceEvent(event));
  }

 private:
  Journal* journal_;
};

// Verifies a live trace-event stream against `journal` (not owned).
// After the run, call Finish(): a run that produced fewer events than the
// journal promises is a divergence too (the journal side continues where
// the run ended). `complete()` is the all-clear: every journal record was
// matched and nothing extra fired.
class ReplayVerifier : public TraceSink {
 public:
  explicit ReplayVerifier(const Journal* journal, std::size_t context = 8)
      : journal_(journal), context_(context) {}

  void OnTraceEvent(const TraceEvent& event) override;

  // Closes verification: flags journal records the run never produced.
  void Finish();

  bool diverged() const { return report_.diverged; }
  const DivergenceReport& report() const { return report_; }
  // Events matched so far (== journal size after a clean, finished run).
  std::size_t verified() const { return cursor_; }
  bool complete() const {
    return finished_ && !report_.diverged && cursor_ == journal_->size();
  }

 private:
  void CaptureContext();

  const Journal* journal_;
  std::size_t context_;
  std::size_t cursor_ = 0;
  bool finished_ = false;
  DivergenceReport report_;
  // Sliding window of the last `context_` live events (record + name).
  std::deque<JournalRecord> recent_;
  std::deque<std::string> recent_names_;
};

}  // namespace xoar

#endif  // XOAR_SRC_REPLAY_VERIFY_H_
