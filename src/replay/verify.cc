#include "src/replay/verify.h"

namespace xoar {

void ReplayVerifier::OnTraceEvent(const TraceEvent& event) {
  if (report_.diverged) {
    return;  // halted at the first mismatch; ignore the rest of the run
  }
  const JournalRecord actual = RecordFromTraceEvent(event);
  if (cursor_ >= journal_->size()) {
    // The run fired an event past the journal's end.
    report_.diverged = true;
    report_.index = cursor_;
    report_.has_a = false;
    report_.has_b = true;
    report_.b = actual;
    report_.b_name = event.name;
    CaptureContext();
    return;
  }
  const JournalRecord& expected = (*journal_)[cursor_];
  if (actual != expected) {
    report_.diverged = true;
    report_.index = cursor_;
    report_.has_a = true;
    report_.has_b = true;
    report_.a = expected;
    report_.b = actual;
    report_.b_name = event.name;
    CaptureContext();
    return;
  }
  ++cursor_;
  recent_.push_back(actual);
  recent_names_.push_back(event.name);
  if (recent_.size() > context_) {
    recent_.pop_front();
    recent_names_.pop_front();
  }
}

void ReplayVerifier::Finish() {
  finished_ = true;
  if (report_.diverged || cursor_ >= journal_->size()) {
    return;
  }
  // The journal promises more events than the run produced.
  report_.diverged = true;
  report_.index = cursor_;
  report_.has_a = true;
  report_.has_b = false;
  report_.a = (*journal_)[cursor_];
  CaptureContext();
}

void ReplayVerifier::CaptureContext() {
  // Matched history is identical on both sides; side b carries the names.
  const std::size_t first =
      report_.index > context_ ? report_.index - context_ : 0;
  for (std::size_t i = first; i < report_.index; ++i) {
    report_.a_context.push_back((*journal_)[i]);
  }
  report_.b_context.assign(recent_.begin(), recent_.end());
  report_.b_context_names.assign(recent_names_.begin(), recent_names_.end());
}

}  // namespace xoar
