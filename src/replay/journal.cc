#include "src/replay/journal.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "src/base/hash_chain.h"
#include "src/base/strings.h"

namespace xoar {
namespace {

constexpr char kMagic[8] = {'X', 'O', 'A', 'R', 'J', 'N', 'L', '1'};
constexpr std::size_t kChunkBytes =
    Journal::kRecordsPerChunk * sizeof(JournalRecord);

void PutU16(char*& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    *out++ = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}
void PutU32(char*& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    *out++ = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}
void PutU64(char*& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *out++ = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}
std::uint16_t GetU16(const char*& in) {
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(static_cast<unsigned char>(*in++)) << (8 * i);
  }
  return v;
}
std::uint32_t GetU32(const char*& in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(*in++)) << (8 * i);
  }
  return v;
}
std::uint64_t GetU64(const char*& in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*in++)) << (8 * i);
  }
  return v;
}

void AppendU32(std::string* out, std::uint32_t v) {
  char buf[4];
  char* p = buf;
  PutU32(p, v);
  out->append(buf, sizeof(buf));
}
void AppendU64(std::string* out, std::uint64_t v) {
  char buf[8];
  char* p = buf;
  PutU64(p, v);
  out->append(buf, sizeof(buf));
}

}  // namespace

void JournalRecord::SerializeTo(char out[kWireBytes]) const {
  char* p = out;
  PutU64(p, when);
  PutU64(p, seq);
  PutU32(p, shard);
  *p++ = static_cast<char>(kind);
  *p++ = static_cast<char>(phase);
  PutU16(p, 0);  // reserved
  PutU64(p, payload_hash);
}

JournalRecord JournalRecord::Deserialize(const char in[kWireBytes]) {
  const char* p = in;
  JournalRecord r;
  r.when = GetU64(p);
  r.seq = GetU64(p);
  r.shard = GetU32(p);
  r.kind = static_cast<std::uint8_t>(*p++);
  r.phase = static_cast<std::uint8_t>(*p++);
  r.reserved = GetU16(p);
  r.payload_hash = GetU64(p);
  return r;
}

JournalRecord RecordFromTraceEvent(const TraceEvent& event) {
  JournalRecord r;
  r.when = event.ts;
  r.seq = event.seq;
  r.shard = event.track;
  r.kind = static_cast<std::uint8_t>(event.cat);
  r.phase = static_cast<std::uint8_t>(event.phase);
  // Everything (when, seq, shard, kind, phase) does not pin: the span
  // duration and the event name.
  std::string payload;
  payload.reserve(sizeof(std::uint64_t) + event.name.size());
  AppendU64(&payload, event.dur);
  payload.append(event.name);
  r.payload_hash = HashBytes(payload);
  return r;
}

void Journal::ChunkFree::operator()(JournalRecord* p) const {
  std::free(p);
}

Journal::Chunk Journal::AllocChunk() {
  // One chunk spans exactly one 2 MB huge page; ask the kernel to back it
  // with one when transparent huge pages are available. Appends only ever
  // touch the tail chunk, so first-touch stays sequential either way.
  void* p = nullptr;
  if (posix_memalign(&p, kChunkBytes, kChunkBytes) != 0) {
    p = std::malloc(kChunkBytes);  // alignment is an optimization, not a need
  }
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (p != nullptr) {
    madvise(p, kChunkBytes, MADV_HUGEPAGE);
  }
#endif
  return Chunk(static_cast<JournalRecord*>(p));
}

void Journal::Append(const JournalRecord& record) {
  if (size_ % kRecordsPerChunk == 0) {
    chunks_.push_back(AllocChunk());
  }
  JournalRecord& slot =
      chunks_.back().get()[size_ % kRecordsPerChunk];
  slot = record;
  slot.reserved = 0;
  ++size_;
  char wire[JournalRecord::kWireBytes];
  slot.SerializeTo(wire);
  chain_head_ = ChainNext(chain_head_, std::string_view(wire, sizeof(wire)));
}

std::string Journal::Meta(const std::string& key) const {
  auto it = meta_.find(key);
  return it == meta_.end() ? std::string() : it->second;
}

Status Journal::WriteFile(const std::string& path) const {
  std::string out;
  out.reserve(64 + size_ * JournalRecord::kWireBytes);
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, static_cast<std::uint32_t>(meta_.size()));
  for (const auto& [key, value] : meta_) {  // sorted => byte-stable
    AppendU32(&out, static_cast<std::uint32_t>(key.size()));
    out.append(key);
    AppendU32(&out, static_cast<std::uint32_t>(value.size()));
    out.append(value);
  }
  AppendU64(&out, size_);
  AppendU64(&out, chain_head_);
  char wire[JournalRecord::kWireBytes];
  for (std::size_t i = 0; i < size_; ++i) {
    (*this)[i].SerializeTo(wire);
    out.append(wire, sizeof(wire));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InternalError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) {
    return InternalError(StrFormat("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

StatusOr<Journal> Journal::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);

  std::size_t off = 0;
  auto remaining = [&] { return data.size() - off; };
  auto truncated = [&](const char* what) {
    return FailedPreconditionError(
        StrFormat("%s: journal truncated in %s", path.c_str(), what));
  };
  if (remaining() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return FailedPreconditionError(
        StrFormat("%s: not a XOARJNL1 journal", path.c_str()));
  }
  off += sizeof(kMagic);

  Journal journal;
  if (remaining() < 4) {
    return truncated("metadata count");
  }
  const char* p = data.data() + off;
  const std::uint32_t meta_count = GetU32(p);
  off += 4;
  for (std::uint32_t i = 0; i < meta_count; ++i) {
    if (remaining() < 4) {
      return truncated("metadata key length");
    }
    p = data.data() + off;
    const std::uint32_t key_len = GetU32(p);
    off += 4;
    if (remaining() < key_len + 4) {
      return truncated("metadata key");
    }
    std::string key = data.substr(off, key_len);
    off += key_len;
    p = data.data() + off;
    const std::uint32_t value_len = GetU32(p);
    off += 4;
    if (remaining() < value_len) {
      return truncated("metadata value");
    }
    journal.meta_[std::move(key)] = data.substr(off, value_len);
    off += value_len;
  }
  if (remaining() < 16) {
    return truncated("record header");
  }
  p = data.data() + off;
  const std::uint64_t record_count = GetU64(p);
  const std::uint64_t stored_head = GetU64(p);
  off += 16;
  if (record_count > remaining() / JournalRecord::kWireBytes ||
      remaining() != record_count * JournalRecord::kWireBytes) {
    return FailedPreconditionError(StrFormat(
        "%s: journal truncated or padded: header promises %llu records "
        "(%llu bytes) but %zu bytes follow",
        path.c_str(), static_cast<unsigned long long>(record_count),
        static_cast<unsigned long long>(record_count *
                                        JournalRecord::kWireBytes),
        remaining()));
  }
  for (std::uint64_t i = 0; i < record_count; ++i) {
    journal.Append(JournalRecord::Deserialize(data.data() + off));
    off += JournalRecord::kWireBytes;
  }
  // The chain re-folded over every record must land on the stored head; a
  // single flipped byte anywhere in the record stream fails here.
  if (journal.chain_head_ != stored_head) {
    return FailedPreconditionError(StrFormat(
        "%s: hash chain mismatch (stored head %016llx, recomputed %016llx) "
        "— journal corrupt",
        path.c_str(), static_cast<unsigned long long>(stored_head),
        static_cast<unsigned long long>(journal.chain_head_)));
  }
  return journal;
}

void Journal::TamperForTest(std::size_t index,
                            std::uint64_t new_payload_hash) {
  if (index >= size_) {
    return;
  }
  chunks_[index / kRecordsPerChunk].get()[index % kRecordsPerChunk]
      .payload_hash = new_payload_hash;
  // Recompute the whole chain so the tampered journal is self-consistent
  // (models a run that made a different decision, not a corrupt file).
  chain_head_ = 0;
  char wire[JournalRecord::kWireBytes];
  for (std::size_t i = 0; i < size_; ++i) {
    (*this)[i].SerializeTo(wire);
    chain_head_ =
        ChainNext(chain_head_, std::string_view(wire, sizeof(wire)));
  }
}

}  // namespace xoar
