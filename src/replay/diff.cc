#include "src/replay/diff.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/base/units.h"
#include "src/obs/trace.h"

namespace xoar {

std::string FormatJournalRecord(const JournalRecord& record) {
  const std::uint64_t ms = record.when / kMillisecond;
  const std::uint64_t frac_ns = record.when % kMillisecond;
  return StrFormat(
      "t=+%llu.%06llums seq=%llu shard=dom%u kind=%s phase=%s "
      "payload=%016llx",
      static_cast<unsigned long long>(ms),
      static_cast<unsigned long long>(frac_ns),
      static_cast<unsigned long long>(record.seq), record.shard,
      std::string(TraceCategoryName(static_cast<TraceCategory>(record.kind)))
          .c_str(),
      record.phase == static_cast<std::uint8_t>(TraceEvent::Phase::kComplete)
          ? "span"
          : "instant",
      static_cast<unsigned long long>(record.payload_hash));
}

std::string DivergenceReport::ToString(std::string_view a_label,
                                       std::string_view b_label) const {
  if (!diverged) {
    return "no divergence\n";
  }
  std::string out = StrFormat("first divergence at record %zu", index);
  if (has_a) {
    out += StrFormat(" (when=%llu, seq=%llu)",
                     static_cast<unsigned long long>(a.when),
                     static_cast<unsigned long long>(a.seq));
  } else if (has_b) {
    out += StrFormat(" (when=%llu, seq=%llu)",
                     static_cast<unsigned long long>(b.when),
                     static_cast<unsigned long long>(b.seq));
  }
  out += ":\n";
  auto side = [&](std::string_view label, bool has,
                  const JournalRecord& record,
                  const std::vector<JournalRecord>& context,
                  const std::vector<std::string>* names,
                  const std::string& name) {
    out += StrFormat("  %.*s:\n", static_cast<int>(label.size()),
                     label.data());
    const std::size_t first = index - context.size();
    for (std::size_t i = 0; i < context.size(); ++i) {
      out += StrFormat("    [%zu]  %s", first + i,
                       FormatJournalRecord(context[i]).c_str());
      if (names != nullptr && i < names->size() && !(*names)[i].empty()) {
        out += StrFormat("  \"%s\"", (*names)[i].c_str());
      }
      out += "\n";
    }
    if (has) {
      out += StrFormat("    [%zu]> %s", index,
                       FormatJournalRecord(record).c_str());
      if (!name.empty()) {
        out += StrFormat("  \"%s\"", name.c_str());
      }
      out += "\n";
    } else {
      out += StrFormat("    [%zu]> <stream ended>\n", index);
    }
  };
  side(a_label, has_a, a, a_context, nullptr, std::string());
  side(b_label, has_b, b, b_context, &b_context_names, b_name);
  return out;
}

DivergenceReport DiffJournals(const Journal& a, const Journal& b,
                              std::size_t context) {
  DivergenceReport report;
  const std::size_t common = std::min(a.size(), b.size());
  std::size_t index = common;
  bool found = false;
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      index = i;
      found = true;
      break;
    }
  }
  if (!found && a.size() == b.size()) {
    return report;  // identical
  }
  report.diverged = true;
  report.index = index;
  report.has_a = index < a.size();
  report.has_b = index < b.size();
  if (report.has_a) {
    report.a = a[index];
  }
  if (report.has_b) {
    report.b = b[index];
  }
  const std::size_t first = index > context ? index - context : 0;
  for (std::size_t i = first; i < index; ++i) {
    report.a_context.push_back(a[i]);
    report.b_context.push_back(b[i]);
  }
  return report;
}

}  // namespace xoar
