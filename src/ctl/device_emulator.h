// Device emulation for HVM guests (§4.5.2): a per-guest QEMU.
//
// Stock Xen runs one QEMU process per HVM guest *inside Dom0*, with the
// privilege to map any page of its guest for DMA emulation — and, because it
// lives in Dom0, a compromise yields Dom0. Xoar hosts each emulator in its
// own stub domain (QemuVM) flagged privileged-for exactly its guest, so a
// compromised emulator holds nothing but that one guest (§6.2.1: all 7
// device-emulation CVEs contained).
#ifndef XOAR_SRC_CTL_DEVICE_EMULATOR_H_
#define XOAR_SRC_CTL_DEVICE_EMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/hv/hypervisor.h"

namespace xoar {

// The catalogue of emulated hardware a QEMU instance provides (§4.5.2).
enum class EmulatedDevice : std::uint8_t {
  kBios,
  kSerialPort,
  kIdeController,
  kNicRtl8139,
  kVgaFrameBuffer,
};

std::string_view EmulatedDeviceName(EmulatedDevice device);

class DeviceEmulator {
 public:
  // `host` is the domain the emulator runs in: Dom0 in stock Xen, a
  // dedicated QemuVM stub domain in Xoar.
  DeviceEmulator(Hypervisor* hv, DomainId host, DomainId guest)
      : hv_(hv), host_(host), guest_(guest) {}

  DomainId host() const { return host_; }
  DomainId guest() const { return guest_; }

  // Emulated DMA: maps a guest page. This is the operation that requires
  // the privileged-for flag (§5.6).
  StatusOr<MappedPage> EmulateDma(Pfn guest_pfn);

  // Port I/O trap servicing; counts per-device activity.
  Status HandleIoExit(EmulatedDevice device);

  std::uint64_t io_exits() const { return io_exits_; }
  std::uint64_t dma_maps() const { return dma_maps_; }

  static std::vector<EmulatedDevice> DeviceModel();

 private:
  Hypervisor* hv_;
  DomainId host_;
  DomainId guest_;
  std::uint64_t io_exits_ = 0;
  std::uint64_t dma_maps_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_CTL_DEVICE_EMULATOR_H_
