// The stock Xen baseline: one monolithic control VM (Dom0) hosting every
// service (Fig 2.1 / Chapter 4).
//
// Dom0 is the hypervisor's control domain: unrestricted hypercalls,
// arbitrary foreign mapping, all hardware capabilities. XenStore, the
// console daemon, the VM builder, the toolstack, device drivers, and device
// emulation all run inside it — so any compromise of any of them is a
// compromise of the platform, and a Dom0 crash reboots the host. This is
// the "Dom0" configuration measured against Xoar throughout Chapter 6.
#ifndef XOAR_SRC_CTL_MONOLITHIC_PLATFORM_H_
#define XOAR_SRC_CTL_MONOLITHIC_PLATFORM_H_

#include <memory>

#include "src/ctl/builder.h"
#include "src/ctl/pciback.h"
#include "src/ctl/platform.h"
#include "src/ctl/toolstack.h"
#include "src/dev/disk.h"
#include "src/dev/nic.h"
#include "src/dev/pci.h"
#include "src/dev/serial.h"
#include "src/drv/console.h"

namespace xoar {

// Canonical slots for the testbed's peripherals (Dell T3500-alike).
inline constexpr PciSlot kNicSlot{0, 2, 0};
inline constexpr PciSlot kDiskControllerSlot{0, 3, 0};
inline constexpr PciSlot kSerialSlot{0, 0, 3};

class MonolithicPlatform : public Platform {
 public:
  struct Config {
    std::uint64_t dom0_memory_mb = 750;  // XenServer's default Dom0 size
    int dom0_vcpus = 2;
    std::uint64_t machine_memory_gb = 4;
    double nic_rate_bps = 1e9;  // GbE
    DiskGeometry disk;

    // Boot phase durations, calibrated so the totals land on Table 6.2's
    // measurements (38.9 s to console, 42.2 s to ping).
    SimDuration hypervisor_boot = FromSeconds(4.0);
    SimDuration dom0_kernel_boot = FromSeconds(9.5);
    SimDuration hardware_init = FromSeconds(13.5);
    SimDuration service_startup = FromSeconds(8.4);
    SimDuration login_prompt = FromSeconds(3.5);
    SimDuration network_negotiation = FromSeconds(3.3);

    // Fractional slowdown when the network and disk data paths are active
    // simultaneously inside the one control VM (Fig 6.2: Xoar's separated
    // driver domains avoid this and win ~6.5% on the combined workload).
    double co_location_penalty = 0.061;
  };

  MonolithicPlatform() : MonolithicPlatform(Config()) {}
  explicit MonolithicPlatform(Config config);

  std::string_view name() const override { return "Dom0 (stock Xen)"; }

  Status Boot() override;
  StatusOr<DomainId> CreateGuest(const GuestSpec& spec) override;
  Status DestroyGuest(DomainId guest) override;

  NetFront* netfront(DomainId guest) override;
  BlkFront* blkfront(DomainId guest) override;
  NetBack* netback_of(DomainId guest) override;
  BlkBack* blkback_of(DomainId guest) override;

  double EffectiveNetRateBps(DomainId guest) override;
  double EffectiveDiskRateBps(DomainId guest) override;

  // Stock Xen: every control-plane service lives in Dom0 (Fig 2.1).
  DomainId ServiceDomainOf(ServiceKind kind, DomainId guest) override {
    (void)kind;
    (void)guest;
    return dom0_;
  }

  const GuestSpec* guest_spec(DomainId guest) override {
    Toolstack::GuestRecord* record = toolstack_->guest(guest);
    return record == nullptr ? nullptr : &record->spec;
  }

  DomainId dom0() const { return dom0_; }
  const Config& config() const { return config_; }
  PciBus& pci_bus() { return pci_bus_; }
  NicDevice& nic() { return *nic_; }
  DiskDevice& disk() { return *disk_; }
  SerialDevice& serial() { return *serial_; }
  ConsoleBackend& console() { return *console_; }
  Builder& builder() { return *builder_; }
  Toolstack& toolstack() { return *toolstack_; }
  PciBackService& pci_service() { return *pci_service_; }

  // Total control-plane memory: one number, Dom0's allocation (§6.1.1).
  std::uint64_t ControlPlaneMemoryMb() const { return config_.dom0_memory_mb; }

 private:
  bool CoLocationActive() const {
    return net_streams_ > 0 && disk_streams_ > 0;
  }

  Config config_;
  bool booted_ = false;
  DomainId dom0_;
  PciBus pci_bus_;
  std::unique_ptr<NicDevice> nic_;
  std::unique_ptr<DiskDevice> disk_;
  std::unique_ptr<SerialDevice> serial_;
  std::unique_ptr<ConsoleBackend> console_;
  std::unique_ptr<PciBackService> pci_service_;
  std::unique_ptr<Builder> builder_;
  std::unique_ptr<NetBack> netback_;
  std::unique_ptr<BlkBack> blkback_;
  std::unique_ptr<Toolstack> toolstack_;
};

}  // namespace xoar

#endif  // XOAR_SRC_CTL_MONOLITHIC_PLATFORM_H_
