#include "src/ctl/device_emulator.h"

namespace xoar {

std::string_view EmulatedDeviceName(EmulatedDevice device) {
  switch (device) {
    case EmulatedDevice::kBios:
      return "BIOS";
    case EmulatedDevice::kSerialPort:
      return "serial";
    case EmulatedDevice::kIdeController:
      return "IDE";
    case EmulatedDevice::kNicRtl8139:
      return "rtl8139";
    case EmulatedDevice::kVgaFrameBuffer:
      return "VGA";
  }
  return "unknown";
}

StatusOr<MappedPage> DeviceEmulator::EmulateDma(Pfn guest_pfn) {
  XOAR_ASSIGN_OR_RETURN(MappedPage page,
                        hv_->ForeignMap(host_, guest_, guest_pfn));
  ++dma_maps_;
  return page;
}

Status DeviceEmulator::HandleIoExit(EmulatedDevice device) {
  (void)device;
  const Domain* host = hv_->domain(host_);
  if (host == nullptr || host->state() != DomainState::kRunning) {
    return UnavailableError("emulator domain is not running");
  }
  ++io_exits_;
  return Status::Ok();
}

std::vector<EmulatedDevice> DeviceEmulator::DeviceModel() {
  return {EmulatedDevice::kBios, EmulatedDevice::kSerialPort,
          EmulatedDevice::kIdeController, EmulatedDevice::kNicRtl8139,
          EmulatedDevice::kVgaFrameBuffer};
}

}  // namespace xoar
