// PCIBack (§5.3): hardware initialization and the PCI configuration-space
// multiplexer.
//
// PCIBack is the closest analogue Xoar has to Dom0: at boot it initializes
// the hardware, enumerates the PCI bus, and fires udev-style rules that
// request one NetBack/BlkBack driver domain per network/disk controller.
// Driver domains access their peripherals directly, but the *shared* config
// space stays multiplexed here; once every device is initialized and no
// further config access is needed, PCIBack can be destroyed entirely,
// removing a privileged component from the running system.
#ifndef XOAR_SRC_CTL_PCIBACK_H_
#define XOAR_SRC_CTL_PCIBACK_H_

#include <functional>
#include <map>
#include <vector>

#include "src/base/audit_log.h"
#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/dev/pci.h"
#include "src/hv/hypervisor.h"

namespace xoar {

class PciBackService {
 public:
  // Fired once per discovered device of a driver-domain class (network or
  // storage) — the udev rule that asks the Builder for a driver domain.
  using UdevRule = std::function<void(const PciDeviceInfo& device)>;

  PciBackService(Hypervisor* hv, PciBus* bus, DomainId self)
      : hv_(hv), bus_(bus), self_(self) {}

  DomainId self() const { return self_; }

  // Claims the hardware capabilities (PCI bus control, interrupt routing,
  // I/O ports, MMIO) and enumerates the bus. `grantor` is whoever may assign
  // capabilities (the Bootstrapper in Xoar, Dom0 itself in stock Xen).
  Status InitializeHardware(DomainId grantor);

  bool hardware_initialized() const { return hardware_initialized_; }
  const std::vector<PciDeviceInfo>& discovered() const { return discovered_; }

  // Audit sink for kPciAssigned records (§3.2.2); optional, set by the
  // platform.
  void set_audit_log(AuditLog* audit) { audit_ = audit; }

  void set_udev_rule(UdevRule rule) { udev_rule_ = std::move(rule); }
  // Runs the udev rules over discovered network/storage controllers.
  void TriggerUdevRules();

  // Passes a device through to a driver domain (wraps the Fig 3.1 call;
  // requires kDomctlSetPrivileges, which PCIBack holds).
  Status PassThrough(DomainId target, const PciSlot& slot);

  // Config-space proxy: the caller must have been assigned the device.
  StatusOr<std::uint32_t> ProxyConfigRead(DomainId caller, const PciSlot& slot,
                                          std::uint8_t offset);
  Status ProxyConfigWrite(DomainId caller, const PciSlot& slot,
                          std::uint8_t offset, std::uint32_t value);

  // SR-IOV (§5.3): carves `count` virtual functions out of a physical
  // device. The multiplexing moves into hardware — but provisioning VFs on
  // the fly needs a *persistent* shard to assign interrupts and multiplex
  // the config space, so PCIBack can no longer self-destruct afterwards
  // (the paper's irony: "such techniques may increase the number of
  // shared, trusted components").
  StatusOr<std::vector<PciSlot>> CreateVirtualFunctions(const PciSlot& parent,
                                                        int count);
  bool sriov_active() const { return sriov_active_; }

  // §5.3: after steady state, PCIBack removes itself from the TCB.
  Status SelfDestruct();
  bool destroyed() const { return destroyed_; }

 private:
  Status CheckProxyAccess(DomainId caller, const PciSlot& slot) const;

  Hypervisor* hv_;
  PciBus* bus_;
  DomainId self_;
  AuditLog* audit_ = nullptr;
  bool hardware_initialized_ = false;
  bool destroyed_ = false;
  bool sriov_active_ = false;
  std::map<PciSlot, int> vf_counts_;  // next VF index per physical function
  std::vector<PciDeviceInfo> discovered_;
  UdevRule udev_rule_;
};

}  // namespace xoar

#endif  // XOAR_SRC_CTL_PCIBACK_H_
