// Live migration (pre-copy), one of the enterprise features the paper
// insists disaggregation must preserve (§1, §2.1.1, §2.3.1: NoHype's loss
// of interposition "is necessary for live migration...").
//
// Classic pre-copy: iteratively ship the guest's memory over the network
// while it keeps running and dirtying pages; when the remaining dirty set
// is small enough (or the round budget is exhausted), pause the guest,
// copy the residue, and resume on the destination. On Xoar the transfer
// runs through the migration client's NetBack path and the destination
// Builder instantiates the incoming VM — the same privilege rules as any
// other build.
//
// Abort safety: the destination shell is built *before* pre-copy starts
// (it has to exist to receive pages), and every abort path — stream
// failure, deadline, guest paused mid-pre-copy, non-convergence under a
// downtime bound — explicitly tears that shell down again, so a failed
// migration never leaks a half-built domain on the destination. A
// destination-side rejection still fails before any source-side work (the
// Remus-style safety rule: the source stays intact until the destination
// copy is complete).
#ifndef XOAR_SRC_CTL_MIGRATION_H_
#define XOAR_SRC_CTL_MIGRATION_H_

#include <cstdint>
#include <functional>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/ctl/platform.h"

namespace xoar {

struct MigrationParams {
  // Effective migration-stream rate; bounded by the source's network path
  // when the guest has one.
  double link_bps = 1e9;
  double protocol_efficiency = 0.9;  // stream framing + page metadata
  // How fast the running guest dirties memory during pre-copy.
  double dirty_rate_bytes_per_sec = 50.0 * 1e6;
  int max_precopy_rounds = 30;
  // Stop-and-copy once the residue drops below this.
  std::uint64_t stop_copy_threshold_bytes = 1 * kMiB;
  // Fixed switch-over cost (device reattach, ARP, resume).
  SimDuration switchover_overhead = FromMilliseconds(30);

  // Total migration time budget, checked at round boundaries and before
  // committing to stop-and-copy. 0 = unlimited. On breach the migration
  // aborts with DEADLINE_EXCEEDED and the destination shell is destroyed.
  SimDuration deadline = 0;
  // Downtime SLO: refuse to stop-and-copy a residue whose projected
  // downtime exceeds this. 0 = unlimited (classic behaviour: fall back to
  // stop-and-copy of whatever remains when rounds run out).
  SimDuration max_downtime = 0;
  // Stream-health hook, consulted once per pre-copy round (1-based) and
  // once more before the stop-and-copy residue. Returning true means the
  // stream broke: the migration aborts with UNAVAILABLE and the
  // destination shell is destroyed. The fleet wires this to the source
  // host's FaultInjector kMigrationStreamDrop windows.
  std::function<bool(int round)> stream_fault;
};

struct MigrationResult {
  int precopy_rounds = 0;
  std::uint64_t bytes_transferred = 0;
  SimDuration total_time = 0;
  SimDuration downtime = 0;  // guest paused during stop-and-copy
  DomainId destination_guest;
  bool converged = false;  // residue fell below threshold before the cap
};

// Migrates `guest` from `source` to `destination`. Builds the receiving
// shell on the destination, advances the source platform's clock through
// the pre-copy phase, pauses and destroys the source instance on success.
// On any mid-migration abort the destination shell is torn down and the
// source guest is left in whatever state it reached (running, or paused if
// the abort happened after the stop-and-copy pause). Fails without side
// effects if the destination cannot host the guest.
StatusOr<MigrationResult> LiveMigrate(Platform* source, DomainId guest,
                                      Platform* destination,
                                      const MigrationParams& params = {});

}  // namespace xoar

#endif  // XOAR_SRC_CTL_MIGRATION_H_
