// Live migration (pre-copy), one of the enterprise features the paper
// insists disaggregation must preserve (§1, §2.1.1, §2.3.1: NoHype's loss
// of interposition "is necessary for live migration...").
//
// Classic pre-copy: iteratively ship the guest's memory over the network
// while it keeps running and dirtying pages; when the remaining dirty set
// is small enough (or the round budget is exhausted), pause the guest,
// copy the residue, and resume on the destination. On Xoar the transfer
// runs through the migration client's NetBack path and the destination
// Builder instantiates the incoming VM — the same privilege rules as any
// other build.
#ifndef XOAR_SRC_CTL_MIGRATION_H_
#define XOAR_SRC_CTL_MIGRATION_H_

#include <cstdint>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/ctl/platform.h"

namespace xoar {

struct MigrationParams {
  // Effective migration-stream rate; bounded by the source's network path
  // when the guest has one.
  double link_bps = 1e9;
  double protocol_efficiency = 0.9;  // stream framing + page metadata
  // How fast the running guest dirties memory during pre-copy.
  double dirty_rate_bytes_per_sec = 50.0 * 1e6;
  int max_precopy_rounds = 30;
  // Stop-and-copy once the residue drops below this.
  std::uint64_t stop_copy_threshold_bytes = 1 * kMiB;
  // Fixed switch-over cost (device reattach, ARP, resume).
  SimDuration switchover_overhead = FromMilliseconds(30);
};

struct MigrationResult {
  int precopy_rounds = 0;
  std::uint64_t bytes_transferred = 0;
  SimDuration total_time = 0;
  SimDuration downtime = 0;  // guest paused during stop-and-copy
  DomainId destination_guest;
  bool converged = false;  // residue fell below threshold before the cap
};

// Migrates `guest` from `source` to `destination`. Advances the source
// platform's clock through the pre-copy phase, pauses and destroys the
// source instance, and rebuilds the guest on the destination through its
// normal CreateGuest path. Fails without side effects if the destination
// cannot host the guest.
StatusOr<MigrationResult> LiveMigrate(Platform* source, DomainId guest,
                                      Platform* destination,
                                      const MigrationParams& params = {});

}  // namespace xoar

#endif  // XOAR_SRC_CTL_MIGRATION_H_
