// Common platform interface.
//
// Both platform assemblies — the stock-Xen MonolithicPlatform (everything in
// Dom0) and the disaggregated XoarPlatform (src/core) — implement this
// interface, so every experiment, example, and test runs unmodified on
// either. The interface also carries the I/O-stream bookkeeping behind the
// performance-isolation effect of Fig 6.2: a monolithic control VM slows
// down when its network and disk services are busy simultaneously; isolated
// driver domains do not.
#ifndef XOAR_SRC_CTL_PLATFORM_H_
#define XOAR_SRC_CTL_PLATFORM_H_

#include <memory>
#include <string>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/drv/blk.h"
#include "src/drv/net.h"
#include "src/hv/hypervisor.h"
#include "src/hv/scheduler.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"
#include "src/xs/service.h"

namespace xoar {

// Control-plane services whose hosting domain the security analysis needs
// to resolve (stock Xen: all of them live in Dom0).
enum class ServiceKind {
  kDeviceEmulator,
  kNetBack,
  kBlkBack,
  kToolstack,
  kXenStore,
  kConsole,
};

struct GuestSpec {
  std::string name = "guest";
  std::uint64_t memory_mb = 1024;
  int vcpus = 2;
  // §3.2.1 constraint tag: shards are shared only among guests with the
  // same tag. Empty = the default (unconstrained) group.
  std::string constraint_tag;
  // Cloud-density tenant label (SCALING.md): guests with the same tenant
  // land in the same per-tenant Toolstack slice, which keeps bookkeeping
  // and accounting O(slice) rather than O(host). Empty = default tenant.
  std::string tenant;
  bool with_net = true;
  bool with_disk = true;
  std::uint64_t disk_image_mb = 15 * 1024;  // the paper's 15 GB virtual disk
  bool hvm = false;  // needs a device-emulation (QEMU) instance
  std::string image = "guest-linux";
  bool allow_bootloader = false;
};

class Platform {
 public:
  enum class IoKind { kNet, kDisk };

  virtual ~Platform() = default;

  virtual std::string_view name() const = 0;

  // Powers on the machine and brings up the control plane. Advances the
  // simulated clock through the boot sequence.
  virtual Status Boot() = 0;

  virtual StatusOr<DomainId> CreateGuest(const GuestSpec& spec) = 0;
  virtual Status DestroyGuest(DomainId guest) = 0;

  // Data-path access for a guest's workloads.
  virtual NetFront* netfront(DomainId guest) = 0;
  virtual BlkFront* blkfront(DomainId guest) = 0;
  virtual NetBack* netback_of(DomainId guest) = 0;
  virtual BlkBack* blkback_of(DomainId guest) = 0;

  // The domain hosting the given service for `guest` (Dom0 for everything
  // on the stock platform; the shard or QemuVM on Xoar).
  virtual DomainId ServiceDomainOf(ServiceKind kind, DomainId guest) = 0;

  // The spec the guest was created from (nullptr if unknown). Used by live
  // migration to rebuild the guest on the destination host.
  virtual const GuestSpec* guest_spec(DomainId guest) = 0;

  // Effective bulk rates (bits/second for net, bytes/second for disk) for
  // flow-level workloads, including any co-location interference.
  virtual double EffectiveNetRateBps(DomainId guest) = 0;
  virtual double EffectiveDiskRateBps(DomainId guest) = 0;

  Simulator& sim() { return sim_; }
  // Per-platform observability: metrics registry + event tracer stamped by
  // this platform's simulated clock. Enable tracing with
  // `obs().tracer().set_enabled(true)` before Boot() to capture the §5.2
  // boot phases (see OBSERVABILITY.md).
  Obs& obs() { return obs_; }
  const Obs& obs() const { return obs_; }
  Hypervisor& hv() { return *hv_; }
  XenStoreService& xenstore() { return *xs_; }
  // Credit CPU scheduler (Chapter 4); domains register at creation with
  // their VCPU allotment — the testbed has a quad-core Xeon.
  CreditScheduler& scheduler() { return scheduler_; }

  // Boot milestones (Table 6.2).
  SimTime console_ready_at() const { return console_ready_at_; }
  SimTime network_ready_at() const { return network_ready_at_; }

  // Lets queued watch events / ring handshakes complete.
  void Settle(SimDuration duration = 200 * kMillisecond) {
    sim_.RunFor(duration);
  }

  // --- I/O stream accounting (drives the interference model) ---

  class IoStreamToken {
   public:
    IoStreamToken() = default;
    IoStreamToken(Platform* platform, IoKind kind)
        : platform_(platform), kind_(kind) {}
    IoStreamToken(IoStreamToken&& other) noexcept
        : platform_(other.platform_), kind_(other.kind_) {
      other.platform_ = nullptr;
    }
    IoStreamToken& operator=(IoStreamToken&& other) noexcept {
      Release();
      platform_ = other.platform_;
      kind_ = other.kind_;
      other.platform_ = nullptr;
      return *this;
    }
    IoStreamToken(const IoStreamToken&) = delete;
    IoStreamToken& operator=(const IoStreamToken&) = delete;
    ~IoStreamToken() { Release(); }

    void Release() {
      if (platform_ != nullptr) {
        platform_->EndIoStream(kind_);
        platform_ = nullptr;
      }
    }

   private:
    Platform* platform_ = nullptr;
    IoKind kind_ = IoKind::kNet;
  };

  [[nodiscard]] IoStreamToken BeginIoStream(IoKind kind) {
    (kind == IoKind::kNet ? net_streams_ : disk_streams_) += 1;
    OnIoStreamsChanged();
    return IoStreamToken(this, kind);
  }

  int net_streams() const { return net_streams_; }
  int disk_streams() const { return disk_streams_; }

 protected:
  Platform() {
    obs_.tracer().set_sim(&sim_);
    scheduler_.set_obs(&obs_);
  }

  void EndIoStream(IoKind kind) {
    (kind == IoKind::kNet ? net_streams_ : disk_streams_) -= 1;
    OnIoStreamsChanged();
  }

  // Platforms react to concurrency changes (interference model).
  virtual void OnIoStreamsChanged() {}

  Simulator sim_;
  Obs obs_;
  CreditScheduler scheduler_{4};
  std::unique_ptr<Hypervisor> hv_;
  std::unique_ptr<XenStoreService> xs_;
  SimTime console_ready_at_ = 0;
  SimTime network_ready_at_ = 0;
  int net_streams_ = 0;
  int disk_streams_ = 0;

  friend class IoStreamToken;
};

}  // namespace xoar

#endif  // XOAR_SRC_CTL_PLATFORM_H_
