#include "src/ctl/toolstack.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

Toolstack::Toolstack(Hypervisor* hv, XenStoreService* xs, Simulator* sim,
                     DomainId self, Builder* builder, Obs* obs)
    : hv_(hv),
      xs_(xs),
      sim_(sim),
      self_(self),
      builder_(builder),
      obs_(Obs::OrGlobal(obs)),
      m_slice_count_(obs_->metrics().GetGauge("toolstack.slice.count")),
      m_slice_guests_(obs_->metrics().GetGauge("toolstack.slice.guests")),
      m_slice_mem_(obs_->metrics().GetGauge("toolstack.slice.mem_mb")) {}

bool Toolstack::ShardTagCompatible(DomainId shard,
                                   const std::string& tag) const {
  auto it = shard_tags_.find(shard);
  if (it == shard_tags_.end()) {
    return true;  // shard serves nobody yet
  }
  for (const auto& [existing_tag, count] : it->second) {
    if (count > 0 && existing_tag != tag) {
      return false;
    }
  }
  return true;
}

template <typename BackendT>
StatusOr<BackendT*> Toolstack::PickBackend(
    const std::vector<BackendT*>& candidates, const std::string& tag,
    const char* kind) const {
  for (BackendT* backend : candidates) {
    if (ShardTagCompatible(backend->self(), tag)) {
      return backend;
    }
  }
  // §3.2.1: "In case there is a lack of appropriate shards, VM creation
  // fails rather than forcing the guest VM into an undesired sharing
  // configuration."
  return ResourceExhaustedError(
      StrFormat("no %s shard compatible with constraint group '%s'", kind,
                tag.c_str()));
}

StatusOr<DomainId> Toolstack::CreateGuest(const GuestSpec& spec) {
  if (memory_quota_mb_ != 0 &&
      guest_memory_in_use_mb() + spec.memory_mb > memory_quota_mb_) {
    return ResourceExhaustedError(
        StrFormat("toolstack dom%u memory quota exceeded (%llu MB in use, "
                  "quota %llu MB)",
                  self_.value(),
                  static_cast<unsigned long long>(guest_memory_in_use_mb()),
                  static_cast<unsigned long long>(memory_quota_mb_)));
  }

  // Select compliant shards *before* building, so a constraint failure does
  // not leave a half-created guest behind.
  NetBack* netback = nullptr;
  BlkBack* blkback = nullptr;
  if (spec.with_net) {
    XOAR_ASSIGN_OR_RETURN(netback,
                          PickBackend(netbacks_, spec.constraint_tag, "NetBack"));
  }
  if (spec.with_disk) {
    XOAR_ASSIGN_OR_RETURN(blkback,
                          PickBackend(blkbacks_, spec.constraint_tag, "BlkBack"));
  }

  BuildRequest request;
  request.config.name = spec.name;
  request.config.memory_mb = spec.memory_mb;
  request.config.vcpus = spec.vcpus;
  request.config.os =
      spec.hvm ? OsProfile::kHvmGuest : OsProfile::kGuestLinux;
  request.config.constraint_tag = spec.constraint_tag;
  request.image = spec.hvm ? "guest-hvm" : spec.image;
  request.allow_bootloader = spec.allow_bootloader;
  XOAR_ASSIGN_OR_RETURN(DomainId guest, builder_->BuildVm(self_, request));

  GuestRecord record;
  record.id = guest;
  record.spec = spec;

  // Unwind for any failure past this point: the domain is already built,
  // so a rejected attach/image/emulator step must tear everything back
  // down — a create that fails and leaks a half-built guest breaks the
  // same invariant as a migration abort that leaks its destination shell.
  const std::string image_name = StrFormat("vm-%u-disk0", guest.value());
  bool image_created = false;
  auto unwind = [&](Status cause) -> Status {
    if (record.blkback != nullptr) {
      (void)record.blkback->DetachVbd(guest);
    }
    if (image_created) {
      (void)blkback->DeleteImage(image_name);
    }
    if (record.netback != nullptr) {
      (void)record.netback->DetachVif(guest);
    }
    xs_->Disconnect(guest);
    (void)hv_->DestroyDomain(self_, guest);
    return cause;
  };

  if (spec.with_net) {
    if (authorize_shard_use_) {
      Status s = hv_->AuthorizeShardUse(self_, guest, netback->self());
      if (!s.ok()) return unwind(s);
    }
    if (Status s = netback->AttachVif(guest); !s.ok()) return unwind(s);
    record.netback = netback;
    record.netfront = std::make_unique<NetFront>(hv_, xs_, sim_, guest,
                                                 netback->self());
    if (Status s = record.netfront->Connect(); !s.ok()) return unwind(s);
  }
  if (spec.with_disk) {
    if (authorize_shard_use_) {
      Status s = hv_->AuthorizeShardUse(self_, guest, blkback->self());
      if (!s.ok()) return unwind(s);
    }
    // §5.4: disk images live in BlkBack; the Toolstack proxies requests to
    // the daemon there instead of mounting files itself.
    if (Status s = blkback->CreateImage(image_name, spec.disk_image_mb * kMiB);
        !s.ok()) {
      return unwind(s);
    }
    image_created = true;
    if (Status s = blkback->BindImage(guest, image_name); !s.ok()) {
      return unwind(s);
    }
    record.blkback = blkback;
    record.blkfront = std::make_unique<BlkFront>(hv_, xs_, sim_, guest,
                                                 blkback->self());
    if (Status s = record.blkfront->Connect(); !s.ok()) return unwind(s);
  }
  if (spec.hvm) {
    StatusOr<DomainId> qemu = builder_->BuildEmulatorDomain(self_, guest);
    if (!qemu.ok()) return unwind(qemu.status());
    record.qemu_domain = *qemu;
    record.emulator =
        std::make_unique<DeviceEmulator>(hv_, record.qemu_domain, guest);
  }
  if (spec.with_net) {
    shard_tags_[netback->self()][spec.constraint_tag] += 1;
  }
  if (spec.with_disk) {
    shard_tags_[blkback->self()][spec.constraint_tag] += 1;
  }

  // File the guest under its tenant's slice; all aggregates move
  // incrementally (no O(host) rescan on the create path).
  TenantSlice& slice = slices_[spec.tenant];
  if (slice.guests.empty()) {
    m_slice_count_->Add(1);
  }
  slice.guests.emplace(guest, std::move(record));
  slice.memory_in_use_mb += spec.memory_mb;
  guest_tenant_[guest] = spec.tenant;
  memory_in_use_mb_ += spec.memory_mb;
  ++guest_count_;
  m_slice_guests_->Add(1);
  m_slice_mem_->Add(static_cast<double>(spec.memory_mb));
  XLOG(kDebug) << "[toolstack dom" << self_.value() << "] created guest dom"
               << guest.value();
  return guest;
}

Status Toolstack::DestroyGuest(DomainId guest) {
  auto tenant_it = guest_tenant_.find(guest);
  if (tenant_it == guest_tenant_.end()) {
    return NotFoundError(
        StrFormat("dom%u is not managed by this toolstack", guest.value()));
  }
  TenantSlice& slice = slices_[tenant_it->second];
  auto it = slice.guests.find(guest);
  GuestRecord& record = it->second;
  if (record.netback != nullptr) {
    auto& tags = shard_tags_[record.netback->self()];
    tags[record.spec.constraint_tag] -= 1;
    (void)record.netback->DetachVif(guest);
  }
  if (record.blkback != nullptr) {
    auto& tags = shard_tags_[record.blkback->self()];
    tags[record.spec.constraint_tag] -= 1;
    // Drop the VBD before the image so the delete never sees a live
    // binding; without the delete, create/destroy churn (migration!)
    // fills the disk with orphaned images.
    (void)record.blkback->DetachVbd(guest);
    (void)record.blkback->DeleteImage(
        StrFormat("vm-%u-disk0", guest.value()));
  }
  if (record.qemu_domain.valid()) {
    (void)hv_->DestroyDomain(self_, record.qemu_domain);
  }
  xs_->Disconnect(guest);
  XOAR_RETURN_IF_ERROR(hv_->DestroyDomain(self_, guest));
  const std::uint64_t mem = record.spec.memory_mb;
  slice.guests.erase(it);
  slice.memory_in_use_mb -= mem;
  memory_in_use_mb_ -= mem;
  --guest_count_;
  m_slice_guests_->Add(-1);
  m_slice_mem_->Add(-static_cast<double>(mem));
  if (slice.guests.empty()) {
    slices_.erase(tenant_it->second);
    m_slice_count_->Add(-1);
  }
  guest_tenant_.erase(tenant_it);
  return Status::Ok();
}

Status Toolstack::PauseGuest(DomainId guest) {
  return hv_->PauseDomain(self_, guest);
}

Status Toolstack::UnpauseGuest(DomainId guest) {
  return hv_->UnpauseDomain(self_, guest);
}

Toolstack::GuestRecord* Toolstack::guest(DomainId id) {
  auto tenant_it = guest_tenant_.find(id);
  if (tenant_it == guest_tenant_.end()) {
    return nullptr;
  }
  auto slice_it = slices_.find(tenant_it->second);
  auto it = slice_it->second.guests.find(id);
  return &it->second;
}

std::vector<DomainId> Toolstack::Guests() const {
  std::vector<DomainId> out;
  out.reserve(guest_count_);
  for (const auto& [id, tenant] : guest_tenant_) {
    out.push_back(id);
  }
  return out;
}

const Toolstack::TenantSlice* Toolstack::slice(const std::string& tenant) const {
  auto it = slices_.find(tenant);
  return it == slices_.end() ? nullptr : &it->second;
}

std::vector<std::string> Toolstack::Tenants() const {
  std::vector<std::string> out;
  out.reserve(slices_.size());
  for (const auto& [tenant, slice] : slices_) {
    out.push_back(tenant);
  }
  return out;
}

const std::string* Toolstack::TenantOf(DomainId guest) const {
  auto it = guest_tenant_.find(guest);
  return it == guest_tenant_.end() ? nullptr : &it->second;
}

}  // namespace xoar
