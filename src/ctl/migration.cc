#include "src/ctl/migration.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

StatusOr<MigrationResult> LiveMigrate(Platform* source, DomainId guest,
                                      Platform* destination,
                                      const MigrationParams& params) {
  const GuestSpec* spec = source->guest_spec(guest);
  if (spec == nullptr) {
    return NotFoundError(
        StrFormat("dom%u is not a guest on the source host", guest.value()));
  }
  const Domain* dom = source->hv().domain(guest);
  if (dom == nullptr || dom->state() != DomainState::kRunning) {
    return FailedPreconditionError("only running guests can live-migrate");
  }
  if (params.link_bps <= 0 || params.protocol_efficiency <= 0) {
    return InvalidArgumentError("migration stream rate must be positive");
  }

  // The stream cannot exceed the source's network data path when the guest
  // shares it with the migration client.
  double stream_bps = params.link_bps * params.protocol_efficiency;
  const double guest_net = source->EffectiveNetRateBps(guest);
  if (guest_net > 0) {
    stream_bps = std::min(stream_bps, guest_net * params.protocol_efficiency);
  }
  const double stream_bytes_per_sec = stream_bps / 8.0;

  MigrationResult result;
  const SimTime started_at = source->sim().Now();

  // --- Pre-copy: ship memory while the guest keeps running. ---
  std::uint64_t to_send = dom->memory_bytes();
  while (true) {
    ++result.precopy_rounds;
    const double round_seconds =
        static_cast<double>(to_send) / stream_bytes_per_sec;
    result.bytes_transferred += to_send;
    source->sim().RunFor(FromSeconds(round_seconds));
    // While this round was in flight, the guest dirtied more pages (capped
    // at its whole memory).
    const std::uint64_t dirtied = std::min<std::uint64_t>(
        dom->memory_bytes(),
        static_cast<std::uint64_t>(params.dirty_rate_bytes_per_sec *
                                   round_seconds));
    to_send = dirtied;
    if (to_send <= params.stop_copy_threshold_bytes) {
      result.converged = true;
      break;
    }
    if (result.precopy_rounds >= params.max_precopy_rounds) {
      // Dirty rate beats the link: fall back to stop-and-copy of whatever
      // remains.
      break;
    }
  }

  // --- Stop-and-copy: pause, ship the residue, switch over. ---
  const double residue_seconds =
      static_cast<double>(to_send) / stream_bytes_per_sec;
  result.bytes_transferred += to_send;
  result.downtime =
      FromSeconds(residue_seconds) + params.switchover_overhead;
  source->sim().RunFor(result.downtime);

  // Build the guest on the destination before tearing down the source, so
  // a destination failure leaves the source intact (the Remus-style safety
  // rule).
  GuestSpec dest_spec = *spec;
  StatusOr<DomainId> dest_guest = destination->CreateGuest(dest_spec);
  if (!dest_guest.ok()) {
    return FailedPreconditionError(
        StrFormat("destination rejected the guest: %s",
                  dest_guest.status().ToString().c_str()));
  }
  result.destination_guest = *dest_guest;

  XOAR_RETURN_IF_ERROR(source->DestroyGuest(guest));
  result.total_time = source->sim().Now() - started_at;
  XLOG(kDebug) << "[migrate] dom" << guest.value() << " -> "
               << destination->name() << " dom" << dest_guest->value()
               << " in " << ToSeconds(result.total_time) << "s (downtime "
               << ToMilliseconds(result.downtime) << "ms)";
  return result;
}

}  // namespace xoar
