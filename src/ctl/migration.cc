#include "src/ctl/migration.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

namespace {

// Abort helper: tear the receiving shell back down so a failed migration
// never leaks a half-built domain on the destination. Teardown failure is
// itself an invariant breach, so it overrides the original error.
Status AbortMigration(Platform* destination, DomainId dest_guest,
                      Status cause) {
  Status teardown = destination->DestroyGuest(dest_guest);
  if (!teardown.ok()) {
    return InternalError(StrFormat(
        "migration abort leaked dom%u on %s: %s (original error: %s)",
        dest_guest.value(), std::string(destination->name()).c_str(),
        teardown.ToString().c_str(), cause.ToString().c_str()));
  }
  XLOG(kDebug) << "[migrate] aborted, destination dom"
               << dest_guest.value() << " torn down: " << cause;
  return cause;
}

}  // namespace

StatusOr<MigrationResult> LiveMigrate(Platform* source, DomainId guest,
                                      Platform* destination,
                                      const MigrationParams& params) {
  const GuestSpec* spec = source->guest_spec(guest);
  if (spec == nullptr) {
    return NotFoundError(
        StrFormat("dom%u is not a guest on the source host", guest.value()));
  }
  const Domain* dom = source->hv().domain(guest);
  if (dom == nullptr || dom->state() != DomainState::kRunning) {
    return FailedPreconditionError("only running guests can live-migrate");
  }
  if (params.link_bps <= 0 || params.protocol_efficiency <= 0) {
    return InvalidArgumentError("migration stream rate must be positive");
  }

  // The stream cannot exceed the source's network data path when the guest
  // shares it with the migration client.
  double stream_bps = params.link_bps * params.protocol_efficiency;
  const double guest_net = source->EffectiveNetRateBps(guest);
  if (guest_net > 0) {
    stream_bps = std::min(stream_bps, guest_net * params.protocol_efficiency);
  }
  const double stream_bytes_per_sec = stream_bps / 8.0;

  MigrationResult result;
  const SimTime started_at = source->sim().Now();
  const auto past_deadline = [&](SimDuration extra) {
    return params.deadline > 0 &&
           (source->sim().Now() - started_at) + extra > params.deadline;
  };

  // Build the receiving shell up front — pre-copy needs somewhere to land
  // pages, and a destination that cannot host the guest should fail before
  // any source-side work (the Remus-style safety rule in reverse: no
  // source work until the destination has committed resources).
  GuestSpec dest_spec = *spec;
  StatusOr<DomainId> dest_guest = destination->CreateGuest(dest_spec);
  if (!dest_guest.ok()) {
    return FailedPreconditionError(
        StrFormat("destination rejected the guest: %s",
                  dest_guest.status().ToString().c_str()));
  }
  result.destination_guest = *dest_guest;

  // --- Pre-copy: ship memory while the guest keeps running. ---
  std::uint64_t to_send = dom->memory_bytes();
  while (true) {
    ++result.precopy_rounds;
    if (params.stream_fault && params.stream_fault(result.precopy_rounds)) {
      return AbortMigration(
          destination, *dest_guest,
          UnavailableError(StrFormat("migration stream dropped in round %d",
                                     result.precopy_rounds)));
    }
    const double round_seconds =
        static_cast<double>(to_send) / stream_bytes_per_sec;
    if (past_deadline(FromSeconds(round_seconds))) {
      return AbortMigration(
          destination, *dest_guest,
          AbortedError(StrFormat(
              "migration deadline hit after %d pre-copy rounds",
              result.precopy_rounds - 1)));
    }
    result.bytes_transferred += to_send;
    source->sim().RunFor(FromSeconds(round_seconds));
    // The source guest must still be running: a guest paused (or killed)
    // mid-pre-copy stops dirtying pages but also stops being migratable —
    // the dirty-bitmap protocol assumes a live producer.
    dom = source->hv().domain(guest);
    if (dom == nullptr || dom->state() != DomainState::kRunning) {
      return AbortMigration(
          destination, *dest_guest,
          FailedPreconditionError(StrFormat(
              "source guest left the running state in pre-copy round %d",
              result.precopy_rounds)));
    }
    // While this round was in flight, the guest dirtied more pages (capped
    // at its whole memory).
    const std::uint64_t dirtied = std::min<std::uint64_t>(
        dom->memory_bytes(),
        static_cast<std::uint64_t>(params.dirty_rate_bytes_per_sec *
                                   round_seconds));
    to_send = dirtied;
    if (to_send <= params.stop_copy_threshold_bytes) {
      result.converged = true;
      break;
    }
    if (result.precopy_rounds >= params.max_precopy_rounds) {
      // Dirty rate beats the link: fall back to stop-and-copy of whatever
      // remains (subject to the downtime bound below).
      break;
    }
  }

  // --- Stop-and-copy: pause, ship the residue, switch over. ---
  if (params.stream_fault && params.stream_fault(result.precopy_rounds + 1)) {
    return AbortMigration(
        destination, *dest_guest,
        UnavailableError("migration stream dropped at stop-and-copy"));
  }
  const double residue_seconds =
      static_cast<double>(to_send) / stream_bytes_per_sec;
  const SimDuration projected_downtime =
      FromSeconds(residue_seconds) + params.switchover_overhead;
  if (!result.converged && params.max_downtime > 0 &&
      projected_downtime > params.max_downtime) {
    return AbortMigration(
        destination, *dest_guest,
        AbortedError(StrFormat(
            "did not converge: stop-and-copy downtime %lldms exceeds the "
            "%lldms bound",
            static_cast<long long>(ToMilliseconds(projected_downtime)),
            static_cast<long long>(ToMilliseconds(params.max_downtime)))));
  }
  if (past_deadline(projected_downtime)) {
    return AbortMigration(
        destination, *dest_guest,
        AbortedError("migration deadline hit at stop-and-copy"));
  }
  result.bytes_transferred += to_send;
  result.downtime = projected_downtime;
  source->sim().RunFor(result.downtime);

  XOAR_RETURN_IF_ERROR(source->DestroyGuest(guest));
  result.total_time = source->sim().Now() - started_at;
  XLOG(kDebug) << "[migrate] dom" << guest.value() << " -> "
               << destination->name() << " dom" << dest_guest->value()
               << " in " << ToSeconds(result.total_time) << "s (downtime "
               << ToMilliseconds(result.downtime) << "ms)";
  return result;
}

}  // namespace xoar
