#include "src/ctl/monolithic_platform.h"

#include "src/base/log.h"

namespace xoar {

MonolithicPlatform::MonolithicPlatform(Config config) : config_(config) {
  Hypervisor::Options options;
  options.enforce_shard_sharing_policy = false;  // stock Xen: policy-free IVC
  options.control_domain_crash_reboots_host = true;
  options.total_memory_bytes = config_.machine_memory_gb * kGiB;
  hv_ = std::make_unique<Hypervisor>(&sim_, options, &obs_);
  xs_ = std::make_unique<XenStoreService>(hv_.get(), &sim_, &obs_);

  nic_ = std::make_unique<NicDevice>(&sim_, kNicSlot, config_.nic_rate_bps);
  disk_ = std::make_unique<DiskDevice>(&sim_, kDiskControllerSlot,
                                       config_.disk);
  serial_ = std::make_unique<SerialDevice>(&sim_);
  (void)pci_bus_.AddDevice(
      {kNicSlot, 0x14e4, 0x1659, PciClass::kNetwork, "Tigon3 GbE"});
  (void)pci_bus_.AddDevice({kDiskControllerSlot, 0x8086, 0x3a22,
                            PciClass::kStorage, "82801JIR SATA"});
  (void)pci_bus_.AddDevice(
      {kSerialSlot, 0x8086, 0x2937, PciClass::kSerial, "UART"});
}

Status MonolithicPlatform::Boot() {
  if (booted_) {
    return FailedPreconditionError("platform already booted");
  }
  // Phase 1: the hypervisor itself.
  sim_.RunFor(config_.hypervisor_boot);

  // Phase 2: the hypervisor constructs Dom0 and boots its Linux kernel.
  DomainConfig dom0_config;
  dom0_config.name = "Domain-0";
  dom0_config.memory_mb = config_.dom0_memory_mb;
  dom0_config.vcpus = config_.dom0_vcpus;
  dom0_config.os = OsProfile::kLinux;
  XOAR_ASSIGN_OR_RETURN(
      dom0_, hv_->CreateInitialDomain(dom0_config, /*as_control_domain=*/true));
  // Dom0 runs with boosted weight, as XenServer configures it.
  XOAR_RETURN_IF_ERROR(
      scheduler_.AddDomain(dom0_, config_.dom0_vcpus, {.weight = 512}));
  sim_.RunFor(config_.dom0_kernel_boot);

  // Phase 3: Dom0 takes the PCI bus, enumerates it, and claims every
  // peripheral (§4: "Dom0 takes control of the PCI bus, along with attached
  // peripherals").
  pci_service_ = std::make_unique<PciBackService>(hv_.get(), &pci_bus_, dom0_);
  XOAR_RETURN_IF_ERROR(pci_service_->InitializeHardware(dom0_));
  XOAR_RETURN_IF_ERROR(hv_->GrantHwCapability(dom0_, dom0_,
                                              HwCapability::kSerialConsole));
  XOAR_RETURN_IF_ERROR(pci_service_->PassThrough(dom0_, kNicSlot));
  XOAR_RETURN_IF_ERROR(pci_service_->PassThrough(dom0_, kDiskControllerSlot));
  sim_.RunFor(config_.hardware_init);

  // Phase 4: user-space services, all inside Dom0.
  xs_->DeployMonolithic(dom0_);
  XOAR_RETURN_IF_ERROR(xs_->Connect(dom0_));
  console_ = std::make_unique<ConsoleBackend>(hv_.get(), &sim_, dom0_,
                                              serial_.get());
  XOAR_RETURN_IF_ERROR(console_->Initialize());
  builder_ = std::make_unique<Builder>(hv_.get(), xs_.get(), dom0_);
  builder_->set_console(console_.get(), /*console_uses_foreign_map=*/true);
  xs_->store().AddManagerDomain(dom0_);
  netback_ = std::make_unique<NetBack>(hv_.get(), xs_.get(), &sim_, dom0_,
                                       nic_.get(), &obs_);
  XOAR_RETURN_IF_ERROR(netback_->Initialize());
  blkback_ = std::make_unique<BlkBack>(hv_.get(), xs_.get(), &sim_, dom0_,
                                       disk_.get(), &obs_);
  XOAR_RETURN_IF_ERROR(blkback_->Initialize());
  toolstack_ = std::make_unique<Toolstack>(hv_.get(), xs_.get(), &sim_, dom0_,
                                           builder_.get());
  toolstack_->AddNetBack(netback_.get());
  toolstack_->AddBlkBack(blkback_.get());
  sim_.RunFor(config_.service_startup);

  // Console login prompt: the Table 6.2 "Console" milestone.
  sim_.RunFor(config_.login_prompt);
  console_->WritePhysical("Domain-0 login: ");
  console_ready_at_ = sim_.Now();

  // Network negotiation: the Table 6.2 "ping" milestone.
  sim_.RunFor(config_.network_negotiation);
  network_ready_at_ = sim_.Now();

  booted_ = true;
  XLOG(kInfo) << "[dom0] boot complete: console at "
              << ToSeconds(console_ready_at_) << "s, ping at "
              << ToSeconds(network_ready_at_) << "s";
  return Status::Ok();
}

StatusOr<DomainId> MonolithicPlatform::CreateGuest(const GuestSpec& spec) {
  if (!booted_) {
    return FailedPreconditionError("platform not booted");
  }
  XOAR_ASSIGN_OR_RETURN(DomainId guest, toolstack_->CreateGuest(spec));
  XOAR_RETURN_IF_ERROR(scheduler_.AddDomain(guest, spec.vcpus));
  Settle();  // let the XenBus handshakes complete
  return guest;
}

Status MonolithicPlatform::DestroyGuest(DomainId guest) {
  (void)scheduler_.RemoveDomain(guest);
  return toolstack_->DestroyGuest(guest);
}

NetFront* MonolithicPlatform::netfront(DomainId guest) {
  Toolstack::GuestRecord* record = toolstack_->guest(guest);
  return record == nullptr ? nullptr : record->netfront.get();
}

BlkFront* MonolithicPlatform::blkfront(DomainId guest) {
  Toolstack::GuestRecord* record = toolstack_->guest(guest);
  return record == nullptr ? nullptr : record->blkfront.get();
}

NetBack* MonolithicPlatform::netback_of(DomainId guest) {
  Toolstack::GuestRecord* record = toolstack_->guest(guest);
  return record == nullptr ? nullptr : record->netback;
}

BlkBack* MonolithicPlatform::blkback_of(DomainId guest) {
  Toolstack::GuestRecord* record = toolstack_->guest(guest);
  return record == nullptr ? nullptr : record->blkback;
}

double MonolithicPlatform::EffectiveNetRateBps(DomainId guest) {
  NetBack* netback = netback_of(guest);
  if (netback == nullptr || !netback->IsVifConnected(guest)) {
    return 0.0;
  }
  double rate = netback->EffectiveRateBps();
  if (CoLocationActive()) {
    rate *= 1.0 - config_.co_location_penalty;
  }
  return rate;
}

double MonolithicPlatform::EffectiveDiskRateBps(DomainId guest) {
  BlkBack* blkback = blkback_of(guest);
  if (blkback == nullptr || !blkback->IsVbdConnected(guest)) {
    return 0.0;
  }
  double rate = config_.disk.sequential_rate * 8.0;  // bits/s
  if (CoLocationActive()) {
    rate *= 1.0 - config_.co_location_penalty;
  }
  return rate;
}

}  // namespace xoar
