#include "src/ctl/pciback.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

Status PciBackService::InitializeHardware(DomainId grantor) {
  if (hardware_initialized_) {
    return AlreadyExistsError("hardware already initialized");
  }
  // §5.8: stock Xen hard-codes these to Dom0; Xoar maps them explicitly.
  XOAR_RETURN_IF_ERROR(
      hv_->GrantHwCapability(grantor, self_, HwCapability::kPciBusControl));
  XOAR_RETURN_IF_ERROR(
      hv_->GrantHwCapability(grantor, self_, HwCapability::kInterruptRouting));
  XOAR_RETURN_IF_ERROR(
      hv_->GrantHwCapability(grantor, self_, HwCapability::kIoPorts));
  XOAR_RETURN_IF_ERROR(
      hv_->GrantHwCapability(grantor, self_, HwCapability::kMmio));
  discovered_ = bus_->Enumerate();
  // Touch each device's config header, as bus enumeration does.
  for (const auto& device : discovered_) {
    (void)bus_->ReadConfig(device.slot, 0);
  }
  hardware_initialized_ = true;
  XLOG(kDebug) << "[pciback] enumerated " << discovered_.size()
               << " PCI devices";
  return Status::Ok();
}

void PciBackService::TriggerUdevRules() {
  if (!udev_rule_) {
    return;
  }
  for (const auto& device : discovered_) {
    if (device.device_class == PciClass::kNetwork ||
        device.device_class == PciClass::kStorage) {
      udev_rule_(device);
    }
  }
}

Status PciBackService::PassThrough(DomainId target, const PciSlot& slot) {
  if (!hardware_initialized_) {
    return FailedPreconditionError("hardware not initialized");
  }
  XOAR_RETURN_IF_ERROR(hv_->CheckHwCapability(self_, HwCapability::kPciBusControl));
  XOAR_RETURN_IF_ERROR(hv_->AssignPciDevice(self_, target, slot));
  if (audit_ != nullptr) {
    AuditEvent event;
    event.time = hv_->sim()->Now();
    event.kind = AuditEventKind::kPciAssigned;
    event.subject = target;
    event.object = self_;
    event.detail = StrFormat("slot=%s", slot.ToString().c_str());
    audit_->Record(std::move(event));
  }
  return Status::Ok();
}

Status PciBackService::CheckProxyAccess(DomainId caller,
                                        const PciSlot& slot) const {
  if (destroyed_) {
    return UnavailableError("PCIBack has been destroyed");
  }
  const Domain* dom = hv_->domain(caller);
  if (dom == nullptr || !dom->alive()) {
    return PermissionDeniedError("caller does not exist");
  }
  if (caller == self_ || dom->is_control_domain()) {
    return Status::Ok();
  }
  if (dom->pci_devices().count(slot) == 0) {
    return PermissionDeniedError(
        StrFormat("dom%u has not been assigned PCI device %s", caller.value(),
                  slot.ToString().c_str()));
  }
  return Status::Ok();
}

StatusOr<std::uint32_t> PciBackService::ProxyConfigRead(DomainId caller,
                                                        const PciSlot& slot,
                                                        std::uint8_t offset) {
  XOAR_RETURN_IF_ERROR(CheckProxyAccess(caller, slot));
  return bus_->ReadConfig(slot, offset);
}

Status PciBackService::ProxyConfigWrite(DomainId caller, const PciSlot& slot,
                                        std::uint8_t offset,
                                        std::uint32_t value) {
  XOAR_RETURN_IF_ERROR(CheckProxyAccess(caller, slot));
  return bus_->WriteConfig(slot, offset, value);
}

StatusOr<std::vector<PciSlot>> PciBackService::CreateVirtualFunctions(
    const PciSlot& parent, int count) {
  if (!hardware_initialized_) {
    return FailedPreconditionError("hardware not initialized");
  }
  if (destroyed_) {
    return UnavailableError("PCIBack has been destroyed");
  }
  XOAR_RETURN_IF_ERROR(
      hv_->CheckHwCapability(self_, HwCapability::kPciBusControl));
  if (count <= 0 || count > 64) {
    return InvalidArgumentError("VF count must be in [1, 64]");
  }
  XOAR_ASSIGN_OR_RETURN(PciDeviceInfo pf, bus_->Find(parent));
  if (pf.device_class != PciClass::kNetwork &&
      pf.device_class != PciClass::kStorage) {
    return InvalidArgumentError("device class does not support SR-IOV");
  }
  int& next_vf = vf_counts_[parent];
  if (next_vf + count > 64) {
    return ResourceExhaustedError("physical function out of VFs");
  }
  std::vector<PciSlot> vfs;
  vfs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // VFs appear on a virtual bus well above the physical topology,
    // numbered sequentially per physical function.
    PciDeviceInfo vf;
    vf.slot = PciSlot{parent.pci_domain,
                      static_cast<std::uint8_t>(parent.bus + 0x40),
                      static_cast<std::uint8_t>(next_vf++)};
    vf.vendor_id = pf.vendor_id;
    vf.device_id = static_cast<std::uint16_t>(pf.device_id + 0x100);
    vf.device_class = pf.device_class;
    vf.name = pf.name + StrFormat(" VF%d", vf.slot.slot);
    XOAR_RETURN_IF_ERROR(bus_->AddDevice(vf));
    vfs.push_back(vf.slot);
  }
  discovered_ = bus_->Enumerate();
  sriov_active_ = true;
  XLOG(kDebug) << "[pciback] created " << count << " VFs under "
               << parent.ToString();
  return vfs;
}

Status PciBackService::SelfDestruct() {
  if (destroyed_) {
    return FailedPreconditionError("already destroyed");
  }
  if (sriov_active_) {
    // §5.3: "provisioning new virtual devices on the fly requires a
    // persistent shard to assign interrupts and multiplex accesses to the
    // PCI configuration space."
    return FailedPreconditionError(
        "SR-IOV provisioning requires a persistent PCIBack");
  }
  // §5.3: once every driver domain runs, there is no further interaction
  // with shared PCI state; removing PCIBack removes a privileged component.
  XOAR_RETURN_IF_ERROR(hv_->DestroyDomain(self_, self_));
  destroyed_ = true;
  XLOG(kDebug) << "[pciback] self-destructed after boot";
  return Status::Ok();
}

}  // namespace xoar
