#include "src/ctl/builder.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/drv/xenbus.h"

namespace xoar {

Builder::Builder(Hypervisor* hv, XenStoreService* xs, DomainId self)
    : hv_(hv), xs_(xs), self_(self) {
  // Baseline library shipped with the platform.
  known_images_.insert("guest-linux");
  known_images_.insert("guest-hvm");
  known_images_.insert(kPvBootloaderImage);
  known_images_.insert("shard-linux");
  known_images_.insert("shard-minios");
  known_images_.insert("shard-nanos");
}

StatusOr<DomainId> Builder::BuildVm(DomainId toolstack,
                                    const BuildRequest& request) {
  // §5.2: the privileged Builder never parses user-provided kernels or file
  // systems. Unknown images either fail or fall back to the bootloader
  // image, which loads the user's kernel from inside the (unprivileged)
  // guest itself.
  std::string image = request.image;
  if (!HasImage(image)) {
    if (!request.allow_bootloader) {
      return InvalidArgumentError(
          StrFormat("image %s is not in the known-good library and the "
                    "bootloader fallback was not requested",
                    image.c_str()));
    }
    image = kPvBootloaderImage;
  }

  XOAR_ASSIGN_OR_RETURN(
      DomainId guest,
      hv_->CreateDomain(self_, request.config, /*on_behalf_of=*/toolstack));

  // Guest page tables / start-info setup: the heightened-privilege part of
  // building (kForeignMemoryMap class). Touch the guest's first page the
  // way the real builder writes the start-info frame.
  Domain* dom = hv_->domain(guest);
  StatusOr<MappedPage> start_info =
      hv_->ForeignMap(self_, guest, dom->first_pfn());
  if (!start_info.ok()) {
    (void)hv_->DestroyDomain(self_, guest);
    return start_info.status();
  }
  start_info->data[0] = std::byte{0x58};  // 'X': start_info magic

  // Register the guest in XenStore: /local/domain/<id> owned by the guest
  // with read/write for its parent toolstack.
  const std::string dom_dir = DomainDir(guest);
  XOAR_RETURN_IF_ERROR(xs_->Mkdir(self_, dom_dir));
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, dom_dir + "/name",
                                  request.config.name));
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, dom_dir + "/image", image));
  XOAR_RETURN_IF_ERROR(
      xs_->Write(self_, dom_dir + "/memory",
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       request.config.memory_mb))));
  for (const std::string leaf : {"", "/name", "/image", "/memory"}) {
    XsNodePerms perms;
    perms.owner = guest;
    perms.acl[toolstack] = XsPerm::kReadWrite;
    XOAR_RETURN_IF_ERROR(xs_->SetPerms(self_, dom_dir + leaf, perms));
  }

  XOAR_RETURN_IF_ERROR(hv_->FinishBuild(self_, guest));
  XOAR_RETURN_IF_ERROR(hv_->UnpauseDomain(self_, guest));

  // §5.6: the Builder adds a step to the VM creation code creating grant
  // table entries for the XenStore and console rings, letting those
  // services function without Dom0-class privileges. The services' Connect
  // calls perform the grant/map handshake; they need the guest running.
  if (request.connect_xenstore) {
    if (hv_->options().enforce_shard_sharing_policy) {
      // The guest must be authorized for the XenStore shard before the
      // grant/event-channel setup passes the IVC policy.
      XOAR_RETURN_IF_ERROR(
          hv_->AuthorizeShardUse(self_, guest, xs_->logic_domain()));
    }
    XOAR_RETURN_IF_ERROR(xs_->Connect(guest));
  }
  if (request.connect_console && console_ != nullptr) {
    if (hv_->options().enforce_shard_sharing_policy) {
      XOAR_RETURN_IF_ERROR(
          hv_->AuthorizeShardUse(self_, guest, console_->self()));
    }
    XOAR_RETURN_IF_ERROR(
        console_->ConnectGuest(guest, console_foreign_map_));
  }
  if (request.start_paused) {
    XOAR_RETURN_IF_ERROR(hv_->PauseDomain(self_, guest));
  }

  ++builds_;
  if (audit_ != nullptr) {
    AuditEvent event;
    event.time = hv_->sim()->Now();
    event.kind = AuditEventKind::kVmBuilt;
    event.subject = guest;
    event.object = self_;
    event.detail = StrFormat("image=%s name=%s toolstack=%u", image.c_str(),
                             request.config.name.c_str(), toolstack.value());
    audit_->Record(std::move(event));
  }
  XLOG(kDebug) << "[builder] built dom" << guest.value() << " ("
               << request.config.name << ") for toolstack dom"
               << toolstack.value();
  return guest;
}

StatusOr<DomainId> Builder::BuildEmulatorDomain(DomainId toolstack,
                                                DomainId guest) {
  const Domain* guest_dom = hv_->domain(guest);
  if (guest_dom == nullptr || !guest_dom->alive()) {
    return NotFoundError("guest to emulate does not exist");
  }
  BuildRequest request;
  request.config.name = StrFormat("qemu-%u", guest.value());
  request.config.memory_mb = 32;
  request.config.vcpus = 1;
  request.config.os = OsProfile::kMiniOs;
  request.config.is_shard = true;
  request.image = "shard-minios";
  request.connect_console = false;
  XOAR_ASSIGN_OR_RETURN(DomainId qemu, BuildVm(toolstack, request));
  // §5.6: "a flag allowing a VM to be specified as privileged for another
  // VM" — the QemuVM may map its guest's memory for DMA, and nothing else.
  XOAR_RETURN_IF_ERROR(hv_->SetPrivilegedFor(self_, qemu, guest));
  return qemu;
}

}  // namespace xoar
