// The management toolstack (§4.6, §5.6), built on a libxl-like layer.
//
// A Toolstack creates guests by passing parameters to the Builder; it never
// touches guest memory itself. It may only attach guests to shards that
// have been *delegated* to it, and it enforces the §3.2.1 constraint-group
// policy: a shard is shared only among guests carrying the same constraint
// tag — if no compliant shard exists, guest creation fails rather than
// forcing unwanted sharing. Per-toolstack resource quotas support the
// private-cloud partitioning scenario (§3.4.2).
#ifndef XOAR_SRC_CTL_TOOLSTACK_H_
#define XOAR_SRC_CTL_TOOLSTACK_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/ctl/builder.h"
#include "src/ctl/device_emulator.h"
#include "src/ctl/platform.h"
#include "src/drv/blk.h"
#include "src/drv/net.h"
#include "src/hv/hypervisor.h"

namespace xoar {

class Toolstack {
 public:
  struct GuestRecord {
    DomainId id;
    GuestSpec spec;
    NetBack* netback = nullptr;
    BlkBack* blkback = nullptr;
    std::unique_ptr<NetFront> netfront;
    std::unique_ptr<BlkFront> blkfront;
    DomainId qemu_domain;
    std::unique_ptr<DeviceEmulator> emulator;
  };

  // Guests are grouped into per-tenant slices (GuestSpec::tenant,
  // SCALING.md): bookkeeping for one tenant never scans another tenant's
  // guests, and host-wide aggregates (guest count, memory in use) are
  // maintained incrementally so quota checks stay O(1) at cloud density.
  struct TenantSlice {
    std::map<DomainId, GuestRecord> guests;
    std::uint64_t memory_in_use_mb = 0;
  };

  // `obs` receives the `toolstack.slice.*` gauges; nullptr falls back to
  // Obs::Global().
  Toolstack(Hypervisor* hv, XenStoreService* xs, Simulator* sim, DomainId self,
            Builder* builder, Obs* obs = nullptr);

  DomainId self() const { return self_; }

  // Registers delegated driver domains this toolstack may hand to guests.
  void AddNetBack(NetBack* netback) { netbacks_.push_back(netback); }
  void AddBlkBack(BlkBack* blkback) { blkbacks_.push_back(blkback); }

  // Per-toolstack guest-memory quota in MiB (0 = unlimited), enforced for
  // the private-cloud resource-partitioning scenario.
  void set_memory_quota_mb(std::uint64_t quota) { memory_quota_mb_ = quota; }

  // When true (Xoar), the toolstack registers each guest<->shard link with
  // the hypervisor (AuthorizeShardUse) before IVC setup can succeed.
  void set_authorize_shard_use(bool v) { authorize_shard_use_ = v; }

  StatusOr<DomainId> CreateGuest(const GuestSpec& spec);
  Status DestroyGuest(DomainId guest);
  Status PauseGuest(DomainId guest);
  Status UnpauseGuest(DomainId guest);

  // Indexed lookup: tenant via guest_tenant_, record inside its slice.
  GuestRecord* guest(DomainId id);
  std::vector<DomainId> Guests() const;
  // O(1): maintained incrementally on create/destroy, never recomputed by
  // scanning guests.
  std::uint64_t guest_memory_in_use_mb() const { return memory_in_use_mb_; }
  std::size_t guest_count() const { return guest_count_; }

  // --- Tenant slices ---
  const TenantSlice* slice(const std::string& tenant) const;
  std::size_t slice_count() const { return slices_.size(); }
  std::vector<std::string> Tenants() const;
  // Tenant a guest belongs to; nullptr if not managed here.
  const std::string* TenantOf(DomainId guest) const;

 private:
  // Constraint-group selection (§3.2.1): a shard qualifies if every guest
  // already attached to it carries the same tag.
  template <typename BackendT>
  StatusOr<BackendT*> PickBackend(const std::vector<BackendT*>& candidates,
                                  const std::string& tag,
                                  const char* kind) const;
  bool ShardTagCompatible(DomainId shard, const std::string& tag) const;

  Hypervisor* hv_;
  XenStoreService* xs_;
  Simulator* sim_;
  DomainId self_;
  Builder* builder_;
  Obs* obs_;
  Gauge* m_slice_count_;   // toolstack.slice.count
  Gauge* m_slice_guests_;  // toolstack.slice.guests
  Gauge* m_slice_mem_;     // toolstack.slice.mem_mb
  std::vector<NetBack*> netbacks_;
  std::vector<BlkBack*> blkbacks_;
  // Per-tenant slices plus a DomainId-keyed index into them.
  std::map<std::string, TenantSlice> slices_;
  std::map<DomainId, std::string> guest_tenant_;
  std::uint64_t memory_in_use_mb_ = 0;
  std::size_t guest_count_ = 0;
  // shard domain -> constraint tags of guests attached through us
  std::map<DomainId, std::map<std::string, int>> shard_tags_;
  std::uint64_t memory_quota_mb_ = 0;
  bool authorize_shard_use_ = false;
};

}  // namespace xoar

#endif  // XOAR_SRC_CTL_TOOLSTACK_H_
