// The Builder (§5.1, §5.6): the only component besides stock Dom0 with the
// privilege to arbitrarily write guest memory.
//
// It creates domain shells, populates their memory from a library of known
// good images (it never parses user-provided kernels — guests wanting a
// custom kernel get the pv-bootloader image, which loads the kernel from
// inside the guest), installs the XenStore and console rings (creating grant
// entries so those services run deprivileged, §5.6), registers the guest in
// XenStore, and records the parent toolstack that the hypervisor audits on
// every later management hypercall.
#ifndef XOAR_SRC_CTL_BUILDER_H_
#define XOAR_SRC_CTL_BUILDER_H_

#include <set>
#include <string>

#include "src/base/audit_log.h"
#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/drv/console.h"
#include "src/hv/hypervisor.h"
#include "src/xs/service.h"

namespace xoar {

// The image name used when a guest wants its own kernel (§5.2).
inline constexpr const char* kPvBootloaderImage = "pv-bootloader";

struct BuildRequest {
  DomainConfig config;
  std::string image = "guest-linux";  // must be in the known-good library
  bool allow_bootloader = false;      // fall back to kPvBootloaderImage
  bool connect_xenstore = true;
  bool connect_console = true;
  bool start_paused = false;
};

class Builder {
 public:
  Builder(Hypervisor* hv, XenStoreService* xs, DomainId self);

  DomainId self() const { return self_; }

  // Console service used for guest console setup; optional (early boot).
  void set_console(ConsoleBackend* console, bool console_uses_foreign_map) {
    console_ = console;
    console_foreign_map_ = console_uses_foreign_map;
  }

  // Audit sink for kVmBuilt records (§3.2.2); optional, set by the platform.
  void set_audit_log(AuditLog* audit) { audit_ = audit; }

  // Image library management (§5.2: "library of known good images").
  void AddKnownImage(const std::string& name) { known_images_.insert(name); }
  bool HasImage(const std::string& name) const {
    return known_images_.count(name) > 0;
  }

  // Builds a VM on behalf of `toolstack`, which becomes its parent. Returns
  // the new domain id with the domain left running (or paused on request).
  StatusOr<DomainId> BuildVm(DomainId toolstack, const BuildRequest& request);

  // Builds a QemuVM stub domain (§4.5.2, §5.6) flagged privileged for
  // exactly `guest` — the flag the hypervisor checks on DMA emulation.
  StatusOr<DomainId> BuildEmulatorDomain(DomainId toolstack, DomainId guest);

  std::uint64_t builds() const { return builds_; }

 private:
  Hypervisor* hv_;
  XenStoreService* xs_;
  DomainId self_;
  AuditLog* audit_ = nullptr;
  ConsoleBackend* console_ = nullptr;
  bool console_foreign_map_ = false;
  std::set<std::string> known_images_;
  std::uint64_t builds_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_CTL_BUILDER_H_
