// The XenStore service as deployed on a platform.
//
// Stock Xen: a single xenstored in Dom0, which directly foreign-maps every
// client's communication ring (it starts before grant tables are usable,
// §4.4). Xoar: the service is split into XenStore-Logic (stateless request
// processing, restartable — even per request) and XenStore-State (the
// long-lived in-memory contents), and the Builder pre-creates grant entries
// so the service runs *without* Dom0-class privileges (§5.6).
//
// Clients connect once (ring + event channel via the hypervisor, which
// applies the shard-sharing policy) and then issue requests. While the
// Logic component microreboots, requests fail with UNAVAILABLE and clients
// retry — the renegotiation behaviour the restart machinery depends on.
//
// For cloud-density hosts, XenStore-State is additionally partitioned into
// N path-prefix shards (src/xs/sharded_store.h, SCALING.md): each shard is
// an independently microrebootable store, and a single State-shard restart
// only stalls requests routed to that partition — tenants on the other
// N-1 shards are served throughout.
#ifndef XOAR_SRC_XS_SERVICE_H_
#define XOAR_SRC_XS_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/hv/hypervisor.h"
#include "src/xs/sharded_store.h"
#include "src/xs/store.h"

namespace xoar {

// Latency of one XenStore request/response round trip over the ring.
constexpr SimDuration kXsOpLatency = 20 * kMicrosecond;
// Latency of a watch event delivery.
constexpr SimDuration kXsWatchLatency = 30 * kMicrosecond;

class XenStoreService {
 public:
  enum class RestartPolicy {
    kNever,       // stock xenstored
    kPerRequest,  // XenStore-Logic in Xoar (Fig 5.1: "restarted on each
                  // request"); rollback cost is charged per request
  };

  // `obs` is forwarded to the backing XsStore and receives
  // `xenstore.service.*` counters; nullptr falls back to Obs::Global().
  XenStoreService(Hypervisor* hv, Simulator* sim, Obs* obs = nullptr);

  // Partitions XenStore-State into `count` path-prefix shards. Call before
  // DeploySplit (resharding drops watches and live transactions, so doing
  // it on a live host is a reshard event, not a config tweak).
  void SetShardCount(int count);

  // Xoar deployment: logic and state in separate shard domains.
  void DeploySplit(DomainId logic_domain, DomainId state_domain);
  // Cloud-density deployment: one State domain per store partition.
  void DeploySplit(DomainId logic_domain,
                   const std::vector<DomainId>& state_domains);
  // Stock deployment: xenstored inside the control domain.
  void DeployMonolithic(DomainId control_domain);

  DomainId logic_domain() const { return logic_domain_; }
  DomainId state_domain() const { return state_domain_; }
  const std::vector<DomainId>& state_domains() const { return state_domains_; }
  bool deployed() const { return logic_domain_.valid(); }

  XsShardedStore& store() { return store_; }

  void set_restart_policy(RestartPolicy policy) { restart_policy_ = policy; }

  // Establishes a client connection: one shared page granted (or foreign-
  // mapped in stock mode) from the client to the logic domain plus an event
  // channel pair. The hypervisor's IVC policy decides admissibility.
  Status Connect(DomainId client);
  bool IsConnected(DomainId client) const;
  // Tears down a client's connection (domain destroyed).
  void Disconnect(DomainId client);

  // --- Request interface (checked against the connection + store ACLs) ---

  StatusOr<std::string> Read(DomainId caller, std::string_view path);
  Status Write(DomainId caller, std::string_view path, std::string_view value);
  Status Mkdir(DomainId caller, std::string_view path);
  Status Remove(DomainId caller, std::string_view path);
  StatusOr<std::vector<std::string>> List(DomainId caller,
                                          std::string_view path);
  Status SetPerms(DomainId caller, std::string_view path,
                  const XsNodePerms& perms);

  // Watch events are delivered asynchronously through the simulator.
  Status Watch(DomainId caller, std::string_view path, std::string_view token,
               XsStore::WatchCallback cb);
  Status Unwatch(DomainId caller, std::string_view path,
                 std::string_view token);

  StatusOr<XsStore::TxId> TransactionStart(DomainId caller);
  Status TransactionEnd(DomainId caller, XsStore::TxId tx, bool commit);
  StatusOr<std::string> ReadTx(DomainId caller, std::string_view path,
                               XsStore::TxId tx);
  Status WriteTx(DomainId caller, std::string_view path,
                 std::string_view value, XsStore::TxId tx);

  // --- Microreboot of XenStore-Logic ---

  // Takes the logic component down for `downtime`; requests meanwhile fail
  // with UNAVAILABLE. State (the store contents and watch registrations)
  // lives in XenStore-State and survives.
  Status RestartLogic(SimDuration downtime);
  bool logic_available() const { return logic_available_; }

  // Split-phase variant used by the RestartEngine, which owns the timing:
  // Begin marks the logic shard down, Complete re-attaches it to the state
  // shard.
  Status BeginLogicRestart();
  Status CompleteLogicRestart();

  // --- Microreboot of one XenStore-State shard ---
  //
  // Only requests routed to the restarting partition fail UNAVAILABLE;
  // tenants on the other shards are served throughout. The shard's
  // contents survive (recovery-box snapshot taken at Begin); its tenants'
  // watches and in-flight transactions are dropped and re-registered by
  // clients, exactly as after a Logic restart loses a connection.
  Status RestartStateShard(int shard, SimDuration downtime);
  Status BeginStateShardRestart(int shard);
  Status CompleteStateShardRestart(int shard);
  int state_shard_count() const { return store_.shard_count(); }
  bool state_shard_available(int shard) const {
    return shard >= 0 && shard < static_cast<int>(shard_available_.size()) &&
           shard_available_[shard];
  }
  std::uint64_t state_shard_restarts() const { return state_shard_restarts_; }

  std::uint64_t requests_processed() const { return requests_processed_; }
  std::uint64_t logic_restarts() const { return logic_restarts_; }

  // Fault-injection hook (src/fault), consulted per request after the
  // deployment/availability/connection gates — an injected timeout never
  // masks a real precondition error (DESIGN.md §5c). Returning true fails
  // the request with UNAVAILABLE, indistinguishable from a Logic outage to
  // the caller, which is the point: clients retry both the same way.
  using RequestFaultHook = std::function<bool(DomainId caller)>;
  void set_request_fault_hook(RequestFaultHook hook) {
    request_fault_hook_ = std::move(hook);
  }

 private:
  struct Connection {
    Pfn ring_pfn;
    GrantRef ring_gref;  // invalid in stock (foreign-map) mode
    EvtchnPort client_port;
    EvtchnPort server_port;
  };

  // Gate every request: connection present, logic component up.
  Status CheckRequest(DomainId caller);
  // Gate on the State partition a request routes to. Spanning paths
  // require every shard up (their mutations fan out; their listings
  // merge); per-tenant paths require only their own shard.
  Status CheckShardForPath(std::string_view path);
  Status CheckShard(int shard);
  void NoteRequestServed();
  void FinishLogicRestart();

  Hypervisor* hv_;
  Simulator* sim_;
  Obs* obs_;
  Counter* m_requests_;        // xenstore.service.requests
  Counter* m_logic_restarts_;  // xenstore.service.logic_restarts
  Counter* m_shard_restarts_;  // xs.shard.restarts
  Counter* m_shard_rejects_;   // xs.shard.unavailable_rejects
  XsShardedStore store_;
  DomainId logic_domain_;
  DomainId state_domain_;
  std::vector<DomainId> state_domains_;
  bool monolithic_ = false;
  bool logic_available_ = false;
  RestartPolicy restart_policy_ = RestartPolicy::kNever;
  RequestFaultHook request_fault_hook_;
  std::map<DomainId, Connection> connections_;
  // State-component checkpoint taken when Logic goes down; Logic re-attaches
  // to it on the way back up. O(1) both ways (copy-on-write tree share).
  XsShardedStore::Snapshot pre_restart_state_;
  // Per-State-shard availability and recovery-box checkpoints.
  std::vector<bool> shard_available_;
  std::vector<XsStore::Snapshot> shard_pre_restart_;
  std::uint64_t requests_processed_ = 0;
  std::uint64_t logic_restarts_ = 0;
  std::uint64_t state_shard_restarts_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_XS_SERVICE_H_
