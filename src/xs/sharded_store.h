// Path-prefix sharding of XenStore-State (SCALING.md).
//
// The paper's State/Logic split (§5.1) makes XenStore-State a dumb
// restartable KV — exactly the shape that partitions cleanly. This facade
// splits the store into N independent XsStore partitions keyed by path
// prefix: `/local/domain/<id>/...` routes to shard `id % N`, everything
// else lives on shard 0. Each shard is an independently microrebootable
// COW store; a shard restart only loses the watches and transactions of
// the tenants whose domain directories hash to it, which bounds the blast
// radius of a XenStore-State microreboot to 1/N of the guests on a
// densely packed host.
//
// Routing invariants (enforced here, documented in SCALING.md):
//  - Per-tenant paths (/local/domain/<id> and below) live wholly on one
//    shard, so every per-guest operation touches exactly one partition.
//  - The spanning prefixes "/", "/local" and "/local/domain" exist on
//    every shard: mutations on them fan out so each partition keeps a
//    complete ancestor chain; List() merges children across shards;
//    reads resolve on shard 0.
//  - Transactions are pinned to the caller's home shard (the shard its
//    own /local/domain/<id> directory routes to) — snapshot isolation is
//    per-partition, which is sufficient because a guest's transactional
//    traffic is confined to its own subtree.
//
// With shard_count == 1 the facade is behavior-identical to a bare
// XsStore, which keeps the stock (monolithic) platform unchanged.
#ifndef XOAR_SRC_XS_SHARDED_STORE_H_
#define XOAR_SRC_XS_SHARDED_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/obs/obs.h"
#include "src/xs/store.h"

namespace xoar {

class XsShardedStore {
 public:
  using TxId = XsStore::TxId;
  using WatchCallback = XsStore::WatchCallback;
  using FlatNode = XsStore::FlatNode;
  static constexpr TxId kNoTransaction = XsStore::kNoTransaction;

  explicit XsShardedStore(int shard_count = 1);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  XsStore& shard(int index) { return *shards_[index]; }
  const XsStore& shard(int index) const { return *shards_[index]; }

  // Shard a path routes to. Spanning prefixes report shard 0 (their reads
  // resolve there); IsSpanningPath distinguishes them.
  int ShardIndexForPath(std::string_view path) const;
  // The shard a domain's own /local/domain/<id> directory lives on — where
  // its transactions are pinned.
  int ShardIndexForDomain(DomainId domain) const;
  // True for "/", "/local" and "/local/domain": ancestors of every
  // per-tenant subtree, present on all shards.
  static bool IsSpanningPath(std::string_view path);

  // --- Configuration (fans out; remembered so Reshard re-applies it) ---

  void AddManagerDomain(DomainId domain);
  bool IsManager(DomainId domain) const { return managers_.count(domain) > 0; }
  void set_node_quota(std::size_t quota);
  void set_obs(Obs* obs);

  // --- Core operations (XsStore-compatible surface) ---

  StatusOr<std::string> Read(DomainId caller, std::string_view path,
                             TxId tx = kNoTransaction);
  Status Write(DomainId caller, std::string_view path, std::string_view value,
               TxId tx = kNoTransaction);
  Status Mkdir(DomainId caller, std::string_view path,
               TxId tx = kNoTransaction);
  Status Remove(DomainId caller, std::string_view path,
                TxId tx = kNoTransaction);
  StatusOr<std::vector<std::string>> List(DomainId caller,
                                          std::string_view path,
                                          TxId tx = kNoTransaction);
  bool Exists(DomainId caller, std::string_view path,
              TxId tx = kNoTransaction);
  StatusOr<XsNodePerms> GetPerms(DomainId caller, std::string_view path);
  Status SetPerms(DomainId caller, std::string_view path,
                  const XsNodePerms& perms);

  Status Watch(DomainId caller, std::string_view path, std::string_view token,
               WatchCallback cb);
  Status Unwatch(DomainId caller, std::string_view path,
                 std::string_view token);
  std::size_t WatchCount() const;

  // Transactions carry facade-level ids; each maps to (shard, local id),
  // pinned at start to the caller's home shard.
  StatusOr<TxId> TransactionStart(DomainId caller);
  Status TransactionEnd(DomainId caller, TxId tx, bool commit);
  // Shard a live transaction is pinned to; -1 if unknown.
  int ShardOfTransaction(TxId tx) const;

  // --- State shipping across all shards ---

  // Merged flat dump, sorted by path, spanning prefixes deduplicated.
  std::vector<FlatNode> Serialize() const;
  // Replaces every shard's contents with the routed subset of `nodes`.
  void Restore(const std::vector<FlatNode>& nodes);

  // O(1)-per-shard checkpoint of the whole sharded store.
  class Snapshot {
   public:
    Snapshot() = default;
    bool valid() const { return !shards_.empty(); }

   private:
    friend class XsShardedStore;
    std::vector<XsStore::Snapshot> shards_;
  };
  Snapshot TakeSnapshot() const;
  void RestoreSnapshot(const Snapshot& snapshot);

  // Per-shard microreboot support: checkpoint one partition, restore it,
  // and drop its volatile tenant state (watches, transactions). The facade
  // also forgets the dropped shard's transaction handles.
  XsStore::Snapshot TakeShardSnapshot(int index) const;
  void RestoreShardSnapshot(int index, const XsStore::Snapshot& snapshot);
  void DropShardVolatileState(int index);

  // Repartitions the store into `new_shard_count` shards. Contents, owner
  // accounting, managers and the node quota survive; watches and live
  // transactions are dropped (tenants re-register, as after a restart).
  void Reshard(int new_shard_count);

  // --- Aggregated introspection ---

  std::uint64_t generation() const;
  std::uint64_t op_count() const;
  std::size_t NodeCount() const;
  std::size_t NodesOwnedBy(DomainId domain) const;

 private:
  struct TxHandle {
    int shard;
    TxId local;
  };

  void ApplyConfig(XsStore* store);

  std::vector<std::unique_ptr<XsStore>> shards_;
  std::map<TxId, TxHandle> tx_map_;
  TxId next_tx_ = 1;
  std::set<DomainId> managers_;
  std::size_t node_quota_ = 0;
  Obs* obs_ = nullptr;
  Gauge* m_shard_count_ = nullptr;  // xs.shard.count
  Counter* m_fanouts_ = nullptr;    // xs.shard.fanout_ops
  Counter* m_reshards_ = nullptr;   // xs.shard.reshards
};

}  // namespace xoar

#endif  // XOAR_SRC_XS_SHARDED_STORE_H_
