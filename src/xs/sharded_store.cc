#include "src/xs/sharded_store.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <utility>

#include "src/base/strings.h"

namespace xoar {

namespace {

// Parses a path into its routing decision without allocating per shard.
struct RouteInfo {
  bool spanning = false;   // "/", "/local", "/local/domain"
  bool tenant = false;     // /local/domain/<id>[/...]
  std::uint32_t tenant_id = 0;
};

RouteInfo RoutePath(std::string_view path) {
  RouteInfo info;
  const std::vector<std::string> segments = SplitPath(path);
  if (segments.empty()) {
    info.spanning = true;
    return info;
  }
  if (segments[0] != "local") {
    return info;
  }
  if (segments.size() == 1) {
    info.spanning = true;
    return info;
  }
  if (segments[1] != "domain") {
    return info;
  }
  if (segments.size() == 2) {
    info.spanning = true;
    return info;
  }
  const std::string& id = segments[2];
  std::uint32_t value = 0;
  for (char c : id) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return info;  // non-numeric child of /local/domain: shard 0
    }
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  info.tenant = true;
  info.tenant_id = value;
  return info;
}

}  // namespace

XsShardedStore::XsShardedStore(int shard_count) {
  if (shard_count < 1) {
    shard_count = 1;
  }
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<XsStore>());
  }
  set_obs(nullptr);
}

void XsShardedStore::ApplyConfig(XsStore* store) {
  store->set_obs(obs_);
  store->set_node_quota(node_quota_);
  for (DomainId manager : managers_) {
    store->AddManagerDomain(manager);
  }
}

void XsShardedStore::set_obs(Obs* obs) {
  obs_ = Obs::OrGlobal(obs);
  MetricRegistry& metrics = obs_->metrics();
  m_shard_count_ = metrics.GetGauge("xs.shard.count");
  m_fanouts_ = metrics.GetCounter("xs.shard.fanout_ops");
  m_reshards_ = metrics.GetCounter("xs.shard.reshards");
  m_shard_count_->Set(static_cast<double>(shards_.size()));
  for (auto& shard : shards_) {
    shard->set_obs(obs_);
  }
}

void XsShardedStore::AddManagerDomain(DomainId domain) {
  managers_.insert(domain);
  for (auto& shard : shards_) {
    shard->AddManagerDomain(domain);
  }
}

void XsShardedStore::set_node_quota(std::size_t quota) {
  node_quota_ = quota;
  for (auto& shard : shards_) {
    shard->set_node_quota(quota);
  }
}

int XsShardedStore::ShardIndexForPath(std::string_view path) const {
  const RouteInfo info = RoutePath(path);
  if (info.tenant) {
    return static_cast<int>(info.tenant_id % shards_.size());
  }
  return 0;
}

int XsShardedStore::ShardIndexForDomain(DomainId domain) const {
  return static_cast<int>(domain.value() % shards_.size());
}

bool XsShardedStore::IsSpanningPath(std::string_view path) {
  return RoutePath(path).spanning;
}

// --- Core operations --------------------------------------------------------

StatusOr<std::string> XsShardedStore::Read(DomainId caller,
                                           std::string_view path, TxId tx) {
  if (tx != kNoTransaction) {
    auto it = tx_map_.find(tx);
    if (it == tx_map_.end()) {
      return NotFoundError("no such transaction");
    }
    return shards_[it->second.shard]->Read(caller, path, it->second.local);
  }
  return shards_[ShardIndexForPath(path)]->Read(caller, path);
}

Status XsShardedStore::Write(DomainId caller, std::string_view path,
                             std::string_view value, TxId tx) {
  if (tx != kNoTransaction) {
    auto it = tx_map_.find(tx);
    if (it == tx_map_.end()) {
      return NotFoundError("no such transaction");
    }
    return shards_[it->second.shard]->Write(caller, path, value,
                                            it->second.local);
  }
  if (IsSpanningPath(path)) {
    m_fanouts_->Increment();
    Status first = Status::Ok();
    for (auto& shard : shards_) {
      Status status = shard->Write(caller, path, value);
      if (first.ok() && !status.ok()) {
        first = status;
      }
    }
    return first;
  }
  return shards_[ShardIndexForPath(path)]->Write(caller, path, value);
}

Status XsShardedStore::Mkdir(DomainId caller, std::string_view path, TxId tx) {
  if (tx != kNoTransaction) {
    auto it = tx_map_.find(tx);
    if (it == tx_map_.end()) {
      return NotFoundError("no such transaction");
    }
    return shards_[it->second.shard]->Mkdir(caller, path, it->second.local);
  }
  if (IsSpanningPath(path)) {
    m_fanouts_->Increment();
    Status first = Status::Ok();
    for (auto& shard : shards_) {
      Status status = shard->Mkdir(caller, path);
      if (first.ok() && !status.ok()) {
        first = status;
      }
    }
    return first;
  }
  return shards_[ShardIndexForPath(path)]->Mkdir(caller, path);
}

Status XsShardedStore::Remove(DomainId caller, std::string_view path, TxId tx) {
  if (tx != kNoTransaction) {
    auto it = tx_map_.find(tx);
    if (it == tx_map_.end()) {
      return NotFoundError("no such transaction");
    }
    return shards_[it->second.shard]->Remove(caller, path, it->second.local);
  }
  if (IsSpanningPath(path)) {
    m_fanouts_->Increment();
    Status first = Status::Ok();
    for (auto& shard : shards_) {
      Status status = shard->Remove(caller, path);
      if (first.ok() && !status.ok()) {
        first = status;
      }
    }
    return first;
  }
  return shards_[ShardIndexForPath(path)]->Remove(caller, path);
}

StatusOr<std::vector<std::string>> XsShardedStore::List(DomainId caller,
                                                        std::string_view path,
                                                        TxId tx) {
  if (tx != kNoTransaction) {
    auto it = tx_map_.find(tx);
    if (it == tx_map_.end()) {
      return NotFoundError("no such transaction");
    }
    return shards_[it->second.shard]->List(caller, path, it->second.local);
  }
  if (IsSpanningPath(path) && shards_.size() > 1) {
    // The spanning directory's children are scattered across partitions;
    // merge them (sorted, deduplicated — the spanning chain itself exists
    // on every shard).
    std::set<std::string> merged;
    Status first_error = Status::Ok();
    bool any_ok = false;
    for (auto& shard : shards_) {
      StatusOr<std::vector<std::string>> names = shard->List(caller, path);
      if (names.ok()) {
        any_ok = true;
        merged.insert(names->begin(), names->end());
      } else if (first_error.ok()) {
        first_error = names.status();
      }
    }
    if (!any_ok) {
      return first_error;
    }
    return std::vector<std::string>(merged.begin(), merged.end());
  }
  return shards_[ShardIndexForPath(path)]->List(caller, path);
}

bool XsShardedStore::Exists(DomainId caller, std::string_view path, TxId tx) {
  if (tx != kNoTransaction) {
    auto it = tx_map_.find(tx);
    if (it == tx_map_.end()) {
      return false;
    }
    return shards_[it->second.shard]->Exists(caller, path, it->second.local);
  }
  if (IsSpanningPath(path) && shards_.size() > 1) {
    for (auto& shard : shards_) {
      if (shard->Exists(caller, path)) {
        return true;
      }
    }
    return false;
  }
  return shards_[ShardIndexForPath(path)]->Exists(caller, path);
}

StatusOr<XsNodePerms> XsShardedStore::GetPerms(DomainId caller,
                                               std::string_view path) {
  return shards_[ShardIndexForPath(path)]->GetPerms(caller, path);
}

Status XsShardedStore::SetPerms(DomainId caller, std::string_view path,
                                const XsNodePerms& perms) {
  if (IsSpanningPath(path) && shards_.size() > 1) {
    m_fanouts_->Increment();
    Status first = Status::Ok();
    for (auto& shard : shards_) {
      Status status = shard->SetPerms(caller, path, perms);
      if (first.ok() && !status.ok()) {
        first = status;
      }
    }
    return first;
  }
  return shards_[ShardIndexForPath(path)]->SetPerms(caller, path, perms);
}

// --- Watches ----------------------------------------------------------------

Status XsShardedStore::Watch(DomainId caller, std::string_view path,
                             std::string_view token, WatchCallback cb) {
  if (!IsSpanningPath(path) || shards_.size() == 1) {
    return shards_[ShardIndexForPath(path)]->Watch(caller, path, token,
                                                   std::move(cb));
  }
  // A spanning watch must observe mutations on every partition, so it
  // registers on all of them. Only the shard-0 registration delivers the
  // xenstored-style immediate fire; the other registrations' synchronous
  // fire is suppressed so the watcher sees exactly one.
  m_fanouts_->Increment();
  Status first = shards_[0]->Watch(caller, path, token, cb);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    auto suppress = std::make_shared<bool>(true);
    Status status = shards_[i]->Watch(
        caller, path, token,
        [cb, suppress](const XsWatchEvent& event) {
          if (*suppress) {
            return;
          }
          cb(event);
        });
    *suppress = false;
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  return first;
}

Status XsShardedStore::Unwatch(DomainId caller, std::string_view path,
                               std::string_view token) {
  if (!IsSpanningPath(path) || shards_.size() == 1) {
    return shards_[ShardIndexForPath(path)]->Unwatch(caller, path, token);
  }
  Status first_error = Status::Ok();
  bool any_ok = false;
  for (auto& shard : shards_) {
    Status status = shard->Unwatch(caller, path, token);
    if (status.ok()) {
      any_ok = true;
    } else if (first_error.ok()) {
      first_error = status;
    }
  }
  return any_ok ? Status::Ok() : first_error;
}

std::size_t XsShardedStore::WatchCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->WatchCount();
  }
  return total;
}

// --- Transactions -----------------------------------------------------------

StatusOr<XsShardedStore::TxId> XsShardedStore::TransactionStart(
    DomainId caller) {
  const int shard = ShardIndexForDomain(caller);
  XOAR_ASSIGN_OR_RETURN(TxId local, shards_[shard]->TransactionStart(caller));
  const TxId id = next_tx_++;
  tx_map_.emplace(id, TxHandle{shard, local});
  return id;
}

Status XsShardedStore::TransactionEnd(DomainId caller, TxId tx, bool commit) {
  auto it = tx_map_.find(tx);
  if (it == tx_map_.end()) {
    return NotFoundError("no such transaction");
  }
  const TxHandle handle = it->second;
  Status status = shards_[handle.shard]->TransactionEnd(caller, handle.local,
                                                        commit);
  // The shard refuses to end a transaction owned by another domain; keep
  // the facade handle alive in that case so the owner can still finish it.
  if (status.code() != StatusCode::kPermissionDenied) {
    tx_map_.erase(it);
  }
  return status;
}

int XsShardedStore::ShardOfTransaction(TxId tx) const {
  auto it = tx_map_.find(tx);
  return it == tx_map_.end() ? -1 : it->second.shard;
}

// --- State shipping ---------------------------------------------------------

std::vector<XsShardedStore::FlatNode> XsShardedStore::Serialize() const {
  std::vector<FlatNode> merged;
  for (const auto& shard : shards_) {
    std::vector<FlatNode> part = shard->Serialize();
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FlatNode& a, const FlatNode& b) {
                     return a.path < b.path;
                   });
  // The spanning ancestor chain exists on every shard; keep one copy.
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const FlatNode& a, const FlatNode& b) {
                             return a.path == b.path;
                           }),
               merged.end());
  return merged;
}

void XsShardedStore::Restore(const std::vector<FlatNode>& nodes) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::vector<FlatNode> part;
    for (const FlatNode& node : nodes) {
      if (IsSpanningPath(node.path) ||
          ShardIndexForPath(node.path) == static_cast<int>(i)) {
        part.push_back(node);
      }
    }
    shards_[i]->Restore(part);
  }
}

XsShardedStore::Snapshot XsShardedStore::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.shards_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snapshot.shards_.push_back(shard->TakeSnapshot());
  }
  return snapshot;
}

void XsShardedStore::RestoreSnapshot(const Snapshot& snapshot) {
  if (snapshot.shards_.size() != shards_.size()) {
    return;  // taken under a different partitioning; not applicable
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->RestoreSnapshot(snapshot.shards_[i]);
  }
}

XsStore::Snapshot XsShardedStore::TakeShardSnapshot(int index) const {
  return shards_[index]->TakeSnapshot();
}

void XsShardedStore::RestoreShardSnapshot(int index,
                                          const XsStore::Snapshot& snapshot) {
  shards_[index]->RestoreSnapshot(snapshot);
}

void XsShardedStore::DropShardVolatileState(int index) {
  shards_[index]->DropVolatileState();
  for (auto it = tx_map_.begin(); it != tx_map_.end();) {
    if (it->second.shard == index) {
      it = tx_map_.erase(it);
    } else {
      ++it;
    }
  }
}

void XsShardedStore::Reshard(int new_shard_count) {
  if (new_shard_count < 1) {
    new_shard_count = 1;
  }
  const std::vector<FlatNode> contents = Serialize();
  shards_.clear();
  tx_map_.clear();
  for (int i = 0; i < new_shard_count; ++i) {
    auto store = std::make_unique<XsStore>();
    ApplyConfig(store.get());
    shards_.push_back(std::move(store));
  }
  Restore(contents);
  m_shard_count_->Set(static_cast<double>(shards_.size()));
  m_reshards_->Increment();
}

// --- Aggregated introspection ------------------------------------------------

std::uint64_t XsShardedStore::generation() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->generation();
  }
  return total;
}

std::uint64_t XsShardedStore::op_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->op_count();
  }
  return total;
}

std::size_t XsShardedStore::NodeCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->NodeCount();
  }
  return total;
}

std::size_t XsShardedStore::NodesOwnedBy(DomainId domain) const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->NodesOwnedBy(domain);
  }
  return total;
}

}  // namespace xoar
