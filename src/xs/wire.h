// XenStore wire protocol structures for ring transport.
//
// The control path in the simulator calls XenStoreService directly for
// ergonomics, but the wire format below is real: the micro-benchmarks and
// integration tests push these PODs through an IoRing in a granted page to
// measure and validate the actual shared-memory round trip.
#ifndef XOAR_SRC_XS_WIRE_H_
#define XOAR_SRC_XS_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/hv/io_ring.h"

namespace xoar {

enum class XsWireOp : std::uint32_t {
  kRead = 0,
  kWrite,
  kMkdir,
  kRemove,
  kList,
  kWatch,
  kUnwatch,
};

struct XsWireRequest {
  std::uint32_t op;
  std::uint32_t tx_id;
  char path[64];
  char value[48];

  void SetPath(std::string_view p) {
    std::size_t n = std::min(p.size(), sizeof(path) - 1);
    std::memcpy(path, p.data(), n);
    path[n] = '\0';
  }
  void SetValue(std::string_view v) {
    std::size_t n = std::min(v.size(), sizeof(value) - 1);
    std::memcpy(value, v.data(), n);
    value[n] = '\0';
  }
};

struct XsWireResponse {
  std::uint32_t status;  // 0 = OK, otherwise a StatusCode
  char value[48];

  void SetValue(std::string_view v) {
    std::size_t n = std::min(v.size(), sizeof(value) - 1);
    std::memcpy(value, v.data(), n);
    value[n] = '\0';
  }
  std::string Value() const { return std::string(value); }
};

// 16 entries of (120 + 52) bytes plus the header fit comfortably in a page.
using XsRing = IoRing<XsWireRequest, XsWireResponse, 16>;

}  // namespace xoar

#endif  // XOAR_SRC_XS_WIRE_H_
