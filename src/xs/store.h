// XenStore (§4.4): hierarchical key-value store with per-node permissions,
// watches, and optimistic transactions.
//
// This is the *data model*; the shard-level split into XenStore-Logic
// (stateless request processing) and XenStore-State (the long-lived
// contents) lives in src/xs/service.h. Access control: node owners and
// explicitly listed domains get the granted rights; "manager" domains (the
// XenStore service itself, or Dom0 in stock Xen) bypass ACLs.
#ifndef XOAR_SRC_XS_STORE_H_
#define XOAR_SRC_XS_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"

namespace xoar {

enum class XsPerm : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

struct XsNodePerms {
  DomainId owner;
  std::map<DomainId, XsPerm> acl;
};

// A fired watch: the modified path plus the token registered with the watch.
struct XsWatchEvent {
  std::string path;
  std::string token;
};

class XsStore {
 public:
  using WatchCallback = std::function<void(const XsWatchEvent&)>;
  using TxId = std::uint32_t;
  static constexpr TxId kNoTransaction = 0;

  XsStore();

  // Domains that bypass ACL checks (the store service itself, stock Dom0).
  void AddManagerDomain(DomainId domain) { managers_.insert(domain); }
  bool IsManager(DomainId domain) const { return managers_.count(domain) > 0; }

  // Per-owner node quota; guards against a guest monopolizing the store
  // (the DoS vector the paper cites in §4.4). 0 disables the quota.
  void set_node_quota(std::size_t quota) { node_quota_ = quota; }

  // --- Core operations. `tx` of kNoTransaction applies immediately. ---

  StatusOr<std::string> Read(DomainId caller, std::string_view path,
                             TxId tx = kNoTransaction);
  Status Write(DomainId caller, std::string_view path, std::string_view value,
               TxId tx = kNoTransaction);
  // Creates an empty directory node (Write also creates intermediate nodes).
  Status Mkdir(DomainId caller, std::string_view path,
               TxId tx = kNoTransaction);
  // Removes the node and its subtree.
  Status Remove(DomainId caller, std::string_view path,
                TxId tx = kNoTransaction);
  StatusOr<std::vector<std::string>> List(DomainId caller,
                                          std::string_view path,
                                          TxId tx = kNoTransaction);
  bool Exists(DomainId caller, std::string_view path) const;

  StatusOr<XsNodePerms> GetPerms(DomainId caller, std::string_view path);
  Status SetPerms(DomainId caller, std::string_view path,
                  const XsNodePerms& perms);

  // --- Watches (§4.4) ---

  // Fires `cb` whenever `path` or anything below it changes. Watches are
  // keyed by (caller, path, token) for unwatch.
  Status Watch(DomainId caller, std::string_view path, std::string_view token,
               WatchCallback cb);
  Status Unwatch(DomainId caller, std::string_view path,
                 std::string_view token);
  std::size_t WatchCount() const { return watches_.size(); }

  // --- Transactions: snapshot-isolation with commit-time conflict check ---

  StatusOr<TxId> TransactionStart(DomainId caller);
  // Commits; returns ABORTED if another commit touched the store since the
  // transaction began (caller should retry, as with real xenstored EAGAIN).
  Status TransactionEnd(DomainId caller, TxId tx, bool commit);

  // --- State shipping (XenStore-State protocol, §5.1) ---

  // Flat dump of every node: (path, value, perms). Deterministic order.
  struct FlatNode {
    std::string path;
    std::string value;
    XsNodePerms perms;
  };
  std::vector<FlatNode> Serialize() const;
  void Restore(const std::vector<FlatNode>& nodes);

  std::uint64_t generation() const { return generation_; }
  std::uint64_t op_count() const { return op_count_; }
  std::size_t NodeCount() const;
  std::size_t NodesOwnedBy(DomainId domain) const;

 private:
  struct Node {
    std::string value;
    XsNodePerms perms;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  struct WatchEntry {
    DomainId caller;
    std::string path;
    std::string token;
    WatchCallback cb;
  };

  struct Transaction {
    DomainId caller;
    std::uint64_t start_generation;
    std::unique_ptr<Node> root;       // private copy
    std::vector<std::string> touched;  // paths written, for watch firing
  };

  static std::unique_ptr<Node> CloneTree(const Node& node);
  Node* Resolve(Node* root, std::string_view path) const;
  // Walks to `path`, creating missing intermediate nodes owned by `owner`.
  StatusOr<Node*> ResolveOrCreate(Node* root, std::string_view path,
                                  DomainId owner);
  Status CheckAccess(DomainId caller, const Node& node, XsPerm needed) const;
  void FireWatches(std::string_view path);
  void CountNodes(const Node& node, const std::string& path,
                  std::vector<FlatNode>* out) const;
  Node* RootFor(TxId tx);
  Status NoteMutation(TxId tx, std::string_view path);

  std::unique_ptr<Node> root_;
  std::set<DomainId> managers_;
  std::vector<WatchEntry> watches_;
  std::map<TxId, Transaction> transactions_;
  TxId next_tx_ = 1;
  std::uint64_t generation_ = 0;
  std::uint64_t op_count_ = 0;
  std::size_t node_quota_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_XS_STORE_H_
