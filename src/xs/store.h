// XenStore (§4.4): hierarchical key-value store with per-node permissions,
// watches, and optimistic transactions.
//
// This is the *data model*; the shard-level split into XenStore-Logic
// (stateless request processing) and XenStore-State (the long-lived
// contents) lives in src/xs/service.h. Access control: node owners and
// explicitly listed domains get the granted rights; "manager" domains (the
// XenStore service itself, or Dom0 in stock Xen) bypass ACLs.
//
// Hot-path design (§5.1 argues primitive costs must stay small for
// disaggregation to be viable):
//  - Nodes are held by shared_ptr and treated as copy-on-write: starting a
//    transaction (or taking a Snapshot) is an O(1) pointer copy, and a
//    mutation shallow-clones only the nodes on its path when they are
//    shared with a snapshot.
//  - Per-owner node counts are maintained incrementally on create/remove/
//    chown/restore, so quota checks and NodesOwnedBy are O(log #owners)
//    instead of a full-tree flatten.
//  - Watches live in a path-segment trie; dispatching a mutation visits the
//    ancestors of the mutated path plus the watch subtree below it, so cost
//    scales with *matching* watches, not total watches.
//  - Commit uses per-path read/write-set validation against a log of
//    mutations since the transaction began; disjoint concurrent commits
//    both succeed (no whole-store generation conflict).
#ifndef XOAR_SRC_XS_STORE_H_
#define XOAR_SRC_XS_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/obs/obs.h"

namespace xoar {

enum class XsPerm : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

struct XsNodePerms {
  DomainId owner;
  std::map<DomainId, XsPerm> acl;
};

// A fired watch: the modified path plus the token registered with the watch.
struct XsWatchEvent {
  std::string path;
  std::string token;
};

class XsStore {
 private:
  struct Node;  // declared early so Snapshot can reference it

 public:
  using WatchCallback = std::function<void(const XsWatchEvent&)>;
  using TxId = std::uint32_t;
  static constexpr TxId kNoTransaction = 0;

  XsStore();

  // Domains that bypass ACL checks (the store service itself, stock Dom0).
  void AddManagerDomain(DomainId domain) { managers_.insert(domain); }
  bool IsManager(DomainId domain) const { return managers_.count(domain) > 0; }

  // Per-owner node quota; guards against a guest monopolizing the store
  // (the DoS vector the paper cites in §4.4). 0 disables the quota.
  void set_node_quota(std::size_t quota) { node_quota_ = quota; }

  // Rebinds `xenstore.store.*` metrics and kXenStore trace events to a
  // platform's Obs (the constructor starts on Obs::Global()).
  void set_obs(Obs* obs);

  // --- Core operations. `tx` of kNoTransaction applies immediately. ---

  StatusOr<std::string> Read(DomainId caller, std::string_view path,
                             TxId tx = kNoTransaction);
  Status Write(DomainId caller, std::string_view path, std::string_view value,
               TxId tx = kNoTransaction);
  // Creates an empty directory node (Write also creates intermediate nodes).
  Status Mkdir(DomainId caller, std::string_view path,
               TxId tx = kNoTransaction);
  // Removes the node and its subtree.
  Status Remove(DomainId caller, std::string_view path,
                TxId tx = kNoTransaction);
  StatusOr<std::vector<std::string>> List(DomainId caller,
                                          std::string_view path,
                                          TxId tx = kNoTransaction);
  // Existence probes are not ACL-gated, as in xenstored, but inside a
  // transaction they see (and are validated against) the transaction's view.
  bool Exists(DomainId caller, std::string_view path,
              TxId tx = kNoTransaction);

  StatusOr<XsNodePerms> GetPerms(DomainId caller, std::string_view path);
  Status SetPerms(DomainId caller, std::string_view path,
                  const XsNodePerms& perms);

  // --- Watches (§4.4) ---

  // Fires `cb` whenever `path` or anything below it changes. Watches are
  // keyed by (caller, path, token) for unwatch.
  Status Watch(DomainId caller, std::string_view path, std::string_view token,
               WatchCallback cb);
  Status Unwatch(DomainId caller, std::string_view path,
                 std::string_view token);
  std::size_t WatchCount() const { return watch_count_; }

  // --- Transactions: snapshot-isolation with commit-time conflict check ---

  // O(1): the transaction shares the current tree copy-on-write.
  StatusOr<TxId> TransactionStart(DomainId caller);
  // Commits; returns ABORTED if a committed mutation since the transaction
  // began overlaps (by path prefix) anything this transaction read or wrote
  // (caller should retry, as with real xenstored EAGAIN). Mutations on
  // disjoint paths do not conflict.
  Status TransactionEnd(DomainId caller, TxId tx, bool commit);

  // --- State shipping (XenStore-State protocol, §5.1) ---

  // Flat dump of every node: (path, value, perms). Deterministic order.
  struct FlatNode {
    std::string path;
    std::string value;
    XsNodePerms perms;
  };
  std::vector<FlatNode> Serialize() const;
  void Restore(const std::vector<FlatNode>& nodes);

  // O(1) checkpoint of the whole store: shares the tree copy-on-write.
  // XenStore-Logic's microreboot rollback (§5.6) uses this instead of a
  // full Serialize/Restore round trip.
  class Snapshot {
   public:
    Snapshot() = default;
    bool valid() const { return root_ != nullptr; }

   private:
    friend class XsStore;
    std::shared_ptr<Node> root_;
    std::map<DomainId, std::size_t> owner_counts_;
    std::size_t node_count_ = 0;
  };
  Snapshot TakeSnapshot() const;
  // Restoring the snapshot the store is already at is a no-op; otherwise the
  // store's contents revert and the generation advances.
  void RestoreSnapshot(const Snapshot& snapshot);

  // Drops all volatile per-client state: active transactions (and the
  // mutation log that only serves them) and every watch registration. The
  // tree contents are untouched. This is what a microreboot of the State
  // shard holding this partition does to its tenants (§3.3): the recovery
  // box restores the contents, but in-flight transactions and watch
  // registrations die with the shard and clients re-register.
  void DropVolatileState() {
    transactions_.clear();
    mutation_log_.clear();
    watch_root_.watches.clear();
    watch_root_.children.clear();
    watch_count_ = 0;
  }

  std::uint64_t generation() const { return generation_; }
  std::uint64_t op_count() const { return op_count_; }
  std::size_t NodeCount() const { return node_count_; }
  std::size_t NodesOwnedBy(DomainId domain) const;

 private:
  using NodePtr = std::shared_ptr<Node>;

  struct Node {
    std::string value;
    XsNodePerms perms;
    std::map<std::string, NodePtr> children;
  };

  struct WatchEntry {
    DomainId caller;
    std::string path;
    std::string token;
    WatchCallback cb;
  };

  // Path-segment trie of registered watches. A mutation at /a/b/c matches
  // the watches stored at the trie nodes for /, /a, /a/b, /a/b/c, plus every
  // watch in the trie subtree below /a/b/c.
  struct WatchNode {
    std::vector<WatchEntry> watches;
    std::map<std::string, std::unique_ptr<WatchNode>> children;
  };

  // A transactional mutation, replayed against the live tree at commit.
  struct TxOp {
    enum class Kind { kWrite, kMkdir, kRemove };
    Kind kind;
    std::string path;   // normalized
    std::string value;  // kWrite only
  };

  struct Transaction {
    DomainId caller;
    std::uint64_t start_generation;
    NodePtr root;  // copy-on-write snapshot of the tree at start
    std::set<std::string> read_set;
    std::set<std::string> write_set;
    std::vector<TxOp> ops;
    // Nodes created minus removed per owner inside this transaction, so
    // quota checks see the transaction's own view.
    std::map<DomainId, std::int64_t> owner_delta;
  };

  // Makes `slot` exclusively owned (shallow-cloning if shared with a
  // snapshot or transaction) and returns the now-mutable node.
  static Node* Detach(NodePtr& slot);
  static const Node* Find(const Node* root, std::string_view path);
  // COW walk to an existing node; nullptr if the path does not exist.
  static Node* ResolveMutable(NodePtr& root, std::string_view path);
  // COW walk that creates missing intermediate nodes owned by `owner`,
  // charging them to the live counters (tx == nullptr) or the transaction's
  // delta.
  StatusOr<Node*> ResolveOrCreate(NodePtr& root, std::string_view path,
                                  DomainId owner, Transaction* tx);
  static void TallySubtree(const Node& node,
                           std::map<DomainId, std::int64_t>* owners,
                           std::size_t* nodes);
  std::size_t OwnedCount(DomainId owner, const Transaction* tx) const;

  Status CheckAccess(DomainId caller, const Node& node, XsPerm needed) const;
  // Access check used when creating below existing nodes: write permission
  // on the deepest existing ancestor of `path`.
  Status CheckCreateAccess(DomainId caller, const Node* root,
                           std::string_view path) const;

  // Mutation bodies shared by the direct path and commit replay. They do
  // not bump the generation or fire watches; callers do.
  Status ApplyWrite(NodePtr& root, DomainId caller, const std::string& norm,
                    std::string_view value, Transaction* tx);
  Status ApplyMkdir(NodePtr& root, DomainId caller, const std::string& norm,
                    Transaction* tx);
  Status ApplyRemove(NodePtr& root, DomainId caller, const std::string& norm,
                     Transaction* tx);

  Transaction* FindTransaction(TxId tx);
  // Post-mutation bookkeeping for the live tree: generation bump, mutation
  // log (only kept while transactions are active), watch dispatch.
  void CommitMutation(const std::string& norm);
  void FireWatches(std::string_view path);
  static void CollectSubtreeWatches(
      const WatchNode& node,
      std::vector<std::pair<WatchCallback, XsWatchEvent>>* out,
      std::string_view fired_path);
  void FlattenTree(const Node& node, const std::string& path,
                   std::vector<FlatNode>* out) const;

  Obs* obs_ = nullptr;
  Counter* m_reads_ = nullptr;        // xenstore.store.reads
  Counter* m_writes_ = nullptr;       // xenstore.store.writes (+mkdir/remove)
  Counter* m_lists_ = nullptr;        // xenstore.store.lists
  Counter* m_tx_started_ = nullptr;   // xenstore.store.tx_started
  Counter* m_tx_committed_ = nullptr; // xenstore.store.tx_committed
  Counter* m_tx_aborted_ = nullptr;   // xenstore.store.tx_aborted
  Counter* m_watch_fires_ = nullptr;  // xenstore.store.watch_fires

  NodePtr root_;
  std::set<DomainId> managers_;
  WatchNode watch_root_;
  std::size_t watch_count_ = 0;
  std::map<TxId, Transaction> transactions_;
  TxId next_tx_ = 1;
  std::uint64_t generation_ = 0;
  std::uint64_t op_count_ = 0;
  std::size_t node_quota_ = 0;
  // Incrementally maintained: #nodes per owning domain and total (root
  // excluded), kept in sync by create/remove/chown/restore/commit.
  std::map<DomainId, std::size_t> owner_counts_;
  std::size_t node_count_ = 0;
  // (generation, path) of committed mutations, recorded only while
  // transactions are active; cleared when the last transaction ends.
  std::vector<std::pair<std::uint64_t, std::string>> mutation_log_;
};

}  // namespace xoar

#endif  // XOAR_SRC_XS_STORE_H_
