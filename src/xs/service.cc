#include "src/xs/service.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

XenStoreService::XenStoreService(Hypervisor* hv, Simulator* sim, Obs* obs)
    : hv_(hv),
      sim_(sim),
      obs_(Obs::OrGlobal(obs)),
      m_requests_(obs_->metrics().GetCounter("xenstore.service.requests")),
      m_logic_restarts_(
          obs_->metrics().GetCounter("xenstore.service.logic_restarts")),
      m_shard_restarts_(obs_->metrics().GetCounter("xs.shard.restarts")),
      m_shard_rejects_(
          obs_->metrics().GetCounter("xs.shard.unavailable_rejects")) {
  store_.set_obs(obs_);
}

void XenStoreService::SetShardCount(int count) {
  store_.Reshard(count);
  shard_available_.assign(store_.shard_count(), true);
  shard_pre_restart_.assign(store_.shard_count(), XsStore::Snapshot());
}

void XenStoreService::DeploySplit(DomainId logic_domain,
                                  DomainId state_domain) {
  DeploySplit(logic_domain, std::vector<DomainId>{state_domain});
}

void XenStoreService::DeploySplit(
    DomainId logic_domain, const std::vector<DomainId>& state_domains) {
  logic_domain_ = logic_domain;
  state_domains_ = state_domains;
  state_domain_ =
      state_domains.empty() ? DomainId::Invalid() : state_domains.front();
  monolithic_ = false;
  logic_available_ = true;
  shard_available_.assign(store_.shard_count(), true);
  shard_pre_restart_.assign(store_.shard_count(), XsStore::Snapshot());
  store_.AddManagerDomain(logic_domain);
  for (DomainId state : state_domains) {
    store_.AddManagerDomain(state);
  }
}

void XenStoreService::DeployMonolithic(DomainId control_domain) {
  logic_domain_ = control_domain;
  state_domain_ = control_domain;
  state_domains_ = {control_domain};
  monolithic_ = true;
  logic_available_ = true;
  shard_available_.assign(store_.shard_count(), true);
  shard_pre_restart_.assign(store_.shard_count(), XsStore::Snapshot());
  store_.AddManagerDomain(control_domain);
}

Status XenStoreService::Connect(DomainId client) {
  if (!deployed()) {
    return FailedPreconditionError("XenStore service not deployed");
  }
  if (connections_.count(client) > 0) {
    return AlreadyExistsError(
        StrFormat("dom%u already connected to XenStore", client.value()));
  }
  if (client == logic_domain_) {
    // The service does not connect to itself; it owns the store.
    connections_.emplace(client, Connection{});
    return Status::Ok();
  }
  Connection conn;
  // One page of the client's memory hosts the communication ring.
  XOAR_ASSIGN_OR_RETURN(conn.ring_pfn,
                        hv_->memory().AllocatePages(client, 1));
  if (monolithic_) {
    // Stock Xen: xenstored uses Dom0 privilege to directly map the ring
    // (§4.4) — no grant entry exists.
    XOAR_ASSIGN_OR_RETURN(
        MappedPage page,
        // xoar-flow: allow(privilege_flow): stock-xenstored §4.4 baseline branch only — Xoar mode uses the Builder-created grant below
        hv_->ForeignMap(logic_domain_, client, conn.ring_pfn));
    (void)page;
  } else {
    // Xoar: the Builder pre-creates a grant entry so a *deprivileged*
    // XenStore can map the ring (§5.6). The grant/map calls below run the
    // hypervisor's shard-sharing checks.
    XOAR_ASSIGN_OR_RETURN(
        conn.ring_gref,
        hv_->GrantAccess(client, logic_domain_, conn.ring_pfn,
                         /*writable=*/true));
    XOAR_ASSIGN_OR_RETURN(MappedPage page,
                          hv_->MapGrant(logic_domain_, client, conn.ring_gref));
    (void)page;
  }
  XOAR_ASSIGN_OR_RETURN(conn.client_port,
                        hv_->EvtchnAllocUnbound(client, logic_domain_));
  XOAR_ASSIGN_OR_RETURN(
      conn.server_port,
      hv_->EvtchnBindInterdomain(logic_domain_, client, conn.client_port));
  connections_.emplace(client, conn);
  XLOG(kDebug) << "[xs] dom" << client.value() << " connected";
  return Status::Ok();
}

bool XenStoreService::IsConnected(DomainId client) const {
  return connections_.count(client) > 0;
}

void XenStoreService::Disconnect(DomainId client) {
  connections_.erase(client);
}

Status XenStoreService::CheckRequest(DomainId caller) {
  if (!deployed()) {
    return FailedPreconditionError("XenStore service not deployed");
  }
  if (!logic_available_) {
    return UnavailableError("XenStore-Logic is restarting");
  }
  const Domain* logic = hv_->domain(logic_domain_);
  if (logic == nullptr || logic->state() != DomainState::kRunning) {
    return UnavailableError("XenStore domain is not running");
  }
  if (connections_.count(caller) == 0) {
    return FailedPreconditionError(
        StrFormat("dom%u has no XenStore connection", caller.value()));
  }
  if (request_fault_hook_ && request_fault_hook_(caller)) {
    return UnavailableError("XenStore request timed out (injected fault)");
  }
  return Status::Ok();
}

Status XenStoreService::CheckShard(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shard_available_.size())) {
    return Status::Ok();  // unknown partition resolves in the store layer
  }
  if (!shard_available_[shard]) {
    m_shard_rejects_->Increment();
    return UnavailableError(
        StrFormat("XenStore-State shard %d is restarting", shard));
  }
  return Status::Ok();
}

Status XenStoreService::CheckShardForPath(std::string_view path) {
  if (XsShardedStore::IsSpanningPath(path)) {
    // Spanning prefixes fan out (mutations) or merge (listings): every
    // partition must be up.
    for (int i = 0; i < static_cast<int>(shard_available_.size()); ++i) {
      XOAR_RETURN_IF_ERROR(CheckShard(i));
    }
    return Status::Ok();
  }
  return CheckShard(store_.ShardIndexForPath(path));
}

void XenStoreService::NoteRequestServed() {
  ++requests_processed_;
  m_requests_->Increment();
  if (restart_policy_ == RestartPolicy::kPerRequest) {
    // Fig 5.1: XenStore-Logic rolls back to its post-boot snapshot after
    // every request. The rollback itself is fast (copy-on-write reset);
    // state lives in XenStore-State so nothing is renegotiated. Taking and
    // dropping the checkpoint is O(1) with the COW store.
    (void)store_.TakeSnapshot();
    ++logic_restarts_;
    m_logic_restarts_->Increment();
  }
}

void XenStoreService::FinishLogicRestart() {
  // XenStore-Logic re-attaches to the contents held by XenStore-State
  // (§5.1). Requests were gated while Logic was down, so the checkpoint is
  // the current state and re-attaching is an O(1) no-op — the COW snapshot
  // replaces the old full Serialize/Restore round trip.
  store_.RestoreSnapshot(pre_restart_state_);
  pre_restart_state_ = XsShardedStore::Snapshot();
  logic_available_ = true;
}

StatusOr<std::string> XenStoreService::Read(DomainId caller,
                                            std::string_view path) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShardForPath(path));
  NoteRequestServed();
  return store_.Read(caller, path);
}

Status XenStoreService::Write(DomainId caller, std::string_view path,
                              std::string_view value) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShardForPath(path));
  NoteRequestServed();
  return store_.Write(caller, path, value);
}

Status XenStoreService::Mkdir(DomainId caller, std::string_view path) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShardForPath(path));
  NoteRequestServed();
  return store_.Mkdir(caller, path);
}

Status XenStoreService::Remove(DomainId caller, std::string_view path) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShardForPath(path));
  NoteRequestServed();
  return store_.Remove(caller, path);
}

StatusOr<std::vector<std::string>> XenStoreService::List(
    DomainId caller, std::string_view path) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShardForPath(path));
  NoteRequestServed();
  return store_.List(caller, path);
}

Status XenStoreService::SetPerms(DomainId caller, std::string_view path,
                                 const XsNodePerms& perms) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShardForPath(path));
  NoteRequestServed();
  return store_.SetPerms(caller, path, perms);
}

Status XenStoreService::Watch(DomainId caller, std::string_view path,
                              std::string_view token,
                              XsStore::WatchCallback cb) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShardForPath(path));
  NoteRequestServed();
  // Watch registrations live in the store itself (XenStore-State), so they
  // survive Logic restarts. Deliveries are asynchronous.
  Simulator* sim = sim_;
  return store_.Watch(
      caller, path, token,
      [sim, cb = std::move(cb)](const XsWatchEvent& event) {
        sim->ScheduleAfter(kXsWatchLatency, [cb, event] { cb(event); });
      });
}

Status XenStoreService::Unwatch(DomainId caller, std::string_view path,
                                std::string_view token) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShardForPath(path));
  NoteRequestServed();
  return store_.Unwatch(caller, path, token);
}

StatusOr<XsStore::TxId> XenStoreService::TransactionStart(DomainId caller) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShard(store_.ShardIndexForDomain(caller)));
  NoteRequestServed();
  return store_.TransactionStart(caller);
}

Status XenStoreService::TransactionEnd(DomainId caller, XsStore::TxId tx,
                                       bool commit) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShard(store_.ShardOfTransaction(tx)));
  NoteRequestServed();
  return store_.TransactionEnd(caller, tx, commit);
}

StatusOr<std::string> XenStoreService::ReadTx(DomainId caller,
                                              std::string_view path,
                                              XsStore::TxId tx) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShard(store_.ShardOfTransaction(tx)));
  NoteRequestServed();
  return store_.Read(caller, path, tx);
}

Status XenStoreService::WriteTx(DomainId caller, std::string_view path,
                                std::string_view value, XsStore::TxId tx) {
  XOAR_RETURN_IF_ERROR(CheckRequest(caller));
  XOAR_RETURN_IF_ERROR(CheckShard(store_.ShardOfTransaction(tx)));
  NoteRequestServed();
  return store_.Write(caller, path, value, tx);
}

Status XenStoreService::BeginLogicRestart() {
  if (!deployed() || monolithic_) {
    return FailedPreconditionError("no restartable XenStore-Logic deployed");
  }
  if (!logic_available_) {
    return FailedPreconditionError("XenStore-Logic already restarting");
  }
  pre_restart_state_ = store_.TakeSnapshot();
  logic_available_ = false;
  ++logic_restarts_;
  m_logic_restarts_->Increment();
  return Status::Ok();
}

Status XenStoreService::CompleteLogicRestart() {
  if (logic_available_) {
    return FailedPreconditionError("XenStore-Logic is not restarting");
  }
  FinishLogicRestart();
  return Status::Ok();
}

Status XenStoreService::BeginStateShardRestart(int shard) {
  if (!deployed() || monolithic_) {
    return FailedPreconditionError("no restartable XenStore-State deployed");
  }
  if (shard < 0 || shard >= static_cast<int>(shard_available_.size())) {
    return InvalidArgumentError(
        StrFormat("no such XenStore-State shard: %d", shard));
  }
  if (!shard_available_[shard]) {
    return FailedPreconditionError(
        StrFormat("XenStore-State shard %d already restarting", shard));
  }
  // Recovery box (§3.3): the shard's contents are checkpointed before the
  // microreboot and re-attached on the way back up. Volatile tenant state
  // (watches, in-flight transactions) does not survive.
  shard_pre_restart_[shard] = store_.TakeShardSnapshot(shard);
  shard_available_[shard] = false;
  ++state_shard_restarts_;
  m_shard_restarts_->Increment();
  return Status::Ok();
}

Status XenStoreService::CompleteStateShardRestart(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shard_available_.size())) {
    return InvalidArgumentError(
        StrFormat("no such XenStore-State shard: %d", shard));
  }
  if (shard_available_[shard]) {
    return FailedPreconditionError(
        StrFormat("XenStore-State shard %d is not restarting", shard));
  }
  store_.RestoreShardSnapshot(shard, shard_pre_restart_[shard]);
  shard_pre_restart_[shard] = XsStore::Snapshot();
  // The fresh shard has no watch registrations or live transactions —
  // exactly 1/N of the tenants renegotiate, the rest never notice.
  store_.DropShardVolatileState(shard);
  shard_available_[shard] = true;
  return Status::Ok();
}

Status XenStoreService::RestartStateShard(int shard, SimDuration downtime) {
  XOAR_RETURN_IF_ERROR(BeginStateShardRestart(shard));
  sim_->ScheduleAfter(downtime, [this, shard] {
    (void)CompleteStateShardRestart(shard);
    XLOG(kDebug) << "[xs] XenStore-State shard " << shard
                 << " back after restart #" << state_shard_restarts_;
  });
  return Status::Ok();
}

Status XenStoreService::RestartLogic(SimDuration downtime) {
  if (!deployed()) {
    return FailedPreconditionError("XenStore service not deployed");
  }
  if (monolithic_) {
    return FailedPreconditionError(
        "stock xenstored cannot be restarted independently of Dom0");
  }
  if (!logic_available_) {
    return FailedPreconditionError("XenStore-Logic already restarting");
  }
  pre_restart_state_ = store_.TakeSnapshot();
  logic_available_ = false;
  ++logic_restarts_;
  m_logic_restarts_->Increment();
  sim_->ScheduleAfter(downtime, [this] {
    // Connections persist in the state component, so clients resume
    // without renegotiation.
    FinishLogicRestart();
    XLOG(kDebug) << "[xs] XenStore-Logic back after restart #"
                 << logic_restarts_;
  });
  return Status::Ok();
}

}  // namespace xoar
