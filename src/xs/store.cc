#include "src/xs/store.h"

#include <algorithm>

#include "src/base/strings.h"

namespace xoar {

namespace {
std::string Normalize(std::string_view path) {
  return JoinPath(SplitPath(path));
}
}  // namespace

XsStore::XsStore() : root_(std::make_unique<Node>()) {
  root_->perms.owner = DomainId::Invalid();
}

std::unique_ptr<XsStore::Node> XsStore::CloneTree(const Node& node) {
  auto copy = std::make_unique<Node>();
  copy->value = node.value;
  copy->perms = node.perms;
  for (const auto& [name, child] : node.children) {
    copy->children.emplace(name, CloneTree(*child));
  }
  return copy;
}

XsStore::Node* XsStore::Resolve(Node* root, std::string_view path) const {
  Node* node = root;
  for (const auto& segment : SplitPath(path)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

StatusOr<XsStore::Node*> XsStore::ResolveOrCreate(Node* root,
                                                  std::string_view path,
                                                  DomainId owner) {
  Node* node = root;
  for (const auto& segment : SplitPath(path)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      if (node_quota_ != 0 && owner.valid() && !IsManager(owner) &&
          NodesOwnedBy(owner) >= node_quota_) {
        return ResourceExhaustedError(
            StrFormat("dom%u exceeded XenStore node quota (%zu)",
                      owner.value(), node_quota_));
      }
      auto child = std::make_unique<Node>();
      child->perms.owner = owner;
      it = node->children.emplace(segment, std::move(child)).first;
    }
    node = it->second.get();
  }
  return node;
}

Status XsStore::CheckAccess(DomainId caller, const Node& node,
                            XsPerm needed) const {
  if (IsManager(caller)) {
    return Status::Ok();
  }
  if (node.perms.owner == caller) {
    return Status::Ok();
  }
  auto it = node.perms.acl.find(caller);
  const auto have =
      it == node.perms.acl.end() ? XsPerm::kNone : it->second;
  const bool ok =
      (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(needed)) ==
      static_cast<std::uint8_t>(needed);
  if (!ok) {
    return PermissionDeniedError(
        StrFormat("dom%u lacks %s access", caller.value(),
                  needed == XsPerm::kRead ? "read" : "write"));
  }
  return Status::Ok();
}

XsStore::Node* XsStore::RootFor(TxId tx) {
  if (tx == kNoTransaction) {
    return root_.get();
  }
  auto it = transactions_.find(tx);
  return it == transactions_.end() ? nullptr : it->second.root.get();
}

Status XsStore::NoteMutation(TxId tx, std::string_view path) {
  if (tx == kNoTransaction) {
    ++generation_;
    FireWatches(path);
    return Status::Ok();
  }
  auto it = transactions_.find(tx);
  if (it == transactions_.end()) {
    return NotFoundError("no such transaction");
  }
  it->second.touched.emplace_back(path);
  return Status::Ok();
}

StatusOr<std::string> XsStore::Read(DomainId caller, std::string_view path,
                                    TxId tx) {
  ++op_count_;
  Node* root = RootFor(tx);
  if (root == nullptr) {
    return NotFoundError("no such transaction");
  }
  Node* node = Resolve(root, path);
  if (node == nullptr) {
    return NotFoundError(StrFormat("no node %s", Normalize(path).c_str()));
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *node, XsPerm::kRead));
  return node->value;
}

Status XsStore::Write(DomainId caller, std::string_view path,
                      std::string_view value, TxId tx) {
  ++op_count_;
  Node* root = RootFor(tx);
  if (root == nullptr) {
    return NotFoundError("no such transaction");
  }
  const std::string norm = Normalize(path);
  Node* existing = Resolve(root, norm);
  if (existing != nullptr) {
    XOAR_RETURN_IF_ERROR(CheckAccess(caller, *existing, XsPerm::kWrite));
    existing->value = std::string(value);
  } else {
    // Creating below an existing node requires write access to the deepest
    // existing ancestor.
    std::vector<std::string> segments = SplitPath(norm);
    Node* ancestor = root;
    for (const auto& segment : segments) {
      auto it = ancestor->children.find(segment);
      if (it == ancestor->children.end()) {
        break;
      }
      ancestor = it->second.get();
    }
    XOAR_RETURN_IF_ERROR(CheckAccess(caller, *ancestor, XsPerm::kWrite));
    XOAR_ASSIGN_OR_RETURN(Node * node, ResolveOrCreate(root, norm, caller));
    node->value = std::string(value);
  }
  return NoteMutation(tx, norm);
}

Status XsStore::Mkdir(DomainId caller, std::string_view path, TxId tx) {
  ++op_count_;
  Node* root = RootFor(tx);
  if (root == nullptr) {
    return NotFoundError("no such transaction");
  }
  const std::string norm = Normalize(path);
  if (Resolve(root, norm) != nullptr) {
    return Status::Ok();  // mkdir is idempotent, as in xenstored
  }
  std::vector<std::string> segments = SplitPath(norm);
  Node* ancestor = root;
  for (const auto& segment : segments) {
    auto it = ancestor->children.find(segment);
    if (it == ancestor->children.end()) {
      break;
    }
    ancestor = it->second.get();
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *ancestor, XsPerm::kWrite));
  XOAR_ASSIGN_OR_RETURN(Node * node, ResolveOrCreate(root, norm, caller));
  (void)node;
  return NoteMutation(tx, norm);
}

Status XsStore::Remove(DomainId caller, std::string_view path, TxId tx) {
  ++op_count_;
  Node* root = RootFor(tx);
  if (root == nullptr) {
    return NotFoundError("no such transaction");
  }
  const std::string norm = Normalize(path);
  std::vector<std::string> segments = SplitPath(norm);
  if (segments.empty()) {
    return InvalidArgumentError("cannot remove the root");
  }
  const std::string leaf = segments.back();
  segments.pop_back();
  Node* parent = Resolve(root, JoinPath(segments));
  if (parent == nullptr) {
    return NotFoundError(StrFormat("no node %s", norm.c_str()));
  }
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return NotFoundError(StrFormat("no node %s", norm.c_str()));
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *it->second, XsPerm::kWrite));
  parent->children.erase(it);
  return NoteMutation(tx, norm);
}

StatusOr<std::vector<std::string>> XsStore::List(DomainId caller,
                                                 std::string_view path,
                                                 TxId tx) {
  ++op_count_;
  Node* root = RootFor(tx);
  if (root == nullptr) {
    return NotFoundError("no such transaction");
  }
  Node* node = Resolve(root, path);
  if (node == nullptr) {
    return NotFoundError(StrFormat("no node %s", Normalize(path).c_str()));
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *node, XsPerm::kRead));
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    names.push_back(name);
  }
  return names;
}

bool XsStore::Exists(DomainId caller, std::string_view path) const {
  (void)caller;  // Existence probes are not ACL-gated, as in xenstored.
  return Resolve(root_.get(), path) != nullptr;
}

StatusOr<XsNodePerms> XsStore::GetPerms(DomainId caller,
                                        std::string_view path) {
  Node* node = Resolve(root_.get(), path);
  if (node == nullptr) {
    return NotFoundError(StrFormat("no node %s", Normalize(path).c_str()));
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *node, XsPerm::kRead));
  return node->perms;
}

Status XsStore::SetPerms(DomainId caller, std::string_view path,
                         const XsNodePerms& perms) {
  Node* node = Resolve(root_.get(), path);
  if (node == nullptr) {
    return NotFoundError(StrFormat("no node %s", Normalize(path).c_str()));
  }
  // Only the owner (or a manager) may change permissions.
  if (!IsManager(caller) && node->perms.owner != caller) {
    return PermissionDeniedError(
        StrFormat("dom%u does not own %s", caller.value(),
                  Normalize(path).c_str()));
  }
  node->perms = perms;
  ++generation_;
  return Status::Ok();
}

Status XsStore::Watch(DomainId caller, std::string_view path,
                      std::string_view token, WatchCallback cb) {
  const std::string norm = Normalize(path);
  for (const auto& watch : watches_) {
    if (watch.caller == caller && watch.path == norm && watch.token == token) {
      return AlreadyExistsError("watch already registered");
    }
  }
  watches_.push_back(
      WatchEntry{caller, norm, std::string(token), std::move(cb)});
  // xenstored fires a watch immediately upon registration so the watcher can
  // pick up pre-existing state — split-driver negotiation depends on this.
  const WatchEntry& entry = watches_.back();
  entry.cb(XsWatchEvent{entry.path, entry.token});
  return Status::Ok();
}

Status XsStore::Unwatch(DomainId caller, std::string_view path,
                        std::string_view token) {
  const std::string norm = Normalize(path);
  auto it = std::find_if(watches_.begin(), watches_.end(),
                         [&](const WatchEntry& w) {
                           return w.caller == caller && w.path == norm &&
                                  w.token == token;
                         });
  if (it == watches_.end()) {
    return NotFoundError("no such watch");
  }
  watches_.erase(it);
  return Status::Ok();
}

void XsStore::FireWatches(std::string_view path) {
  // Copy matching callbacks first: a callback may register/unregister
  // watches reentrantly.
  std::vector<std::pair<WatchCallback, XsWatchEvent>> to_fire;
  for (const auto& watch : watches_) {
    if (PathHasPrefix(path, watch.path) || PathHasPrefix(watch.path, path)) {
      to_fire.emplace_back(watch.cb,
                           XsWatchEvent{std::string(path), watch.token});
    }
  }
  for (auto& [cb, event] : to_fire) {
    cb(event);
  }
}

StatusOr<XsStore::TxId> XsStore::TransactionStart(DomainId caller) {
  Transaction tx;
  tx.caller = caller;
  tx.start_generation = generation_;
  tx.root = CloneTree(*root_);
  TxId id = next_tx_++;
  transactions_.emplace(id, std::move(tx));
  return id;
}

Status XsStore::TransactionEnd(DomainId caller, TxId tx, bool commit) {
  auto it = transactions_.find(tx);
  if (it == transactions_.end()) {
    return NotFoundError("no such transaction");
  }
  if (it->second.caller != caller) {
    return PermissionDeniedError("transaction belongs to another domain");
  }
  Transaction transaction = std::move(it->second);
  transactions_.erase(it);
  if (!commit) {
    return Status::Ok();
  }
  if (transaction.start_generation != generation_) {
    // Optimistic-concurrency conflict: the caller must retry, mirroring
    // xenstored's EAGAIN.
    return AbortedError("store changed during transaction");
  }
  root_ = std::move(transaction.root);
  ++generation_;
  for (const auto& touched : transaction.touched) {
    FireWatches(touched);
  }
  return Status::Ok();
}

void XsStore::CountNodes(const Node& node, const std::string& path,
                         std::vector<FlatNode>* out) const {
  for (const auto& [name, child] : node.children) {
    const std::string child_path = path + "/" + name;
    out->push_back(FlatNode{child_path, child->value, child->perms});
    CountNodes(*child, child_path, out);
  }
}

std::vector<XsStore::FlatNode> XsStore::Serialize() const {
  std::vector<FlatNode> out;
  CountNodes(*root_, "", &out);
  return out;
}

void XsStore::Restore(const std::vector<FlatNode>& nodes) {
  root_ = std::make_unique<Node>();
  root_->perms.owner = DomainId::Invalid();
  for (const auto& flat : nodes) {
    StatusOr<Node*> node =
        ResolveOrCreate(root_.get(), flat.path, flat.perms.owner);
    if (node.ok()) {
      (*node)->value = flat.value;
      (*node)->perms = flat.perms;
    }
  }
  ++generation_;
}

std::size_t XsStore::NodeCount() const {
  std::vector<FlatNode> all;
  CountNodes(*root_, "", &all);
  return all.size();
}

std::size_t XsStore::NodesOwnedBy(DomainId domain) const {
  std::vector<FlatNode> all;
  CountNodes(*root_, "", &all);
  return static_cast<std::size_t>(
      std::count_if(all.begin(), all.end(), [&](const FlatNode& n) {
        return n.perms.owner == domain;
      }));
}

}  // namespace xoar
