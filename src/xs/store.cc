#include "src/xs/store.h"

#include <algorithm>
#include <utility>

#include "src/base/strings.h"

namespace xoar {

namespace {
std::string Normalize(std::string_view path) {
  return JoinPath(SplitPath(path));
}

// True if a mutation at `mutated` is visible to an access at `accessed`:
// either path is an ancestor of (or equal to) the other.
bool PathsOverlap(std::string_view mutated, std::string_view accessed) {
  return PathHasPrefix(mutated, accessed) || PathHasPrefix(accessed, mutated);
}
}  // namespace

XsStore::XsStore() : root_(std::make_shared<Node>()) {
  root_->perms.owner = DomainId::Invalid();
  set_obs(nullptr);
}

void XsStore::set_obs(Obs* obs) {
  obs_ = Obs::OrGlobal(obs);
  MetricRegistry& metrics = obs_->metrics();
  m_reads_ = metrics.GetCounter("xenstore.store.reads");
  m_writes_ = metrics.GetCounter("xenstore.store.writes");
  m_lists_ = metrics.GetCounter("xenstore.store.lists");
  m_tx_started_ = metrics.GetCounter("xenstore.store.tx_started");
  m_tx_committed_ = metrics.GetCounter("xenstore.store.tx_committed");
  m_tx_aborted_ = metrics.GetCounter("xenstore.store.tx_aborted");
  m_watch_fires_ = metrics.GetCounter("xenstore.store.watch_fires");
}

XsStore::Node* XsStore::Detach(NodePtr& slot) {
  if (slot.use_count() > 1) {
    // Shared with a snapshot or transaction: shallow-clone. The children
    // map copies shared_ptrs only, so the subtree stays shared until a
    // deeper mutation detaches it too.
    slot = std::make_shared<Node>(*slot);
  }
  return slot.get();
}

const XsStore::Node* XsStore::Find(const Node* root, std::string_view path) {
  const Node* node = root;
  for (const auto& segment : SplitPath(path)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

XsStore::Node* XsStore::ResolveMutable(NodePtr& root, std::string_view path) {
  Node* node = Detach(root);
  for (const auto& segment : SplitPath(path)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = Detach(it->second);
  }
  return node;
}

std::size_t XsStore::OwnedCount(DomainId owner, const Transaction* tx) const {
  std::int64_t count = 0;
  auto it = owner_counts_.find(owner);
  if (it != owner_counts_.end()) {
    count = static_cast<std::int64_t>(it->second);
  }
  if (tx != nullptr) {
    auto delta = tx->owner_delta.find(owner);
    if (delta != tx->owner_delta.end()) {
      count += delta->second;
    }
  }
  return count > 0 ? static_cast<std::size_t>(count) : 0;
}

StatusOr<XsStore::Node*> XsStore::ResolveOrCreate(NodePtr& root,
                                                  std::string_view path,
                                                  DomainId owner,
                                                  Transaction* tx) {
  Node* node = Detach(root);
  for (const auto& segment : SplitPath(path)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      if (node_quota_ != 0 && owner.valid() && !IsManager(owner) &&
          OwnedCount(owner, tx) >= node_quota_) {
        return ResourceExhaustedError(
            StrFormat("dom%u exceeded XenStore node quota (%zu)",
                      owner.value(), node_quota_));
      }
      auto child = std::make_shared<Node>();
      child->perms.owner = owner;
      if (tx != nullptr) {
        ++tx->owner_delta[owner];
      } else {
        ++owner_counts_[owner];
        ++node_count_;
      }
      it = node->children.emplace(segment, std::move(child)).first;
      node = it->second.get();
    } else {
      node = Detach(it->second);
    }
  }
  return node;
}

void XsStore::TallySubtree(const Node& node,
                           std::map<DomainId, std::int64_t>* owners,
                           std::size_t* nodes) {
  ++(*owners)[node.perms.owner];
  ++(*nodes);
  for (const auto& [name, child] : node.children) {
    TallySubtree(*child, owners, nodes);
  }
}

Status XsStore::CheckAccess(DomainId caller, const Node& node,
                            XsPerm needed) const {
  if (IsManager(caller)) {
    return Status::Ok();
  }
  if (node.perms.owner == caller) {
    return Status::Ok();
  }
  auto it = node.perms.acl.find(caller);
  const auto have =
      it == node.perms.acl.end() ? XsPerm::kNone : it->second;
  const bool ok =
      (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(needed)) ==
      static_cast<std::uint8_t>(needed);
  if (!ok) {
    return PermissionDeniedError(
        StrFormat("dom%u lacks %s access", caller.value(),
                  needed == XsPerm::kRead ? "read" : "write"));
  }
  return Status::Ok();
}

Status XsStore::CheckCreateAccess(DomainId caller, const Node* root,
                                  std::string_view path) const {
  const Node* ancestor = root;
  for (const auto& segment : SplitPath(path)) {
    auto it = ancestor->children.find(segment);
    if (it == ancestor->children.end()) {
      break;
    }
    ancestor = it->second.get();
  }
  return CheckAccess(caller, *ancestor, XsPerm::kWrite);
}

XsStore::Transaction* XsStore::FindTransaction(TxId tx) {
  auto it = transactions_.find(tx);
  return it == transactions_.end() ? nullptr : &it->second;
}

void XsStore::CommitMutation(const std::string& norm) {
  ++generation_;
  if (!transactions_.empty()) {
    mutation_log_.emplace_back(generation_, norm);
  }
  FireWatches(norm);
}

Status XsStore::ApplyWrite(NodePtr& root, DomainId caller,
                           const std::string& norm, std::string_view value,
                           Transaction* tx) {
  const Node* existing = Find(root.get(), norm);
  if (existing != nullptr) {
    XOAR_RETURN_IF_ERROR(CheckAccess(caller, *existing, XsPerm::kWrite));
    ResolveMutable(root, norm)->value = std::string(value);
    return Status::Ok();
  }
  // Creating below an existing node requires write access to the deepest
  // existing ancestor.
  XOAR_RETURN_IF_ERROR(CheckCreateAccess(caller, root.get(), norm));
  XOAR_ASSIGN_OR_RETURN(Node * node, ResolveOrCreate(root, norm, caller, tx));
  node->value = std::string(value);
  return Status::Ok();
}

Status XsStore::ApplyMkdir(NodePtr& root, DomainId caller,
                           const std::string& norm, Transaction* tx) {
  if (Find(root.get(), norm) != nullptr) {
    return Status::Ok();  // mkdir is idempotent, as in xenstored
  }
  XOAR_RETURN_IF_ERROR(CheckCreateAccess(caller, root.get(), norm));
  XOAR_ASSIGN_OR_RETURN(Node * node, ResolveOrCreate(root, norm, caller, tx));
  (void)node;
  return Status::Ok();
}

Status XsStore::ApplyRemove(NodePtr& root, DomainId caller,
                            const std::string& norm, Transaction* tx) {
  std::vector<std::string> segments = SplitPath(norm);
  if (segments.empty()) {
    return InvalidArgumentError("cannot remove the root");
  }
  const std::string leaf = segments.back();
  segments.pop_back();
  const std::string parent_path = JoinPath(segments);
  const Node* parent_view = Find(root.get(), parent_path);
  if (parent_view == nullptr) {
    return NotFoundError(StrFormat("no node %s", norm.c_str()));
  }
  auto view_it = parent_view->children.find(leaf);
  if (view_it == parent_view->children.end()) {
    return NotFoundError(StrFormat("no node %s", norm.c_str()));
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *view_it->second, XsPerm::kWrite));
  Node* parent = ResolveMutable(root, parent_path);
  auto it = parent->children.find(leaf);
  std::map<DomainId, std::int64_t> removed;
  std::size_t removed_nodes = 0;
  TallySubtree(*it->second, &removed, &removed_nodes);
  if (tx != nullptr) {
    for (const auto& [owner, n] : removed) {
      tx->owner_delta[owner] -= n;
    }
  } else {
    for (const auto& [owner, n] : removed) {
      auto count = owner_counts_.find(owner);
      if (count != owner_counts_.end()) {
        if (count->second <= static_cast<std::size_t>(n)) {
          owner_counts_.erase(count);
        } else {
          count->second -= static_cast<std::size_t>(n);
        }
      }
    }
    node_count_ -= std::min(node_count_, removed_nodes);
  }
  parent->children.erase(it);
  return Status::Ok();
}

StatusOr<std::string> XsStore::Read(DomainId caller, std::string_view path,
                                    TxId tx_id) {
  ++op_count_;
  m_reads_->Increment();
  obs_->tracer().Op(TraceCategory::kXenStore, "xs_read", caller.value());
  const std::string norm = Normalize(path);
  const Node* root = root_.get();
  if (tx_id != kNoTransaction) {
    Transaction* tx = FindTransaction(tx_id);
    if (tx == nullptr) {
      return NotFoundError("no such transaction");
    }
    tx->read_set.insert(norm);
    root = tx->root.get();
  }
  const Node* node = Find(root, norm);
  if (node == nullptr) {
    return NotFoundError(StrFormat("no node %s", norm.c_str()));
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *node, XsPerm::kRead));
  return node->value;
}

Status XsStore::Write(DomainId caller, std::string_view path,
                      std::string_view value, TxId tx_id) {
  ++op_count_;
  m_writes_->Increment();
  obs_->tracer().Op(TraceCategory::kXenStore, "xs_write", caller.value());
  const std::string norm = Normalize(path);
  if (tx_id == kNoTransaction) {
    XOAR_RETURN_IF_ERROR(ApplyWrite(root_, caller, norm, value, nullptr));
    CommitMutation(norm);
    return Status::Ok();
  }
  Transaction* tx = FindTransaction(tx_id);
  if (tx == nullptr) {
    return NotFoundError("no such transaction");
  }
  XOAR_RETURN_IF_ERROR(ApplyWrite(tx->root, caller, norm, value, tx));
  tx->write_set.insert(norm);
  tx->ops.push_back(TxOp{TxOp::Kind::kWrite, norm, std::string(value)});
  return Status::Ok();
}

Status XsStore::Mkdir(DomainId caller, std::string_view path, TxId tx_id) {
  ++op_count_;
  m_writes_->Increment();
  obs_->tracer().Op(TraceCategory::kXenStore, "xs_mkdir", caller.value());
  const std::string norm = Normalize(path);
  if (tx_id == kNoTransaction) {
    XOAR_RETURN_IF_ERROR(ApplyMkdir(root_, caller, norm, nullptr));
    CommitMutation(norm);
    return Status::Ok();
  }
  Transaction* tx = FindTransaction(tx_id);
  if (tx == nullptr) {
    return NotFoundError("no such transaction");
  }
  XOAR_RETURN_IF_ERROR(ApplyMkdir(tx->root, caller, norm, tx));
  tx->write_set.insert(norm);
  tx->ops.push_back(TxOp{TxOp::Kind::kMkdir, norm, std::string()});
  return Status::Ok();
}

Status XsStore::Remove(DomainId caller, std::string_view path, TxId tx_id) {
  ++op_count_;
  m_writes_->Increment();
  obs_->tracer().Op(TraceCategory::kXenStore, "xs_remove", caller.value());
  const std::string norm = Normalize(path);
  if (tx_id == kNoTransaction) {
    XOAR_RETURN_IF_ERROR(ApplyRemove(root_, caller, norm, nullptr));
    CommitMutation(norm);
    return Status::Ok();
  }
  Transaction* tx = FindTransaction(tx_id);
  if (tx == nullptr) {
    return NotFoundError("no such transaction");
  }
  XOAR_RETURN_IF_ERROR(ApplyRemove(tx->root, caller, norm, tx));
  tx->write_set.insert(norm);
  tx->ops.push_back(TxOp{TxOp::Kind::kRemove, norm, std::string()});
  return Status::Ok();
}

StatusOr<std::vector<std::string>> XsStore::List(DomainId caller,
                                                 std::string_view path,
                                                 TxId tx_id) {
  ++op_count_;
  m_lists_->Increment();
  obs_->tracer().Op(TraceCategory::kXenStore, "xs_list", caller.value());
  const std::string norm = Normalize(path);
  const Node* root = root_.get();
  if (tx_id != kNoTransaction) {
    Transaction* tx = FindTransaction(tx_id);
    if (tx == nullptr) {
      return NotFoundError("no such transaction");
    }
    // Listing observes the children set, which any mutation below `norm`
    // changes — the prefix-overlap conflict check covers exactly that.
    tx->read_set.insert(norm);
    root = tx->root.get();
  }
  const Node* node = Find(root, norm);
  if (node == nullptr) {
    return NotFoundError(StrFormat("no node %s", norm.c_str()));
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *node, XsPerm::kRead));
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    names.push_back(name);
  }
  return names;
}

bool XsStore::Exists(DomainId caller, std::string_view path, TxId tx_id) {
  (void)caller;  // Existence probes are not ACL-gated, as in xenstored.
  const std::string norm = Normalize(path);
  const Node* root = root_.get();
  if (tx_id != kNoTransaction) {
    Transaction* tx = FindTransaction(tx_id);
    if (tx == nullptr) {
      return false;
    }
    tx->read_set.insert(norm);
    root = tx->root.get();
  }
  return Find(root, norm) != nullptr;
}

StatusOr<XsNodePerms> XsStore::GetPerms(DomainId caller,
                                        std::string_view path) {
  const Node* node = Find(root_.get(), path);
  if (node == nullptr) {
    return NotFoundError(StrFormat("no node %s", Normalize(path).c_str()));
  }
  XOAR_RETURN_IF_ERROR(CheckAccess(caller, *node, XsPerm::kRead));
  return node->perms;
}

Status XsStore::SetPerms(DomainId caller, std::string_view path,
                         const XsNodePerms& perms) {
  const std::string norm = Normalize(path);
  const Node* view = Find(root_.get(), norm);
  if (view == nullptr) {
    return NotFoundError(StrFormat("no node %s", norm.c_str()));
  }
  // Only the owner (or a manager) may change permissions.
  if (!IsManager(caller) && view->perms.owner != caller) {
    return PermissionDeniedError(
        StrFormat("dom%u does not own %s", caller.value(), norm.c_str()));
  }
  Node* node = ResolveMutable(root_, norm);
  const DomainId old_owner = node->perms.owner;
  node->perms = perms;
  if (old_owner != perms.owner) {
    auto it = owner_counts_.find(old_owner);
    if (it != owner_counts_.end()) {
      if (it->second <= 1) {
        owner_counts_.erase(it);
      } else {
        --it->second;
      }
    }
    ++owner_counts_[perms.owner];
  }
  ++generation_;
  if (!transactions_.empty()) {
    mutation_log_.emplace_back(generation_, norm);
  }
  return Status::Ok();
}

Status XsStore::Watch(DomainId caller, std::string_view path,
                      std::string_view token, WatchCallback cb) {
  const std::string norm = Normalize(path);
  WatchNode* node = &watch_root_;
  for (const auto& segment : SplitPath(norm)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      it = node->children.emplace(segment, std::make_unique<WatchNode>())
               .first;
    }
    node = it->second.get();
  }
  for (const auto& watch : node->watches) {
    if (watch.caller == caller && watch.token == token) {
      return AlreadyExistsError("watch already registered");
    }
  }
  node->watches.push_back(
      WatchEntry{caller, norm, std::string(token), std::move(cb)});
  ++watch_count_;
  // xenstored fires a watch immediately upon registration so the watcher can
  // pick up pre-existing state — split-driver negotiation depends on this.
  // Fire through local copies: the callback may register or remove watches
  // reentrantly, invalidating any reference into the trie.
  const WatchCallback fire = node->watches.back().cb;
  const XsWatchEvent event{norm, std::string(token)};
  fire(event);
  return Status::Ok();
}

Status XsStore::Unwatch(DomainId caller, std::string_view path,
                        std::string_view token) {
  const std::string norm = Normalize(path);
  // Remember the descent so empty trie nodes can be pruned afterwards.
  std::vector<std::pair<WatchNode*, std::string>> trail;
  WatchNode* node = &watch_root_;
  for (const auto& segment : SplitPath(norm)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      return NotFoundError("no such watch");
    }
    trail.emplace_back(node, segment);
    node = it->second.get();
  }
  auto it = std::find_if(node->watches.begin(), node->watches.end(),
                         [&](const WatchEntry& w) {
                           return w.caller == caller && w.token == token;
                         });
  if (it == node->watches.end()) {
    return NotFoundError("no such watch");
  }
  node->watches.erase(it);
  --watch_count_;
  for (auto rit = trail.rbegin(); rit != trail.rend(); ++rit) {
    WatchNode* child = rit->first->children.at(rit->second).get();
    if (!child->watches.empty() || !child->children.empty()) {
      break;
    }
    rit->first->children.erase(rit->second);
  }
  return Status::Ok();
}

void XsStore::CollectSubtreeWatches(
    const WatchNode& node,
    std::vector<std::pair<WatchCallback, XsWatchEvent>>* out,
    std::string_view fired_path) {
  for (const auto& [name, child] : node.children) {
    for (const auto& watch : child->watches) {
      out->emplace_back(watch.cb,
                        XsWatchEvent{std::string(fired_path), watch.token});
    }
    CollectSubtreeWatches(*child, out, fired_path);
  }
}

void XsStore::FireWatches(std::string_view path) {
  // Collect matching callbacks first: a callback may register/unregister
  // watches reentrantly. Matches are the watches on the path's ancestors
  // (including the root and the path itself) plus every watch strictly
  // below the path.
  std::vector<std::pair<WatchCallback, XsWatchEvent>> to_fire;
  const WatchNode* node = &watch_root_;
  for (const auto& watch : node->watches) {
    to_fire.emplace_back(watch.cb,
                         XsWatchEvent{std::string(path), watch.token});
  }
  bool full_path = true;
  for (const auto& segment : SplitPath(path)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) {
      full_path = false;
      break;
    }
    node = it->second.get();
    for (const auto& watch : node->watches) {
      to_fire.emplace_back(watch.cb,
                           XsWatchEvent{std::string(path), watch.token});
    }
  }
  if (full_path) {
    CollectSubtreeWatches(*node, &to_fire, path);
  }
  if (!to_fire.empty()) {
    m_watch_fires_->Increment(to_fire.size());
  }
  for (auto& [cb, event] : to_fire) {
    cb(event);
  }
}

StatusOr<XsStore::TxId> XsStore::TransactionStart(DomainId caller) {
  Transaction tx;
  tx.caller = caller;
  tx.start_generation = generation_;
  tx.root = root_;  // O(1): shared copy-on-write with the live tree
  TxId id = next_tx_++;
  transactions_.emplace(id, std::move(tx));
  m_tx_started_->Increment();
  obs_->tracer().Op(TraceCategory::kXenStore, "xs_tx_start", caller.value());
  return id;
}

Status XsStore::TransactionEnd(DomainId caller, TxId tx, bool commit) {
  auto it = transactions_.find(tx);
  if (it == transactions_.end()) {
    return NotFoundError("no such transaction");
  }
  if (it->second.caller != caller) {
    return PermissionDeniedError("transaction belongs to another domain");
  }
  // Per-path validation (run before the transaction — and with it possibly
  // the mutation log — is retired): a committed mutation since this
  // transaction began conflicts only if its path overlaps something this
  // transaction read or wrote. Disjoint concurrent activity commits cleanly
  // (no spurious EAGAIN, unlike a whole-store generation check).
  Status conflict = Status::Ok();
  if (commit) {
    const Transaction& pending = it->second;
    for (const auto& [gen, mutated] : mutation_log_) {
      if (gen <= pending.start_generation) {
        continue;
      }
      const auto overlaps = [&mutated](const std::string& accessed) {
        return PathsOverlap(mutated, accessed);
      };
      if (std::any_of(pending.read_set.begin(), pending.read_set.end(),
                      overlaps) ||
          std::any_of(pending.write_set.begin(), pending.write_set.end(),
                      overlaps)) {
        conflict = AbortedError(
            StrFormat("store path %s changed during transaction",
                      mutated.c_str()));
        break;
      }
    }
  }
  Transaction transaction = std::move(it->second);
  transactions_.erase(it);
  if (transactions_.empty()) {
    mutation_log_.clear();
  }
  if (!commit) {
    m_tx_aborted_->Increment();
    return Status::Ok();
  }
  if (!conflict.ok()) {
    m_tx_aborted_->Increment();
    obs_->tracer().Instant(TraceCategory::kXenStore, "xs_tx_conflict",
                           caller.value());
    return conflict;
  }
  // Replay the transaction's mutations against the live tree. The saved
  // root makes the replay atomic: COW keeps it intact, so any failure
  // (quota, permissions changed under us) rolls back in O(1).
  NodePtr saved_root = root_;
  std::map<DomainId, std::size_t> saved_counts = owner_counts_;
  const std::size_t saved_node_count = node_count_;
  Status status = Status::Ok();
  for (const auto& op : transaction.ops) {
    switch (op.kind) {
      case TxOp::Kind::kWrite:
        status = ApplyWrite(root_, transaction.caller, op.path, op.value,
                            nullptr);
        break;
      case TxOp::Kind::kMkdir:
        status = ApplyMkdir(root_, transaction.caller, op.path, nullptr);
        break;
      case TxOp::Kind::kRemove:
        status = ApplyRemove(root_, transaction.caller, op.path, nullptr);
        break;
    }
    if (!status.ok()) {
      break;
    }
  }
  if (!status.ok()) {
    root_ = std::move(saved_root);
    owner_counts_ = std::move(saved_counts);
    node_count_ = saved_node_count;
    m_tx_aborted_->Increment();
    return AbortedError(StrFormat("transaction replay failed: %s",
                                  status.message().c_str()));
  }
  m_tx_committed_->Increment();
  obs_->tracer().Op(TraceCategory::kXenStore, "xs_tx_commit", caller.value());
  ++generation_;
  for (const auto& op : transaction.ops) {
    if (!transactions_.empty()) {
      mutation_log_.emplace_back(generation_, op.path);
    }
    FireWatches(op.path);
  }
  return Status::Ok();
}

void XsStore::FlattenTree(const Node& node, const std::string& path,
                          std::vector<FlatNode>* out) const {
  for (const auto& [name, child] : node.children) {
    const std::string child_path = path + "/" + name;
    out->push_back(FlatNode{child_path, child->value, child->perms});
    FlattenTree(*child, child_path, out);
  }
}

std::vector<XsStore::FlatNode> XsStore::Serialize() const {
  std::vector<FlatNode> out;
  out.reserve(node_count_);
  FlattenTree(*root_, "", &out);
  return out;
}

void XsStore::Restore(const std::vector<FlatNode>& nodes) {
  root_ = std::make_shared<Node>();
  root_->perms.owner = DomainId::Invalid();
  owner_counts_.clear();
  node_count_ = 0;
  for (const auto& flat : nodes) {
    StatusOr<Node*> node =
        ResolveOrCreate(root_, flat.path, flat.perms.owner, nullptr);
    if (node.ok()) {
      const DomainId created_owner = (*node)->perms.owner;
      (*node)->value = flat.value;
      (*node)->perms = flat.perms;
      if (created_owner != flat.perms.owner) {
        auto it = owner_counts_.find(created_owner);
        if (it != owner_counts_.end()) {
          if (it->second <= 1) {
            owner_counts_.erase(it);
          } else {
            --it->second;
          }
        }
        ++owner_counts_[flat.perms.owner];
      }
    }
  }
  ++generation_;
  if (!transactions_.empty()) {
    // A wholesale replacement invalidates every active transaction.
    mutation_log_.emplace_back(generation_, "/");
  }
}

XsStore::Snapshot XsStore::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.root_ = root_;  // O(1): shares the tree copy-on-write
  snapshot.owner_counts_ = owner_counts_;
  snapshot.node_count_ = node_count_;
  return snapshot;
}

void XsStore::RestoreSnapshot(const Snapshot& snapshot) {
  if (!snapshot.valid() || snapshot.root_ == root_) {
    return;  // restoring the current state is a no-op
  }
  root_ = snapshot.root_;
  owner_counts_ = snapshot.owner_counts_;
  node_count_ = snapshot.node_count_;
  ++generation_;
  if (!transactions_.empty()) {
    // A rollback invalidates every active transaction.
    mutation_log_.emplace_back(generation_, "/");
  }
}

std::size_t XsStore::NodesOwnedBy(DomainId domain) const {
  auto it = owner_counts_.find(domain);
  return it == owner_counts_.end() ? 0 : it->second;
}

}  // namespace xoar
