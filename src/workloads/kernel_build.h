// The kernel-build workload (§6.1.4, Fig 6.4).
//
// A Linux kernel build is CPU-bound with a light, steady I/O tail: sources
// are read once, objects written once, with heavy metadata traffic when the
// tree lives on NFS. The model interleaves compute phases with I/O phases;
// local builds push the I/O through the virtual-disk rate, NFS builds push
// it through the network path (data plus per-file RPC round trips), which
// is what makes them sensitive to NetBack microreboots.
#ifndef XOAR_SRC_WORKLOADS_KERNEL_BUILD_H_
#define XOAR_SRC_WORKLOADS_KERNEL_BUILD_H_

#include <cstdint>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/ctl/platform.h"
#include "src/net/tcp.h"

namespace xoar {

struct KernelBuildConfig {
  double cpu_seconds = 312.0;  // pure compile time on the testbed CPU
  std::uint64_t source_read_bytes = 450 * kMiB;
  std::uint64_t object_write_bytes = 750 * kMiB;
  int source_files = 30'000;
  int phases = 120;  // compute/I-O interleaving granularity
  bool over_nfs = false;
  double nfs_data_efficiency = 0.55;        // RPC framing on the data path
  SimDuration nfs_rpc_latency = 1 * kMillisecond;  // per-metadata-RPC cost
  int rpcs_per_file = 3;                    // lookup + getattr + close
  TcpParams tcp;
};

struct KernelBuildResult {
  double seconds = 0;
  double cpu_seconds = 0;
  double io_seconds = 0;
};

StatusOr<KernelBuildResult> RunKernelBuild(Platform* platform, DomainId guest,
                                           const KernelBuildConfig& config);

}  // namespace xoar

#endif  // XOAR_SRC_WORKLOADS_KERNEL_BUILD_H_
