#include "src/workloads/postmark.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/drv/blk.h"

namespace xoar {

std::string PostmarkConfig::Label() const {
  std::string label = StrFormat("%dKx%dK", files / 1000, transactions / 1000);
  if (files < 1000) {
    label = StrFormat("%dx%dK", files, transactions / 1000);
  }
  if (subdirectories > 1) {
    label += StrFormat("x%d", subdirectories);
  }
  return label;
}

namespace {

struct FileRecord {
  std::uint64_t offset = 0;
  std::uint32_t bytes = 0;
  bool cached = false;
  bool live = false;
};

struct PostmarkRun {
  Platform* platform;
  DomainId guest;
  BlkFront* blk;
  PostmarkConfig config;
  Rng rng;

  std::vector<FileRecord> file_table;
  std::vector<int> live_files;
  std::uint64_t next_offset = 0;
  std::uint64_t cached_bytes = 0;
  std::uint64_t dirty_bytes = 0;
  bool flusher_active = false;
  std::uint64_t flush_offset = 0;

  PostmarkResult result;
  int created_initial = 0;
  int transactions_done = 0;
  int deletes_remaining = 0;
  bool finished = false;

  explicit PostmarkRun(std::uint64_t seed) : rng(seed) {}

  Simulator& sim() { return platform->sim(); }

  std::uint32_t RandomFileSize() {
    return static_cast<std::uint32_t>(rng.NextInRange(
        config.min_file_bytes, config.max_file_bytes));
  }

  // Per-operation CPU: base syscall/fs cost plus a directory lookup whose
  // cost grows with the per-directory entry count.
  SimDuration OpCost() const {
    const double per_dir = std::max(
        2.0, static_cast<double>(live_files.size()) /
                 static_cast<double>(std::max(1, config.subdirectories)));
    return config.cpu_per_op +
           static_cast<SimDuration>(
               static_cast<double>(config.lookup_cost_per_bit) *
               std::log2(per_dir));
  }

  // --- Write-back cache in front of the paravirtual block path ---

  void PumpFlusher() {
    if (flusher_active || dirty_bytes == 0) {
      return;
    }
    flusher_active = true;
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dirty_bytes, config.flush_chunk_bytes));
    flush_offset = (flush_offset + chunk) %
                   (config.cache_bytes * 4);  // spread over the image
    blk->WriteBytes(flush_offset, chunk, [this, chunk](Status status) {
      (void)status;
      flusher_active = false;
      dirty_bytes -= std::min<std::uint64_t>(dirty_bytes, chunk);
      PumpFlusher();
    });
  }

  // Buffered write: absorbs into the cache unless the dirty limit is hit,
  // in which case the writer throttles until the flusher makes room.
  void BufferedWrite(std::uint32_t bytes, std::function<void()> done) {
    if (dirty_bytes + bytes > config.dirty_limit_bytes) {
      PumpFlusher();
      sim().ScheduleAfter(500 * kMicrosecond,
                          [this, bytes, done = std::move(done)]() mutable {
                            BufferedWrite(bytes, std::move(done));
                          });
      return;
    }
    dirty_bytes += bytes;
    PumpFlusher();
    sim().ScheduleAfter(OpCost(), std::move(done));
  }

  void CachedRead(int file_index, std::function<void()> done) {
    FileRecord& file = file_table[static_cast<std::size_t>(file_index)];
    if (file.cached && cached_bytes <= config.cache_bytes) {
      sim().ScheduleAfter(OpCost(), std::move(done));
      return;
    }
    ++result.cache_misses;
    blk->ReadBytes(file.offset, file.bytes,
                   [this, file_index, done = std::move(done)](Status) mutable {
                     FileRecord& f =
                         file_table[static_cast<std::size_t>(file_index)];
                     f.cached = true;
                     cached_bytes += f.bytes;
                     sim().ScheduleAfter(OpCost(), std::move(done));
                   });
  }

  // --- File operations ---

  void CreateFile(std::function<void()> done) {
    FileRecord file;
    file.bytes = RandomFileSize();
    file.offset = next_offset;
    next_offset += file.bytes + kSectorSize;
    file.cached = true;
    file.live = true;
    cached_bytes += file.bytes;
    file_table.push_back(file);
    live_files.push_back(static_cast<int>(file_table.size()) - 1);
    ++result.creates;
    ++result.total_ops;
    BufferedWrite(file.bytes, std::move(done));
  }

  void DeleteRandomFile(std::function<void()> done) {
    if (live_files.empty()) {
      sim().ScheduleAfter(OpCost(), std::move(done));
      return;
    }
    const std::size_t pick = rng.NextBelow(live_files.size());
    const int index = live_files[pick];
    live_files[pick] = live_files.back();
    live_files.pop_back();
    FileRecord& file = file_table[static_cast<std::size_t>(index)];
    file.live = false;
    if (file.cached) {
      cached_bytes -= std::min<std::uint64_t>(cached_bytes, file.bytes);
    }
    ++result.deletes;
    ++result.total_ops;
    // Metadata update is buffered like any small write.
    BufferedWrite(kSectorSize, std::move(done));
  }

  void ReadOrAppend(std::function<void()> done) {
    if (live_files.empty()) {
      sim().ScheduleAfter(OpCost(), std::move(done));
      return;
    }
    const int index =
        live_files[rng.NextBelow(live_files.size())];
    if (rng.NextBool(0.5)) {
      ++result.reads;
      ++result.total_ops;
      CachedRead(index, std::move(done));
    } else {
      FileRecord& file = file_table[static_cast<std::size_t>(index)];
      const std::uint32_t append = RandomFileSize() / 4 + 1;
      file.bytes += append;
      if (file.cached) {
        cached_bytes += append;
      }
      ++result.appends;
      ++result.total_ops;
      BufferedWrite(append, std::move(done));
    }
  }

  // --- Phases ---

  void Step() {
    if (created_initial < config.files) {
      ++created_initial;
      CreateFile([this] { Step(); });
      return;
    }
    if (transactions_done < config.transactions) {
      ++transactions_done;
      // One transaction = a read-or-append plus a create-or-delete.
      ReadOrAppend([this] {
        if (rng.NextBool(0.5)) {
          CreateFile([this] { Step(); });
        } else {
          DeleteRandomFile([this] { Step(); });
        }
      });
      return;
    }
    if (!live_files.empty()) {
      DeleteRandomFile([this] { Step(); });
      return;
    }
    finished = true;
  }
};

}  // namespace

StatusOr<PostmarkResult> RunPostmark(Platform* platform, DomainId guest,
                                     const PostmarkConfig& config) {
  BlkFront* blk = platform->blkfront(guest);
  if (blk == nullptr || !blk->connected()) {
    return FailedPreconditionError("guest has no connected virtual disk");
  }
  Platform::IoStreamToken disk_token =
      platform->BeginIoStream(Platform::IoKind::kDisk);

  auto run = std::make_unique<PostmarkRun>(config.seed);
  run->platform = platform;
  run->guest = guest;
  run->blk = blk;
  run->config = config;
  run->file_table.reserve(
      static_cast<std::size_t>(config.files + config.transactions));

  const SimTime started_at = platform->sim().Now();
  run->Step();
  const SimTime deadline = started_at + 24 * 3600 * kSecond;
  while (!run->finished && platform->sim().Now() < deadline) {
    if (!platform->sim().Step()) {
      break;
    }
  }
  if (!run->finished) {
    return InternalError("postmark did not complete");
  }
  run->result.seconds = ToSeconds(platform->sim().Now() - started_at);
  run->result.ops_per_second =
      run->result.seconds > 0
          ? static_cast<double>(run->result.total_ops) / run->result.seconds
          : 0;
  return run->result;
}

}  // namespace xoar
