#include "src/workloads/wget.h"

#include <algorithm>

namespace xoar {

StatusOr<WgetResult> RunWget(Platform* platform, DomainId guest,
                             std::uint64_t bytes, WgetSink sink,
                             TcpParams params) {
  NetBack* netback = platform->netback_of(guest);
  if (netback == nullptr) {
    return FailedPreconditionError("guest has no network path");
  }
  if (sink == WgetSink::kDisk && platform->blkback_of(guest) == nullptr) {
    return FailedPreconditionError("guest has no disk for wget -O file");
  }

  // Register the active streams so the platform can model control-VM
  // co-location interference (Fig 6.2).
  Platform::IoStreamToken net_token =
      platform->BeginIoStream(Platform::IoKind::kNet);
  Platform::IoStreamToken disk_token;
  if (sink == WgetSink::kDisk) {
    disk_token = platform->BeginIoStream(Platform::IoKind::kDisk);
  }

  bool done = false;
  TcpFlow::Result flow_result;
  TcpFlow flow(
      &platform->sim(), params, bytes,
      /*path_up=*/
      [platform, guest] {
        NetBack* nb = platform->netback_of(guest);
        return nb != nullptr && nb->IsVifConnected(guest);
      },
      /*rate=*/
      [platform, guest, sink] {
        double rate = platform->EffectiveNetRateBps(guest);
        if (sink == WgetSink::kDisk) {
          // Writing through the page cache to the virtual disk: the slower
          // of the two paths bounds steady-state throughput.
          rate = std::min(rate, platform->EffectiveDiskRateBps(guest));
        }
        return rate;
      },
      [&done, &flow_result](const TcpFlow::Result& r) {
        done = true;
        flow_result = r;
      });
  flow.Start();

  // Drive the simulation until the transfer completes. The event queue is
  // never empty while the flow is live, so cap the wait generously.
  const SimTime deadline = platform->sim().Now() + 3600 * kSecond;
  while (!done && platform->sim().Now() < deadline) {
    if (!platform->sim().Step()) {
      break;
    }
  }
  if (!done) {
    return InternalError("wget did not complete within the simulated hour");
  }

  WgetResult result;
  result.bytes = flow_result.bytes_delivered;
  result.seconds = ToSeconds(flow_result.completed_at - flow_result.started_at);
  result.throughput_mbps =
      result.seconds > 0
          ? static_cast<double>(result.bytes) / 1e6 / result.seconds
          : 0.0;
  result.tcp_timeouts = flow_result.timeouts;
  return result;
}

}  // namespace xoar
