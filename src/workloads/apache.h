// The Apache benchmark (§6.1.4, Fig 6.5).
//
// `ab`-style closed-loop load: C concurrent client slots issue N total
// requests for a static page against a web server in the guest. Every
// request opens a fresh TCP connection (ab's default), so a NetBack outage
// hits the workload twice: connections attempted during the outage retry
// SYNs on the kernel's 3 s backoff schedule, and requests in flight stall
// until the retransmission timer crosses the recovery point. Both effects
// are modeled; they produce the multi-second worst-case latencies and the
// non-uniform throughput degradation the paper reports.
#ifndef XOAR_SRC_WORKLOADS_APACHE_H_
#define XOAR_SRC_WORKLOADS_APACHE_H_

#include <cstdint>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/ctl/platform.h"
#include "src/net/tcp.h"

namespace xoar {

struct ApacheBenchConfig {
  std::uint64_t total_requests = 100'000;
  int concurrency = 50;
  std::uint32_t page_bytes = 11'157;  // static page incl. headers (≈11 KB)
  // Server capacity in requests/second at saturation. The ~1.5% Xoar delta
  // of Fig 6.5 comes from the extra vif hop; callers pass the platform's
  // value (see bench/fig_6_5_apache).
  double server_rate_rps = 3'300.0;
  SimDuration rtt = 200 * kMicrosecond;
  SimDuration request_rto = FromMilliseconds(200);  // in-flight recovery step
  SimDuration syn_retry = FromSeconds(3);
};

struct ApacheBenchResult {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double total_seconds = 0;
  double throughput_rps = 0;
  double mean_latency_ms = 0;
  double max_latency_ms = 0;
  double transfer_rate_mbps = 0;  // decimal MB/s
};

StatusOr<ApacheBenchResult> RunApacheBench(Platform* platform, DomainId guest,
                                           const ApacheBenchConfig& config);

}  // namespace xoar

#endif  // XOAR_SRC_WORKLOADS_APACHE_H_
