#include "src/workloads/kernel_build.h"

#include <algorithm>
#include <memory>

namespace xoar {

namespace {

struct BuildRun {
  Platform* platform;
  DomainId guest;
  KernelBuildConfig config;
  int phase = 0;
  bool finished = false;
  double io_ns_accumulated = 0;

  Simulator& sim() { return platform->sim(); }

  bool NetPathUp() const {
    NetBack* netback = platform->netback_of(guest);
    return netback != nullptr && netback->IsVifConnected(guest);
  }

  void NextPhase() {
    if (phase >= config.phases) {
      finished = true;
      return;
    }
    ++phase;
    const SimDuration cpu_chunk = static_cast<SimDuration>(
        config.cpu_seconds / config.phases * static_cast<double>(kSecond));
    sim().ScheduleAfter(cpu_chunk, [this] { IoPhase(); });
  }

  void IoPhase() {
    const std::uint64_t data_chunk =
        (config.source_read_bytes + config.object_write_bytes) /
        static_cast<std::uint64_t>(config.phases);
    if (!config.over_nfs) {
      // Local ext3: buffered streaming through the virtual disk.
      const double rate = platform->EffectiveDiskRateBps(guest);  // bits/s
      if (rate <= 0) {
        sim().ScheduleAfter(FromMilliseconds(200), [this] { IoPhase(); });
        return;
      }
      const SimDuration io_time = TransferTime(data_chunk, rate);
      io_ns_accumulated += static_cast<double>(io_time);
      sim().ScheduleAfter(io_time, [this] { NextPhase(); });
      return;
    }
    // NFS: metadata RPCs first, then the data chunk as a TCP flow.
    const int rpcs = config.source_files * config.rpcs_per_file /
                     config.phases;
    const SimDuration metadata_time =
        static_cast<SimDuration>(rpcs) * config.nfs_rpc_latency;
    MetadataWait(metadata_time, data_chunk);
  }

  // Consumes `remaining` of metadata time, pausing while the network path
  // is down (NFS retries its RPCs until the server responds).
  void MetadataWait(SimDuration remaining, std::uint64_t data_chunk) {
    if (remaining == 0) {
      DataTransfer(data_chunk);
      return;
    }
    if (!NetPathUp()) {
      sim().ScheduleAfter(FromMilliseconds(200), [this, remaining,
                                                  data_chunk] {
        MetadataWait(remaining, data_chunk);
      });
      return;
    }
    const SimDuration slice =
        std::min<SimDuration>(remaining, FromMilliseconds(50));
    io_ns_accumulated += static_cast<double>(slice);
    sim().ScheduleAfter(slice, [this, remaining, slice, data_chunk] {
      MetadataWait(remaining - slice, data_chunk);
    });
  }

  void DataTransfer(std::uint64_t data_chunk) {
    const SimTime start = sim().Now();
    // The flow lives in the run object until the next phase replaces it —
    // its scheduled rounds must not outlive it.
    active_flow = std::make_unique<TcpFlow>(
        &sim(), config.tcp, data_chunk,
        [this] { return NetPathUp(); },
        [this] {
          return platform->EffectiveNetRateBps(guest) *
                 config.nfs_data_efficiency;
        },
        [this, start](const TcpFlow::Result& r) {
          io_ns_accumulated += static_cast<double>(r.completed_at - start);
          NextPhase();
        });
    active_flow->Start();
  }

  std::unique_ptr<TcpFlow> active_flow;
};

}  // namespace

StatusOr<KernelBuildResult> RunKernelBuild(Platform* platform, DomainId guest,
                                           const KernelBuildConfig& config) {
  if (config.over_nfs && platform->netback_of(guest) == nullptr) {
    return FailedPreconditionError("NFS build needs a network path");
  }
  if (!config.over_nfs && platform->blkback_of(guest) == nullptr) {
    return FailedPreconditionError("local build needs a virtual disk");
  }
  Platform::IoStreamToken token = platform->BeginIoStream(
      config.over_nfs ? Platform::IoKind::kNet : Platform::IoKind::kDisk);

  auto run = std::make_unique<BuildRun>();
  run->platform = platform;
  run->guest = guest;
  run->config = config;

  const SimTime started_at = platform->sim().Now();
  run->NextPhase();
  const SimTime deadline = started_at + 48 * 3600 * kSecond;
  while (!run->finished && platform->sim().Now() < deadline) {
    if (!platform->sim().Step()) {
      break;
    }
  }
  if (!run->finished) {
    return InternalError("kernel build did not complete");
  }
  KernelBuildResult result;
  result.seconds = ToSeconds(platform->sim().Now() - started_at);
  result.cpu_seconds = config.cpu_seconds;
  result.io_seconds = run->io_ns_accumulated / static_cast<double>(kSecond);
  return result;
}

}  // namespace xoar
