// The wget workload (§6.1.2, Fig 6.2 / Fig 6.3).
//
// Fetches a file of a given size from a LAN peer over the guest's virtual
// network path, writing it either to /dev/null or to the virtual disk. The
// transfer is a single bulk TCP flow whose path availability tracks the
// live platform state (vif connected, backend up), so NetBack microreboots
// produce exactly the TCP timeout/backoff/slow-start behaviour the paper
// measures.
#ifndef XOAR_SRC_WORKLOADS_WGET_H_
#define XOAR_SRC_WORKLOADS_WGET_H_

#include <cstdint>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/ctl/platform.h"
#include "src/net/tcp.h"

namespace xoar {

enum class WgetSink {
  kDevNull,  // discard: network-limited
  kDisk,     // write through the virtual disk: min(network, disk)-limited
};

struct WgetResult {
  std::uint64_t bytes = 0;
  double seconds = 0;
  double throughput_mbps = 0;  // decimal MB/s, as wget reports
  std::uint32_t tcp_timeouts = 0;
};

// Runs to completion (drives the platform's simulator). The guest must have
// a connected vif; for kDisk it must also have a connected vbd.
StatusOr<WgetResult> RunWget(Platform* platform, DomainId guest,
                             std::uint64_t bytes, WgetSink sink,
                             TcpParams params = {});

}  // namespace xoar

#endif  // XOAR_SRC_WORKLOADS_WGET_H_
