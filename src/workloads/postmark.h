// The Postmark workload (§6.1.2, Fig 6.1).
//
// Postmark models a mail/news server: it creates an initial pool of small
// files, runs a transaction mix (read-or-append paired with
// create-or-delete), then deletes the pool, reporting operations per
// second. Small-file I/O on a real system is dominated by the page cache:
// reads hit memory and writes are buffered and flushed asynchronously. The
// model below reproduces that — a write-back cache with a dirty limit in
// front of the guest's *actual* paravirtual block path (BlkFront ring →
// BlkBack → disk model), so the split-driver stack is exercised by every
// flush and cache miss.
#ifndef XOAR_SRC_WORKLOADS_POSTMARK_H_
#define XOAR_SRC_WORKLOADS_POSTMARK_H_

#include <cstdint>
#include <string>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/ctl/platform.h"

namespace xoar {

struct PostmarkConfig {
  int files = 1'000;
  int transactions = 50'000;
  int subdirectories = 1;
  std::uint32_t min_file_bytes = 500;
  std::uint32_t max_file_bytes = 9'770;  // postmark defaults
  std::uint64_t seed = 42;

  // Page-cache model (guest has 1 GB; the cache gets what the kernel and
  // applications leave over).
  std::uint64_t cache_bytes = 128 * kMiB;
  std::uint64_t dirty_limit_bytes = 32 * kMiB;
  std::uint64_t flush_chunk_bytes = 1 * kMiB;

  // Guest CPU + syscall + fs base cost per operation; each operation also
  // pays a directory-lookup cost that grows with the per-directory file
  // count (log2(files/subdirectories)), which is what separates the four
  // Fig 6.1 configurations.
  SimDuration cpu_per_op = 40 * kMicrosecond;
  SimDuration lookup_cost_per_bit = 3 * kMicrosecond;

  std::string Label() const;
};

struct PostmarkResult {
  std::uint64_t total_ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t appends = 0;
  std::uint64_t creates = 0;
  std::uint64_t deletes = 0;
  std::uint64_t cache_misses = 0;
  double seconds = 0;
  double ops_per_second = 0;
};

StatusOr<PostmarkResult> RunPostmark(Platform* platform, DomainId guest,
                                     const PostmarkConfig& config);

}  // namespace xoar

#endif  // XOAR_SRC_WORKLOADS_POSTMARK_H_
