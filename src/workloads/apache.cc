#include "src/workloads/apache.h"

#include <algorithm>
#include <memory>

namespace xoar {

namespace {

struct ApacheRun {
  Platform* platform;
  DomainId guest;
  ApacheBenchConfig config;

  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double latency_sum_ms = 0;
  double max_latency_ms = 0;
  SimTime server_busy_until = 0;
  int active_slots = 0;

  bool PathUp() const {
    NetBack* netback = platform->netback_of(guest);
    return netback != nullptr && netback->IsVifConnected(guest);
  }

  // Retransmission timers carry ±10% jitter (kernel timer granularity and
  // RTT variance); without it, deterministic retries phase-lock onto a
  // periodic outage schedule, which real systems do not do.
  std::uint64_t jitter_state = 0x853c49e6748fea9bULL;
  SimDuration Jittered(SimDuration base) {
    jitter_state = jitter_state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double frac = static_cast<double>(jitter_state >> 40) /
                        static_cast<double>(1ULL << 24);
    return static_cast<SimDuration>(static_cast<double>(base) *
                                    (0.90 + 0.20 * frac));
  }

  Simulator& sim() { return platform->sim(); }

  void StartNext() {
    if (issued >= config.total_requests) {
      --active_slots;
      return;
    }
    ++issued;
    const SimTime start = sim().Now();
    Connect(start, /*backoff=*/config.syn_retry, /*attempt=*/1);
  }

  // Connection establishment with SYN retries (3 s, 6 s, 12 s...). The
  // handshake spans one RTT; if the backend goes down during it, the SYN or
  // SYN-ACK is lost and only the 3 s retransmission timer recovers — the
  // source of the multi-second worst-case latencies in Fig 6.5.
  void Connect(SimTime start, SimDuration backoff, int attempt) {
    if (attempt > 6) {
      ++failed;
      StartNext();
      return;
    }
    if (PathUp()) {
      sim().ScheduleAfter(config.rtt, [this, start, backoff, attempt] {
        if (PathUp()) {
          Serve(start);
        } else {
          // Outage hit mid-handshake: wait out the SYN retransmit timer.
          sim().ScheduleAfter(Jittered(backoff), [this, start, backoff,
                                                  attempt] {
            Connect(start, backoff * 2, attempt + 1);
          });
        }
      });
      return;
    }
    sim().ScheduleAfter(Jittered(backoff), [this, start, backoff, attempt] {
      Connect(start, backoff * 2, attempt + 1);
    });
  }

  void Serve(SimTime start) {
    // One shared server: requests serialize at the saturation rate.
    const SimDuration service = static_cast<SimDuration>(
        static_cast<double>(kSecond) / config.server_rate_rps);
    const SimTime begin = std::max(sim().Now(), server_busy_until);
    server_busy_until = begin + service;
    sim().ScheduleAt(server_busy_until + config.rtt / 2,
                     [this, start] { Respond(start, config.request_rto); });
  }

  // Response delivery. NetBack is a bridge: a microreboot drops frames but
  // the TCP endpoints (external client, guest) keep their state, so a
  // request caught by an outage recovers by retransmission with exponential
  // backoff once the path returns ("dropped packets and network timeouts
  // cause a small number of requests to experience very long completion
  // times", §6.1.4).
  void Respond(SimTime start, SimDuration rto) {
    if (!PathUp()) {
      sim().ScheduleAfter(Jittered(rto), [this, start, rto] {
        Respond(start, std::min<SimDuration>(rto * 2, FromSeconds(60)));
      });
      return;
    }
    const double latency_ms = ToMilliseconds(sim().Now() - start);
    latency_sum_ms += latency_ms;
    max_latency_ms = std::max(max_latency_ms, latency_ms);
    ++completed;
    StartNext();
  }
};

}  // namespace

StatusOr<ApacheBenchResult> RunApacheBench(Platform* platform, DomainId guest,
                                           const ApacheBenchConfig& config) {
  if (platform->netback_of(guest) == nullptr) {
    return FailedPreconditionError("guest has no network path");
  }
  Platform::IoStreamToken net_token =
      platform->BeginIoStream(Platform::IoKind::kNet);

  auto run = std::make_unique<ApacheRun>();
  run->platform = platform;
  run->guest = guest;
  run->config = config;

  const SimTime started_at = platform->sim().Now();
  run->active_slots = config.concurrency;
  for (int i = 0; i < config.concurrency; ++i) {
    run->StartNext();
  }
  // active_slots was decremented by StartNext exhaustion only; fix up the
  // accounting: StartNext decrements when no work remains.
  const SimTime deadline = started_at + 24 * 3600 * kSecond;
  while (run->completed + run->failed < config.total_requests &&
         platform->sim().Now() < deadline) {
    if (!platform->sim().Step()) {
      break;
    }
  }
  if (run->completed + run->failed < config.total_requests) {
    return InternalError("apache bench did not complete");
  }

  ApacheBenchResult result;
  result.completed = run->completed;
  result.failed = run->failed;
  result.total_seconds = ToSeconds(platform->sim().Now() - started_at);
  result.throughput_rps =
      result.total_seconds > 0
          ? static_cast<double>(run->completed) / result.total_seconds
          : 0;
  result.mean_latency_ms =
      run->completed > 0 ? run->latency_sum_ms /
                               static_cast<double>(run->completed)
                         : 0;
  result.max_latency_ms = run->max_latency_ms;
  result.transfer_rate_mbps =
      result.total_seconds > 0
          ? static_cast<double>(run->completed) * config.page_bytes / 1e6 /
                result.total_seconds
          : 0;
  return result;
}

}  // namespace xoar
