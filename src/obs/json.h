// Minimal recursive-descent JSON parser used by the observability tests and
// the `validate_obs` CTest tool to round-trip and schema-check the files
// the exporters write (BENCH_*.json metrics, Chrome trace_event traces).
//
// Scope is deliberately small: parse a complete document into a JsonValue
// tree and offer typed accessors. No streaming, no writer (the exporters
// hand-build their output so the byte layout stays deterministic), no
// \uXXXX surrogate decoding beyond Latin-1. Not a general-purpose library.
//
// Thread-safety: values are plain immutable-after-parse data; parsing is
// reentrant (no global state).
#ifndef XOAR_SRC_OBS_JSON_H_
#define XOAR_SRC_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace xoar {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses one complete JSON document; trailing non-whitespace is an error.
StatusOr<JsonValue> ParseJson(std::string_view text);

// Convenience: read `path` and parse its contents.
StatusOr<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace xoar

#endif  // XOAR_SRC_OBS_JSON_H_
