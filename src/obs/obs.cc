#include "src/obs/obs.h"

namespace xoar {

Obs& Obs::Global() {
  static Obs* global = new Obs();  // leaked intentionally: process lifetime
  return *global;
}

}  // namespace xoar
