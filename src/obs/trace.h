// Simulator event tracer: typed spans and instants in a bounded ring
// buffer, exported as Chrome `trace_event` JSON for chrome://tracing.
//
// The tracer records what the discrete-event simulation *did* — hypercalls,
// event-channel notifies, grant map/unmap, XenStore operations, shard boot
// phases, microreboot rollback windows — with simulated timestamps, so a
// recorded trace of `XoarPlatform::Boot()` shows the §5.2 dependency-
// parallel boot as overlapping spans on per-shard tracks.
//
// Deterministic-replay safety (see DESIGN.md §5b): the tracer is a pure
// observer. It never schedules simulator events, never reads the wall
// clock, and every timestamp comes from `Simulator::Now()`, so enabling or
// disabling tracing cannot change an execution, and two identical runs
// produce byte-identical exports.
//
// Cost model / thread-safety: single-threaded, like the simulator it
// observes. Recording is O(1) into a preallocated ring; when the ring is
// full the *oldest* event is overwritten (`dropped()` counts losses), so a
// long-running platform keeps the most recent window. Tracing is disabled
// by default — every record call is then a single branch — and is switched
// on per-platform via `Tracer::set_enabled(true)`.
#ifndef XOAR_SRC_OBS_TRACE_H_
#define XOAR_SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/sim/simulator.h"

namespace xoar {

// Fixed event taxonomy; the category string becomes the Chrome "cat" field
// (filterable in the chrome://tracing UI).
enum class TraceCategory : std::uint8_t {
  kHypercall = 0,  // privilege-checked hypervisor entry points
  kEvtchn,         // event-channel sends and deliveries
  kGrant,          // grant create/map/unmap/end
  kXenStore,       // store reads/writes/transactions/watch fires
  kBoot,           // §5.2 boot phases, one span per phase/shard
  kMicroreboot,    // §3.3 restart windows, suspend -> resume
  kSched,          // credit-scheduler allocation epochs
  kDriver,         // split-driver negotiation and ring service
  kWatchdog,       // supervision: detection -> recovery windows
  kCount,
};

std::string_view TraceCategoryName(TraceCategory cat);

// One recorded event. kComplete events are Chrome "X" (a span with a
// duration, possibly zero); kInstant events are Chrome "i"; kMetadata names
// a track ("M"/thread_name).
struct TraceEvent {
  enum class Phase : std::uint8_t { kComplete, kInstant };
  Phase phase = Phase::kInstant;
  TraceCategory cat = TraceCategory::kHypercall;
  std::string name;
  SimTime ts = 0;        // simulated nanoseconds
  SimDuration dur = 0;   // kComplete only
  std::uint32_t track = 0;  // Chrome "tid"; by convention a DomainId value
  std::uint64_t seq = 0;    // global record order (FIFO tie-break)
};

// Receives every event the tracer records, at the moment it is recorded.
// Unlike the bounded ring (which keeps only the most recent window for
// chrome://tracing export), a sink sees the full stream — this is the hook
// the replay journal (src/replay) records from and verifies against. Sinks
// must be pure observers with respect to the simulation: recording an event
// may not schedule work or read any clock but the event's own timestamps.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnTraceEvent(const TraceEvent& event) = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;  // 16384 events

  // `sim` supplies timestamps; with no simulator attached all timestamps
  // are 0 (still usable for counting/structure tests).
  explicit Tracer(const Simulator* sim = nullptr,
                  std::size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_sim(const Simulator* sim) { sim_ = sim; }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Attaches/detaches the full-stream observer (nullptr detaches). At most
  // one sink; the caller owns it and must outlive its attachment. The sink
  // fires only while the tracer is enabled, after the event's global seq is
  // assigned and regardless of ring-buffer eviction.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  // Names a track in the exported trace (Chrome thread_name metadata);
  // platforms register one track per shard domain.
  void SetTrackName(std::uint32_t track, std::string name);

  // --- Recording (all O(1); no-ops while disabled) ---

  using SpanId = std::uint64_t;
  static constexpr SpanId kInvalidSpan = 0;

  // Opens a span that closes at a later simulated time (boot phase,
  // microreboot window). The completed event enters the ring at EndSpan.
  // Spans opened on the same track and closed LIFO render nested.
  SpanId BeginSpan(TraceCategory cat, std::string name,
                   std::uint32_t track = 0);
  void EndSpan(SpanId id);

  // Records a complete span with explicit endpoints (callers that already
  // know both, e.g. the boot scheduler's precomputed phase windows).
  void Span(TraceCategory cat, std::string_view name, SimTime begin,
            SimTime end, std::uint32_t track = 0);

  // Records a zero-duration complete span at the current simulated time —
  // the shape used for hot-path operations (a hypercall or XenStore op is
  // instantaneous in simulated time but still wants span semantics).
  void Op(TraceCategory cat, std::string_view name, std::uint32_t track = 0);

  // Records a Chrome instant event ("i").
  void Instant(TraceCategory cat, std::string_view name,
               std::uint32_t track = 0);

  // --- Inspection / export ---

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t open_spans() const { return open_spans_.size(); }

  // Oldest-first copy of the ring contents.
  std::vector<TraceEvent> Events() const;

  // {"traceEvents": [...], "displayTimeUnit": "ms"} — loads directly in
  // chrome://tracing / Perfetto. Timestamps convert to microseconds (the
  // trace_event unit) with fractional precision so 1 ns resolution
  // survives. Deterministic for identical runs.
  std::string ToChromeJson() const;
  Status WriteJsonFile(const std::string& path) const;

  void Clear();

 private:
  struct OpenSpan {
    TraceCategory cat;
    std::string name;
    SimTime begin;
    std::uint32_t track;
  };

  SimTime NowTs() const { return sim_ != nullptr ? sim_->Now() : 0; }
  void Push(TraceEvent event);

  const Simulator* sim_;
  bool enabled_ = false;
  TraceSink* sink_ = nullptr;
  std::vector<TraceEvent> ring_;  // fixed capacity, allocated up front
  std::size_t head_ = 0;          // index of the oldest event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_seq_ = 0;
  SpanId next_span_ = 1;
  std::map<SpanId, OpenSpan> open_spans_;
  std::map<std::uint32_t, std::string> track_names_;
};

// RAII helper for call-scoped spans: begins on construction, ends on
// destruction. Move-only.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, TraceCategory cat, std::string name,
             std::uint32_t track = 0)
      : tracer_(tracer),
        id_(tracer == nullptr
                ? Tracer::kInvalidSpan
                : tracer->BeginSpan(cat, std::move(name), track)) {}
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    End();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  void End() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(id_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_;
  Tracer::SpanId id_;
};

}  // namespace xoar

#endif  // XOAR_SRC_OBS_TRACE_H_
