#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "src/base/strings.h"

namespace xoar {

std::string MetricName(std::string_view shard, std::string_view subsystem,
                       std::string_view metric) {
  std::string name;
  name.reserve(shard.size() + subsystem.size() + metric.size() + 2);
  name.append(shard);
  name.push_back('.');
  name.append(subsystem);
  name.push_back('.');
  name.append(metric);
  return name;
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = DefaultLatencyBoundsNs();
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i >= bounds_.size()) {
        return bounds_.empty() ? 0 : bounds_.back();  // overflow bucket
      }
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0 : bounds_[i - 1];
      const double before = static_cast<double>(cumulative - buckets_[i]);
      const double in_bucket = static_cast<double>(buckets_[i]);
      const double frac =
          in_bucket == 0 ? 1.0 : (target - before) / in_bucket;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

Status Histogram::Merge(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    return InvalidArgumentError(StrFormat(
        "cannot merge histogram %s: bucket bounds differ", name_.c_str()));
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return Status::Ok();
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(std::max(count, 0)));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::DefaultLatencyBoundsNs() {
  // 100ns, 200ns, ... ~104ms: 21 buckets spanning hypercall costs through
  // microreboot downtime windows.
  return ExponentialBounds(100.0, 2.0, 21);
}

// --- MetricsSnapshot ---------------------------------------------------------

const MetricsSnapshot::CounterValue* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::FindGauge(
    std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) {
      return &g;
    }
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

// --- MetricRegistry ----------------------------------------------------------

Counter* MetricRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), std::move(bounds))))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricRegistry::Snapshot(SimTime taken_at) const {
  MetricsSnapshot snapshot;
  snapshot.taken_at = taken_at;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->bounds(),
                                   histogram->bucket_counts(),
                                   histogram->count(), histogram->sum(),
                                   histogram->Percentile(0.50),
                                   histogram->Percentile(0.99)});
  }
  return snapshot;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat(
              "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c))));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double value) {
  // Integral values print without a fraction so counters stay integers.
  // Range-check before the int64 cast: casting a double outside int64
  // range is undefined behaviour.
  if (value < 1e15 && value > -1e15 &&
      value == static_cast<double>(static_cast<std::int64_t>(value))) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.17g", value);
}

}  // namespace

std::string MetricRegistry::ToJson(const MetricsSnapshot& snapshot,
                                   std::string_view binary_name) {
  std::string out;
  out.append("{\n  \"context\": {\n    \"executable\": ");
  AppendJsonString(&out, binary_name);
  out.append(StrFormat(",\n    \"sim_time_ns\": %llu\n  },\n",
                       static_cast<unsigned long long>(snapshot.taken_at)));
  out.append("  \"benchmarks\": [\n");
  bool first = true;
  auto separator = [&] {
    if (!first) {
      out.append(",\n");
    }
    first = false;
  };
  for (const auto& c : snapshot.counters) {
    separator();
    out.append("    {\"name\": ");
    AppendJsonString(&out, c.name);
    out.append(StrFormat(", \"run_type\": \"counter\", \"value\": %llu}",
                         static_cast<unsigned long long>(c.value)));
  }
  for (const auto& g : snapshot.gauges) {
    separator();
    out.append("    {\"name\": ");
    AppendJsonString(&out, g.name);
    out.append(", \"run_type\": \"gauge\", \"value\": ");
    out.append(JsonNumber(g.value));
    out.push_back('}');
  }
  for (const auto& h : snapshot.histograms) {
    separator();
    out.append("    {\"name\": ");
    AppendJsonString(&out, h.name);
    out.append(StrFormat(", \"run_type\": \"histogram\", \"count\": %llu",
                         static_cast<unsigned long long>(h.count)));
    out.append(", \"sum\": ");
    out.append(JsonNumber(h.sum));
    out.append(", \"p50\": ");
    out.append(JsonNumber(h.p50));
    out.append(", \"p99\": ");
    out.append(JsonNumber(h.p99));
    out.append(", \"buckets\": [");
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) {
        out.append(", ");
      }
      out.append("{\"le\": ");
      out.append(i < h.bounds.size() ? JsonNumber(h.bounds[i])
                                     : std::string("\"inf\""));
      out.append(StrFormat(", \"count\": %llu}",
                           static_cast<unsigned long long>(h.buckets[i])));
    }
    out.append("]}");
  }
  out.append("\n  ]\n}\n");
  return out;
}

Status MetricRegistry::WriteJsonFile(const std::string& path,
                                     std::string_view binary_name,
                                     SimTime taken_at) const {
  const std::string json = ToJson(Snapshot(taken_at), binary_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return InternalError(StrFormat("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace xoar
