// Obs bundles the two observability facilities — the metrics registry and
// the event tracer — into the single handle platform components take.
//
// Ownership: each Platform instance owns one Obs, so metrics from two
// platforms in one process (e.g. the baseline-vs-Xoar comparison benches)
// never mix. Components accept an optional `Obs*`; passing nullptr routes
// them to the process-wide `Obs::Global()` fallback, which keeps bare
// component construction in unit tests and micro-benches working without
// plumbing.
//
// Thread-safety: none needed or provided — the simulation is
// single-threaded (see src/obs/metrics.h for the cost model).
#ifndef XOAR_SRC_OBS_OBS_H_
#define XOAR_SRC_OBS_OBS_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace xoar {

class Obs {
 public:
  Obs() = default;
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Process-wide fallback instance for components constructed without an
  // explicit Obs (bare unit-test fixtures, micro-bench loops).
  static Obs& Global();

  // Null-coalescing helper: the idiom for optional `Obs*` constructor
  // parameters is `obs_(Obs::OrGlobal(obs))`.
  static Obs* OrGlobal(Obs* obs) { return obs != nullptr ? obs : &Global(); }

 private:
  MetricRegistry metrics_;
  Tracer tracer_;
};

}  // namespace xoar

#endif  // XOAR_SRC_OBS_OBS_H_
