// Metrics registry: monotonic counters, gauges, and fixed-bucket histograms
// with per-shard labeling and JSON export.
//
// Why it exists (paper §6): every claim in Xoar's evaluation — boot latency
// per shard, microreboot downtime windows, I/O ring throughput — is a
// *measurement*, and measurements need a single code path shared by the
// paper-figure benchmarks and live platform introspection. Bench binaries
// and the platform both record into a MetricRegistry and export the same
// JSON family as the committed BENCH_*.json trajectories (top-level
// "context" object + "benchmarks" array keyed by "name"), so downstream
// tooling can consume either interchangeably.
//
// Naming convention: `shard.subsystem.metric` (e.g. `NetBack.ring.tx_bytes`,
// `hv.evtchn.sends`, `XenStore-Logic.microreboot.downtime_ms`). Compose
// names with MetricName(); platform-wide metrics use the pseudo-shard
// labels `hv` and `xenstore`. See OBSERVABILITY.md for the full inventory.
//
// Cost model / thread-safety: the whole platform is a single-threaded
// discrete-event simulation (see src/sim/simulator.h), so there are no
// locks anywhere — "lock-cheap" here means an increment is one add through
// a cached pointer. Handles returned by the registry are stable for the
// registry's lifetime (metrics are heap-held and never erased), so hot
// paths look up a Counter* once at construction and never touch the name
// map again. None of these classes may be shared across threads without
// external synchronization.
#ifndef XOAR_SRC_OBS_METRICS_H_
#define XOAR_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"

namespace xoar {

// Composes the canonical `shard.subsystem.metric` name.
std::string MetricName(std::string_view shard, std::string_view subsystem,
                       std::string_view metric);

// A monotonically increasing event count. Never reset, never decremented;
// consumers derive rates from snapshot deltas.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::uint64_t value_ = 0;
};

// A point-in-time value that can move both ways (live domain count, last
// measured throughput).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  double value_ = 0;
};

// A fixed-bucket histogram. Bucket i counts observations with
// value <= bounds[i] (and > bounds[i-1]); one implicit overflow bucket
// catches everything above the last bound. Bounds are fixed at creation so
// two histograms of the same metric always merge exactly.
class Histogram {
 public:
  void Observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // size() == bounds().size() + 1; the last entry is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }
  const std::string& name() const { return name_; }

  // Estimated p-quantile (p in [0,1]) by linear interpolation inside the
  // containing bucket. Overflow-bucket quantiles clamp to the last bound.
  double Percentile(double p) const;

  // Adds `other`'s observations into this histogram. Fails unless the
  // bucket bounds are identical.
  Status Merge(const Histogram& other);

  // `count` bounds at start, start*factor, start*factor^2, ... — the usual
  // latency-bucket shape.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);
  // Default latency buckets: 100ns .. ~100ms in x2 steps.
  static std::vector<double> DefaultLatencyBoundsNs();

 private:
  friend class MetricRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  std::string name_;
  std::vector<double> bounds_;         // ascending upper bounds
  std::vector<std::uint64_t> buckets_; // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

// A consistent copy of every metric at one instant, detached from the
// registry (safe to keep across further mutation, cheap to serialize).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    double value;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count;
    double sum;
    double p50;
    double p99;
  };
  SimTime taken_at = 0;
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* FindCounter(std::string_view name) const;
  const GaugeValue* FindGauge(std::string_view name) const;
  const HistogramValue* FindHistogram(std::string_view name) const;
};

// Owner of all metrics for one platform instance (or one bench process).
// Get-or-create by full name; returned pointers stay valid as long as the
// registry lives. Names are kept in a sorted map so snapshots and JSON
// exports are deterministic. Single-threaded, like everything else here.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Get-or-create. A histogram's bounds are fixed by the first call; later
  // calls ignore `bounds` and return the existing instance.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  std::size_t MetricCount() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // `taken_at` stamps the snapshot with the current simulated time (pass
  // sim->Now(); defaults to 0 for registries with no simulator attached).
  MetricsSnapshot Snapshot(SimTime taken_at = 0) const;

  // Exports the BENCH_*.json-family shape:
  //   {"context": {"executable": <binary_name>, "sim_time_ns": ...},
  //    "benchmarks": [{"name": ..., "run_type": "counter"|"gauge"|
  //                    "histogram", ...}, ...]}
  // Deterministic: no wall-clock or host fields, so identical runs produce
  // identical files (the simulator's replay guarantee extends to exports).
  static std::string ToJson(const MetricsSnapshot& snapshot,
                            std::string_view binary_name);
  Status WriteJsonFile(const std::string& path, std::string_view binary_name,
                       SimTime taken_at = 0) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace xoar

#endif  // XOAR_SRC_OBS_METRICS_H_
