#include "src/obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/base/strings.h"

namespace xoar {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    XOAR_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(std::string_view message) const {
    return InvalidArgumentError(
        StrFormat("JSON parse error at offset %zu: %.*s", pos_,
                  static_cast<int>(message.size()), message.data()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    StatusOr<JsonValue> result = [&]() -> StatusOr<JsonValue> {
      switch (text_[pos_]) {
        case '{':
          return ParseObject();
        case '[':
          return ParseArray();
        case '"':
          return ParseString();
        case 't':
          if (ConsumeLiteral("true")) {
            return JsonValue::Bool(true);
          }
          return Error("bad literal");
        case 'f':
          if (ConsumeLiteral("false")) {
            return JsonValue::Bool(false);
          }
          return Error("bad literal");
        case 'n':
          if (ConsumeLiteral("null")) {
            return JsonValue::Null();
          }
          return Error("bad literal");
        default:
          return ParseNumber();
      }
    }();
    --depth_;
    return result;
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue::Object(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      XOAR_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      XOAR_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.insert_or_assign(key.string(), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue::Object(std::move(members));
      }
      return Error("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue::Array(std::move(items));
    }
    while (true) {
      XOAR_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue::Array(std::move(items));
      }
      return Error("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return JsonValue::String(std::move(out));
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // Latin-1 subset only; enough for the exporters' escaped output.
          if (code > 0xff) {
            return Error("\\u escape above Latin-1 unsupported");
          }
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    (void)Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error("malformed number");
    }
    return JsonValue::Number(value);
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

StatusOr<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return InvalidArgumentError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string contents;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  return ParseJson(contents);
}

}  // namespace xoar
