#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/base/strings.h"

namespace xoar {

std::string_view TraceCategoryName(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kHypercall:
      return "hypercall";
    case TraceCategory::kEvtchn:
      return "evtchn";
    case TraceCategory::kGrant:
      return "grant";
    case TraceCategory::kXenStore:
      return "xenstore";
    case TraceCategory::kBoot:
      return "boot";
    case TraceCategory::kMicroreboot:
      return "microreboot";
    case TraceCategory::kSched:
      return "sched";
    case TraceCategory::kDriver:
      return "driver";
    case TraceCategory::kWatchdog:
      return "watchdog";
    case TraceCategory::kCount:
      break;
  }
  return "unknown";
}

Tracer::Tracer(const Simulator* sim, std::size_t capacity) : sim_(sim) {
  ring_.resize(std::max<std::size_t>(capacity, 1));
}

void Tracer::SetTrackName(std::uint32_t track, std::string name) {
  track_names_[track] = std::move(name);
}

Tracer::SpanId Tracer::BeginSpan(TraceCategory cat, std::string name,
                                 std::uint32_t track) {
  if (!enabled_) {
    return kInvalidSpan;
  }
  const SpanId id = next_span_++;
  open_spans_.emplace(id, OpenSpan{cat, std::move(name), NowTs(), track});
  return id;
}

void Tracer::EndSpan(SpanId id) {
  if (id == kInvalidSpan) {
    return;
  }
  auto it = open_spans_.find(id);
  if (it == open_spans_.end()) {
    return;  // tracer disabled between Begin and End, or double-ended
  }
  OpenSpan open = std::move(it->second);
  open_spans_.erase(it);
  if (!enabled_) {
    return;
  }
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.cat = open.cat;
  event.name = std::move(open.name);
  event.ts = open.begin;
  const SimTime now = NowTs();
  event.dur = now > open.begin ? now - open.begin : 0;
  event.track = open.track;
  Push(std::move(event));
}

void Tracer::Span(TraceCategory cat, std::string_view name, SimTime begin,
                  SimTime end, std::uint32_t track) {
  if (!enabled_) {
    return;
  }
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.cat = cat;
  event.name = std::string(name);
  event.ts = begin;
  event.dur = end > begin ? end - begin : 0;
  event.track = track;
  Push(std::move(event));
}

void Tracer::Op(TraceCategory cat, std::string_view name,
                std::uint32_t track) {
  if (!enabled_) {
    return;
  }
  const SimTime now = NowTs();
  Span(cat, name, now, now, track);
}

void Tracer::Instant(TraceCategory cat, std::string_view name,
                     std::uint32_t track) {
  if (!enabled_) {
    return;
  }
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.cat = cat;
  event.name = std::string(name);
  event.ts = NowTs();
  event.track = track;
  Push(std::move(event));
}

void Tracer::Push(TraceEvent event) {
  event.seq = next_seq_++;
  if (sink_ != nullptr) {
    sink_->OnTraceEvent(event);
  }
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = std::move(event);
    ++size_;
  } else {
    ring_[head_] = std::move(event);  // overwrite the oldest
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> events;
  events.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    events.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return events;
}

void Tracer::Clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  open_spans_.clear();
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat(
              "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c))));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// trace_event timestamps are microseconds; print ns-resolution fractions
// without float formatting so output is deterministic and exact.
std::string MicrosFromNanos(std::uint64_t ns) {
  const std::uint64_t whole = ns / 1000;
  const std::uint64_t frac = ns % 1000;
  if (frac == 0) {
    return StrFormat("%llu", static_cast<unsigned long long>(whole));
  }
  return StrFormat("%llu.%03llu", static_cast<unsigned long long>(whole),
                   static_cast<unsigned long long>(frac));
}

}  // namespace

std::string Tracer::ToChromeJson() const {
  std::string out;
  out.append("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
  bool first = true;
  auto separator = [&] {
    if (!first) {
      out.append(",\n");
    }
    first = false;
  };
  // Track-name metadata first so viewers label rows before events arrive.
  for (const auto& [track, name] : track_names_) {
    separator();
    out.append(
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": ");
    out.append(StrFormat("%u", track));
    out.append(", \"args\": {\"name\": ");
    AppendJsonString(&out, name);
    out.append("}}");
  }
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& e = ring_[(head_ + i) % ring_.size()];
    separator();
    out.append("{\"name\": ");
    AppendJsonString(&out, e.name);
    out.append(", \"cat\": ");
    AppendJsonString(&out, TraceCategoryName(e.cat));
    if (e.phase == TraceEvent::Phase::kComplete) {
      out.append(", \"ph\": \"X\", \"ts\": ");
      out.append(MicrosFromNanos(e.ts));
      out.append(", \"dur\": ");
      out.append(MicrosFromNanos(e.dur));
    } else {
      out.append(", \"ph\": \"i\", \"s\": \"t\", \"ts\": ");
      out.append(MicrosFromNanos(e.ts));
    }
    out.append(StrFormat(", \"pid\": 1, \"tid\": %u}", e.track));
  }
  out.append("\n]\n}\n");
  return out;
}

Status Tracer::WriteJsonFile(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return InternalError(StrFormat("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace xoar
