// Compromise-propagation analysis (§2.1, §6.2.1).
//
// A compromise of a component yields (1) that component's privileges and
// (2) reachability of the other interfaces it touches. The analyzer takes a
// live platform, an attacking guest, and a vulnerability; it resolves which
// domain the exploited component lives in, then computes mechanically —
// from the hypervisor's actual privilege state, not from a hand-written
// table — what the attacker can now reach: whose memory, whose traffic,
// whose management interface, and whether the platform as a whole is lost.
#ifndef XOAR_SRC_SECURITY_CONTAINMENT_H_
#define XOAR_SRC_SECURITY_CONTAINMENT_H_

#include <set>
#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/ctl/platform.h"
#include "src/security/vulnerabilities.h"

namespace xoar {

struct ContainmentResult {
  std::string vulnerability_id;
  AttackVector vector = AttackVector::kHypervisor;
  // The domain hosting the exploited component (invalid for pure
  // hypervisor-level attacks).
  DomainId compromised_domain;
  // The whole platform is lost (hypervisor exploit, or the compromised
  // domain is the control domain).
  bool platform_compromised = false;
  // Denial of service only: no code execution in the TCB.
  bool dos_only = false;
  // Attack defeated by configuration (e.g. guest debug-register
  // deprivileging).
  bool mitigated = false;
  // Guests whose memory the attacker can now read/write.
  std::set<DomainId> memory_access;
  // Guests whose I/O (network traffic or storage) transits the compromised
  // component and can be intercepted.
  std::set<DomainId> interceptable;
  // Guests the attacker can now manage (pause/destroy) via toolstack
  // privileges.
  std::set<DomainId> manageable;

  // Count of *other* guests affected in any way (the paper's containment
  // metric).
  std::size_t OtherGuestsAffected(DomainId attacker) const;
  std::string Summary() const;
};

class CompromiseAnalyzer {
 public:
  // `deprivilege_guest_debug_registers` models the mitigation the paper
  // notes is available on either platform for the 2 debug-register CVEs.
  CompromiseAnalyzer(Platform* platform, bool deprivilege_guest_debug_registers)
      : platform_(platform),
        deprivilege_debug_(deprivilege_guest_debug_registers) {}

  // Replays one vulnerability launched from `attacker`.
  StatusOr<ContainmentResult> Analyze(DomainId attacker,
                                      const Vulnerability& vuln);

  // Replays the whole guest-originated registry.
  std::vector<ContainmentResult> AnalyzeAll(DomainId attacker);

 private:
  // The domain hosting the component a given vector lands in.
  DomainId ResolveTargetDomain(DomainId attacker, AttackVector vector);
  void ComputeReach(DomainId compromised, ContainmentResult* result);

  Platform* platform_;
  bool deprivilege_debug_;
};

}  // namespace xoar

#endif  // XOAR_SRC_SECURITY_CONTAINMENT_H_
