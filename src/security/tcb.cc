#include "src/security/tcb.h"

namespace xoar {

TcbReport StockXenTcb() {
  TcbReport report;
  report.platform = "Stock Xen (monolithic Dom0)";
  report.components.push_back(
      TcbComponent{"Xen hypervisor", HypervisorCodeSize(), true});
  // Dom0: one Linux image hosting every control-plane service; all of it
  // holds arbitrary guest-memory privilege.
  report.components.push_back(
      TcbComponent{"Dom0 Linux (drivers, XenStore, toolstack, QEMU)",
                   CodeSizeOf(OsProfile::kLinux), true});
  return report;
}

TcbReport XoarTcb() {
  TcbReport report;
  report.platform = "Xoar (disaggregated)";
  report.components.push_back(
      TcbComponent{"Xen hypervisor", HypervisorCodeSize(), true});
  for (const auto& shard : ShardInventory()) {
    // The Builder is the single remaining component with guest-memory
    // privilege (§6.2); the Bootstrapper is privileged too but exists only
    // during boot and is destroyed before guests run.
    const bool privileged = shard.shard_class == ShardClass::kBuilder;
    report.components.push_back(TcbComponent{
        std::string(shard.name), CodeSizeOf(shard.os), privileged});
  }
  return report;
}

}  // namespace xoar
