#include "src/security/interface_graph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace xoar {
namespace security {

InterfaceGraphStats AnalyzeInterfaceGraph(
    const std::vector<InterfaceEdge>& edges, const std::string& guest_node) {
  std::set<std::string> nodes;
  std::set<std::pair<std::string, std::string>> pairs;
  std::map<std::string, std::set<std::string>> adjacency;
  std::set<std::string> guest_adjacent;
  for (const InterfaceEdge& edge : edges) {
    nodes.insert(edge.from);
    nodes.insert(edge.to);
    pairs.insert({edge.from, edge.to});
    adjacency[edge.from].insert(edge.to);
    if (edge.from == guest_node && edge.to != guest_node) {
      guest_adjacent.insert(edge.to);
    }
    if (edge.to == guest_node && edge.from != guest_node) {
      guest_adjacent.insert(edge.from);
    }
  }

  InterfaceGraphStats stats;
  stats.nodes = nodes.size();
  stats.edges = pairs.size();
  stats.attack_surface = guest_adjacent.size();
  if (nodes.empty()) {
    return stats;
  }

  std::size_t reach_sum = 0;
  for (const std::string& start : nodes) {
    std::set<std::string> visited = {start};
    std::deque<std::string> queue = {start};
    while (!queue.empty()) {
      const std::string cur = queue.front();
      queue.pop_front();
      auto it = adjacency.find(cur);
      if (it == adjacency.end()) {
        continue;
      }
      for (const std::string& next : it->second) {
        if (visited.insert(next).second) {
          queue.push_back(next);
        }
      }
    }
    const std::size_t reach = visited.size() - 1;  // self excluded
    reach_sum += reach;
    stats.max_reach = std::max(stats.max_reach, reach);
  }
  stats.mean_reach_milli =
      (reach_sum * 1000 + nodes.size() / 2) / nodes.size();
  return stats;
}

}  // namespace security
}  // namespace xoar
