#include "src/security/containment.h"

#include "src/base/strings.h"

namespace xoar {

std::size_t ContainmentResult::OtherGuestsAffected(DomainId attacker) const {
  std::set<DomainId> affected;
  for (const auto& set : {memory_access, interceptable, manageable}) {
    for (DomainId id : set) {
      if (id != attacker) {
        affected.insert(id);
      }
    }
  }
  return affected.size();
}

std::string ContainmentResult::Summary() const {
  if (mitigated) {
    return "mitigated (no effect)";
  }
  if (platform_compromised) {
    return "PLATFORM COMPROMISED";
  }
  if (dos_only) {
    return StrFormat("DoS only: %zu guest(s) lose availability",
                     interceptable.size());
  }
  return StrFormat(
      "contained: memory of %zu guest(s), traffic of %zu, management of %zu",
      memory_access.size(), interceptable.size(), manageable.size());
}

DomainId CompromiseAnalyzer::ResolveTargetDomain(DomainId attacker,
                                                 AttackVector vector) {
  switch (vector) {
    case AttackVector::kDeviceEmulation:
      return platform_->ServiceDomainOf(ServiceKind::kDeviceEmulator,
                                        attacker);
    case AttackVector::kVirtualizedDevice:
      // Net and blk backends alternate per CVE in reality; the worse case
      // (network interception) is representative.
      return platform_->ServiceDomainOf(ServiceKind::kNetBack, attacker);
    case AttackVector::kManagement:
      return platform_->ServiceDomainOf(ServiceKind::kToolstack, attacker);
    case AttackVector::kXenStore:
      return platform_->ServiceDomainOf(ServiceKind::kXenStore, attacker);
    case AttackVector::kDebugRegisters:
    case AttackVector::kHypervisor:
      return DomainId::Invalid();  // hypervisor-level
  }
  return DomainId::Invalid();
}

void CompromiseAnalyzer::ComputeReach(DomainId compromised,
                                      ContainmentResult* result) {
  Hypervisor& hv = platform_->hv();
  const Domain* dom = hv.domain(compromised);
  if (dom == nullptr) {
    return;
  }
  if (dom->is_control_domain()) {
    // Dom0 compromise: everything is lost (§4: "a compromise of Dom0
    // compromises the security of all the hosted machines").
    result->platform_compromised = true;
    for (DomainId id : hv.AllDomains()) {
      const Domain* other = hv.domain(id);
      if (other != nullptr && !other->is_control_domain()) {
        result->memory_access.insert(id);
        result->interceptable.insert(id);
        result->manageable.insert(id);
      }
    }
    return;
  }
  // Builder-class privilege: arbitrary foreign mapping of any guest.
  const bool arbitrary_memory =
      dom->is_shard() &&
      dom->hypercall_policy().Permits(Hypercall::kForeignMemoryMap);
  for (DomainId id : hv.AllDomains()) {
    const Domain* other = hv.domain(id);
    if (other == nullptr || id == compromised || other->is_control_domain()) {
      continue;
    }
    const bool is_guest = !other->config().is_shard;
    if (arbitrary_memory && is_guest) {
      result->memory_access.insert(id);
    }
    // privileged-for: the QemuVM's reach is exactly its own guest.
    if (dom->IsPrivilegedFor(id)) {
      result->memory_access.insert(id);
    }
    // Guests authorized to use this shard have their I/O transiting it.
    if (other->MayUseShard(compromised)) {
      result->interceptable.insert(id);
    }
    // Guests whose parent toolstack this is can be managed (started,
    // stopped, reconfigured).
    if (other->parent_toolstack() == compromised) {
      result->manageable.insert(id);
    }
  }
}

StatusOr<ContainmentResult> CompromiseAnalyzer::Analyze(
    DomainId attacker, const Vulnerability& vuln) {
  if (!vuln.guest_originated) {
    return InvalidArgumentError(
        "only guest-originated vulnerabilities are in the threat model");
  }
  ContainmentResult result;
  result.vulnerability_id = vuln.id;
  result.vector = vuln.vector;

  switch (vuln.vector) {
    case AttackVector::kHypervisor:
      // §6.2.1: "We would currently not be able to protect against the
      // hypervisor exploit" — on either platform.
      result.platform_compromised = true;
      return result;
    case AttackVector::kDebugRegisters:
      // §6.2.1: mitigated by deprivileging guests, on Xen or Xoar alike.
      if (deprivilege_debug_) {
        result.mitigated = true;
      } else {
        result.platform_compromised = true;
      }
      return result;
    case AttackVector::kXenStore:
      // §6.2.1: caused by bugs fixed in the deployed XenStore version; the
      // quota defense additionally bounds the monopolization DoS.
      result.mitigated = true;
      return result;
    default:
      break;
  }

  const DomainId target = ResolveTargetDomain(attacker, vuln.vector);
  if (!target.valid()) {
    return FailedPreconditionError(
        StrFormat("attacker dom%u has no %s surface on this platform",
                  attacker.value(),
                  std::string(AttackVectorName(vuln.vector)).c_str()));
  }
  result.compromised_domain = target;
  if (vuln.effect == AttackEffect::kDenialOfService) {
    // Availability impact is bounded by who shares the component.
    result.dos_only = true;
    Hypervisor& hv = platform_->hv();
    const Domain* dom = hv.domain(target);
    if (dom != nullptr && dom->is_control_domain()) {
      result.platform_compromised = true;  // Dom0 wedged = host down
    }
    for (DomainId id : hv.AllDomains()) {
      const Domain* other = hv.domain(id);
      if (other != nullptr && (other->MayUseShard(target) ||
                               (dom != nullptr && dom->is_control_domain() &&
                                !other->is_control_domain()))) {
        result.interceptable.insert(id);
      }
    }
    return result;
  }
  ComputeReach(target, &result);
  return result;
}

std::vector<ContainmentResult> CompromiseAnalyzer::AnalyzeAll(
    DomainId attacker) {
  std::vector<ContainmentResult> results;
  for (const auto& vuln : GuestOriginatedVulnerabilities()) {
    StatusOr<ContainmentResult> result = Analyze(attacker, vuln);
    if (result.ok()) {
      results.push_back(*std::move(result));
    }
  }
  return results;
}

}  // namespace xoar
