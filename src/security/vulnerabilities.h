// Vulnerability registry (§2.2.1, §6.2.1).
//
// The paper analyzed the CERT registry and VMware advisories for Type-1
// hypervisor vulnerabilities: 44 total, of which 23 originated from within
// guest VMs (12 arbitrary-code-execution buffer overflows, 11 denial of
// service). By attack vector: 14 in device emulation, 4 in the virtualized
// device layer, 4 in management components, and 1 in the hypervisor itself.
// The §6.2.1 evaluation replays the code-execution attacks against both
// platforms. The identifiers below are synthetic (the thesis does not name
// individual CVEs); counts and classification follow the paper exactly.
#ifndef XOAR_SRC_SECURITY_VULNERABILITIES_H_
#define XOAR_SRC_SECURITY_VULNERABILITIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xoar {

enum class AttackVector : std::uint8_t {
  kDeviceEmulation,    // QEMU device model
  kVirtualizedDevice,  // paravirtual net/blk backends
  kManagement,         // toolstack / management components
  kXenStore,           // XenStore write-access bugs
  kDebugRegisters,     // debug-register handling in the hypervisor interface
  kHypervisor,         // a hypervisor exploit proper
};

std::string_view AttackVectorName(AttackVector vector);

enum class AttackEffect : std::uint8_t {
  kCodeExecution,  // arbitrary code execution with elevated privileges
  kDenialOfService,
};

struct Vulnerability {
  std::string id;  // synthetic identifier
  AttackVector vector;
  AttackEffect effect;
  bool guest_originated;
  std::string description;
};

// The full registry of 44 entries (23 guest-originated).
const std::vector<Vulnerability>& VulnerabilityRegistry();

// The guest-originated subset the evaluation replays.
std::vector<Vulnerability> GuestOriginatedVulnerabilities();

}  // namespace xoar

#endif  // XOAR_SRC_SECURITY_VULNERABILITIES_H_
