// TCB size accounting (§6.2).
//
// The privileged TCB is the set of components that can arbitrarily access a
// guest's memory: the hypervisor plus, in stock Xen, the whole Dom0 Linux
// stack — versus, in Xoar, only the nanOS-based Builder. This module
// computes the comparison the paper states: 7.6 M (400 k compiled) lines of
// Linux reduced to 13 k (8 k compiled) lines of nanOS, both atop Xen's
// 280 k (70 k compiled).
#ifndef XOAR_SRC_SECURITY_TCB_H_
#define XOAR_SRC_SECURITY_TCB_H_

#include <string>
#include <vector>

#include "src/core/shard.h"

namespace xoar {

struct TcbComponent {
  std::string name;
  CodeSize size;
  bool privileged;  // can arbitrarily access guest memory
};

struct TcbReport {
  std::string platform;
  std::vector<TcbComponent> components;

  CodeSize PrivilegedTotal() const {
    CodeSize total{0, 0};
    for (const auto& component : components) {
      if (component.privileged) {
        total.source_loc += component.size.source_loc;
        total.compiled_loc += component.size.compiled_loc;
      }
    }
    return total;
  }
  // Privileged lines excluding the hypervisor (the paper quotes the control
  // plane reduction separately from Xen's own 280 k).
  CodeSize PrivilegedAboveHypervisor() const {
    CodeSize total = PrivilegedTotal();
    const CodeSize hv = HypervisorCodeSize();
    total.source_loc -= hv.source_loc;
    total.compiled_loc -= hv.compiled_loc;
    return total;
  }
};

// Stock Xen: hypervisor + monolithic Dom0 (Linux + every service).
TcbReport StockXenTcb();

// Xoar: hypervisor + the Builder (nanOS). Other shards are listed
// unprivileged — compromising one yields only that component's scope.
TcbReport XoarTcb();

}  // namespace xoar

#endif  // XOAR_SRC_SECURITY_TCB_H_
