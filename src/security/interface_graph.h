// Containment metrics over a shard interface graph (PAPER.md §2.1, §6.2.1).
//
// CompromiseAnalyzer (containment.h) replays concrete vulnerabilities
// against a LIVE platform; this analyzer answers the coarser architectural
// question for a graph handed to it as data: given who-talks-to-whom, how
// much of the system does one compromised node touch? Because the input is
// plain edges, the same metrics can be computed for the DECLARED shard DAG
// and for the communication graph xoar_flow DERIVES from the
// implementation, and exported side by side — if the derived numbers are
// worse, the code has grown coupling the design argument does not cover.
#ifndef XOAR_SRC_SECURITY_INTERFACE_GRAPH_H_
#define XOAR_SRC_SECURITY_INTERFACE_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

namespace xoar {
namespace security {

// One directed communication edge, node names as strings so both declared
// tables and code-derived graphs feed in without conversion.
struct InterfaceEdge {
  std::string from;
  std::string to;
  std::string kind;  // "rpc" | "xenstore" | "evtchn" | "grant" | "map"
};

struct InterfaceGraphStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;  // distinct (from, to) pairs, kinds folded
  // Shards sharing ANY channel with the guest node — the paper's attack
  // surface: each is directly reachable by a malicious guest.
  std::size_t attack_surface = 0;
  // Directed-closure reach per node (nodes reachable, self excluded):
  // worst case and mean (in thousandths, so reports stay integer-valued).
  std::size_t max_reach = 0;
  std::size_t mean_reach_milli = 0;
};

InterfaceGraphStats AnalyzeInterfaceGraph(
    const std::vector<InterfaceEdge>& edges, const std::string& guest_node);

}  // namespace security
}  // namespace xoar

#endif  // XOAR_SRC_SECURITY_INTERFACE_GRAPH_H_
