#include "src/security/vulnerabilities.h"

#include "src/base/strings.h"

namespace xoar {

std::string_view AttackVectorName(AttackVector vector) {
  switch (vector) {
    case AttackVector::kDeviceEmulation:
      return "device-emulation";
    case AttackVector::kVirtualizedDevice:
      return "virtualized-device";
    case AttackVector::kManagement:
      return "management";
    case AttackVector::kXenStore:
      return "xenstore";
    case AttackVector::kDebugRegisters:
      return "debug-registers";
    case AttackVector::kHypervisor:
      return "hypervisor";
  }
  return "unknown";
}

namespace {

// Note on reconciliation: §2.2.1 tallies 23 guest-originated entries as
// 14 device-emulation + 4 virtualized-device + 4 management + 1 hypervisor,
// while §6.2.1 replays 7 device-emulation, 6 virtualized-device,
// 1 toolstack, 2 debug-register, 2 XenStore, and 1 hypervisor attack. The
// thesis's two tallies do not reconcile exactly; the registry below encodes
// the §6.2.1 evaluation set verbatim (19 replayed attacks) and pads with
// denial-of-service entries to reach §2.2.1's totals (23 guest-originated,
// 44 overall).
std::vector<Vulnerability> BuildRegistry() {
  std::vector<Vulnerability> registry;
  int counter = 1;
  auto add = [&](AttackVector vector, AttackEffect effect,
                 bool guest_originated, const char* description) {
    registry.push_back(Vulnerability{StrFormat("XVE-%04d", counter++), vector,
                                     effect, guest_originated, description});
  };

  // --- §6.2.1 replayed set (guest-originated, code execution) ---
  add(AttackVector::kDeviceEmulation, AttackEffect::kCodeExecution, true,
      "buffer overflow in emulated VGA framebuffer blit path");
  add(AttackVector::kDeviceEmulation, AttackEffect::kCodeExecution, true,
      "heap corruption in emulated IDE DMA descriptor parsing");
  add(AttackVector::kDeviceEmulation, AttackEffect::kCodeExecution, true,
      "out-of-bounds write in emulated rtl8139 transmit handler");
  add(AttackVector::kDeviceEmulation, AttackEffect::kCodeExecution, true,
      "integer overflow in emulated BIOS e820 table construction");
  add(AttackVector::kDeviceEmulation, AttackEffect::kCodeExecution, true,
      "format-string bug in emulated serial port logging");
  add(AttackVector::kDeviceEmulation, AttackEffect::kCodeExecution, true,
      "use-after-free in emulated USB controller teardown");
  add(AttackVector::kDeviceEmulation, AttackEffect::kCodeExecution, true,
      "frame-buffer escape exposing other guests' video memory (Cloudburst)");

  add(AttackVector::kVirtualizedDevice, AttackEffect::kCodeExecution, true,
      "missing bounds check in netback shared-ring request demux");
  add(AttackVector::kVirtualizedDevice, AttackEffect::kCodeExecution, true,
      "blkback sector-range validation bypass writing outside the VBD");
  add(AttackVector::kVirtualizedDevice, AttackEffect::kCodeExecution, true,
      "grant-table reference double-map in netback");
  add(AttackVector::kVirtualizedDevice, AttackEffect::kCodeExecution, true,
      "malformed I/O-ring indices causing backend heap overflow");
  add(AttackVector::kVirtualizedDevice, AttackEffect::kDenialOfService, true,
      "event-channel storm starving the backend driver");
  add(AttackVector::kVirtualizedDevice, AttackEffect::kDenialOfService, true,
      "rx ring overrun wedging the virtual interface");

  add(AttackVector::kManagement, AttackEffect::kCodeExecution, true,
      "toolstack migration-stream parsing overflow");

  add(AttackVector::kDebugRegisters, AttackEffect::kCodeExecution, true,
      "debug-register state leak across VCPU context switch");
  add(AttackVector::kDebugRegisters, AttackEffect::kCodeExecution, true,
      "unchecked debug-register write reaching hypervisor context");

  add(AttackVector::kXenStore, AttackEffect::kCodeExecution, true,
      "XenStore write-access check bypass on foreign paths");
  add(AttackVector::kXenStore, AttackEffect::kDenialOfService, true,
      "XenStore quota exhaustion starving other guests (monopolization)");

  add(AttackVector::kHypervisor, AttackEffect::kCodeExecution, true,
      "hypervisor exploit in the security extensions (XSM)");

  // --- Padding DoS entries to §2.2.1's guest-originated total of 23 ---
  add(AttackVector::kDeviceEmulation, AttackEffect::kDenialOfService, true,
      "emulated PIT programming hang");
  add(AttackVector::kDeviceEmulation, AttackEffect::kDenialOfService, true,
      "emulated CD-ROM media-change crash loop");
  add(AttackVector::kDeviceEmulation, AttackEffect::kDenialOfService, true,
      "emulated keyboard controller state-machine wedge");
  add(AttackVector::kManagement, AttackEffect::kDenialOfService, true,
      "toolstack RPC flood exhausting control-plane memory");

  // --- Non-guest-originated remainder (21), excluded from the threat
  //     model (§2.2.1 footnote: Type-2 / host-OS attacks) ---
  for (int i = 0; i < 21; ++i) {
    add(AttackVector::kManagement, AttackEffect::kCodeExecution, false,
        "host-OS-vector advisory excluded from the Type-1 threat model");
  }
  return registry;
}

}  // namespace

const std::vector<Vulnerability>& VulnerabilityRegistry() {
  static const std::vector<Vulnerability> kRegistry = BuildRegistry();
  return kRegistry;
}

std::vector<Vulnerability> GuestOriginatedVulnerabilities() {
  std::vector<Vulnerability> out;
  for (const auto& vuln : VulnerabilityRegistry()) {
    if (vuln.guest_originated) {
      out.push_back(vuln);
    }
  }
  return out;
}

}  // namespace xoar
