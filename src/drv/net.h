// Paravirtual network split driver (§4.5.1, §5.4).
//
// NetFront exposes frame tx/rx to a guest; NetBack hosts the physical NIC
// driver and virtualizes it into per-guest virtual interfaces (vifs).
// Negotiation follows the XenBus protocol over XenStore with two rings per
// vif (tx and rx) in granted guest pages plus one event channel.
//
// NetBack is the restartable component exercised by Fig 6.3 / Fig 6.5:
// Suspend() detaches the NIC and breaks every vif (frames in flight are
// lost, exactly what TCP sees as an outage); Resume() re-advertises the
// backend and frontends renegotiate via XenStore.
//
// Resilience (RESILIENCE.md): NetFront arms a simulated-time deadline per
// tx frame; frames the backend never acknowledges (a dropped notification,
// an injected drop burst) are retransmitted with bounded exponential
// backoff. XenStore handshake traffic retries the same way.
#ifndef XOAR_SRC_DRV_NET_H_
#define XOAR_SRC_DRV_NET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/backoff.h"
#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/dev/nic.h"
#include "src/hv/hypervisor.h"
#include "src/hv/io_ring.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"
#include "src/xs/service.h"

namespace xoar {

struct NetRingRequest {
  std::uint64_t id;
  std::uint32_t bytes;
};

struct NetRingResponse {
  std::uint64_t id;
  std::int8_t status;  // 0 = OK
};

using NetRing = IoRing<NetRingRequest, NetRingResponse, 32>;

// Backend CPU overhead per forwarded frame (demux + bridge + copy grant).
constexpr SimDuration kNetBackPerFrameOverhead = 4 * kMicrosecond;

// Frames processed per scheduled tx-ring drain; see kBlkBackDrainBudget for
// the batching rationale (one drain event per kick, final re-check for
// frames pushed while draining).
constexpr std::uint32_t kNetBackDrainBudget = NetRing::kEntries;

class NetBack {
 public:
  // Fault-injection hook (src/fault), consulted once per popped tx request.
  // Returning true silently drops the frame — no response is ever pushed,
  // so the frontend's per-frame deadline expires and it retransmits. This
  // models a congested or faulty path rather than an explicit NACK.
  using TxFaultHook =
      std::function<bool(DomainId guest, const NetRingRequest& request)>;

  // `obs` receives `NetBack.ring.*` / `NetBack.vif.*` counters and kDriver
  // trace events; nullptr falls back to Obs::Global().
  NetBack(Hypervisor* hv, XenStoreService* xs, Simulator* sim, DomainId self,
          NicDevice* nic, Obs* obs = nullptr);

  // Registers the backend root in XenStore and attaches the NIC rx path.
  Status Initialize();

  DomainId self() const { return self_; }
  NicDevice* nic() { return nic_; }
  bool available() const { return available_; }

  // Creates a vif record for `guest` and advertises the backend half.
  Status AttachVif(DomainId guest);
  // Tears the vif down completely: disconnect the rings, drop the
  // frontend-state watch, forget the guest. The destroy-side counterpart
  // of AttachVif (Suspend/Resume keep vifs, this does not).
  Status DetachVif(DomainId guest);

  // Frame arriving from the physical network destined for `guest`.
  // Dropped (returns false) while the backend or the vif is down.
  bool InjectRx(DomainId guest, std::uint32_t bytes);

  // --- Microreboot hooks ---
  void Suspend();
  void Resume();

  bool IsVifConnected(DomainId guest) const;

  // Rate multiplier on the effective data-path throughput; below 1.0 when
  // the driver shares a control VM with other busy services (Fig 6.2's
  // performance-isolation effect). 1.0 for a dedicated driver domain.
  void set_rate_multiplier(double m) { rate_multiplier_ = m; }
  double rate_multiplier() const { return rate_multiplier_; }
  // Effective deliverable rate for one guest's flow, in bits/second.
  double EffectiveRateBps() const {
    return nic_->link_rate() * rate_multiplier_;
  }

  void set_tx_fault_hook(TxFaultHook hook) { tx_fault_hook_ = std::move(hook); }

  std::uint64_t frames_forwarded() const { return frames_forwarded_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  struct Vif {
    DomainId guest;
    bool connected = false;
    GrantRef tx_gref;
    GrantRef rx_gref;
    std::byte* tx_ring = nullptr;
    std::byte* rx_ring = nullptr;
    EvtchnPort port;  // backend-local port of the shared channel
    // Reconnect retry state, see BlkBack::Vbd.
    ExponentialBackoff connect_backoff;
    bool retry_pending = false;
    // Coalesces tx kicks into one pending drain event, see BlkBack::Vbd.
    bool drain_scheduled = false;
  };

  void OnFrontendStateChange(DomainId guest);
  Status ConnectVif(Vif& vif);
  void ScheduleConnectRetry(DomainId guest);
  void DisconnectVif(Vif& vif);
  void ServiceTxRing(DomainId guest);
  void DrainTxRing(DomainId guest);

  Hypervisor* hv_;
  XenStoreService* xs_;
  Simulator* sim_;
  DomainId self_;
  NicDevice* nic_;
  bool available_ = false;
  double rate_multiplier_ = 1.0;
  TxFaultHook tx_fault_hook_;
  // Resume() re-advertisement retry, see BlkBack.
  ExponentialBackoff resume_backoff_;
  bool resume_retry_pending_ = false;
  std::map<DomainId, Vif> vifs_;
  std::uint64_t frames_forwarded_ = 0;
  std::uint64_t frames_dropped_ = 0;
  Obs* obs_;
  Counter* m_tx_frames_;      // NetBack.ring.tx_frames
  Counter* m_rx_frames_;      // NetBack.ring.rx_frames
  Counter* m_dropped_;        // NetBack.ring.dropped
  Counter* m_vif_connects_;   // NetBack.vif.connects
};

class NetFront {
 public:
  using TxDone = std::function<void(Status)>;
  using RxHandler = std::function<void(std::uint32_t bytes)>;

  // Retry/backoff tuning (RESILIENCE.md "Tuning knobs"). request_timeout is
  // the per-frame acknowledgement deadline; it must exceed normal backend
  // forwarding latency (microseconds here) by a wide margin or healthy
  // frames get duplicated on the wire.
  struct RetryConfig {
    BackoffPolicy backoff;
    SimDuration request_timeout = 250 * kMillisecond;
  };

  NetFront(Hypervisor* hv, XenStoreService* xs, Simulator* sim, DomainId self,
           DomainId backend);
  ~NetFront();

  // Frontend half of the XenBus handshake; also arms reconnection on
  // backend microreboots.
  Status Connect();

  bool connected() const { return connected_; }
  DomainId backend() const { return backend_; }

  // Queues a frame for transmission; `done` fires when the backend has put
  // it on the wire. Frames queue while disconnected and flush on reconnect.
  // Unacknowledged frames are retransmitted with exponential backoff; `done`
  // sees UNAVAILABLE only after retry exhaustion.
  void SendFrame(std::uint32_t bytes, TxDone done);

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  void set_retry_config(const RetryConfig& config);
  const RetryConfig& retry_config() const { return retry_; }

  std::uint64_t tx_completed() const { return tx_completed_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t retransmitted_frames() const { return retransmits_; }
  std::uint64_t retry_attempts() const { return retry_attempts_; }
  std::uint64_t retry_recovered() const { return retry_recovered_; }
  std::uint64_t retry_exhausted() const { return retry_exhausted_; }

 private:
  friend class NetBack;  // rx delivery

  struct PendingTx {
    NetRingRequest request;
    TxDone done;
    int attempts = 0;  // backoff retries so far (reconnects not counted)
    EventId timeout_event = EventId::Invalid();
  };

  void Republish();
  Status DoRepublish();
  void OnBackendStateChange();
  void ScheduleXsRetry(bool republish);
  void PumpTxQueue();
  void OnEvent();  // tx completions and rx arrivals
  void OnTxTimeout(std::uint64_t id);
  void RetryTx(PendingTx frame);

  Hypervisor* hv_;
  XenStoreService* xs_;
  Simulator* sim_;
  DomainId self_;
  DomainId backend_;
  bool connected_ = false;
  bool handshake_started_ = false;
  bool awaiting_connect_ = false;
  Pfn tx_pfn_;
  Pfn rx_pfn_;
  std::byte* tx_page_ = nullptr;
  std::byte* rx_page_ = nullptr;
  GrantRef tx_gref_;
  GrantRef rx_gref_;
  EvtchnPort port_;
  std::uint64_t next_id_ = 1;
  RetryConfig retry_;
  ExponentialBackoff xs_backoff_;
  bool xs_retry_pending_ = false;
  bool xs_retry_republish_ = false;
  std::deque<PendingTx> tx_queue_;
  std::map<std::uint64_t, PendingTx> tx_outstanding_;
  RxHandler rx_handler_;
  std::uint64_t tx_completed_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t retry_recovered_ = 0;
  std::uint64_t retry_exhausted_ = 0;
  Counter* m_retry_attempts_;   // NetFront.retry.attempts
  Counter* m_retry_recovered_;  // NetFront.retry.recovered
  Counter* m_retry_exhausted_;  // NetFront.retry.exhausted
  Histogram* m_backoff_ms_;     // NetFront.retry.backoff_ms
  // Guards scheduled callbacks against this frontend dying with its guest;
  // see BlkFront.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace xoar

#endif  // XOAR_SRC_DRV_NET_H_
