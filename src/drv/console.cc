#include "src/drv/console.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

ConsoleBackend::ConsoleBackend(Hypervisor* hv, Simulator* sim, DomainId self,
                               SerialDevice* serial)
    : hv_(hv), sim_(sim), self_(self), serial_(serial) {}

Status ConsoleBackend::Initialize() {
  if (initialized_) {
    return AlreadyExistsError("console backend already initialized");
  }
  // §5.8: the hypervisor must deliver console signals to the correct domain;
  // BindVirq checks the kSerialConsole capability.
  XOAR_ASSIGN_OR_RETURN(virq_port_, hv_->BindVirq(self_, Virq::kConsole));
  serial_->set_input_notifier(
      [this] { (void)hv_->RaiseVirq(self_, Virq::kConsole); });
  initialized_ = true;
  return Status::Ok();
}

Status ConsoleBackend::ConnectGuest(DomainId guest, bool use_foreign_map) {
  if (!initialized_) {
    return FailedPreconditionError("console backend not initialized");
  }
  if (guests_.count(guest) > 0) {
    return AlreadyExistsError(
        StrFormat("dom%u already has a console", guest.value()));
  }
  GuestConsole console;
  XOAR_ASSIGN_OR_RETURN(console.ring_pfn,
                        hv_->memory().AllocatePages(guest, 1));
  if (use_foreign_map) {
    XOAR_ASSIGN_OR_RETURN(
        MappedPage page,
        // xoar-flow: allow(privilege_flow): stock-Dom0 baseline branch only — the deployed Xoar configuration takes the grant path below (§4.4)
        hv_->ForeignMap(self_, guest, console.ring_pfn));
    (void)page;
  } else {
    XOAR_ASSIGN_OR_RETURN(
        console.ring_gref,
        hv_->GrantAccess(guest, self_, console.ring_pfn, /*writable=*/true));
    XOAR_ASSIGN_OR_RETURN(MappedPage page,
                          hv_->MapGrant(self_, guest, console.ring_gref));
    (void)page;
  }
  XOAR_ASSIGN_OR_RETURN(console.guest_port,
                        hv_->EvtchnAllocUnbound(guest, self_));
  XOAR_ASSIGN_OR_RETURN(
      console.server_port,
      hv_->EvtchnBindInterdomain(self_, guest, console.guest_port));
  guests_.emplace(guest, std::move(console));
  return Status::Ok();
}

bool ConsoleBackend::IsConnected(DomainId guest) const {
  return guests_.count(guest) > 0;
}

void ConsoleBackend::Disconnect(DomainId guest) { guests_.erase(guest); }

Status ConsoleBackend::WriteFromGuest(DomainId guest, std::string_view text) {
  auto it = guests_.find(guest);
  if (it == guests_.end()) {
    return FailedPreconditionError(
        StrFormat("dom%u has no virtual console", guest.value()));
  }
  it->second.transcript.append(text);
  ++guest_writes_;
  return Status::Ok();
}

StatusOr<std::string> ConsoleBackend::Transcript(DomainId guest) const {
  auto it = guests_.find(guest);
  if (it == guests_.end()) {
    return NotFoundError(
        StrFormat("dom%u has no virtual console", guest.value()));
  }
  return it->second.transcript;
}

void ConsoleBackend::WritePhysical(std::string_view text) {
  serial_->Write(text);
}

std::string ConsoleBackend::DrainPhysicalInput() {
  return serial_->DrainInput();
}

}  // namespace xoar
