// Virtual console service (§5.5).
//
// Xen keeps the physical serial port; the holder of the kSerialConsole
// capability (Dom0 in stock Xen, the Console Manager in Xoar) receives the
// console VIRQ plus I/O-port access and runs the user-space console daemon
// (xenconsoled) that exposes a virtual console to every other VM over a
// shared ring. Per Table 5.1 the Console Manager is *unprivileged*: in Xoar
// it maps guest rings through Builder-created grant entries rather than
// Dom0-style foreign mapping (§5.6).
#ifndef XOAR_SRC_DRV_CONSOLE_H_
#define XOAR_SRC_DRV_CONSOLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/dev/serial.h"
#include "src/hv/hypervisor.h"
#include "src/sim/simulator.h"

namespace xoar {

class ConsoleBackend {
 public:
  ConsoleBackend(Hypervisor* hv, Simulator* sim, DomainId self,
                 SerialDevice* serial);

  // Claims the console VIRQ (requires the kSerialConsole capability) and
  // arms the serial input path.
  Status Initialize();

  DomainId self() const { return self_; }
  bool initialized() const { return initialized_; }

  // Sets up a guest's virtual console ring. In stock mode the daemon
  // foreign-maps the guest page (Dom0 privilege); in Xoar mode it maps a
  // grant the Builder pre-created.
  Status ConnectGuest(DomainId guest, bool use_foreign_map);
  bool IsConnected(DomainId guest) const;
  void Disconnect(DomainId guest);

  // Guest console output: appended to that guest's transcript.
  Status WriteFromGuest(DomainId guest, std::string_view text);
  StatusOr<std::string> Transcript(DomainId guest) const;

  // Output from the console owner itself goes to the physical serial port.
  void WritePhysical(std::string_view text);

  // Characters received from the physical console since the last drain.
  std::string DrainPhysicalInput();

  std::uint64_t guest_writes() const { return guest_writes_; }

 private:
  struct GuestConsole {
    Pfn ring_pfn;
    GrantRef ring_gref;  // invalid when foreign-mapped
    EvtchnPort guest_port;
    EvtchnPort server_port;
    std::string transcript;
  };

  Hypervisor* hv_;
  Simulator* sim_;
  DomainId self_;
  SerialDevice* serial_;
  bool initialized_ = false;
  EvtchnPort virq_port_;
  std::map<DomainId, GuestConsole> guests_;
  std::uint64_t guest_writes_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_DRV_CONSOLE_H_
