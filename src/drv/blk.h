// Paravirtual block split driver (§4.5.1, §5.4).
//
// BlkFront runs in a guest and exposes an asynchronous sector-I/O API; it
// communicates with BlkBack over a grant-mapped I/O ring plus an event
// channel, negotiated via XenStore per the XenBus protocol. BlkBack hosts
// the physical disk driver: it virtualizes one disk controller into
// per-guest virtual block devices (VBDs), each backed by a byte range of
// the disk (a disk image). BlkBack also runs the small proxy daemon the
// Toolstack uses to create/inspect images after the Toolstack was split
// out of the driver domain (§5.4).
//
// BlkBack is restartable: Suspend() drops its device state and mappings
// (frames in flight are lost); Resume() re-advertises the backend, and
// frontends renegotiate through XenStore, retransmitting outstanding
// requests — the crash-only recovery loop of §3.3.
//
// Resilience (RESILIENCE.md): every request the frontend puts on the ring
// carries a simulated-time response deadline. A timed-out or transiently
// failed request is retried with bounded exponential backoff; exhaustion
// surfaces UNAVAILABLE to the caller. XenStore reads/writes on the
// handshake path are retried the same way, so an injected XenStore timeout
// delays reconnection instead of wedging it.
#ifndef XOAR_SRC_DRV_BLK_H_
#define XOAR_SRC_DRV_BLK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/backoff.h"
#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/dev/disk.h"
#include "src/hv/hypervisor.h"
#include "src/hv/io_ring.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"
#include "src/xs/service.h"

namespace xoar {

// One 512-byte-sector I/O request as carried on the ring.
struct BlkRingRequest {
  std::uint64_t id;
  std::uint64_t sector;
  std::uint32_t sector_count;
  std::uint8_t is_write;
};

struct BlkRingResponse {
  std::uint64_t id;
  std::int8_t status;  // 0 = OK, else kBlkStatus*
};

// Ring response status codes. kBlkStatusFailed is permanent (the request
// itself is bad — out of range for the VBD); kBlkStatusTransient marks a
// retryable backend-side fault (an injected EIO): the frontend retries it
// with backoff instead of failing the caller.
constexpr std::int8_t kBlkStatusFailed = -1;
constexpr std::int8_t kBlkStatusTransient = -2;

using BlkRing = IoRing<BlkRingRequest, BlkRingResponse, 32>;

constexpr std::uint32_t kSectorSize = 512;

// Per-request backend CPU overhead (request demux + completion).
constexpr SimDuration kBlkBackPerOpOverhead = 15 * kMicrosecond;

// Requests processed per scheduled ring drain. One notification schedules
// one drain event that services up to this many requests (Xen's
// RING_FINAL_CHECK_FOR_REQUESTS idiom) instead of one simulator event per
// request; requests left over — or pushed while the drain ran — get a
// follow-up drain event, so work per event stays bounded.
constexpr std::uint32_t kBlkBackDrainBudget = BlkRing::kEntries;

class BlkBack {
 public:
  // Fault-injection hook (src/fault), consulted once per popped ring
  // request. Returning true makes the backend answer kBlkStatusTransient
  // without touching the disk — a transient EIO the frontend absorbs via
  // retry/backoff.
  using IoFaultHook =
      std::function<bool(DomainId guest, const BlkRingRequest& request)>;

  // `obs` receives `BlkBack.ring.*` / `BlkBack.vbd.*` counters and kDriver
  // trace events; nullptr falls back to Obs::Global().
  BlkBack(Hypervisor* hv, XenStoreService* xs, Simulator* sim, DomainId self,
          DiskDevice* disk, Obs* obs = nullptr);

  // Registers the backend root and its XenStore watch.
  Status Initialize();

  DomainId self() const { return self_; }
  bool available() const { return available_; }

  // --- Disk image proxy (the §5.4 daemon) ---

  // Carves a named image out of the disk; the Toolstack calls this instead
  // of manipulating files itself.
  Status CreateImage(const std::string& name, std::uint64_t bytes);
  StatusOr<std::uint64_t> ImageSize(const std::string& name) const;
  // Releases an image's extent back to the disk (first-fit reuse). Fails
  // while a VBD is still bound to it. Destroying a guest without deleting
  // its image fills the disk after enough create/destroy churn — exactly
  // what a migration-heavy fleet does.
  Status DeleteImage(const std::string& name);

  // Binds a guest's VBD to an image. Called by the Toolstack when attaching
  // a virtual disk; the data-path handshake then runs over XenStore.
  Status BindImage(DomainId guest, const std::string& image);
  // Tears down a guest's VBD completely: disconnect the ring, drop the
  // frontend-state watch, forget the guest. The destroy-side counterpart
  // of BindImage (Suspend/Resume keep VBDs, this does not).
  Status DetachVbd(DomainId guest);

  // --- Microreboot hooks (driven by the restart engine in src/core) ---

  void Suspend();
  void Resume();

  bool IsVbdConnected(DomainId guest) const;

  // Slowdown multiplier applied to per-op overhead (control-VM co-location
  // interference; 1.0 = isolated driver domain).
  void set_overhead_multiplier(double m) { overhead_multiplier_ = m; }

  void set_io_fault_hook(IoFaultHook hook) { io_fault_hook_ = std::move(hook); }

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  struct Vbd {
    DomainId guest;
    std::string image;
    std::uint64_t base_offset = 0;
    std::uint64_t size_bytes = 0;
    bool connected = false;
    GrantRef ring_gref;
    std::byte* ring_page = nullptr;
    EvtchnPort port;
    // Reconnect retry state: a transiently failed ConnectVbd (XenStore down
    // mid-handshake, injected grant-map failure) is retried on this ladder
    // because nothing else re-fires the frontend-state watch.
    ExponentialBackoff connect_backoff;
    bool retry_pending = false;
    // Coalesces ring notifications: while a drain event is in flight,
    // further kicks are absorbed by the pending drain's final re-check.
    bool drain_scheduled = false;
  };

  void OnFrontendStateChange(DomainId guest);
  Status ConnectVbd(Vbd& vbd);
  void ScheduleConnectRetry(DomainId guest);
  void DisconnectVbd(Vbd& vbd);
  void ServiceRing(DomainId guest);
  void DrainRing(DomainId guest);

  Hypervisor* hv_;
  XenStoreService* xs_;
  Simulator* sim_;
  DomainId self_;
  DiskDevice* disk_;
  bool available_ = false;
  double overhead_multiplier_ = 1.0;
  IoFaultHook io_fault_hook_;
  // Resume() must eventually get its InitWait re-advertisement into
  // XenStore or no frontend ever renegotiates; retried unbounded at capped
  // delay when XenStore itself is down (RESILIENCE.md).
  ExponentialBackoff resume_backoff_;
  bool resume_retry_pending_ = false;
  std::map<DomainId, Vbd> vbds_;
  // Finds a first-fit offset for `bytes`, scanning the gaps left by
  // deleted images; nullopt when no gap fits.
  std::optional<std::uint64_t> AllocateExtent(std::uint64_t bytes) const;

  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
      images_;  // name -> (offset, size)
  std::uint64_t requests_served_ = 0;
  std::uint64_t bytes_moved_ = 0;
  Obs* obs_;
  Counter* m_requests_;      // BlkBack.ring.requests
  Counter* m_bytes_;         // BlkBack.ring.bytes
  Counter* m_vbd_connects_;  // BlkBack.vbd.connects
};

class BlkFront {
 public:
  using IoDone = std::function<void(Status)>;

  // Retry/backoff tuning (RESILIENCE.md "Tuning knobs"). request_timeout is
  // the on-ring response deadline per attempt; it must comfortably exceed
  // worst-case queueing + disk service time — a full 32-deep ring of
  // random-offset requests queues ~430 ms behind seek costs — or healthy
  // requests get retransmitted as duplicate disk writes.
  struct RetryConfig {
    BackoffPolicy backoff;
    SimDuration request_timeout = 2 * kSecond;
  };

  BlkFront(Hypervisor* hv, XenStoreService* xs, Simulator* sim, DomainId self,
           DomainId backend);
  ~BlkFront();

  // Runs the frontend side of the XenBus handshake. Also watches the
  // backend state so a microrebooted backend triggers renegotiation.
  Status Connect();

  bool connected() const { return connected_; }
  DomainId backend() const { return backend_; }

  // Asynchronous sector I/O. While disconnected (backend rebooting),
  // requests queue and are retransmitted after reconnection. Transient
  // backend errors and response timeouts are retried with exponential
  // backoff; `done` sees UNAVAILABLE only after retry exhaustion.
  void SubmitIo(std::uint64_t sector, std::uint32_t sector_count,
                bool is_write, IoDone done);

  // Convenience: byte-addressed I/O rounded to sectors.
  void ReadBytes(std::uint64_t offset, std::uint64_t bytes, IoDone done);
  void WriteBytes(std::uint64_t offset, std::uint64_t bytes, IoDone done);

  void set_retry_config(const RetryConfig& config);
  const RetryConfig& retry_config() const { return retry_; }

  std::uint64_t completed_ios() const { return completed_ios_; }
  std::uint64_t retransmitted_ios() const { return retransmits_; }
  std::size_t outstanding_ios() const { return outstanding_.size(); }
  std::uint64_t retry_attempts() const { return retry_attempts_; }
  std::uint64_t retry_recovered() const { return retry_recovered_; }
  std::uint64_t retry_exhausted() const { return retry_exhausted_; }

 private:
  struct PendingIo {
    BlkRingRequest request;
    IoDone done;
    int attempts = 0;  // backoff retries so far (reconnects not counted)
    EventId timeout_event = EventId::Invalid();
  };

  void Republish();
  Status DoRepublish();
  void OnBackendStateChange();
  void ScheduleXsRetry(bool republish);
  void PumpQueue();
  void OnResponse();
  void OnRequestTimeout(std::uint64_t id);
  void RetryIo(PendingIo io);

  Hypervisor* hv_;
  XenStoreService* xs_;
  Simulator* sim_;
  DomainId self_;
  DomainId backend_;
  bool connected_ = false;
  bool handshake_started_ = false;
  bool awaiting_connect_ = false;
  Pfn ring_pfn_;
  std::byte* ring_page_ = nullptr;
  GrantRef ring_gref_;
  EvtchnPort port_;
  std::uint64_t next_id_ = 1;
  RetryConfig retry_;
  ExponentialBackoff xs_backoff_;
  bool xs_retry_pending_ = false;
  bool xs_retry_republish_ = false;
  std::deque<PendingIo> queue_;                  // not yet on the ring
  std::map<std::uint64_t, PendingIo> outstanding_;  // on the ring, unanswered
  std::uint64_t completed_ios_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t retry_recovered_ = 0;
  std::uint64_t retry_exhausted_ = 0;
  Counter* m_retry_attempts_;   // BlkFront.retry.attempts
  Counter* m_retry_recovered_;  // BlkFront.retry.recovered
  Counter* m_retry_exhausted_;  // BlkFront.retry.exhausted
  Histogram* m_backoff_ms_;     // BlkFront.retry.backoff_ms
  // Frontends die with their guest while the simulation keeps running;
  // every scheduled callback checks this guard so late timers and watch
  // events can't touch a destroyed frontend.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace xoar

#endif  // XOAR_SRC_DRV_BLK_H_
