#include "src/drv/blk.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/drv/xenbus.h"

namespace xoar {

namespace {
// Largest single ring request, in sectors (matches blkif's 11-page segment
// limit closely enough: 64 sectors = 32 KiB).
constexpr std::uint32_t kMaxSectorsPerRequest = 64;
}  // namespace

// --- BlkBack -----------------------------------------------------------------

BlkBack::BlkBack(Hypervisor* hv, XenStoreService* xs, Simulator* sim,
                 DomainId self, DiskDevice* disk, Obs* obs)
    : hv_(hv),
      xs_(xs),
      sim_(sim),
      self_(self),
      disk_(disk),
      obs_(Obs::OrGlobal(obs)),
      m_requests_(obs_->metrics().GetCounter("BlkBack.ring.requests")),
      m_bytes_(obs_->metrics().GetCounter("BlkBack.ring.bytes")),
      m_vbd_connects_(obs_->metrics().GetCounter("BlkBack.vbd.connects")) {}

Status BlkBack::Initialize() {
  XOAR_RETURN_IF_ERROR(xs_->Mkdir(self_, BackendRoot(self_, kVbdType)));
  available_ = true;
  obs_->tracer().Op(TraceCategory::kDriver, "blkback_init", self_.value());
  return Status::Ok();
}

std::optional<std::uint64_t> BlkBack::AllocateExtent(
    std::uint64_t bytes) const {
  // First-fit over the gaps between live extents. The first 64 MiB are
  // reserved for metadata.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  extents.reserve(images_.size());
  for (const auto& [name, extent] : images_) {
    extents.push_back(extent);
  }
  std::sort(extents.begin(), extents.end());
  std::uint64_t cursor = 64 * kMiB;
  for (const auto& [offset, size] : extents) {
    if (offset - cursor >= bytes) {
      return cursor;
    }
    cursor = offset + size;
  }
  if (cursor + bytes <= disk_->geometry().capacity_bytes) {
    return cursor;
  }
  return std::nullopt;
}

Status BlkBack::CreateImage(const std::string& name, std::uint64_t bytes) {
  if (images_.count(name) > 0) {
    return AlreadyExistsError(StrFormat("image %s exists", name.c_str()));
  }
  std::optional<std::uint64_t> offset = AllocateExtent(bytes);
  if (!offset.has_value()) {
    return ResourceExhaustedError("disk full");
  }
  images_.emplace(name, std::make_pair(*offset, bytes));
  return Status::Ok();
}

Status BlkBack::DeleteImage(const std::string& name) {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return NotFoundError(StrFormat("no image %s", name.c_str()));
  }
  for (const auto& [guest, vbd] : vbds_) {
    if (vbd.image == name) {
      return FailedPreconditionError(
          StrFormat("image %s still bound to dom%u", name.c_str(),
                    guest.value()));
    }
  }
  images_.erase(it);
  return Status::Ok();
}

StatusOr<std::uint64_t> BlkBack::ImageSize(const std::string& name) const {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return NotFoundError(StrFormat("no image %s", name.c_str()));
  }
  return it->second.second;
}

Status BlkBack::BindImage(DomainId guest, const std::string& image) {
  auto img = images_.find(image);
  if (img == images_.end()) {
    return NotFoundError(StrFormat("no image %s", image.c_str()));
  }
  if (vbds_.count(guest) > 0) {
    return AlreadyExistsError(
        StrFormat("dom%u already has a VBD on this backend", guest.value()));
  }
  Vbd vbd;
  vbd.guest = guest;
  vbd.image = image;
  vbd.base_offset = img->second.first;
  vbd.size_bytes = img->second.second;
  vbds_.emplace(guest, vbd);

  // Advertise the backend half and let the guest read our state.
  const std::string back_dir = BackendDir(self_, guest, kVbdType);
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, back_dir + "/frontend-id",
                                  StrFormat("%u", guest.value())));
  XOAR_RETURN_IF_ERROR(
      xs_->Write(self_, back_dir + "/state",
                 XenbusStateString(XenbusState::kInitWait)));
  XsNodePerms perms;
  perms.owner = self_;
  perms.acl[guest] = XsPerm::kRead;
  XOAR_RETURN_IF_ERROR(xs_->SetPerms(self_, back_dir + "/state", perms));

  // Watch the frontend's state node; fires immediately (covers the case the
  // frontend published first) and again on every state change.
  const std::string front_state = FrontendDir(guest, kVbdType) + "/state";
  return xs_->Watch(self_, front_state,
                    StrFormat("blkback-%u", guest.value()),
                    [this, guest](const XsWatchEvent&) {
                      OnFrontendStateChange(guest);
                    });
}

void BlkBack::OnFrontendStateChange(DomainId guest) {
  auto it = vbds_.find(guest);
  if (it == vbds_.end() || !available_) {
    return;
  }
  Vbd& vbd = it->second;
  StatusOr<std::string> state =
      xs_->Read(self_, FrontendDir(guest, kVbdType) + "/state");
  if (!state.ok()) {
    // A transiently unreadable frontend node (XenStore-Logic down, injected
    // timeout) would silently strand the handshake: the watch already fired
    // and nothing re-fires it. Retry on the backoff ladder.
    if (state.status().code() == StatusCode::kUnavailable) {
      ScheduleConnectRetry(guest);
    }
    return;
  }
  const XenbusState front_state = XenbusStateFromString(*state);
  if (front_state == XenbusState::kInitialised && !vbd.connected) {
    const Status status = ConnectVbd(vbd);
    if (status.ok()) {
      vbd.connect_backoff.Reset();
    } else if (status.code() == StatusCode::kUnavailable) {
      ScheduleConnectRetry(guest);
    } else {
      XLOG(kWarning) << "[blkback] VBD connect for dom" << guest.value()
                     << " failed permanently: " << status;
    }
  }
}

Status BlkBack::ConnectVbd(Vbd& vbd) {
  const std::string front_dir = FrontendDir(vbd.guest, kVbdType);
  XOAR_ASSIGN_OR_RETURN(std::string gref_str,
                        xs_->Read(self_, front_dir + "/ring-ref"));
  XOAR_ASSIGN_OR_RETURN(std::string port_str,
                        xs_->Read(self_, front_dir + "/event-channel"));
  const GrantRef gref(
      static_cast<std::uint32_t>(std::stoul(gref_str)));
  const EvtchnPort front_port(
      static_cast<std::uint32_t>(std::stoul(port_str)));

  XOAR_ASSIGN_OR_RETURN(MappedPage page,
                        hv_->MapGrant(self_, vbd.guest, gref));
  XOAR_ASSIGN_OR_RETURN(EvtchnPort port,
                        hv_->EvtchnBindInterdomain(self_, vbd.guest,
                                                   front_port));
  vbd.ring_gref = gref;
  vbd.ring_page = page.data;
  vbd.port = port;
  vbd.connected = true;
  const DomainId guest = vbd.guest;
  (void)hv_->EvtchnSetHandler(self_, vbd.port,
                              [this, guest] { ServiceRing(guest); });
  XOAR_RETURN_IF_ERROR(
      xs_->Write(self_, BackendDir(self_, guest, kVbdType) + "/state",
                 XenbusStateString(XenbusState::kConnected)));
  m_vbd_connects_->Increment();
  obs_->tracer().Op(TraceCategory::kDriver, "blkback_vbd_connect",
                    self_.value());
  XLOG(kDebug) << "[blkback] VBD connected for dom" << guest.value();
  // Drain anything the frontend pushed before we connected.
  ServiceRing(guest);
  return Status::Ok();
}

void BlkBack::ScheduleConnectRetry(DomainId guest) {
  auto it = vbds_.find(guest);
  if (it == vbds_.end() || it->second.retry_pending) {
    return;
  }
  Vbd& vbd = it->second;
  vbd.retry_pending = true;
  const SimDuration delay = vbd.connect_backoff.NextDelay();
  if (vbd.connect_backoff.Exhausted()) {
    XLOG(kWarning) << "[blkback] dom" << guest.value()
                   << " connect retries exhausted; continuing at max delay";
  }
  sim_->ScheduleAfter(delay, [this, guest] {
    auto vbd_it = vbds_.find(guest);
    if (vbd_it == vbds_.end()) {
      return;
    }
    vbd_it->second.retry_pending = false;
    if (!available_ || vbd_it->second.connected) {
      return;
    }
    OnFrontendStateChange(guest);
  });
}

void BlkBack::DisconnectVbd(Vbd& vbd) {
  if (!vbd.connected) {
    return;
  }
  vbd.connected = false;
  (void)hv_->UnmapGrant(self_, vbd.guest, vbd.ring_gref);
  (void)hv_->EvtchnClose(self_, vbd.port);
  vbd.ring_page = nullptr;
}

Status BlkBack::DetachVbd(DomainId guest) {
  auto it = vbds_.find(guest);
  if (it == vbds_.end()) {
    return NotFoundError(
        StrFormat("dom%u has no VBD on this backend", guest.value()));
  }
  DisconnectVbd(it->second);
  (void)xs_->Unwatch(self_, FrontendDir(guest, kVbdType) + "/state",
                     StrFormat("blkback-%u", guest.value()));
  vbds_.erase(it);
  return Status::Ok();
}

void BlkBack::ServiceRing(DomainId guest) {
  auto it = vbds_.find(guest);
  if (it == vbds_.end() || !it->second.connected || !available_ ||
      it->second.drain_scheduled) {
    return;
  }
  // One drain event per kick, not one event per request: the demux overhead
  // is charged once and the drain below batches every request on the ring
  // (mirrors real netback/blkback, which process the whole ring per
  // interrupt and re-check before sleeping).
  Vbd& vbd = it->second;
  vbd.drain_scheduled = true;
  const SimDuration overhead = static_cast<SimDuration>(
      static_cast<double>(kBlkBackPerOpOverhead) * overhead_multiplier_);
  sim_->ScheduleAfter(overhead, [this, guest] { DrainRing(guest); });
}

void BlkBack::DrainRing(DomainId guest) {
  auto it = vbds_.find(guest);
  if (it == vbds_.end()) {
    return;
  }
  Vbd& vbd = it->second;
  vbd.drain_scheduled = false;
  if (!vbd.connected || !available_) {
    return;  // disconnected while the drain was in flight
  }
  BlkRing ring = BlkRing::Attach(vbd.ring_page);
  bool pushed_response = false;
  std::uint32_t budget = kBlkBackDrainBudget;
  while (budget > 0) {
    auto req = ring.PopRequest();
    if (!req) {
      break;
    }
    --budget;
    const BlkRingRequest request = *req;
    const std::uint64_t byte_offset =
        vbd.base_offset + request.sector * kSectorSize;
    const std::uint64_t byte_len =
        static_cast<std::uint64_t>(request.sector_count) * kSectorSize;
    std::int8_t status = 0;
    if (request.sector * kSectorSize + byte_len > vbd.size_bytes) {
      status = kBlkStatusFailed;  // out of range for this VBD
    } else if (io_fault_hook_ && io_fault_hook_(guest, request)) {
      status = kBlkStatusTransient;  // injected EIO; frontend retries
    }
    ++requests_served_;
    m_requests_->Increment();
    if (status != 0) {
      // Fail fast without touching the disk; one notification covers every
      // response pushed by this drain.
      ring.PushResponse(BlkRingResponse{request.id, status});
      pushed_response = true;
      continue;
    }
    bytes_moved_ += byte_len;
    m_bytes_->Increment(byte_len);
    // The disk serializes per-request service times internally (seek +
    // transfer, in submission order), so submitting the whole batch at
    // drain time preserves each request's completion offset.
    disk_->SubmitIo(byte_offset, static_cast<std::uint32_t>(byte_len),
                    request.is_write != 0, [this, guest, request] {
                      auto vbd_it = vbds_.find(guest);
                      if (vbd_it == vbds_.end() ||
                          !vbd_it->second.connected || !available_) {
                        return;  // completion lost; frontend retransmits
                      }
                      BlkRing r = BlkRing::Attach(vbd_it->second.ring_page);
                      if (r.PushResponse(BlkRingResponse{request.id, 0})) {
                        (void)hv_->EvtchnSend(self_, vbd_it->second.port);
                      }
                    });
  }
  if (pushed_response) {
    (void)hv_->EvtchnSend(self_, vbd.port);
  }
  // RING_FINAL_CHECK_FOR_REQUESTS: the frontend may have pushed more while
  // we drained (its kick was absorbed by drain_scheduled), or the budget
  // ran out. Either way the leftovers get their own drain event.
  if (ring.PendingRequests() > 0) {
    ServiceRing(guest);
  }
}

void BlkBack::Suspend() {
  obs_->tracer().Op(TraceCategory::kDriver, "blkback_suspend", self_.value());
  available_ = false;
  for (auto& [guest, vbd] : vbds_) {
    DisconnectVbd(vbd);
    (void)xs_->Write(self_, BackendDir(self_, guest, kVbdType) + "/state",
                     XenbusStateString(XenbusState::kClosing));
  }
}

void BlkBack::Resume() {
  obs_->tracer().Op(TraceCategory::kDriver, "blkback_resume", self_.value());
  available_ = true;
  // Re-advertise; frontends watching our state renegotiate from scratch. If
  // XenStore is itself down (concurrent Logic microreboot, injected
  // timeout), the write MUST be retried: this advertisement is the only
  // signal frontends get that the backend is back, so giving up would wedge
  // every VBD permanently. Unbounded retry at capped delay (RESILIENCE.md).
  bool transient_failure = false;
  for (auto& [guest, vbd] : vbds_) {
    const Status status =
        xs_->Write(self_, BackendDir(self_, guest, kVbdType) + "/state",
                   XenbusStateString(XenbusState::kInitWait));
    if (!status.ok() && status.code() == StatusCode::kUnavailable) {
      transient_failure = true;
    }
  }
  if (!transient_failure) {
    resume_backoff_.Reset();
    return;
  }
  if (resume_retry_pending_) {
    return;
  }
  resume_retry_pending_ = true;
  sim_->ScheduleAfter(resume_backoff_.NextDelay(), [this] {
    resume_retry_pending_ = false;
    if (available_) {
      Resume();
    }
  });
}

bool BlkBack::IsVbdConnected(DomainId guest) const {
  const Domain* self = hv_->domain(self_);
  if (self == nullptr || self->state() != DomainState::kRunning) {
    return false;
  }
  auto it = vbds_.find(guest);
  return it != vbds_.end() && it->second.connected && available_;
}

// --- BlkFront ----------------------------------------------------------------

BlkFront::BlkFront(Hypervisor* hv, XenStoreService* xs, Simulator* sim,
                   DomainId self, DomainId backend)
    : hv_(hv),
      xs_(xs),
      sim_(sim),
      self_(self),
      backend_(backend),
      m_retry_attempts_(
          hv->obs()->metrics().GetCounter("BlkFront.retry.attempts")),
      m_retry_recovered_(
          hv->obs()->metrics().GetCounter("BlkFront.retry.recovered")),
      m_retry_exhausted_(
          hv->obs()->metrics().GetCounter("BlkFront.retry.exhausted")),
      m_backoff_ms_(hv->obs()->metrics().GetHistogram(
          "BlkFront.retry.backoff_ms",
          Histogram::ExponentialBounds(1.0, 2.0, 10))) {
  xs_backoff_ = ExponentialBackoff(retry_.backoff);
}

BlkFront::~BlkFront() {
  // The guest died; scheduled timers and watch deliveries may still be in
  // the simulator's queue. Flip the guard so they no-op.
  *alive_ = false;
  for (auto& [id, io] : outstanding_) {
    if (io.timeout_event.valid()) {
      (void)sim_->Cancel(io.timeout_event);
    }
  }
}

void BlkFront::set_retry_config(const RetryConfig& config) {
  retry_ = config;
  xs_backoff_ = ExponentialBackoff(retry_.backoff);
}

Status BlkFront::Connect() {
  if (handshake_started_) {
    return AlreadyExistsError("frontend handshake already started");
  }
  handshake_started_ = true;
  // The ring lives in one page of guest memory, reused across reconnects.
  XOAR_ASSIGN_OR_RETURN(ring_pfn_, hv_->memory().AllocatePages(self_, 1));
  ring_page_ = hv_->memory().PageData(ring_pfn_);
  Republish();
  // Watch the backend state: reconnect when a microrebooted backend
  // re-advertises, mark connected when it reports Connected. Deliveries are
  // asynchronous, so guard against this frontend dying first.
  const std::string back_state =
      BackendDir(backend_, self_, kVbdType) + "/state";
  return xs_->Watch(self_, back_state, "blkfront",
                    [this, alive = alive_](const XsWatchEvent&) {
                      if (*alive) {
                        OnBackendStateChange();
                      }
                    });
}

void BlkFront::Republish() {
  const Status status = DoRepublish();
  if (status.ok()) {
    xs_backoff_.Reset();
    return;
  }
  if (status.code() == StatusCode::kUnavailable) {
    // XenStore (or the grant/evtchn path) transiently down mid-handshake.
    // Nothing re-fires this publish, so retry it ourselves.
    ScheduleXsRetry(/*republish=*/true);
    return;
  }
  XLOG(kWarning) << "[blkfront] republish failed permanently: " << status;
}

Status BlkFront::DoRepublish() {
  // Retire the previous generation's grant (ignore failure: the backend may
  // still hold a dangling mapping if it crashed rather than suspended).
  if (ring_gref_.valid()) {
    (void)hv_->EndGrantAccess(self_, ring_gref_);
    ring_gref_ = GrantRef::Invalid();
  }
  awaiting_connect_ = true;
  // Fresh grant + event channel for this connection generation.
  XOAR_ASSIGN_OR_RETURN(
      GrantRef gref,
      hv_->GrantAccess(self_, backend_, ring_pfn_, /*writable=*/true));
  XOAR_ASSIGN_OR_RETURN(EvtchnPort port,
                        hv_->EvtchnAllocUnbound(self_, backend_));
  ring_gref_ = gref;
  port_ = port;
  BlkRing::Create(ring_page_);  // reset indices for the new generation
  (void)hv_->EvtchnSetHandler(self_, port_, [this, alive = alive_] {
    if (*alive) {
      OnResponse();
    }
  });

  const std::string front_dir = FrontendDir(self_, kVbdType);
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/backend-id",
                                  StrFormat("%u", backend_.value())));
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/ring-ref",
                                  StrFormat("%u", ring_gref_.value())));
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/event-channel",
                                  StrFormat("%u", port_.value())));
  // Give the backend read access to our device directory.
  for (const char* leaf : {"/backend-id", "/ring-ref", "/event-channel"}) {
    XsNodePerms perms;
    perms.owner = self_;
    perms.acl[backend_] = XsPerm::kRead;
    XOAR_RETURN_IF_ERROR(xs_->SetPerms(self_, front_dir + leaf, perms));
  }
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/state",
                                  XenbusStateString(XenbusState::kInitialised)));
  XsNodePerms state_perms;
  state_perms.owner = self_;
  state_perms.acl[backend_] = XsPerm::kRead;
  return xs_->SetPerms(self_, front_dir + "/state", state_perms);
}

void BlkFront::ScheduleXsRetry(bool republish) {
  if (republish) {
    xs_retry_republish_ = true;
  }
  if (xs_retry_pending_) {
    return;
  }
  xs_retry_pending_ = true;
  const SimDuration delay = xs_backoff_.NextDelay();
  if (xs_backoff_.Exhausted()) {
    // Handshake retries must not give up: the backend's next advertisement
    // may never be readable if we stop looking (RESILIENCE.md). Stay at the
    // capped delay instead.
    XLOG(kWarning)
        << "[blkfront] XenStore retries exhausted; continuing at max delay";
  }
  sim_->ScheduleAfter(delay, [this, alive = alive_] {
    if (!*alive) {
      return;
    }
    xs_retry_pending_ = false;
    const bool republish_now = xs_retry_republish_;
    xs_retry_republish_ = false;
    if (republish_now) {
      Republish();
    } else {
      OnBackendStateChange();
    }
  });
}

void BlkFront::OnBackendStateChange() {
  StatusOr<std::string> state =
      xs_->Read(self_, BackendDir(backend_, self_, kVbdType) + "/state");
  if (!state.ok()) {
    // The watch told us the backend changed state but we could not read
    // which; dropping the event would desynchronise the handshake. Re-read
    // after backoff.
    if (state.status().code() == StatusCode::kUnavailable) {
      ScheduleXsRetry(/*republish=*/false);
    }
    return;
  }
  xs_backoff_.Reset();
  switch (XenbusStateFromString(*state)) {
    case XenbusState::kConnected: {
      if (connected_) {
        break;
      }
      connected_ = true;
      awaiting_connect_ = false;
      // Retransmit everything that was in flight when the backend went
      // down, then drain the queue. Response deadlines are re-armed when
      // the requests go back on the ring.
      if (!outstanding_.empty()) {
        std::vector<PendingIo> retry;
        retry.reserve(outstanding_.size());
        for (auto& [id, io] : outstanding_) {
          if (io.timeout_event.valid()) {
            (void)sim_->Cancel(io.timeout_event);
            io.timeout_event = EventId::Invalid();
          }
          retry.push_back(std::move(io));
        }
        outstanding_.clear();
        retransmits_ += retry.size();
        for (auto it = retry.rbegin(); it != retry.rend(); ++it) {
          queue_.push_front(std::move(*it));
        }
      }
      PumpQueue();
      break;
    }
    case XenbusState::kClosing:
      connected_ = false;
      break;
    case XenbusState::kInitWait:
      // Backend (re-)advertised. Republish unless our current generation is
      // already awaiting its Connected ack — the immediate watch fire at
      // registration would otherwise double-publish.
      if (connected_ || (handshake_started_ && !awaiting_connect_)) {
        connected_ = false;
        Republish();
      }
      break;
    default:
      break;
  }
}

void BlkFront::SubmitIo(std::uint64_t sector, std::uint32_t sector_count,
                        bool is_write, IoDone done) {
  while (sector_count > 0) {
    const std::uint32_t chunk = std::min(sector_count, kMaxSectorsPerRequest);
    PendingIo io;
    io.request = BlkRingRequest{next_id_++, sector, chunk,
                                static_cast<std::uint8_t>(is_write ? 1 : 0)};
    // Only the final chunk carries the completion callback.
    if (chunk == sector_count) {
      io.done = std::move(done);
    }
    queue_.push_back(std::move(io));
    sector += chunk;
    sector_count -= chunk;
  }
  PumpQueue();
}

void BlkFront::ReadBytes(std::uint64_t offset, std::uint64_t bytes,
                         IoDone done) {
  const std::uint64_t first = offset / kSectorSize;
  const std::uint64_t last = (offset + bytes + kSectorSize - 1) / kSectorSize;
  SubmitIo(first, static_cast<std::uint32_t>(last - first), /*is_write=*/false,
           std::move(done));
}

void BlkFront::WriteBytes(std::uint64_t offset, std::uint64_t bytes,
                         IoDone done) {
  const std::uint64_t first = offset / kSectorSize;
  const std::uint64_t last = (offset + bytes + kSectorSize - 1) / kSectorSize;
  SubmitIo(first, static_cast<std::uint32_t>(last - first), /*is_write=*/true,
           std::move(done));
}

void BlkFront::PumpQueue() {
  if (!connected_ || ring_page_ == nullptr) {
    return;
  }
  BlkRing ring = BlkRing::Attach(ring_page_);
  bool pushed = false;
  while (!queue_.empty() && !ring.FullRequests()) {
    PendingIo io = std::move(queue_.front());
    queue_.pop_front();
    const std::uint64_t id = io.request.id;
    ring.PushRequest(io.request);
    // Arm the per-attempt response deadline. If the backend never answers
    // (dropped notification, lost completion), OnRequestTimeout retries.
    io.timeout_event = sim_->ScheduleAfter(
        retry_.request_timeout, [this, alive = alive_, id] {
          if (*alive) {
            OnRequestTimeout(id);
          }
        });
    outstanding_.emplace(id, std::move(io));
    pushed = true;
  }
  if (pushed) {
    (void)hv_->EvtchnSend(self_, port_);
  }
}

void BlkFront::OnResponse() {
  if (ring_page_ == nullptr) {
    return;
  }
  BlkRing ring = BlkRing::Attach(ring_page_);
  while (auto rsp = ring.PopResponse()) {
    auto it = outstanding_.find(rsp->id);
    if (it == outstanding_.end()) {
      continue;  // stale response from a previous connection generation
    }
    PendingIo io = std::move(it->second);
    outstanding_.erase(it);
    if (io.timeout_event.valid()) {
      (void)sim_->Cancel(io.timeout_event);
      io.timeout_event = EventId::Invalid();
    }
    if (rsp->status == kBlkStatusTransient) {
      RetryIo(std::move(io));
      continue;
    }
    ++completed_ios_;
    if (rsp->status == 0 && io.attempts > 0) {
      ++retry_recovered_;
      m_retry_recovered_->Increment();
    }
    if (io.done) {
      io.done(rsp->status == 0
                  ? Status::Ok()
                  : InternalError("block I/O failed at backend"));
    }
  }
  PumpQueue();
}

void BlkFront::OnRequestTimeout(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    return;  // response arrived just before the deadline fired
  }
  if (!connected_) {
    // The backend is down; the reconnect path owns these requests (it will
    // retransmit them and arm fresh deadlines). A timeout here is not an
    // error signal.
    it->second.timeout_event = EventId::Invalid();
    return;
  }
  PendingIo io = std::move(it->second);
  outstanding_.erase(it);
  io.timeout_event = EventId::Invalid();
  RetryIo(std::move(io));
}

void BlkFront::RetryIo(PendingIo io) {
  ++io.attempts;
  ++retry_attempts_;
  m_retry_attempts_->Increment();
  if (io.attempts > retry_.backoff.max_attempts) {
    ++retry_exhausted_;
    m_retry_exhausted_->Increment();
    XLOG(kWarning) << "[blkfront] request " << io.request.id
                   << " exhausted retries";
    if (io.done) {
      io.done(UnavailableError(
          StrFormat("block I/O failed after %d retries", io.attempts - 1)));
    }
    return;
  }
  const SimDuration delay = retry_.backoff.DelayForAttempt(io.attempts - 1);
  m_backoff_ms_->Observe(ToMilliseconds(delay));
  sim_->ScheduleAfter(delay, [this, alive = alive_,
                              io = std::move(io)]() mutable {
    if (!*alive) {
      return;
    }
    queue_.push_front(std::move(io));
    PumpQueue();
  });
}

}  // namespace xoar
