#include "src/drv/net.h"

#include <utility>
#include <vector>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/drv/xenbus.h"

namespace xoar {

// --- NetBack -----------------------------------------------------------------

NetBack::NetBack(Hypervisor* hv, XenStoreService* xs, Simulator* sim,
                 DomainId self, NicDevice* nic, Obs* obs)
    : hv_(hv),
      xs_(xs),
      sim_(sim),
      self_(self),
      nic_(nic),
      obs_(Obs::OrGlobal(obs)),
      m_tx_frames_(obs_->metrics().GetCounter("NetBack.ring.tx_frames")),
      m_rx_frames_(obs_->metrics().GetCounter("NetBack.ring.rx_frames")),
      m_dropped_(obs_->metrics().GetCounter("NetBack.ring.dropped")),
      m_vif_connects_(obs_->metrics().GetCounter("NetBack.vif.connects")) {}

Status NetBack::Initialize() {
  XOAR_RETURN_IF_ERROR(xs_->Mkdir(self_, BackendRoot(self_, kVifType)));
  available_ = true;
  obs_->tracer().Op(TraceCategory::kDriver, "netback_init", self_.value());
  return Status::Ok();
}

Status NetBack::AttachVif(DomainId guest) {
  if (vifs_.count(guest) > 0) {
    return AlreadyExistsError(
        StrFormat("dom%u already has a vif on this backend", guest.value()));
  }
  Vif vif;
  vif.guest = guest;
  vifs_.emplace(guest, vif);

  const std::string back_dir = BackendDir(self_, guest, kVifType);
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, back_dir + "/frontend-id",
                                  StrFormat("%u", guest.value())));
  XOAR_RETURN_IF_ERROR(
      xs_->Write(self_, back_dir + "/state",
                 XenbusStateString(XenbusState::kInitWait)));
  XsNodePerms perms;
  perms.owner = self_;
  perms.acl[guest] = XsPerm::kRead;
  XOAR_RETURN_IF_ERROR(xs_->SetPerms(self_, back_dir + "/state", perms));

  const std::string front_state = FrontendDir(guest, kVifType) + "/state";
  return xs_->Watch(self_, front_state,
                    StrFormat("netback-%u", guest.value()),
                    [this, guest](const XsWatchEvent&) {
                      OnFrontendStateChange(guest);
                    });
}

void NetBack::OnFrontendStateChange(DomainId guest) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end() || !available_) {
    return;
  }
  StatusOr<std::string> state =
      xs_->Read(self_, FrontendDir(guest, kVifType) + "/state");
  if (!state.ok()) {
    // The watch already fired; if XenStore was only transiently unreadable,
    // nothing else re-triggers this handshake. Retry on the backoff ladder.
    if (state.status().code() == StatusCode::kUnavailable) {
      ScheduleConnectRetry(guest);
    }
    return;
  }
  if (XenbusStateFromString(*state) == XenbusState::kInitialised &&
      !it->second.connected) {
    const Status status = ConnectVif(it->second);
    if (status.ok()) {
      it->second.connect_backoff.Reset();
    } else if (status.code() == StatusCode::kUnavailable) {
      ScheduleConnectRetry(guest);
    } else {
      XLOG(kWarning) << "[netback] vif connect for dom" << guest.value()
                     << " failed permanently: " << status;
    }
  }
}

Status NetBack::ConnectVif(Vif& vif) {
  const std::string front_dir = FrontendDir(vif.guest, kVifType);
  XOAR_ASSIGN_OR_RETURN(std::string tx_gref,
                        xs_->Read(self_, front_dir + "/tx-ring-ref"));
  XOAR_ASSIGN_OR_RETURN(std::string rx_gref,
                        xs_->Read(self_, front_dir + "/rx-ring-ref"));
  XOAR_ASSIGN_OR_RETURN(std::string port_str,
                        xs_->Read(self_, front_dir + "/event-channel"));
  const GrantRef tx(static_cast<std::uint32_t>(std::stoul(tx_gref)));
  const GrantRef rx(static_cast<std::uint32_t>(std::stoul(rx_gref)));
  const EvtchnPort front_port(
      static_cast<std::uint32_t>(std::stoul(port_str)));

  XOAR_ASSIGN_OR_RETURN(MappedPage tx_page,
                        hv_->MapGrant(self_, vif.guest, tx));
  XOAR_ASSIGN_OR_RETURN(MappedPage rx_page,
                        hv_->MapGrant(self_, vif.guest, rx));
  XOAR_ASSIGN_OR_RETURN(EvtchnPort port,
                        hv_->EvtchnBindInterdomain(self_, vif.guest,
                                                   front_port));
  vif.tx_gref = tx;
  vif.rx_gref = rx;
  vif.tx_ring = tx_page.data;
  vif.rx_ring = rx_page.data;
  vif.port = port;
  vif.connected = true;
  const DomainId guest = vif.guest;
  (void)hv_->EvtchnSetHandler(self_, vif.port,
                              [this, guest] { ServiceTxRing(guest); });
  XOAR_RETURN_IF_ERROR(
      xs_->Write(self_, BackendDir(self_, guest, kVifType) + "/state",
                 XenbusStateString(XenbusState::kConnected)));
  m_vif_connects_->Increment();
  obs_->tracer().Op(TraceCategory::kDriver, "netback_vif_connect",
                    self_.value());
  XLOG(kDebug) << "[netback] vif connected for dom" << guest.value();
  ServiceTxRing(guest);
  return Status::Ok();
}

void NetBack::ScheduleConnectRetry(DomainId guest) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end() || it->second.retry_pending) {
    return;
  }
  Vif& vif = it->second;
  vif.retry_pending = true;
  const SimDuration delay = vif.connect_backoff.NextDelay();
  if (vif.connect_backoff.Exhausted()) {
    XLOG(kWarning) << "[netback] dom" << guest.value()
                   << " connect retries exhausted; continuing at max delay";
  }
  sim_->ScheduleAfter(delay, [this, guest] {
    auto vif_it = vifs_.find(guest);
    if (vif_it == vifs_.end()) {
      return;
    }
    vif_it->second.retry_pending = false;
    if (!available_ || vif_it->second.connected) {
      return;
    }
    OnFrontendStateChange(guest);
  });
}

void NetBack::DisconnectVif(Vif& vif) {
  if (!vif.connected) {
    return;
  }
  vif.connected = false;
  (void)hv_->UnmapGrant(self_, vif.guest, vif.tx_gref);
  (void)hv_->UnmapGrant(self_, vif.guest, vif.rx_gref);
  (void)hv_->EvtchnClose(self_, vif.port);
  vif.tx_ring = nullptr;
  vif.rx_ring = nullptr;
}

Status NetBack::DetachVif(DomainId guest) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end()) {
    return NotFoundError(
        StrFormat("dom%u has no vif on this backend", guest.value()));
  }
  DisconnectVif(it->second);
  (void)xs_->Unwatch(self_, FrontendDir(guest, kVifType) + "/state",
                     StrFormat("netback-%u", guest.value()));
  vifs_.erase(it);
  return Status::Ok();
}

void NetBack::ServiceTxRing(DomainId guest) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end() || !it->second.connected || !available_ ||
      it->second.drain_scheduled) {
    return;
  }
  // One drain event per kick (demux overhead charged once per batch), not
  // one simulator event per frame; see BlkBack::ServiceRing.
  Vif& vif = it->second;
  vif.drain_scheduled = true;
  const SimDuration overhead = static_cast<SimDuration>(
      static_cast<double>(kNetBackPerFrameOverhead) /
      std::max(0.05, rate_multiplier_));
  sim_->ScheduleAfter(overhead, [this, guest] { DrainTxRing(guest); });
}

void NetBack::DrainTxRing(DomainId guest) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end()) {
    return;
  }
  Vif& vif = it->second;
  vif.drain_scheduled = false;
  if (!vif.connected || !available_) {
    return;  // vif torn down while the drain was in flight
  }
  NetRing ring = NetRing::Attach(vif.tx_ring);
  std::uint32_t budget = kNetBackDrainBudget;
  while (budget > 0) {
    auto req = ring.PopRequest();
    if (!req) {
      break;
    }
    --budget;
    const NetRingRequest request = *req;
    if (tx_fault_hook_ && tx_fault_hook_(guest, request)) {
      // Injected drop: the frame vanishes with no response, exactly like a
      // frame lost mid-reboot. The frontend's deadline handles it.
      ++frames_dropped_;
      m_dropped_->Increment();
      continue;
    }
    ++frames_forwarded_;
    m_tx_frames_->Increment();
    // The NIC serializes frames at link rate internally, so submitting the
    // whole batch at drain time preserves each frame's wire time.
    nic_->Transmit(request.bytes, [this, guest, request] {
      auto v = vifs_.find(guest);
      if (v == vifs_.end() || !v->second.connected || !available_) {
        return;  // frame lost mid-reboot; the guest's TCP retransmits
      }
      NetRing r = NetRing::Attach(v->second.tx_ring);
      if (r.PushResponse(NetRingResponse{request.id, 0})) {
        (void)hv_->EvtchnSend(self_, v->second.port);
      }
    });
  }
  // Final re-check: frames pushed while we drained, or left by the budget,
  // get their own drain event (RING_FINAL_CHECK_FOR_REQUESTS idiom).
  if (ring.PendingRequests() > 0) {
    ServiceTxRing(guest);
  }
}

bool NetBack::InjectRx(DomainId guest, std::uint32_t bytes) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end() || !it->second.connected || !available_ ||
      !nic_->link_up()) {
    ++frames_dropped_;
    m_dropped_->Increment();
    return false;
  }
  Vif& vif = it->second;
  // Role-swapped ring: the backend produces rx "requests" the frontend
  // consumes.
  NetRing ring = NetRing::Attach(vif.rx_ring);
  if (!ring.PushRequest(NetRingRequest{0, bytes})) {
    ++frames_dropped_;  // frontend rx ring overrun
    m_dropped_->Increment();
    return false;
  }
  ++frames_forwarded_;
  m_rx_frames_->Increment();
  (void)hv_->EvtchnSend(self_, vif.port);
  return true;
}

void NetBack::Suspend() {
  obs_->tracer().Op(TraceCategory::kDriver, "netback_suspend", self_.value());
  available_ = false;
  nic_->clear_rx_handler();
  for (auto& [guest, vif] : vifs_) {
    DisconnectVif(vif);
    (void)xs_->Write(self_, BackendDir(self_, guest, kVifType) + "/state",
                     XenbusStateString(XenbusState::kClosing));
  }
}

void NetBack::Resume() {
  obs_->tracer().Op(TraceCategory::kDriver, "netback_resume", self_.value());
  available_ = true;
  // Re-advertise; frontends watching our state renegotiate from scratch.
  // This write is the only "backend is back" signal frontends receive, so
  // if XenStore is itself down it MUST be retried — unbounded, at capped
  // delay (RESILIENCE.md).
  bool transient_failure = false;
  for (auto& [guest, vif] : vifs_) {
    const Status status =
        xs_->Write(self_, BackendDir(self_, guest, kVifType) + "/state",
                   XenbusStateString(XenbusState::kInitWait));
    if (!status.ok() && status.code() == StatusCode::kUnavailable) {
      transient_failure = true;
    }
  }
  if (!transient_failure) {
    resume_backoff_.Reset();
    return;
  }
  if (resume_retry_pending_) {
    return;
  }
  resume_retry_pending_ = true;
  sim_->ScheduleAfter(resume_backoff_.NextDelay(), [this] {
    resume_retry_pending_ = false;
    if (available_) {
      Resume();
    }
  });
}

bool NetBack::IsVifConnected(DomainId guest) const {
  // The hosting domain must actually be running: a crashed or rebooting
  // driver domain serves nothing, whatever the object state says.
  const Domain* self = hv_->domain(self_);
  if (self == nullptr || self->state() != DomainState::kRunning) {
    return false;
  }
  auto it = vifs_.find(guest);
  return it != vifs_.end() && it->second.connected && available_;
}

// --- NetFront ----------------------------------------------------------------

NetFront::NetFront(Hypervisor* hv, XenStoreService* xs, Simulator* sim,
                   DomainId self, DomainId backend)
    : hv_(hv),
      xs_(xs),
      sim_(sim),
      self_(self),
      backend_(backend),
      m_retry_attempts_(
          hv->obs()->metrics().GetCounter("NetFront.retry.attempts")),
      m_retry_recovered_(
          hv->obs()->metrics().GetCounter("NetFront.retry.recovered")),
      m_retry_exhausted_(
          hv->obs()->metrics().GetCounter("NetFront.retry.exhausted")),
      m_backoff_ms_(hv->obs()->metrics().GetHistogram(
          "NetFront.retry.backoff_ms",
          Histogram::ExponentialBounds(1.0, 2.0, 10))) {
  xs_backoff_ = ExponentialBackoff(retry_.backoff);
}

NetFront::~NetFront() {
  // The guest died; late timers and watch deliveries must no-op.
  *alive_ = false;
  for (auto& [id, frame] : tx_outstanding_) {
    if (frame.timeout_event.valid()) {
      (void)sim_->Cancel(frame.timeout_event);
    }
  }
}

void NetFront::set_retry_config(const RetryConfig& config) {
  retry_ = config;
  xs_backoff_ = ExponentialBackoff(retry_.backoff);
}

Status NetFront::Connect() {
  if (handshake_started_) {
    return AlreadyExistsError("frontend handshake already started");
  }
  handshake_started_ = true;
  XOAR_ASSIGN_OR_RETURN(tx_pfn_, hv_->memory().AllocatePages(self_, 1));
  XOAR_ASSIGN_OR_RETURN(rx_pfn_, hv_->memory().AllocatePages(self_, 1));
  tx_page_ = hv_->memory().PageData(tx_pfn_);
  rx_page_ = hv_->memory().PageData(rx_pfn_);
  Republish();
  const std::string back_state =
      BackendDir(backend_, self_, kVifType) + "/state";
  return xs_->Watch(self_, back_state, "netfront",
                    [this, alive = alive_](const XsWatchEvent&) {
                      if (*alive) {
                        OnBackendStateChange();
                      }
                    });
}

void NetFront::Republish() {
  const Status status = DoRepublish();
  if (status.ok()) {
    xs_backoff_.Reset();
    return;
  }
  if (status.code() == StatusCode::kUnavailable) {
    // Transient outage mid-handshake; nothing re-fires this publish, so
    // retry it ourselves.
    ScheduleXsRetry(/*republish=*/true);
    return;
  }
  XLOG(kWarning) << "[netfront] republish failed permanently: " << status;
}

Status NetFront::DoRepublish() {
  if (tx_gref_.valid()) {
    (void)hv_->EndGrantAccess(self_, tx_gref_);
    tx_gref_ = GrantRef::Invalid();
  }
  if (rx_gref_.valid()) {
    (void)hv_->EndGrantAccess(self_, rx_gref_);
    rx_gref_ = GrantRef::Invalid();
  }
  awaiting_connect_ = true;
  XOAR_ASSIGN_OR_RETURN(
      GrantRef tx, hv_->GrantAccess(self_, backend_, tx_pfn_,
                                    /*writable=*/true));
  XOAR_ASSIGN_OR_RETURN(
      GrantRef rx, hv_->GrantAccess(self_, backend_, rx_pfn_,
                                    /*writable=*/true));
  XOAR_ASSIGN_OR_RETURN(EvtchnPort port,
                        hv_->EvtchnAllocUnbound(self_, backend_));
  tx_gref_ = tx;
  rx_gref_ = rx;
  port_ = port;
  NetRing::Create(tx_page_);
  NetRing::Create(rx_page_);
  (void)hv_->EvtchnSetHandler(self_, port_, [this, alive = alive_] {
    if (*alive) {
      OnEvent();
    }
  });

  const std::string front_dir = FrontendDir(self_, kVifType);
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/backend-id",
                                  StrFormat("%u", backend_.value())));
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/tx-ring-ref",
                                  StrFormat("%u", tx_gref_.value())));
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/rx-ring-ref",
                                  StrFormat("%u", rx_gref_.value())));
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/event-channel",
                                  StrFormat("%u", port_.value())));
  for (const char* leaf :
       {"/backend-id", "/tx-ring-ref", "/rx-ring-ref", "/event-channel"}) {
    XsNodePerms perms;
    perms.owner = self_;
    perms.acl[backend_] = XsPerm::kRead;
    XOAR_RETURN_IF_ERROR(xs_->SetPerms(self_, front_dir + leaf, perms));
  }
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, front_dir + "/state",
                                  XenbusStateString(XenbusState::kInitialised)));
  XsNodePerms state_perms;
  state_perms.owner = self_;
  state_perms.acl[backend_] = XsPerm::kRead;
  return xs_->SetPerms(self_, front_dir + "/state", state_perms);
}

void NetFront::ScheduleXsRetry(bool republish) {
  if (republish) {
    xs_retry_republish_ = true;
  }
  if (xs_retry_pending_) {
    return;
  }
  xs_retry_pending_ = true;
  const SimDuration delay = xs_backoff_.NextDelay();
  if (xs_backoff_.Exhausted()) {
    // Giving up on the handshake would wedge the vif forever; stay at the
    // capped delay instead (RESILIENCE.md).
    XLOG(kWarning)
        << "[netfront] XenStore retries exhausted; continuing at max delay";
  }
  sim_->ScheduleAfter(delay, [this, alive = alive_] {
    if (!*alive) {
      return;
    }
    xs_retry_pending_ = false;
    const bool republish_now = xs_retry_republish_;
    xs_retry_republish_ = false;
    if (republish_now) {
      Republish();
    } else {
      OnBackendStateChange();
    }
  });
}

void NetFront::OnBackendStateChange() {
  StatusOr<std::string> state =
      xs_->Read(self_, BackendDir(backend_, self_, kVifType) + "/state");
  if (!state.ok()) {
    // Dropping the watch event would desynchronise the handshake; re-read
    // after backoff.
    if (state.status().code() == StatusCode::kUnavailable) {
      ScheduleXsRetry(/*republish=*/false);
    }
    return;
  }
  xs_backoff_.Reset();
  switch (XenbusStateFromString(*state)) {
    case XenbusState::kConnected: {
      if (connected_) {
        break;
      }
      connected_ = true;
      awaiting_connect_ = false;
      if (!tx_outstanding_.empty()) {
        std::vector<PendingTx> retry;
        retry.reserve(tx_outstanding_.size());
        for (auto& [id, frame] : tx_outstanding_) {
          if (frame.timeout_event.valid()) {
            (void)sim_->Cancel(frame.timeout_event);
            frame.timeout_event = EventId::Invalid();
          }
          retry.push_back(std::move(frame));
        }
        tx_outstanding_.clear();
        retransmits_ += retry.size();
        for (auto it = retry.rbegin(); it != retry.rend(); ++it) {
          tx_queue_.push_front(std::move(*it));
        }
      }
      PumpTxQueue();
      break;
    }
    case XenbusState::kClosing:
      connected_ = false;
      break;
    case XenbusState::kInitWait:
      if (connected_ || (handshake_started_ && !awaiting_connect_)) {
        connected_ = false;
        Republish();
      }
      break;
    default:
      break;
  }
}

void NetFront::SendFrame(std::uint32_t bytes, TxDone done) {
  PendingTx frame;
  frame.request = NetRingRequest{next_id_++, bytes};
  frame.done = std::move(done);
  tx_queue_.push_back(std::move(frame));
  PumpTxQueue();
}

void NetFront::PumpTxQueue() {
  if (!connected_ || tx_page_ == nullptr) {
    return;
  }
  NetRing ring = NetRing::Attach(tx_page_);
  bool pushed = false;
  while (!tx_queue_.empty() && !ring.FullRequests()) {
    PendingTx frame = std::move(tx_queue_.front());
    tx_queue_.pop_front();
    const std::uint64_t id = frame.request.id;
    ring.PushRequest(frame.request);
    // Arm the acknowledgement deadline: a frame the backend silently drops
    // (injected burst, lost notification) is retransmitted by OnTxTimeout.
    frame.timeout_event = sim_->ScheduleAfter(
        retry_.request_timeout, [this, alive = alive_, id] {
          if (*alive) {
            OnTxTimeout(id);
          }
        });
    tx_outstanding_.emplace(id, std::move(frame));
    pushed = true;
  }
  if (pushed) {
    (void)hv_->EvtchnSend(self_, port_);
  }
}

void NetFront::OnEvent() {
  if (tx_page_ == nullptr || rx_page_ == nullptr) {
    return;
  }
  // Drain tx completions.
  NetRing tx_ring = NetRing::Attach(tx_page_);
  while (auto rsp = tx_ring.PopResponse()) {
    auto it = tx_outstanding_.find(rsp->id);
    if (it == tx_outstanding_.end()) {
      continue;
    }
    PendingTx frame = std::move(it->second);
    tx_outstanding_.erase(it);
    if (frame.timeout_event.valid()) {
      (void)sim_->Cancel(frame.timeout_event);
      frame.timeout_event = EventId::Invalid();
    }
    ++tx_completed_;
    if (rsp->status == 0 && frame.attempts > 0) {
      ++retry_recovered_;
      m_retry_recovered_->Increment();
    }
    if (frame.done) {
      frame.done(rsp->status == 0 ? Status::Ok()
                                  : InternalError("tx failed at backend"));
    }
  }
  // Drain rx arrivals (role-swapped ring: we consume requests).
  NetRing rx_ring = NetRing::Attach(rx_page_);
  while (auto frame = rx_ring.PopRequest()) {
    ++rx_frames_;
    if (rx_handler_) {
      rx_handler_(frame->bytes);
    }
  }
  PumpTxQueue();
}

void NetFront::OnTxTimeout(std::uint64_t id) {
  auto it = tx_outstanding_.find(id);
  if (it == tx_outstanding_.end()) {
    return;  // acknowledged just before the deadline fired
  }
  if (!connected_) {
    // Backend down: the reconnect path owns these frames and will
    // retransmit them with fresh deadlines.
    it->second.timeout_event = EventId::Invalid();
    return;
  }
  PendingTx frame = std::move(it->second);
  tx_outstanding_.erase(it);
  frame.timeout_event = EventId::Invalid();
  RetryTx(std::move(frame));
}

void NetFront::RetryTx(PendingTx frame) {
  ++frame.attempts;
  ++retry_attempts_;
  m_retry_attempts_->Increment();
  if (frame.attempts > retry_.backoff.max_attempts) {
    ++retry_exhausted_;
    m_retry_exhausted_->Increment();
    XLOG(kWarning) << "[netfront] frame " << frame.request.id
                   << " exhausted retries";
    if (frame.done) {
      frame.done(UnavailableError(
          StrFormat("tx failed after %d retries", frame.attempts - 1)));
    }
    return;
  }
  const SimDuration delay = retry_.backoff.DelayForAttempt(frame.attempts - 1);
  m_backoff_ms_->Observe(ToMilliseconds(delay));
  sim_->ScheduleAfter(delay, [this, alive = alive_,
                              frame = std::move(frame)]() mutable {
    if (!*alive) {
      return;
    }
    tx_queue_.push_front(std::move(frame));
    PumpTxQueue();
  });
}

}  // namespace xoar
