#include "src/drv/net.h"

#include <vector>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/drv/xenbus.h"

namespace xoar {

// --- NetBack -----------------------------------------------------------------

NetBack::NetBack(Hypervisor* hv, XenStoreService* xs, Simulator* sim,
                 DomainId self, NicDevice* nic, Obs* obs)
    : hv_(hv),
      xs_(xs),
      sim_(sim),
      self_(self),
      nic_(nic),
      obs_(Obs::OrGlobal(obs)),
      m_tx_frames_(obs_->metrics().GetCounter("NetBack.ring.tx_frames")),
      m_rx_frames_(obs_->metrics().GetCounter("NetBack.ring.rx_frames")),
      m_dropped_(obs_->metrics().GetCounter("NetBack.ring.dropped")),
      m_vif_connects_(obs_->metrics().GetCounter("NetBack.vif.connects")) {}

Status NetBack::Initialize() {
  XOAR_RETURN_IF_ERROR(xs_->Mkdir(self_, BackendRoot(self_, kVifType)));
  available_ = true;
  obs_->tracer().Op(TraceCategory::kDriver, "netback_init", self_.value());
  return Status::Ok();
}

Status NetBack::AttachVif(DomainId guest) {
  if (vifs_.count(guest) > 0) {
    return AlreadyExistsError(
        StrFormat("dom%u already has a vif on this backend", guest.value()));
  }
  Vif vif;
  vif.guest = guest;
  vifs_.emplace(guest, vif);

  const std::string back_dir = BackendDir(self_, guest, kVifType);
  XOAR_RETURN_IF_ERROR(xs_->Write(self_, back_dir + "/frontend-id",
                                  StrFormat("%u", guest.value())));
  XOAR_RETURN_IF_ERROR(
      xs_->Write(self_, back_dir + "/state",
                 XenbusStateString(XenbusState::kInitWait)));
  XsNodePerms perms;
  perms.owner = self_;
  perms.acl[guest] = XsPerm::kRead;
  XOAR_RETURN_IF_ERROR(xs_->SetPerms(self_, back_dir + "/state", perms));

  const std::string front_state = FrontendDir(guest, kVifType) + "/state";
  return xs_->Watch(self_, front_state,
                    StrFormat("netback-%u", guest.value()),
                    [this, guest](const XsWatchEvent&) {
                      OnFrontendStateChange(guest);
                    });
}

void NetBack::OnFrontendStateChange(DomainId guest) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end() || !available_) {
    return;
  }
  StatusOr<std::string> state =
      xs_->Read(self_, FrontendDir(guest, kVifType) + "/state");
  if (!state.ok()) {
    return;
  }
  if (XenbusStateFromString(*state) == XenbusState::kInitialised &&
      !it->second.connected) {
    ConnectVif(it->second);
  }
}

void NetBack::ConnectVif(Vif& vif) {
  const std::string front_dir = FrontendDir(vif.guest, kVifType);
  StatusOr<std::string> tx_gref = xs_->Read(self_, front_dir + "/tx-ring-ref");
  StatusOr<std::string> rx_gref = xs_->Read(self_, front_dir + "/rx-ring-ref");
  StatusOr<std::string> port_str =
      xs_->Read(self_, front_dir + "/event-channel");
  if (!tx_gref.ok() || !rx_gref.ok() || !port_str.ok()) {
    return;
  }
  const GrantRef tx(static_cast<std::uint32_t>(std::stoul(*tx_gref)));
  const GrantRef rx(static_cast<std::uint32_t>(std::stoul(*rx_gref)));
  const EvtchnPort front_port(
      static_cast<std::uint32_t>(std::stoul(*port_str)));

  StatusOr<MappedPage> tx_page = hv_->MapGrant(self_, vif.guest, tx);
  StatusOr<MappedPage> rx_page = hv_->MapGrant(self_, vif.guest, rx);
  if (!tx_page.ok() || !rx_page.ok()) {
    XLOG(kWarning) << "[netback] map grants failed for dom"
                   << vif.guest.value();
    return;
  }
  StatusOr<EvtchnPort> port =
      hv_->EvtchnBindInterdomain(self_, vif.guest, front_port);
  if (!port.ok()) {
    XLOG(kWarning) << "[netback] bind evtchn failed: " << port.status();
    return;
  }
  vif.tx_gref = tx;
  vif.rx_gref = rx;
  vif.tx_ring = tx_page->data;
  vif.rx_ring = rx_page->data;
  vif.port = *port;
  vif.connected = true;
  const DomainId guest = vif.guest;
  (void)hv_->EvtchnSetHandler(self_, vif.port,
                              [this, guest] { ServiceTxRing(guest); });
  (void)xs_->Write(self_, BackendDir(self_, guest, kVifType) + "/state",
                   XenbusStateString(XenbusState::kConnected));
  m_vif_connects_->Increment();
  obs_->tracer().Op(TraceCategory::kDriver, "netback_vif_connect",
                    self_.value());
  XLOG(kDebug) << "[netback] vif connected for dom" << guest.value();
  ServiceTxRing(guest);
}

void NetBack::DisconnectVif(Vif& vif) {
  if (!vif.connected) {
    return;
  }
  vif.connected = false;
  (void)hv_->UnmapGrant(self_, vif.guest, vif.tx_gref);
  (void)hv_->UnmapGrant(self_, vif.guest, vif.rx_gref);
  (void)hv_->EvtchnClose(self_, vif.port);
  vif.tx_ring = nullptr;
  vif.rx_ring = nullptr;
}

void NetBack::ServiceTxRing(DomainId guest) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end() || !it->second.connected || !available_) {
    return;
  }
  Vif& vif = it->second;
  NetRing ring = NetRing::Attach(vif.tx_ring);
  while (auto req = ring.PopRequest()) {
    const NetRingRequest request = *req;
    ++frames_forwarded_;
    m_tx_frames_->Increment();
    const SimDuration overhead = static_cast<SimDuration>(
        static_cast<double>(kNetBackPerFrameOverhead) /
        std::max(0.05, rate_multiplier_));
    sim_->ScheduleAfter(overhead, [this, guest, request] {
      auto vif_it = vifs_.find(guest);
      if (vif_it == vifs_.end() || !vif_it->second.connected || !available_) {
        return;  // frame lost mid-reboot; the guest's TCP retransmits
      }
      nic_->Transmit(request.bytes, [this, guest, request] {
        auto v = vifs_.find(guest);
        if (v == vifs_.end() || !v->second.connected || !available_) {
          return;
        }
        NetRing r = NetRing::Attach(v->second.tx_ring);
        if (r.PushResponse(NetRingResponse{request.id, 0})) {
          (void)hv_->EvtchnSend(self_, v->second.port);
        }
      });
    });
  }
}

bool NetBack::InjectRx(DomainId guest, std::uint32_t bytes) {
  auto it = vifs_.find(guest);
  if (it == vifs_.end() || !it->second.connected || !available_ ||
      !nic_->link_up()) {
    ++frames_dropped_;
    m_dropped_->Increment();
    return false;
  }
  Vif& vif = it->second;
  // Role-swapped ring: the backend produces rx "requests" the frontend
  // consumes.
  NetRing ring = NetRing::Attach(vif.rx_ring);
  if (!ring.PushRequest(NetRingRequest{0, bytes})) {
    ++frames_dropped_;  // frontend rx ring overrun
    m_dropped_->Increment();
    return false;
  }
  ++frames_forwarded_;
  m_rx_frames_->Increment();
  (void)hv_->EvtchnSend(self_, vif.port);
  return true;
}

void NetBack::Suspend() {
  obs_->tracer().Op(TraceCategory::kDriver, "netback_suspend", self_.value());
  available_ = false;
  nic_->clear_rx_handler();
  for (auto& [guest, vif] : vifs_) {
    DisconnectVif(vif);
    (void)xs_->Write(self_, BackendDir(self_, guest, kVifType) + "/state",
                     XenbusStateString(XenbusState::kClosing));
  }
}

void NetBack::Resume() {
  obs_->tracer().Op(TraceCategory::kDriver, "netback_resume", self_.value());
  available_ = true;
  for (auto& [guest, vif] : vifs_) {
    (void)xs_->Write(self_, BackendDir(self_, guest, kVifType) + "/state",
                     XenbusStateString(XenbusState::kInitWait));
  }
}

bool NetBack::IsVifConnected(DomainId guest) const {
  // The hosting domain must actually be running: a crashed or rebooting
  // driver domain serves nothing, whatever the object state says.
  const Domain* self = hv_->domain(self_);
  if (self == nullptr || self->state() != DomainState::kRunning) {
    return false;
  }
  auto it = vifs_.find(guest);
  return it != vifs_.end() && it->second.connected && available_;
}

// --- NetFront ----------------------------------------------------------------

NetFront::NetFront(Hypervisor* hv, XenStoreService* xs, Simulator* sim,
                   DomainId self, DomainId backend)
    : hv_(hv), xs_(xs), sim_(sim), self_(self), backend_(backend) {}

Status NetFront::Connect() {
  if (handshake_started_) {
    return AlreadyExistsError("frontend handshake already started");
  }
  handshake_started_ = true;
  XOAR_ASSIGN_OR_RETURN(tx_pfn_, hv_->memory().AllocatePages(self_, 1));
  XOAR_ASSIGN_OR_RETURN(rx_pfn_, hv_->memory().AllocatePages(self_, 1));
  tx_page_ = hv_->memory().PageData(tx_pfn_);
  rx_page_ = hv_->memory().PageData(rx_pfn_);
  Republish();
  const std::string back_state =
      BackendDir(backend_, self_, kVifType) + "/state";
  return xs_->Watch(self_, back_state, "netfront",
                    [this](const XsWatchEvent&) { OnBackendStateChange(); });
}

void NetFront::Republish() {
  if (tx_gref_.valid()) {
    (void)hv_->EndGrantAccess(self_, tx_gref_);
    tx_gref_ = GrantRef::Invalid();
  }
  if (rx_gref_.valid()) {
    (void)hv_->EndGrantAccess(self_, rx_gref_);
    rx_gref_ = GrantRef::Invalid();
  }
  awaiting_connect_ = true;
  StatusOr<GrantRef> tx =
      hv_->GrantAccess(self_, backend_, tx_pfn_, /*writable=*/true);
  StatusOr<GrantRef> rx =
      hv_->GrantAccess(self_, backend_, rx_pfn_, /*writable=*/true);
  StatusOr<EvtchnPort> port = hv_->EvtchnAllocUnbound(self_, backend_);
  if (!tx.ok() || !rx.ok() || !port.ok()) {
    XLOG(kWarning) << "[netfront] republish failed for dom" << self_.value();
    return;
  }
  tx_gref_ = *tx;
  rx_gref_ = *rx;
  port_ = *port;
  NetRing::Create(tx_page_);
  NetRing::Create(rx_page_);
  (void)hv_->EvtchnSetHandler(self_, port_, [this] { OnEvent(); });

  const std::string front_dir = FrontendDir(self_, kVifType);
  (void)xs_->Write(self_, front_dir + "/backend-id",
                   StrFormat("%u", backend_.value()));
  (void)xs_->Write(self_, front_dir + "/tx-ring-ref",
                   StrFormat("%u", tx_gref_.value()));
  (void)xs_->Write(self_, front_dir + "/rx-ring-ref",
                   StrFormat("%u", rx_gref_.value()));
  (void)xs_->Write(self_, front_dir + "/event-channel",
                   StrFormat("%u", port_.value()));
  for (const char* leaf :
       {"/backend-id", "/tx-ring-ref", "/rx-ring-ref", "/event-channel"}) {
    XsNodePerms perms;
    perms.owner = self_;
    perms.acl[backend_] = XsPerm::kRead;
    (void)xs_->SetPerms(self_, front_dir + leaf, perms);
  }
  (void)xs_->Write(self_, front_dir + "/state",
                   XenbusStateString(XenbusState::kInitialised));
  XsNodePerms state_perms;
  state_perms.owner = self_;
  state_perms.acl[backend_] = XsPerm::kRead;
  (void)xs_->SetPerms(self_, front_dir + "/state", state_perms);
}

void NetFront::OnBackendStateChange() {
  StatusOr<std::string> state =
      xs_->Read(self_, BackendDir(backend_, self_, kVifType) + "/state");
  if (!state.ok()) {
    return;
  }
  switch (XenbusStateFromString(*state)) {
    case XenbusState::kConnected: {
      if (connected_) {
        break;
      }
      connected_ = true;
      awaiting_connect_ = false;
      if (!tx_outstanding_.empty()) {
        std::vector<PendingTx> retry;
        retry.reserve(tx_outstanding_.size());
        for (auto& [id, frame] : tx_outstanding_) {
          retry.push_back(std::move(frame));
        }
        tx_outstanding_.clear();
        retransmits_ += retry.size();
        for (auto it = retry.rbegin(); it != retry.rend(); ++it) {
          tx_queue_.push_front(std::move(*it));
        }
      }
      PumpTxQueue();
      break;
    }
    case XenbusState::kClosing:
      connected_ = false;
      break;
    case XenbusState::kInitWait:
      if (connected_ || (handshake_started_ && !awaiting_connect_)) {
        connected_ = false;
        Republish();
      }
      break;
    default:
      break;
  }
}

void NetFront::SendFrame(std::uint32_t bytes, TxDone done) {
  PendingTx frame;
  frame.request = NetRingRequest{next_id_++, bytes};
  frame.done = std::move(done);
  tx_queue_.push_back(std::move(frame));
  PumpTxQueue();
}

void NetFront::PumpTxQueue() {
  if (!connected_ || tx_page_ == nullptr) {
    return;
  }
  NetRing ring = NetRing::Attach(tx_page_);
  bool pushed = false;
  while (!tx_queue_.empty() && !ring.FullRequests()) {
    PendingTx frame = std::move(tx_queue_.front());
    tx_queue_.pop_front();
    const std::uint64_t id = frame.request.id;
    ring.PushRequest(frame.request);
    tx_outstanding_.emplace(id, std::move(frame));
    pushed = true;
  }
  if (pushed) {
    (void)hv_->EvtchnSend(self_, port_);
  }
}

void NetFront::OnEvent() {
  if (tx_page_ == nullptr || rx_page_ == nullptr) {
    return;
  }
  // Drain tx completions.
  NetRing tx_ring = NetRing::Attach(tx_page_);
  while (auto rsp = tx_ring.PopResponse()) {
    auto it = tx_outstanding_.find(rsp->id);
    if (it == tx_outstanding_.end()) {
      continue;
    }
    PendingTx frame = std::move(it->second);
    tx_outstanding_.erase(it);
    ++tx_completed_;
    if (frame.done) {
      frame.done(rsp->status == 0 ? Status::Ok()
                                  : InternalError("tx failed at backend"));
    }
  }
  // Drain rx arrivals (role-swapped ring: we consume requests).
  NetRing rx_ring = NetRing::Attach(rx_page_);
  while (auto frame = rx_ring.PopRequest()) {
    ++rx_frames_;
    if (rx_handler_) {
      rx_handler_(frame->bytes);
    }
  }
  PumpTxQueue();
}

}  // namespace xoar
