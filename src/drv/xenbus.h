// XenBus negotiation protocol shared by the split drivers (§4.5.1).
//
// Frontends and backends never talk to each other directly to set up: the
// initial negotiation goes through XenStore. The frontend allocates a shared
// ring page and an event channel, publishes the grant reference and port
// under its device directory, and advances its state; the backend watches
// for that state change, maps the grant, binds the channel, and advances its
// own state to Connected. Teardown and microreboot re-run the same protocol.
#ifndef XOAR_SRC_DRV_XENBUS_H_
#define XOAR_SRC_DRV_XENBUS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/ids.h"
#include "src/base/strings.h"

namespace xoar {

enum class XenbusState : int {
  kUnknown = 0,
  kInitialising = 1,
  kInitWait = 2,
  kInitialised = 3,
  kConnected = 4,
  kClosing = 5,
  kClosed = 6,
};

inline std::string XenbusStateString(XenbusState s) {
  return StrFormat("%d", static_cast<int>(s));
}

inline XenbusState XenbusStateFromString(std::string_view s) {
  if (s.empty()) {
    return XenbusState::kUnknown;
  }
  const int v = s[0] - '0';
  if (v < 1 || v > 6) {
    return XenbusState::kUnknown;
  }
  return static_cast<XenbusState>(v);
}

// Device types carried over XenBus.
inline constexpr std::string_view kVbdType = "vbd";
inline constexpr std::string_view kVifType = "vif";
inline constexpr std::string_view kConsoleType = "console";

// /local/domain/<guest>/device/<type>/0
inline std::string FrontendDir(DomainId guest, std::string_view type) {
  return StrFormat("/local/domain/%u/device/%s/0", guest.value(),
                   std::string(type).c_str());
}

// /local/domain/<backend>/backend/<type>/<guest>/0
inline std::string BackendDir(DomainId backend, DomainId guest,
                              std::string_view type) {
  return StrFormat("/local/domain/%u/backend/%s/%u/0", backend.value(),
                   std::string(type).c_str(), guest.value());
}

// /local/domain/<backend>/backend/<type>  (the watch root for a backend)
inline std::string BackendRoot(DomainId backend, std::string_view type) {
  return StrFormat("/local/domain/%u/backend/%s", backend.value(),
                   std::string(type).c_str());
}

inline std::string DomainDir(DomainId domain) {
  return StrFormat("/local/domain/%u", domain.value());
}

}  // namespace xoar

#endif  // XOAR_SRC_DRV_XENBUS_H_
