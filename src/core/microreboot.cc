#include "src/core/microreboot.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

RestartEngine::RestartEngine(Hypervisor* hv, Simulator* sim,
                             SnapshotManager* snapshots, DomainId controller,
                             AuditLog* audit, Obs* obs)
    : hv_(hv),
      sim_(sim),
      snapshots_(snapshots),
      controller_(controller),
      audit_(audit),
      obs_(Obs::OrGlobal(obs)) {}

Status RestartEngine::Register(const std::string& name, DomainId domain,
                               ComponentHooks hooks) {
  if (components_.count(name) > 0) {
    return AlreadyExistsError(
        StrFormat("component %s already registered", name.c_str()));
  }
  Entry entry;
  entry.domain = domain;
  entry.hooks = std::move(hooks);
  if (entry.hooks.state != nullptr) {
    XOAR_RETURN_IF_ERROR(snapshots_->TakeSnapshot(domain, entry.hooks.state));
  }
  entry.m_restarts = obs_->metrics().GetCounter(
      MetricName(name, "microreboot", "restarts"));
  entry.m_skipped = obs_->metrics().GetCounter(
      MetricName(name, "microreboot", "skipped"));
  entry.m_box_rejected = obs_->metrics().GetCounter(
      MetricName(name, "microreboot", "box_rejected"));
  // Downtime buckets: 1ms .. ~2s in x2 steps, bracketing the paper's
  // 140/260 ms windows.
  entry.m_downtime_ms = obs_->metrics().GetHistogram(
      MetricName(name, "microreboot", "downtime_ms"),
      Histogram::ExponentialBounds(1.0, 2.0, 12));
  entry.m_up = obs_->metrics().GetGauge(MetricName(name, "microreboot", "up"));
  entry.m_up->Set(1.0);
  components_.emplace(name, std::move(entry));
  return Status::Ok();
}

Status RestartEngine::DoRestart(Entry& entry, const std::string& name,
                                bool fast) {
  if (entry.in_progress) {
    return FailedPreconditionError(
        StrFormat("%s is already mid-restart", name.c_str()));
  }
  const Domain* dom = hv_->domain(entry.domain);
  const bool domain_dead =
      dom != nullptr && dom->state() == DomainState::kDead;
  if (dom == nullptr ||
      (dom->state() != DomainState::kRunning && !domain_dead)) {
    return FailedPreconditionError(
        StrFormat("%s's domain is not running", name.c_str()));
  }

  // Fast path only: validate the recovery box before trusting it. A box
  // that fails its checksums is discarded and this cycle downgrades to the
  // slow (full-renegotiation) path.
  if (fast) {
    RecoveryBox& box = snapshots_->recovery_box(entry.domain);
    Status valid = box.Validate();
    if (!valid.ok()) {
      XLOG(kWarning) << "[restart] " << name
                     << " recovery box rejected, falling back to slow path: "
                     << valid;
      box.Clear();
      fast = false;
      ++entry.boxes_rejected;
      entry.m_box_rejected->Increment();
      if (audit_ != nullptr) {
        AuditEvent event;
        event.time = sim_->Now();
        event.kind = AuditEventKind::kRecoveryBoxRejected;
        event.object = entry.domain;
        event.detail = StrFormat("%s cause=corrupt-box", name.c_str());
        audit_->Record(std::move(event));
      }
      // Journal the downgrade decision (fast -> slow) so replay catches a
      // run whose box validation decided differently, at the decision
      // itself rather than in the longer restart window that follows.
      obs_->tracer().Instant(TraceCategory::kMicroreboot,
                             "box-reject:" + name, entry.domain.value());
    }
  }

  entry.in_progress = true;
  entry.span = obs_->tracer().BeginSpan(
      TraceCategory::kMicroreboot,
      StrFormat("restart:%s (%s)", name.c_str(), fast ? "fast" : "slow"),
      entry.domain.value());

  // 1. Orderly suspend: the component closes its backend state while its
  //    domain can still issue XenStore writes. A dead domain gets no
  //    orderly teardown — the crash already tore its channels down.
  if (entry.hooks.suspend && !domain_dead) {
    entry.hooks.suspend();
  }
  // 2. The hypervisor tears down channels; peers observe the outage. The
  //    up gauge drops with it and only returns to 1 once the resume hook
  //    has run — a failed CompleteReboot leaves it at 0.
  XOAR_RETURN_IF_ERROR(hv_->BeginReboot(controller_, entry.domain));
  entry.m_up->Set(0.0);

  // 3. Rollback to the post-init snapshot. The recovery box survives; the
  //    fast path uses it to skip part of the renegotiation.
  SimDuration downtime = fast ? kFastRestartDowntime : kSlowRestartDowntime;
  if (entry.hooks.state != nullptr) {
    StatusOr<SimDuration> rollback_cost = snapshots_->Rollback(entry.domain);
    if (rollback_cost.ok()) {
      downtime += *rollback_cost;
    }
  }
  entry.last_downtime = downtime;

  // 4. After the device downtime, the domain resumes and re-advertises.
  const DomainId domain = entry.domain;
  sim_->ScheduleAfter(downtime, [this, name, domain] {
    auto it = components_.find(name);
    if (it == components_.end() || it->second.domain != domain) {
      return;
    }
    Entry& e = it->second;
    Status status = hv_->CompleteReboot(controller_, e.domain);
    if (!status.ok()) {
      XLOG(kWarning) << "[restart] complete-reboot failed for " << name << ": "
                     << status;
      e.in_progress = false;
      obs_->tracer().EndSpan(e.span);
      e.span = Tracer::kInvalidSpan;
      return;
    }
    if (e.hooks.resume) {
      e.hooks.resume();
    }
    e.m_up->Set(1.0);
    e.in_progress = false;
    ++e.restarts;
    e.m_restarts->Increment();
    e.m_downtime_ms->Observe(static_cast<double>(e.last_downtime) /
                             static_cast<double>(kMillisecond));
    obs_->tracer().EndSpan(e.span);
    e.span = Tracer::kInvalidSpan;
    if (audit_ != nullptr) {
      AuditEvent event;
      event.time = sim_->Now();
      event.kind = AuditEventKind::kShardRestarted;
      event.object = e.domain;
      event.detail = name;
      audit_->Record(std::move(event));
    }
  });
  return Status::Ok();
}

Status RestartEngine::RestartNow(const std::string& name, bool fast) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return NotFoundError(StrFormat("no component %s", name.c_str()));
  }
  return DoRestart(it->second, name, fast);
}

Status RestartEngine::EnablePeriodicRestarts(const std::string& name,
                                             SimDuration interval, bool fast) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return NotFoundError(StrFormat("no component %s", name.c_str()));
  }
  Entry& entry = it->second;
  entry.fast = fast;
  entry.timer = std::make_unique<PeriodicTimer>(
      sim_, interval, [this, name] {
        auto entry_it = components_.find(name);
        if (entry_it == components_.end()) {
          return;
        }
        Status status = DoRestart(entry_it->second, name, entry_it->second.fast);
        if (!status.ok()) {
          ++entry_it->second.skipped;
          entry_it->second.m_skipped->Increment();
          XLOG(kDebug) << "[restart] skipped cycle for " << name << ": "
                       << status;
        }
      });
  entry.timer->Start();
  return Status::Ok();
}

Status RestartEngine::DisableRestarts(const std::string& name) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return NotFoundError(StrFormat("no component %s", name.c_str()));
  }
  it->second.timer.reset();
  return Status::Ok();
}

bool RestartEngine::IsRestarting(const std::string& name) const {
  auto it = components_.find(name);
  return it != components_.end() && it->second.in_progress;
}

int RestartEngine::RestartCount(const std::string& name) const {
  auto it = components_.find(name);
  return it == components_.end() ? 0 : it->second.restarts;
}

SimDuration RestartEngine::LastDowntime(const std::string& name) const {
  auto it = components_.find(name);
  return it == components_.end() ? 0 : it->second.last_downtime;
}

int RestartEngine::SkippedCycles(const std::string& name) const {
  auto it = components_.find(name);
  return it == components_.end() ? 0 : it->second.skipped;
}

int RestartEngine::BoxesRejected(const std::string& name) const {
  auto it = components_.find(name);
  return it == components_.end() ? 0 : it->second.boxes_rejected;
}

int RestartEngine::TotalBoxesRejected() const {
  int total = 0;
  for (const auto& [name, entry] : components_) {
    total += entry.boxes_rejected;
  }
  return total;
}

StatusOr<DomainId> RestartEngine::DomainOf(const std::string& name) const {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return NotFoundError(StrFormat("no component %s", name.c_str()));
  }
  return it->second.domain;
}

}  // namespace xoar
