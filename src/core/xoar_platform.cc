#include "src/core/xoar_platform.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/ctl/monolithic_platform.h"  // canonical PCI slots

namespace xoar {

XoarPlatform::XoarPlatform(Config config) : config_(config) {
  Hypervisor::Options options;
  options.enforce_shard_sharing_policy = true;
  // §5.8: the "Dom0 failure reboots the host" assumption is removed so the
  // Bootstrapper can complete execution and quit.
  options.control_domain_crash_reboots_host = false;
  options.total_memory_bytes = config_.machine_memory_gb * kGiB;
  hv_ = std::make_unique<Hypervisor>(&sim_, options, &obs_);
  xs_ = std::make_unique<XenStoreService>(hv_.get(), &sim_, &obs_);

  serial_ = std::make_unique<SerialDevice>(&sim_);
  for (int i = 0; i < std::max(1, config_.num_nics); ++i) {
    const PciSlot slot{kNicSlot.pci_domain, kNicSlot.bus,
                       static_cast<std::uint8_t>(kNicSlot.slot + i)};
    nics_.push_back(
        std::make_unique<NicDevice>(&sim_, slot, config_.nic_rate_bps));
    (void)pci_bus_.AddDevice({slot, 0x14e4, 0x1659, PciClass::kNetwork,
                              StrFormat("Tigon3 GbE #%d", i)});
  }
  for (int i = 0; i < std::max(1, config_.num_disk_controllers); ++i) {
    const PciSlot slot{kDiskControllerSlot.pci_domain, kDiskControllerSlot.bus,
                       static_cast<std::uint8_t>(kDiskControllerSlot.slot + i)};
    disks_.push_back(std::make_unique<DiskDevice>(&sim_, slot, config_.disk));
    (void)pci_bus_.AddDevice({slot, 0x8086, 0x3a22, PciClass::kStorage,
                              StrFormat("82801JIR SATA #%d", i)});
  }
  (void)pci_bus_.AddDevice(
      {kSerialSlot, 0x8086, 0x2937, PciClass::kSerial, "UART"});

  // Every privilege-relevant hypervisor action lands in the audit log.
  Simulator* sim = &sim_;
  AuditLog* audit = &audit_;
  hv_->set_audit_hook([sim, audit](const std::string& event) {
    audit->RecordHypervisor(sim->Now(), event);
  });
}

StatusOr<DomainId> XoarPlatform::CreateShardDomainDirect(
    ShardClass cls, const std::string& name_suffix) {
  const ShardDescriptor& descriptor = DescriptorFor(cls);
  DomainConfig config;
  config.name = std::string(descriptor.name) + name_suffix;
  config.memory_mb = descriptor.memory_mb;
  config.vcpus = 1;  // every shard runs a single VCPU (§6.1)
  config.os = descriptor.os;
  config.is_shard = true;
  XOAR_ASSIGN_OR_RETURN(DomainId id, hv_->CreateDomain(bootstrapper_, config));
  XOAR_RETURN_IF_ERROR(hv_->FinishBuild(bootstrapper_, id));
  XOAR_RETURN_IF_ERROR(hv_->UnpauseDomain(bootstrapper_, id));
  XOAR_RETURN_IF_ERROR(scheduler_.AddDomain(id, /*vcpus=*/1));
  return id;
}

Status XoarPlatform::Boot() {
  if (booted_) {
    return FailedPreconditionError("platform already booted");
  }
  const Config& c = config_;

  // --- Compute the §5.2 dependency schedule (absolute completion times) ---
  const SimTime t_hv = c.hypervisor_boot;
  const SimTime t_bootstrapper = t_hv + c.bootstrapper_boot;
  const SimTime t_xenstore = t_bootstrapper + c.xenstore_boot;
  SimTime t_console, t_builder, t_pciback, t_drivers, t_network, t_toolstacks;
  SimTime t_console_ready;
  if (!c.serialize_boot) {
    // Parallel boot: independent shards overlap (the Table 6.2 speedup).
    t_console = t_xenstore + c.console_boot;
    t_builder = t_xenstore + c.builder_boot;
    t_pciback = t_builder + c.pciback_boot + c.hardware_init;
    t_drivers = t_pciback + c.driver_domain_boot;  // NetBack ∥ BlkBack
    t_network = t_drivers + c.network_negotiation;
    t_toolstacks = t_drivers + c.toolstack_boot;
    t_console_ready = t_console + c.console_login;
  } else {
    // Ablation: strict serialization, Dom0-style — the login prompt only
    // appears once every service has come up.
    t_console = t_xenstore + c.console_boot;
    t_builder = t_console + c.builder_boot;
    t_pciback = t_builder + c.pciback_boot + c.hardware_init;
    t_drivers = t_pciback + 2 * c.driver_domain_boot;  // one after the other
    t_network = t_drivers + c.network_negotiation;
    t_toolstacks = t_network + c.toolstack_boot;
    t_console_ready = t_toolstacks + c.console_login;
  }

  // --- Phase 1: hypervisor, then the Bootstrapper (the initial domain) ---
  sim_.RunUntil(t_hv);
  DomainConfig boot_config;
  boot_config.name = "Bootstrapper";
  boot_config.memory_mb = DescriptorFor(ShardClass::kBootstrapper).memory_mb;
  boot_config.vcpus = 1;
  boot_config.os = OsProfile::kNanOs;
  boot_config.is_shard = true;
  XOAR_ASSIGN_OR_RETURN(
      bootstrapper_,
      hv_->CreateInitialDomain(boot_config, /*as_control_domain=*/false));
  // Xen endows the initial domain with the full privileged set; unlike
  // Dom0 it holds it only until boot completes.
  hv_->domain(bootstrapper_)->hypercall_policy().PermitAll();
  sim_.RunUntil(t_bootstrapper);

  // --- Phase 2: XenStore (required by everything else, §5.2) ---
  // Cloud-density: one XenStore-State domain per store partition
  // (SCALING.md). Shard 0 keeps the canonical descriptor name so the
  // single-shard deployment is byte-identical to the paper's.
  const int state_shards = std::max(1, c.xenstore_state_shards);
  xs_->SetShardCount(state_shards);
  for (int i = 0; i < state_shards; ++i) {
    XOAR_ASSIGN_OR_RETURN(
        DomainId state_dom,
        CreateShardDomainDirect(ShardClass::kXenStoreState,
                                i == 0 ? std::string()
                                       : StrFormat("-%d", i)));
    xenstore_state_doms_.push_back(state_dom);
    control_plane_doms_.insert(state_dom);
  }
  xenstore_state_dom_ = xenstore_state_doms_.front();
  XOAR_ASSIGN_OR_RETURN(xenstore_logic_dom_,
                        CreateShardDomainDirect(ShardClass::kXenStoreLogic));
  control_plane_doms_.insert(xenstore_logic_dom_);
  xs_->DeploySplit(xenstore_logic_dom_, xenstore_state_doms_);
  if (c.xenstore_per_request_restarts) {
    xs_->set_restart_policy(XenStoreService::RestartPolicy::kPerRequest);
  }
  sim_.RunUntil(t_xenstore);

  // --- Phase 3a: Console Manager (provides consoles for later shards) ---
  if (c.console_manager_enabled) {
    XOAR_ASSIGN_OR_RETURN(console_dom_,
                          CreateShardDomainDirect(ShardClass::kConsoleManager));
    control_plane_doms_.insert(console_dom_);
    XOAR_RETURN_IF_ERROR(hv_->GrantHwCapability(bootstrapper_, console_dom_,
                                                HwCapability::kSerialConsole));
    console_ = std::make_unique<ConsoleBackend>(hv_.get(), &sim_, console_dom_,
                                                serial_.get());
    XOAR_RETURN_IF_ERROR(console_->Initialize());
  }

  // --- Phase 3b: Builder (must precede PCIBack, §5.2) ---
  XOAR_ASSIGN_OR_RETURN(builder_dom_,
                        CreateShardDomainDirect(ShardClass::kBuilder));
  control_plane_doms_.insert(builder_dom_);
  for (Hypercall hc :
       {Hypercall::kDomctlCreate, Hypercall::kDomctlDestroy,
        Hypercall::kDomctlPause, Hypercall::kDomctlUnpause,
        Hypercall::kForeignMemoryMap, Hypercall::kDomctlSetPrivileges,
        Hypercall::kDomctlDelegate, Hypercall::kSnapshotOp,
        Hypercall::kSetupGuestRings}) {
    XOAR_RETURN_IF_ERROR(hv_->PermitHypercall(bootstrapper_, builder_dom_, hc));
  }
  builder_ = std::make_unique<Builder>(hv_.get(), xs_.get(), builder_dom_);
  builder_->set_audit_log(&audit_);
  xs_->store().AddManagerDomain(builder_dom_);
  XOAR_RETURN_IF_ERROR(xs_->Connect(builder_dom_));
  if (console_ != nullptr) {
    builder_->set_console(console_.get(), /*console_uses_foreign_map=*/false);
  }
  // Self-delegate the boot shards so the Builder may authorize guests to
  // use them (AuthorizeShardUse audits against delegation).
  XOAR_RETURN_IF_ERROR(
      hv_->AllowDelegation(builder_dom_, xenstore_logic_dom_, builder_dom_));
  if (console_ != nullptr) {
    XOAR_RETURN_IF_ERROR(
        hv_->AllowDelegation(builder_dom_, console_dom_, builder_dom_));
  }
  sim_.RunUntil(std::min(t_builder, t_console));
  sim_.RunUntil(t_builder);

  // --- Phase 4: PCIBack — hardware init and PCI enumeration ---
  BuildRequest pciback_request;
  {
    const ShardDescriptor& d = DescriptorFor(ShardClass::kPciBack);
    pciback_request.config.name = std::string(d.name);
    pciback_request.config.memory_mb = d.memory_mb;
    pciback_request.config.vcpus = 1;
    pciback_request.config.os = d.os;
    pciback_request.config.is_shard = true;
    pciback_request.image = "shard-linux";
    pciback_request.connect_console = false;
  }
  XOAR_ASSIGN_OR_RETURN(pciback_dom_,
                        builder_->BuildVm(bootstrapper_, pciback_request));
  control_plane_doms_.insert(pciback_dom_);
  XOAR_RETURN_IF_ERROR(scheduler_.AddDomain(pciback_dom_, /*vcpus=*/1));
  // kDomctlDestroy covers PCIBack's own §5.3 self-destruction.
  for (Hypercall hc : {Hypercall::kDomctlSetPrivileges, Hypercall::kPhysdevOp,
                       Hypercall::kPciConfigOp, Hypercall::kDomctlDestroy}) {
    XOAR_RETURN_IF_ERROR(hv_->PermitHypercall(builder_dom_, pciback_dom_, hc));
  }
  pci_service_ =
      std::make_unique<PciBackService>(hv_.get(), &pci_bus_, pciback_dom_);
  pci_service_->set_audit_log(&audit_);
  XOAR_RETURN_IF_ERROR(pci_service_->InitializeHardware(bootstrapper_));
  sim_.RunUntil(t_pciback);

  // --- Phase 5: udev rules fire, creating one driver domain per device ---
  Status udev_status = Status::Ok();
  pci_service_->set_udev_rule([this, &udev_status](const PciDeviceInfo& dev) {
    const bool is_net = dev.device_class == PciClass::kNetwork;
    const ShardDescriptor& d =
        DescriptorFor(is_net ? ShardClass::kNetBack : ShardClass::kBlkBack);
    BuildRequest request;
    request.config.name =
        StrFormat("%s-%s", std::string(d.name).c_str(),
                  dev.slot.ToString().c_str());
    request.config.memory_mb = d.memory_mb;
    request.config.vcpus = 1;
    request.config.os = d.os;
    request.config.is_shard = true;
    request.image = "shard-linux";
    request.connect_console = false;
    StatusOr<DomainId> dom = builder_->BuildVm(pciback_dom_, request);
    if (!dom.ok()) {
      udev_status = dom.status();
      return;
    }
    (void)scheduler_.AddDomain(*dom, /*vcpus=*/1);
    Status pass = pci_service_->PassThrough(*dom, dev.slot);
    if (!pass.ok()) {
      udev_status = pass;
      return;
    }
    if (is_net) {
      NicDevice* nic = nullptr;
      for (auto& candidate : nics_) {
        if (candidate->slot() == dev.slot) {
          nic = candidate.get();
        }
      }
      netback_doms_.push_back(*dom);
      netbacks_.push_back(std::make_unique<NetBack>(hv_.get(), xs_.get(),
                                                    &sim_, *dom, nic, &obs_));
      netback_index_[*dom] = netbacks_.back().get();
      control_plane_doms_.insert(*dom);
      udev_status = netbacks_.back()->Initialize();
    } else {
      DiskDevice* disk = nullptr;
      for (auto& candidate : disks_) {
        if (candidate->slot() == dev.slot) {
          disk = candidate.get();
        }
      }
      blkback_doms_.push_back(*dom);
      blkbacks_.push_back(std::make_unique<BlkBack>(hv_.get(), xs_.get(),
                                                    &sim_, *dom, disk, &obs_));
      blkback_index_[*dom] = blkbacks_.back().get();
      control_plane_doms_.insert(*dom);
      udev_status = blkbacks_.back()->Initialize();
    }
  });
  pci_service_->TriggerUdevRules();
  XOAR_RETURN_IF_ERROR(udev_status);
  if (netbacks_.empty() || blkbacks_.empty()) {
    return InternalError("udev rules did not produce both driver classes");
  }
  sim_.RunUntil(t_drivers);

  // --- Phase 6: Toolstacks ---
  for (int i = 0; i < c.num_toolstacks; ++i) {
    XOAR_RETURN_IF_ERROR(AddToolstack().status());
  }
  sim_.RunUntil(t_toolstacks);

  // --- Milestones ---
  if (console_ != nullptr) {
    sim_.RunUntil(t_console_ready);
    console_->WritePhysical("xoar login: ");
    console_ready_at_ = t_console_ready;
  }
  sim_.RunUntil(t_network);
  network_ready_at_ = t_network;

  // --- Steady state: restart engine + self-destructing boot shards ---
  restart_engine_ = std::make_unique<RestartEngine>(
      hv_.get(), &sim_, &snapshots_, builder_dom_, &audit_, &obs_);
  // §3.3: the fast restart path persists renegotiable device configuration
  // in the recovery box. The resume hooks re-Put it so a box the fast path
  // rejected (recovery_box_corrupt) is repopulated — with fresh checksums —
  // by the renegotiation the slow path forces.
  for (std::size_t i = 0; i < netbacks_.size(); ++i) {
    NetBack* netback = netbacks_[i].get();
    const DomainId dom = netback_doms_[i];
    const std::string name =
        i == 0 ? "NetBack" : StrFormat("NetBack-%zu", i);
    const std::string nic_config =
        StrFormat("slot=%s rate=%.0f",
                  netback->nic()->slot().ToString().c_str(),
                  netback->nic()->link_rate());
    snapshots_.recovery_box(dom).Put("nic-config", nic_config);
    XOAR_RETURN_IF_ERROR(restart_engine_->Register(
        name, dom,
        {[netback] { netback->Suspend(); },
         [this, netback, dom, nic_config] {
           snapshots_.recovery_box(dom).Put("nic-config", nic_config);
           netback->Resume();
         },
         nullptr}));
  }
  for (std::size_t i = 0; i < blkbacks_.size(); ++i) {
    BlkBack* blkback = blkbacks_[i].get();
    const DomainId dom = blkback_doms_[i];
    const std::string name =
        i == 0 ? "BlkBack" : StrFormat("BlkBack-%zu", i);
    const std::string disk_config =
        StrFormat("slot=%s", i == 0 ? "primary" : "aux");
    snapshots_.recovery_box(dom).Put("disk-config", disk_config);
    XOAR_RETURN_IF_ERROR(restart_engine_->Register(
        name, dom,
        {[blkback] { blkback->Suspend(); },
         [this, blkback, dom, disk_config] {
           snapshots_.recovery_box(dom).Put("disk-config", disk_config);
           blkback->Resume();
         },
         nullptr}));
  }
  // Table 5.1: XenStore-Logic, the Builder, and the Toolstacks are
  // restartable too. XenStore-Logic re-attaches to XenStore-State on
  // resume; the Builder's and a Toolstack's durable state (which guests
  // they parent/created, delegations) lives in the hypervisor and
  // XenStore, so their restart hooks are trivial.
  XOAR_RETURN_IF_ERROR(restart_engine_->Register(
      "XenStore-Logic", xenstore_logic_dom_,
      {[this] { (void)xs_->BeginLogicRestart(); },
       [this] { (void)xs_->CompleteLogicRestart(); }, nullptr}));
  // Each XenStore-State partition microreboots independently; the suspend
  // hook checkpoints the shard (recovery box) and fails only that
  // partition's requests, the resume hook re-attaches the contents.
  for (std::size_t i = 0; i < xenstore_state_doms_.size(); ++i) {
    const int shard = static_cast<int>(i);
    const std::string name =
        i == 0 ? "XenStore-State" : StrFormat("XenStore-State-%zu", i);
    XOAR_RETURN_IF_ERROR(restart_engine_->Register(
        name, xenstore_state_doms_[i],
        {[this, shard] { (void)xs_->BeginStateShardRestart(shard); },
         [this, shard] { (void)xs_->CompleteStateShardRestart(shard); },
         nullptr}));
  }
  XOAR_RETURN_IF_ERROR(restart_engine_->Register(
      "Builder", builder_dom_, {nullptr, nullptr, nullptr}));
  XOAR_RETURN_IF_ERROR(restart_engine_->Register(
      "Toolstack", toolstack_doms_.front(), {nullptr, nullptr, nullptr}));

  // --- Supervision (DESIGN.md §5d): heartbeats + automatic microreboot
  // escalation for every restartable shard. The quarantine hooks move a
  // component into its degraded mode — suspended, so peers see
  // deterministic UNAVAILABLE instead of silence — when its restart budget
  // is exhausted.
  if (config_.supervision_enabled) {
    watchdog_ = std::make_unique<Watchdog>(&sim_, hv_.get(),
                                           restart_engine_.get(), &audit_,
                                           &obs_, config_.watchdog);
    for (std::size_t i = 0; i < netbacks_.size(); ++i) {
      NetBack* netback = netbacks_[i].get();
      const std::string name =
          i == 0 ? "NetBack" : StrFormat("NetBack-%zu", i);
      XOAR_RETURN_IF_ERROR(
          watchdog_->Supervise(name, [netback] { netback->Suspend(); }));
    }
    for (std::size_t i = 0; i < blkbacks_.size(); ++i) {
      BlkBack* blkback = blkbacks_[i].get();
      const std::string name =
          i == 0 ? "BlkBack" : StrFormat("BlkBack-%zu", i);
      XOAR_RETURN_IF_ERROR(
          watchdog_->Supervise(name, [blkback] { blkback->Suspend(); }));
    }
    XOAR_RETURN_IF_ERROR(watchdog_->Supervise(
        "XenStore-Logic", [this] { (void)xs_->BeginLogicRestart(); }));
    for (std::size_t i = 0; i < xenstore_state_doms_.size(); ++i) {
      const int shard = static_cast<int>(i);
      const std::string name =
          i == 0 ? "XenStore-State" : StrFormat("XenStore-State-%zu", i);
      XOAR_RETURN_IF_ERROR(watchdog_->Supervise(
          name, [this, shard] { (void)xs_->BeginStateShardRestart(shard); }));
    }
    XOAR_RETURN_IF_ERROR(watchdog_->Supervise("Builder"));
    XOAR_RETURN_IF_ERROR(watchdog_->Supervise("Toolstack"));
  }

  if (c.destroy_pciback_after_boot) {
    XOAR_RETURN_IF_ERROR(pci_service_->SelfDestruct());
  }
  if (c.destroy_bootstrapper_after_boot) {
    // §5.2/§5.8: the Bootstrapper completes execution and quits.
    XOAR_RETURN_IF_ERROR(hv_->DestroyDomain(bootstrapper_, bootstrapper_));
  }

  // --- Observability: the §5.2 schedule as kBoot spans, one per phase, on
  // the track of the shard that came up (Table 6.2's bars, as a trace) ---
  Tracer& tracer = obs_.tracer();
  tracer.Span(TraceCategory::kBoot, "phase:hypervisor", 0, t_hv);
  tracer.Span(TraceCategory::kBoot, "phase:bootstrapper", t_hv, t_bootstrapper,
              bootstrapper_.value());
  tracer.Span(TraceCategory::kBoot, "phase:xenstore", t_bootstrapper,
              t_xenstore, xenstore_logic_dom_.value());
  if (console_ != nullptr) {
    tracer.Span(TraceCategory::kBoot, "phase:console-manager", t_xenstore,
                t_console, console_dom_.value());
    tracer.Span(TraceCategory::kBoot, "phase:console-login", t_console,
                t_console_ready, console_dom_.value());
  }
  tracer.Span(TraceCategory::kBoot, "phase:builder",
              c.serialize_boot ? t_console : t_xenstore, t_builder,
              builder_dom_.value());
  tracer.Span(TraceCategory::kBoot, "phase:pciback+hw-init", t_builder,
              t_pciback, pciback_dom_.value());
  for (DomainId dom : netback_doms_) {
    tracer.Span(TraceCategory::kBoot, "phase:netback", t_pciback, t_drivers,
                dom.value());
  }
  for (DomainId dom : blkback_doms_) {
    tracer.Span(TraceCategory::kBoot, "phase:blkback", t_pciback, t_drivers,
                dom.value());
  }
  tracer.Span(TraceCategory::kBoot, "phase:network-negotiation", t_drivers,
              t_network, netback_doms_.front().value());
  for (DomainId dom : toolstack_doms_) {
    tracer.Span(TraceCategory::kBoot, "phase:toolstack",
                c.serialize_boot ? t_network : t_drivers, t_toolstacks,
                dom.value());
  }
  obs_.metrics()
      .GetGauge("platform.boot.console_ready_s")
      ->Set(ToSeconds(console_ready_at_));
  obs_.metrics()
      .GetGauge("platform.boot.network_ready_s")
      ->Set(ToSeconds(network_ready_at_));

  boot_complete_at_ = sim_.Now();
  booted_ = true;
  XLOG(kInfo) << "[xoar] boot complete: console at "
              << ToSeconds(console_ready_at_) << "s, ping at "
              << ToSeconds(network_ready_at_) << "s";
  return Status::Ok();
}

StatusOr<int> XoarPlatform::AddToolstack(std::uint64_t memory_quota_mb) {
  BuildRequest request;
  const ShardDescriptor& d = DescriptorFor(ShardClass::kToolstack);
  request.config.name =
      StrFormat("%s-%zu", std::string(d.name).c_str(), toolstacks_.size());
  request.config.memory_mb = d.memory_mb;
  request.config.vcpus = 1;
  request.config.os = d.os;
  request.config.is_shard = true;
  request.image = "shard-linux";
  request.connect_console = false;
  XOAR_ASSIGN_OR_RETURN(DomainId ts_dom,
                        builder_->BuildVm(bootstrapper_.valid()
                                              ? bootstrapper_
                                              : builder_dom_,
                                          request));
  XOAR_RETURN_IF_ERROR(scheduler_.AddDomain(ts_dom, /*vcpus=*/1));
  // §5.6: VM-management (but not creation or memory) privileges.
  for (Hypercall hc : {Hypercall::kDomctlPause, Hypercall::kDomctlUnpause,
                       Hypercall::kDomctlDestroy}) {
    XOAR_RETURN_IF_ERROR(hv_->PermitHypercall(builder_dom_, ts_dom, hc));
  }
  auto toolstack = std::make_unique<Toolstack>(hv_.get(), xs_.get(), &sim_,
                                               ts_dom, builder_.get(), &obs_);
  toolstack->set_authorize_shard_use(true);
  if (memory_quota_mb > 0) {
    toolstack->set_memory_quota_mb(memory_quota_mb);
  }
  // Delegate the platform's driver domains to this toolstack (Fig 3.1).
  for (std::size_t i = 0; i < netbacks_.size(); ++i) {
    XOAR_RETURN_IF_ERROR(
        hv_->AllowDelegation(builder_dom_, netback_doms_[i], ts_dom));
    toolstack->AddNetBack(netbacks_[i].get());
  }
  for (std::size_t i = 0; i < blkbacks_.size(); ++i) {
    XOAR_RETURN_IF_ERROR(
        hv_->AllowDelegation(builder_dom_, blkback_doms_[i], ts_dom));
    toolstack->AddBlkBack(blkbacks_[i].get());
  }
  toolstack_doms_.push_back(ts_dom);
  toolstack_index_[ts_dom] = toolstack.get();
  control_plane_doms_.insert(ts_dom);
  toolstacks_.push_back(std::move(toolstack));
  return static_cast<int>(toolstacks_.size()) - 1;
}

StatusOr<DomainId> XoarPlatform::CreateGuestWithSriovVif(GuestSpec spec) {
  if (!booted_) {
    return FailedPreconditionError("platform not booted");
  }
  if (pci_service_ == nullptr || pci_service_->destroyed()) {
    return FailedPreconditionError(
        "SR-IOV provisioning needs a resident PCIBack (§5.3)");
  }
  spec.with_net = false;  // the VF replaces the paravirtual vif
  XOAR_ASSIGN_OR_RETURN(DomainId guest, CreateGuest(spec));
  XOAR_ASSIGN_OR_RETURN(std::vector<PciSlot> vfs,
                        pci_service_->CreateVirtualFunctions(kNicSlot, 1));
  Status assigned = pci_service_->PassThrough(guest, vfs.front());
  if (!assigned.ok()) {
    (void)DestroyGuest(guest);
    return assigned;
  }
  AuditEvent event;
  event.time = sim_.Now();
  event.kind = AuditEventKind::kShardLinked;
  event.subject = guest;
  event.object = pciback_dom_;
  event.detail = StrFormat("SR-IOV VF %s", vfs.front().ToString().c_str());
  audit_.Record(std::move(event));
  return guest;
}

StatusOr<DomainId> XoarPlatform::CreateGuest(const GuestSpec& spec) {
  if (!booted_) {
    return FailedPreconditionError("platform not booted");
  }
  XOAR_ASSIGN_OR_RETURN(DomainId guest, toolstacks_.at(0)->CreateGuest(spec));
  XOAR_RETURN_IF_ERROR(scheduler_.AddDomain(guest, spec.vcpus));
  guest_toolstack_[guest] = 0;
  Settle();
  const Toolstack::GuestRecord* record = toolstacks_.at(0)->guest(guest);
  RecordGuestAudit(guest, spec, *record);
  return guest;
}

void XoarPlatform::RecordGuestAudit(DomainId guest, const GuestSpec& spec,
                                    const Toolstack::GuestRecord& record) {
  AuditEvent created;
  created.time = sim_.Now();
  created.kind = AuditEventKind::kVmCreated;
  created.subject = guest;
  created.detail = spec.name;
  audit_.Record(std::move(created));
  auto link = [&](DomainId shard, std::string_view what) {
    AuditEvent event;
    event.time = sim_.Now();
    event.kind = AuditEventKind::kShardLinked;
    event.subject = guest;
    event.object = shard;
    event.detail = std::string(what);
    audit_.Record(std::move(event));
  };
  link(xenstore_logic_dom_, "XenStore");
  if (console_ != nullptr) {
    link(console_dom_, "Console");
  }
  if (record.netback != nullptr) {
    link(record.netback->self(), "NetBack");
  }
  if (record.blkback != nullptr) {
    link(record.blkback->self(), "BlkBack");
  }
  if (record.qemu_domain.valid()) {
    link(record.qemu_domain, "QemuVM");
  }
}

Status XoarPlatform::DestroyGuest(DomainId guest) {
  Toolstack* toolstack = OwningToolstack(guest);
  if (toolstack == nullptr) {
    return NotFoundError("guest not found on any toolstack");
  }
  XOAR_RETURN_IF_ERROR(toolstack->DestroyGuest(guest));
  (void)scheduler_.RemoveDomain(guest);
  guest_toolstack_.erase(guest);
  AuditEvent event;
  event.time = sim_.Now();
  event.kind = AuditEventKind::kVmDestroyed;
  event.subject = guest;
  audit_.Record(std::move(event));
  return Status::Ok();
}

Toolstack* XoarPlatform::OwningToolstack(DomainId guest) {
  auto it = guest_toolstack_.find(guest);
  if (it != guest_toolstack_.end()) {
    return toolstacks_.at(it->second).get();
  }
  for (auto& toolstack : toolstacks_) {
    if (toolstack->guest(guest) != nullptr) {
      return toolstack.get();
    }
  }
  return nullptr;
}

NetFront* XoarPlatform::netfront(DomainId guest) {
  Toolstack* toolstack = OwningToolstack(guest);
  if (toolstack == nullptr) {
    return nullptr;
  }
  Toolstack::GuestRecord* record = toolstack->guest(guest);
  return record == nullptr ? nullptr : record->netfront.get();
}

BlkFront* XoarPlatform::blkfront(DomainId guest) {
  Toolstack* toolstack = OwningToolstack(guest);
  if (toolstack == nullptr) {
    return nullptr;
  }
  Toolstack::GuestRecord* record = toolstack->guest(guest);
  return record == nullptr ? nullptr : record->blkfront.get();
}

NetBack* XoarPlatform::netback_of(DomainId guest) {
  Toolstack* toolstack = OwningToolstack(guest);
  if (toolstack == nullptr) {
    return nullptr;
  }
  Toolstack::GuestRecord* record = toolstack->guest(guest);
  return record == nullptr ? nullptr : record->netback;
}

BlkBack* XoarPlatform::blkback_of(DomainId guest) {
  Toolstack* toolstack = OwningToolstack(guest);
  if (toolstack == nullptr) {
    return nullptr;
  }
  Toolstack::GuestRecord* record = toolstack->guest(guest);
  return record == nullptr ? nullptr : record->blkback;
}

namespace {
// §6.1.2: pure network throughput is down 1–2.5% on Xoar — the paravirtual
// path crosses into a dedicated driver domain rather than Dom0's kernel,
// which costs a little per-packet work. Calibrated to the middle of the
// paper's measured range.
constexpr double kXoarNetPathEfficiency = 0.98;
}  // namespace

double XoarPlatform::EffectiveNetRateBps(DomainId guest) {
  NetBack* netback = netback_of(guest);
  if (netback == nullptr || !netback->IsVifConnected(guest)) {
    return 0.0;
  }
  // Isolated driver domains: no co-location interference (Fig 6.2), only
  // the constant vif-hop cost.
  return netback->EffectiveRateBps() * kXoarNetPathEfficiency;
}

double XoarPlatform::EffectiveDiskRateBps(DomainId guest) {
  BlkBack* blkback = blkback_of(guest);
  if (blkback == nullptr || !blkback->IsVbdConnected(guest)) {
    return 0.0;
  }
  return config_.disk.sequential_rate * 8.0;
}

DomainId XoarPlatform::ServiceDomainOf(ServiceKind kind, DomainId guest) {
  switch (kind) {
    case ServiceKind::kDeviceEmulator: {
      Toolstack* toolstack = OwningToolstack(guest);
      if (toolstack == nullptr) {
        return DomainId::Invalid();
      }
      Toolstack::GuestRecord* record = toolstack->guest(guest);
      return record == nullptr ? DomainId::Invalid() : record->qemu_domain;
    }
    case ServiceKind::kNetBack: {
      NetBack* netback = netback_of(guest);
      return netback == nullptr ? DomainId::Invalid() : netback->self();
    }
    case ServiceKind::kBlkBack: {
      BlkBack* blkback = blkback_of(guest);
      return blkback == nullptr ? DomainId::Invalid() : blkback->self();
    }
    case ServiceKind::kToolstack: {
      const Domain* dom = hv_->domain(guest);
      return dom == nullptr ? DomainId::Invalid() : dom->parent_toolstack();
    }
    case ServiceKind::kXenStore:
      return xenstore_logic_dom_;
    case ServiceKind::kConsole:
      return console_dom_;
  }
  return DomainId::Invalid();
}

const GuestSpec* XoarPlatform::guest_spec(DomainId guest) {
  Toolstack* toolstack = OwningToolstack(guest);
  if (toolstack == nullptr) {
    return nullptr;
  }
  Toolstack::GuestRecord* record = toolstack->guest(guest);
  return record == nullptr ? nullptr : &record->spec;
}

DomainId XoarPlatform::shard_domain(ShardClass cls) const {
  switch (cls) {
    case ShardClass::kBootstrapper:
      return bootstrapper_;
    case ShardClass::kXenStoreState:
      return xenstore_state_dom_;
    case ShardClass::kXenStoreLogic:
      return xenstore_logic_dom_;
    case ShardClass::kConsoleManager:
      return console_dom_;
    case ShardClass::kBuilder:
      return builder_dom_;
    case ShardClass::kPciBack:
      return pciback_dom_;
    case ShardClass::kNetBack:
      return netback_doms_.empty() ? DomainId::Invalid()
                                   : netback_doms_.front();
    case ShardClass::kBlkBack:
      return blkback_doms_.empty() ? DomainId::Invalid()
                                   : blkback_doms_.front();
    case ShardClass::kToolstack:
      return toolstack_doms_.empty() ? DomainId::Invalid()
                                     : toolstack_doms_.front();
    case ShardClass::kQemuVm:
    case ShardClass::kCount:
      break;
  }
  return DomainId::Invalid();
}

NetBack* XoarPlatform::netback_for_domain(DomainId dom) const {
  auto it = netback_index_.find(dom);
  return it == netback_index_.end() ? nullptr : it->second;
}

BlkBack* XoarPlatform::blkback_for_domain(DomainId dom) const {
  auto it = blkback_index_.find(dom);
  return it == blkback_index_.end() ? nullptr : it->second;
}

Toolstack* XoarPlatform::toolstack_for_domain(DomainId dom) const {
  auto it = toolstack_index_.find(dom);
  return it == toolstack_index_.end() ? nullptr : it->second;
}

std::uint64_t XoarPlatform::ControlPlaneMemoryMb() const {
  // control_plane_doms_ is maintained as shards come up — one indexed
  // walk, independent of guest count, no vector re-concatenation.
  std::uint64_t total = 0;
  for (DomainId dom_id : control_plane_doms_) {
    const Domain* dom = hv_->domain(dom_id);
    if (dom != nullptr && dom->alive()) {
      total += dom->config().memory_mb;
    }
  }
  return total;
}

}  // namespace xoar
