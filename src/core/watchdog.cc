#include "src/core/watchdog.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace xoar {

Watchdog::Watchdog(Simulator* sim, Hypervisor* hv, RestartEngine* engine,
                   AuditLog* audit, Obs* obs, WatchdogConfig config)
    : sim_(sim),
      hv_(hv),
      engine_(engine),
      audit_(audit),
      obs_(Obs::OrGlobal(obs)),
      config_(config) {}

Status Watchdog::Supervise(const std::string& name,
                           std::function<void()> on_quarantine) {
  if (entries_.count(name) > 0) {
    return AlreadyExistsError(
        StrFormat("%s is already supervised", name.c_str()));
  }
  StatusOr<DomainId> domain = engine_->DomainOf(name);
  XOAR_RETURN_IF_ERROR(domain.status());

  Entry entry;
  entry.domain = *domain;
  entry.on_quarantine = std::move(on_quarantine);
  entry.last_beat = sim_->Now();
  entry.m_beats =
      obs_->metrics().GetCounter(MetricName(name, "watchdog", "beats"));
  entry.m_hangs =
      obs_->metrics().GetCounter(MetricName(name, "watchdog", "hangs"));
  entry.m_hangs_absorbed = obs_->metrics().GetCounter(
      MetricName(name, "watchdog", "hangs_absorbed"));
  entry.m_deaths =
      obs_->metrics().GetCounter(MetricName(name, "watchdog", "deaths"));
  entry.m_restarts =
      obs_->metrics().GetCounter(MetricName(name, "watchdog", "restarts"));
  entry.m_quarantined =
      obs_->metrics().GetGauge(MetricName(name, "watchdog", "quarantined"));
  entry.m_quarantined->Set(0.0);
  // Detection sits just under the timeout (tens of ms); recovery spans the
  // 140/260 ms downtime windows. One bracket covers both: 1 ms .. ~2 s.
  entry.m_detection_ms = obs_->metrics().GetHistogram(
      MetricName(name, "watchdog", "detection_ms"),
      Histogram::ExponentialBounds(1.0, 2.0, 12));
  entry.m_recovery_ms = obs_->metrics().GetHistogram(
      MetricName(name, "watchdog", "recovery_ms"),
      Histogram::ExponentialBounds(1.0, 2.0, 12));
  // The supervised component's service loop, beating while it can serve.
  entry.emitter = std::make_unique<PeriodicTimer>(
      sim_, config_.heartbeat_interval,
      [this, name] {
        auto it = entries_.find(name);
        if (it != entries_.end()) {
          RecordBeat(name, it->second);
        }
      });
  entry.emitter->Start();

  auto [it, inserted] = entries_.emplace(name, std::move(entry));
  ScheduleDeadline(name, it->second,
                   sim_->Now() + config_.heartbeat_timeout);
  return Status::Ok();
}

void Watchdog::RecordBeat(const std::string& name, Entry& entry) {
  if (entry.quarantined) {
    return;
  }
  if (engine_->IsRestarting(name)) {
    if (entry.hang_pending) {
      // A restart someone else initiated (e.g. a fault-injected crash of
      // this shard) resets the stalled service loop before the deadline
      // could fire: the hang is absorbed, not detected.
      entry.hang_pending = false;
      entry.hang_until = 0;
      ++hangs_absorbed_;
      entry.m_hangs_absorbed->Increment();
    }
    // Recovery is already underway; keep the deadline base fresh so the
    // restart's completion instant cannot tie with a deadline check and
    // read the pre-restart last_beat as a second, spurious failure.
    entry.last_beat = sim_->Now();
    return;
  }
  const Domain* dom = hv_->domain(entry.domain);
  if (dom == nullptr || dom->state() != DomainState::kRunning) {
    return;
  }
  const SimTime now = sim_->Now();
  if (now < entry.hang_until) {
    return;  // injected stall: the service loop is wedged
  }
  entry.last_beat = now;
  entry.m_beats->Increment();
  if (entry.span != Tracer::kInvalidSpan) {
    // First beat after a detection: recovery is complete.
    entry.m_recovery_ms->Observe(
        static_cast<double>(now - entry.detected_at) /
        static_cast<double>(kMillisecond));
    obs_->tracer().EndSpan(entry.span);
    entry.span = Tracer::kInvalidSpan;
  }
}

void Watchdog::ScheduleDeadline(const std::string& name, Entry& entry,
                                SimTime at) {
  const std::uint64_t generation = entry.deadline_generation;
  sim_->ScheduleAt(at, [this, name, generation] {
    CheckDeadline(name, generation);
  });
}

void Watchdog::CheckDeadline(const std::string& name,
                             std::uint64_t generation) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  if (entry.quarantined || generation != entry.deadline_generation) {
    return;  // this chain was invalidated; a newer one (if any) owns it
  }
  const SimTime now = sim_->Now();
  const SimTime deadline = entry.last_beat + config_.heartbeat_timeout;
  if (now < deadline) {
    // Beats are fresh; sleep until the current beat would go stale.
    ScheduleDeadline(name, entry, deadline);
    return;
  }
  if (engine_->IsRestarting(name)) {
    // A restart (ours or a fault-injected crash cycle) legitimately
    // silences heartbeats; grace-extend rather than double-trigger.
    ScheduleDeadline(name, entry, now + config_.heartbeat_timeout);
    return;
  }
  HandleFailure(name, entry);
}

void Watchdog::HandleFailure(const std::string& name, Entry& entry) {
  const SimTime now = sim_->Now();
  const Domain* dom = hv_->domain(entry.domain);
  const bool dead = dom == nullptr || dom->state() == DomainState::kDead;
  const bool injected_hang = entry.hang_pending && !dead;
  const char* cause = dead ? "dead-domain" : "missed-heartbeat";
  // For an injected hang the stall began at hang_start; otherwise the
  // earliest the failure can be dated is the last good heartbeat.
  const SimDuration latency =
      now - (injected_hang ? entry.hang_start : entry.last_beat);

  // Restart budget over the sliding window.
  while (!entry.history.empty() &&
         entry.history.front() + config_.budget_window <= now) {
    entry.history.pop_front();
  }
  if (static_cast<int>(entry.history.size()) >=
      config_.max_restarts_in_window) {
    if (dead) {
      ++deaths_detected_;
      entry.m_deaths->Increment();
    } else {
      ++hangs_detected_;
      entry.m_hangs->Increment();
    }
    entry.m_detection_ms->Observe(static_cast<double>(latency) /
                                  static_cast<double>(kMillisecond));
    if (injected_hang) {
      max_hang_detection_latency_ =
          std::max(max_hang_detection_latency_, latency);
    }
    entry.hang_until = 0;
    entry.hang_pending = false;
    Quarantine(name, entry, cause);
    return;
  }

  const bool fast = static_cast<int>(entry.history.size()) <
                    config_.fast_restarts_before_slow;
  Status status = engine_->RestartNow(name, fast);
  if (!status.ok()) {
    // Transient refusal (e.g. the domain is paused); keep watching.
    XLOG(kWarning) << "[watchdog] restart of " << name
                   << " refused, retrying next deadline: " << status;
    ScheduleDeadline(name, entry, now + config_.heartbeat_timeout);
    return;
  }

  if (dead) {
    ++deaths_detected_;
    entry.m_deaths->Increment();
  } else {
    ++hangs_detected_;
    entry.m_hangs->Increment();
  }
  entry.m_detection_ms->Observe(static_cast<double>(latency) /
                                static_cast<double>(kMillisecond));
  if (injected_hang) {
    max_hang_detection_latency_ =
        std::max(max_hang_detection_latency_, latency);
  }
  // The microreboot resets the service loop, so any injected stall dies
  // with the old instance.
  entry.hang_until = 0;
  entry.hang_pending = false;
  if (entry.span == Tracer::kInvalidSpan) {
    entry.span = obs_->tracer().BeginSpan(
        TraceCategory::kWatchdog,
        StrFormat("recover:%s (%s)", name.c_str(), cause),
        entry.domain.value());
    entry.detected_at = now;
  }
  entry.history.push_back(now);
  ++auto_restarts_;
  entry.m_restarts->Increment();
  RecordAudit(AuditEventKind::kWatchdogRestart, entry,
              StrFormat("%s cause=%s grade=%s", name.c_str(), cause,
                        fast ? "fast" : "slow"));
  // The restart grade is a *decision* (chosen from restart history), so it
  // goes into the trace stream the replay journal records: a divergence
  // here pinpoints a changed supervision policy, not just its downstream
  // effects.
  obs_->tracer().Instant(TraceCategory::kWatchdog,
                         StrFormat("escalate:%s grade=%s cause=%s",
                                   name.c_str(), fast ? "fast" : "slow",
                                   cause),
                         entry.domain.value());
  ScheduleDeadline(name, entry, now + config_.heartbeat_timeout);
}

void Watchdog::Quarantine(const std::string& name, Entry& entry,
                          const std::string& cause) {
  entry.quarantined = true;
  ++entry.deadline_generation;  // kill the live deadline chain
  if (entry.emitter != nullptr) {
    entry.emitter->Stop();
  }
  if (entry.span != Tracer::kInvalidSpan) {
    obs_->tracer().EndSpan(entry.span);
    entry.span = Tracer::kInvalidSpan;
  }
  entry.m_quarantined->Set(1.0);
  ++quarantines_;
  obs_->tracer().Instant(TraceCategory::kWatchdog, "quarantine:" + name,
                         entry.domain.value());
  RecordAudit(AuditEventKind::kShardQuarantined, entry,
              StrFormat("%s cause=%s budget=%d", name.c_str(), cause.c_str(),
                        config_.max_restarts_in_window));
  XLOG(kWarning) << "[watchdog] " << name
                 << " exhausted its restart budget; quarantined (" << cause
                 << ")";
  // Degraded mode: the component stops pretending to serve, so peers see
  // a deterministic UNAVAILABLE instead of silence.
  if (entry.on_quarantine) {
    entry.on_quarantine();
  }
}

Status Watchdog::InjectHang(const std::string& name, SimDuration duration) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return NotFoundError(StrFormat("%s is not supervised", name.c_str()));
  }
  Entry& entry = it->second;
  if (entry.quarantined) {
    return FailedPreconditionError(
        StrFormat("%s is quarantined", name.c_str()));
  }
  if (engine_->IsRestarting(name)) {
    return FailedPreconditionError(
        StrFormat("%s is mid-restart", name.c_str()));
  }
  const Domain* dom = hv_->domain(entry.domain);
  if (dom == nullptr || dom->state() != DomainState::kRunning) {
    return FailedPreconditionError(
        StrFormat("%s's domain is not running", name.c_str()));
  }
  const SimTime now = sim_->Now();
  if (entry.hang_pending || now < entry.hang_until) {
    return FailedPreconditionError(
        StrFormat("%s is already hung", name.c_str()));
  }
  entry.hang_start = now;
  entry.hang_until = now + duration;
  entry.hang_pending = true;
  obs_->tracer().Instant(TraceCategory::kWatchdog, "hang:" + name,
                         entry.domain.value());
  return Status::Ok();
}

Status Watchdog::Unquarantine(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return NotFoundError(StrFormat("%s is not supervised", name.c_str()));
  }
  Entry& entry = it->second;
  if (!entry.quarantined) {
    return FailedPreconditionError(
        StrFormat("%s is not quarantined", name.c_str()));
  }
  // One slow, from-scratch restart brings the component back; only then is
  // quarantine actually lifted.
  XOAR_RETURN_IF_ERROR(engine_->RestartNow(name, /*fast=*/false));
  entry.quarantined = false;
  ++entry.deadline_generation;
  entry.history.clear();
  entry.hang_until = 0;
  entry.hang_pending = false;
  entry.m_quarantined->Set(0.0);
  RecordAudit(AuditEventKind::kWatchdogRestart, entry,
              StrFormat("%s cause=unquarantine grade=slow", name.c_str()));
  entry.last_beat = sim_->Now();
  entry.emitter->Start();
  ScheduleDeadline(name, entry, sim_->Now() + config_.heartbeat_timeout);
  return Status::Ok();
}

bool Watchdog::IsSupervised(const std::string& name) const {
  return entries_.count(name) > 0;
}

bool Watchdog::IsQuarantined(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.quarantined;
}

void Watchdog::RecordAudit(AuditEventKind kind, const Entry& entry,
                           const std::string& detail) {
  if (audit_ == nullptr) {
    return;
  }
  AuditEvent event;
  event.time = sim_->Now();
  event.kind = kind;
  event.object = entry.domain;
  event.detail = detail;
  audit_->Record(std::move(event));
}

}  // namespace xoar
