// Shard classes: the decomposition of the control VM (Table 5.1, Table 6.1).
//
// Each descriptor records the shard's OS profile, its Table 6.1 memory
// footprint, whether it holds heightened privilege, its lifetime class, and
// the code-size contribution used for the §6.2 TCB accounting.
//
// Thread-safety: everything in this header is immutable static data plus
// pure functions; concurrent reads are safe. (The simulation itself is
// single-threaded — see DESIGN.md §2.)
#ifndef XOAR_SRC_CORE_SHARD_H_
#define XOAR_SRC_CORE_SHARD_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/hv/domain.h"

namespace xoar {

// The nine single-purpose control-plane VM classes of Table 5.1 (plus the
// per-guest QemuVM). Used as the canonical index into ShardInventory().
enum class ShardClass : std::uint8_t {
  kBootstrapper = 0,
  kXenStoreState,
  kXenStoreLogic,
  kConsoleManager,
  kBuilder,
  kPciBack,
  kNetBack,
  kBlkBack,
  kToolstack,
  kQemuVm,
  kCount,
};

// Table 5.1 "Lifetime": when a shard may be torn down.
enum class ShardLifetime : std::uint8_t {
  kBootUp,    // destroyed once the system reaches steady state
  kForever,   // lives as long as the host
  kGuestVm,   // lives as long as its guest
};

// One row of the Table 5.1 / Table 6.1 inventory: the static properties of
// a shard class, independent of any running instance.
struct ShardDescriptor {
  ShardClass shard_class;
  std::string_view name;
  bool privileged;           // Table 5.1 "Privileged"
  ShardLifetime lifetime;    // Table 5.1 "Lifetime"
  bool restartable;          // Table 5.1 "(R)"
  OsProfile os;              // Table 5.1 "OS"
  std::uint64_t memory_mb;   // Table 6.1
  std::string_view parent;   // Table 5.1 "Parent"
  std::string_view functionality;
};

// The Table 5.1 / Table 6.1 inventory. Memory figures are the paper's.
inline const std::vector<ShardDescriptor>& ShardInventory() {
  static const std::vector<ShardDescriptor> kInventory = {
      {ShardClass::kBootstrapper, "Bootstrapper", true, ShardLifetime::kBootUp,
       false, OsProfile::kNanOs, 32, "Xen", "Instantiate boot shards"},
      {ShardClass::kXenStoreState, "XenStore-State", false,
       ShardLifetime::kForever, false, OsProfile::kMiniOs, 32, "Bootstrapper",
       "In-memory contents of XenStore"},
      {ShardClass::kXenStoreLogic, "XenStore-Logic", false,
       ShardLifetime::kForever, true, OsProfile::kMiniOs, 32, "Bootstrapper",
       "Processes requests for inter-VM comms and config state"},
      {ShardClass::kConsoleManager, "Console Manager", false,
       ShardLifetime::kForever, false, OsProfile::kLinux, 128, "Bootstrapper",
       "Expose physical console as virtual consoles to VMs"},
      {ShardClass::kBuilder, "Builder", true, ShardLifetime::kForever, true,
       OsProfile::kNanOs, 64, "Bootstrapper", "Instantiate non-boot VMs"},
      {ShardClass::kPciBack, "PCIBack", true, ShardLifetime::kBootUp, false,
       OsProfile::kLinux, 256, "Bootstrapper",
       "Initialize hardware and PCI bus, pass through PCI devices"},
      {ShardClass::kNetBack, "NetBack", false, ShardLifetime::kForever, true,
       OsProfile::kLinux, 128, "PCIBack",
       "Expose physical network device as virtual devices to VMs"},
      {ShardClass::kBlkBack, "BlkBack", false, ShardLifetime::kForever, true,
       OsProfile::kLinux, 128, "PCIBack",
       "Expose physical block device as virtual devices to VMs"},
      {ShardClass::kToolstack, "Toolstack", false, ShardLifetime::kForever,
       true, OsProfile::kLinux, 128, "Bootstrapper",
       "Admin toolstack to manage VMs"},
      {ShardClass::kQemuVm, "QemuVM", false, ShardLifetime::kGuestVm, false,
       OsProfile::kMiniOs, 32, "Toolstack",
       "Device emulation for a single guest VM"},
  };
  return kInventory;
}

// Looks up the descriptor for a class; `cls` must be < ShardClass::kCount.
inline const ShardDescriptor& DescriptorFor(ShardClass cls) {
  return ShardInventory()[static_cast<std::size_t>(cls)];
}

// §6.2 code-size model (lines of code; compiled figures in parentheses in
// the paper). These drive the TCB comparison in bench/tcb_size.
struct CodeSize {
  std::uint64_t source_loc;
  std::uint64_t compiled_loc;
};

// Code-size contribution of one shard's OS profile (§6.2).
inline CodeSize CodeSizeOf(OsProfile os) {
  switch (os) {
    case OsProfile::kNanOs:
      // nanOS: 13,000 source / 8,000 compiled — small enough for static
      // analysis (§5.7).
      return {13'000, 8'000};
    case OsProfile::kMiniOs:
      return {120'000, 40'000};
    case OsProfile::kLinux:
    case OsProfile::kGuestLinux:
    case OsProfile::kHvmGuest:
      // Linux: 7.6 M source / 400 k compiled.
      return {7'600'000, 400'000};
  }
  return {0, 0};
}

// The hypervisor's own contribution to every configuration's TCB (§6.2).
inline CodeSize HypervisorCodeSize() {
  // Xen: 280 k source / 70 k compiled.
  return {280'000, 70'000};
}

}  // namespace xoar

#endif  // XOAR_SRC_CORE_SHARD_H_
