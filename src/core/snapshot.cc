#include "src/core/snapshot.h"

#include "src/base/strings.h"

namespace xoar {

Status SnapshotManager::TakeSnapshot(DomainId domain,
                                     Snapshottable* component) {
  if (component == nullptr) {
    return InvalidArgumentError("null component");
  }
  if (snapshots_.count(domain) > 0) {
    // §3.3: the snapshot is taken exactly once, at the ready-to-serve
    // point; re-snapshotting a served component would capture tainted
    // state.
    return AlreadyExistsError(
        StrFormat("dom%u already has a snapshot", domain.value()));
  }
  snapshots_.emplace(domain, Snapshot{component, component->SaveState()});
  return Status::Ok();
}

StatusOr<SimDuration> SnapshotManager::Rollback(DomainId domain) {
  auto it = snapshots_.find(domain);
  if (it == snapshots_.end()) {
    return FailedPreconditionError(
        StrFormat("dom%u has no snapshot to roll back to", domain.value()));
  }
  it->second.component->RestoreState(it->second.image);
  ++rollbacks_;
  const SimDuration cost =
      cost_model_.fixed +
      static_cast<SimDuration>(cost_model_.ns_per_byte *
                               static_cast<double>(it->second.image.size()));
  return cost;
}

StatusOr<std::uint64_t> SnapshotManager::SnapshotBytes(DomainId domain) const {
  auto it = snapshots_.find(domain);
  if (it == snapshots_.end()) {
    return NotFoundError(StrFormat("dom%u has no snapshot", domain.value()));
  }
  return static_cast<std::uint64_t>(it->second.image.size());
}

}  // namespace xoar
