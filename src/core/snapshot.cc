#include "src/core/snapshot.h"

#include "src/base/hash_chain.h"
#include "src/base/strings.h"

namespace xoar {

std::uint64_t RecoveryBox::EntryChecksum(const std::string& key,
                                         const std::string& value) {
  // Chain key into value so a value swapped between two keys also fails
  // validation, not just a mutated value.
  return HashBytes(value, HashBytes(key));
}

void RecoveryBox::Put(const std::string& key, std::string value) {
  Entry& entry = entries_[key];
  entry.value = std::move(value);
  entry.checksum = EntryChecksum(key, entry.value);
}

StatusOr<std::string> RecoveryBox::Get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError("no such recovery-box entry: " + key);
  }
  if (EntryChecksum(key, it->second.value) != it->second.checksum) {
    return InternalError("recovery-box entry failed checksum: " + key);
  }
  return it->second.value;
}

Status RecoveryBox::Validate() const {
  for (const auto& [key, entry] : entries_) {
    if (EntryChecksum(key, entry.value) != entry.checksum) {
      return InternalError("recovery-box entry failed checksum: " + key);
    }
  }
  return Status::Ok();
}

Status RecoveryBox::CorruptForTest(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError("no such recovery-box entry: " + key);
  }
  if (it->second.value.empty()) {
    return FailedPreconditionError("cannot corrupt empty value: " + key);
  }
  it->second.value[0] ^= 0x01;
  return Status::Ok();
}

Status SnapshotManager::TakeSnapshot(DomainId domain,
                                     Snapshottable* component) {
  if (component == nullptr) {
    return InvalidArgumentError("null component");
  }
  if (snapshots_.count(domain) > 0) {
    // §3.3: the snapshot is taken exactly once, at the ready-to-serve
    // point; re-snapshotting a served component would capture tainted
    // state.
    return AlreadyExistsError(
        StrFormat("dom%u already has a snapshot", domain.value()));
  }
  snapshots_.emplace(domain, Snapshot{component, component->SaveState()});
  return Status::Ok();
}

StatusOr<SimDuration> SnapshotManager::Rollback(DomainId domain) {
  auto it = snapshots_.find(domain);
  if (it == snapshots_.end()) {
    return FailedPreconditionError(
        StrFormat("dom%u has no snapshot to roll back to", domain.value()));
  }
  it->second.component->RestoreState(it->second.image);
  ++rollbacks_;
  const SimDuration cost =
      cost_model_.fixed +
      static_cast<SimDuration>(cost_model_.ns_per_byte *
                               static_cast<double>(it->second.image.size()));
  return cost;
}

StatusOr<std::uint64_t> SnapshotManager::SnapshotBytes(DomainId domain) const {
  auto it = snapshots_.find(domain);
  if (it == snapshots_.end()) {
    return NotFoundError(StrFormat("dom%u has no snapshot", domain.value()));
  }
  return static_cast<std::uint64_t>(it->second.image.size());
}

}  // namespace xoar
