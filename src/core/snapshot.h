// Snapshot/rollback with recovery boxes (§3.3, Fig 3.2).
//
// A restartable shard snapshots itself once, after boot and initialization
// but before serving requests over any external interface. A rollback
// (triggered by the restart policy) restores that image; the paper uses
// hypervisor copy-on-write tracking, which we model as an explicit state
// copy with a size-proportional cost. State that must survive — open
// connection descriptors, system-wide configuration — goes into the
// component's *recovery box* [Baker & Sullivan], a memory region excluded
// from rollback; components re-validate and re-adopt it right after a
// rollback completes.
#ifndef XOAR_SRC_CORE_SNAPSHOT_H_
#define XOAR_SRC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"

namespace xoar {

// A component whose mutable state can be captured and restored.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual std::string SaveState() const = 0;
  virtual void RestoreState(const std::string& state) = 0;
};

// Rollback-surviving key-value region. The box survives rollbacks, which
// makes it the one input a freshly rolled-back component adopts without
// having produced it — so it is treated as untrusted: every entry carries
// a checksum written at Put() time, and consumers (the RestartEngine's
// fast path) call Validate() before resuming from it. A corrupt box is
// discarded, never resumed from.
class RecoveryBox {
 public:
  void Put(const std::string& key, std::string value);

  // Fails INTERNAL if the entry's checksum no longer matches its value.
  StatusOr<std::string> Get(const std::string& key) const;

  bool Contains(const std::string& key) const {
    return entries_.count(key) > 0;
  }
  std::vector<std::string> Keys() const {
    std::vector<std::string> keys;
    keys.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      keys.push_back(key);
    }
    return keys;
  }
  void Erase(const std::string& key) { entries_.erase(key); }
  void Clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }
  std::uint64_t bytes() const {
    std::uint64_t total = 0;
    for (const auto& [key, entry] : entries_) {
      total += key.size() + entry.value.size();
    }
    return total;
  }

  // Integrity check over every entry; fails INTERNAL naming the first
  // corrupt key. OK for an empty box (nothing to distrust).
  Status Validate() const;

  // Flips one bit of the named entry's stored value without refreshing its
  // checksum — the in-memory corruption the `recovery_box_corrupt` fault
  // models. Self-inverse: a second call restores the original value.
  Status CorruptForTest(const std::string& key);

 private:
  struct Entry {
    std::string value;
    std::uint64_t checksum = 0;
  };

  static std::uint64_t EntryChecksum(const std::string& key,
                                     const std::string& value);

  std::map<std::string, Entry> entries_;
};

class SnapshotManager {
 public:
  // Cost model for a rollback: fixed overhead plus a per-byte copy charge
  // (the CoW page restore). Exposed so the microreboot ablation bench can
  // sweep state sizes.
  struct CostModel {
    SimDuration fixed = 2 * kMillisecond;
    double ns_per_byte = 0.25;  // ~4 GB/s page-copy bandwidth
  };

  // vm_snapshot(): captures the component's post-init image.
  Status TakeSnapshot(DomainId domain, Snapshottable* component);

  // Restores the snapshot image; the recovery box is left untouched.
  // Returns the modeled rollback duration.
  StatusOr<SimDuration> Rollback(DomainId domain);

  bool HasSnapshot(DomainId domain) const {
    return snapshots_.count(domain) > 0;
  }
  StatusOr<std::uint64_t> SnapshotBytes(DomainId domain) const;

  RecoveryBox& recovery_box(DomainId domain) { return boxes_[domain]; }

  void Forget(DomainId domain) {
    snapshots_.erase(domain);
    boxes_.erase(domain);
  }

  std::uint64_t rollbacks() const { return rollbacks_; }
  CostModel& cost_model() { return cost_model_; }

 private:
  struct Snapshot {
    Snapshottable* component;
    std::string image;
  };

  std::map<DomainId, Snapshot> snapshots_;
  std::map<DomainId, RecoveryBox> boxes_;
  CostModel cost_model_;
  std::uint64_t rollbacks_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_CORE_SNAPSHOT_H_
