// Snapshot/rollback with recovery boxes (§3.3, Fig 3.2).
//
// A restartable shard snapshots itself once, after boot and initialization
// but before serving requests over any external interface. A rollback
// (triggered by the restart policy) restores that image; the paper uses
// hypervisor copy-on-write tracking, which we model as an explicit state
// copy with a size-proportional cost. State that must survive — open
// connection descriptors, system-wide configuration — goes into the
// component's *recovery box* [Baker & Sullivan], a memory region excluded
// from rollback; components re-validate and re-adopt it right after a
// rollback completes.
#ifndef XOAR_SRC_CORE_SNAPSHOT_H_
#define XOAR_SRC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"

namespace xoar {

// A component whose mutable state can be captured and restored.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual std::string SaveState() const = 0;
  virtual void RestoreState(const std::string& state) = 0;
};

// Rollback-surviving key-value region.
class RecoveryBox {
 public:
  void Put(const std::string& key, std::string value) {
    entries_[key] = std::move(value);
  }
  StatusOr<std::string> Get(const std::string& key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return NotFoundError("no such recovery-box entry: " + key);
    }
    return it->second;
  }
  bool Contains(const std::string& key) const {
    return entries_.count(key) > 0;
  }
  void Erase(const std::string& key) { entries_.erase(key); }
  void Clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }
  std::uint64_t bytes() const {
    std::uint64_t total = 0;
    for (const auto& [key, value] : entries_) {
      total += key.size() + value.size();
    }
    return total;
  }

 private:
  std::map<std::string, std::string> entries_;
};

class SnapshotManager {
 public:
  // Cost model for a rollback: fixed overhead plus a per-byte copy charge
  // (the CoW page restore). Exposed so the microreboot ablation bench can
  // sweep state sizes.
  struct CostModel {
    SimDuration fixed = 2 * kMillisecond;
    double ns_per_byte = 0.25;  // ~4 GB/s page-copy bandwidth
  };

  // vm_snapshot(): captures the component's post-init image.
  Status TakeSnapshot(DomainId domain, Snapshottable* component);

  // Restores the snapshot image; the recovery box is left untouched.
  // Returns the modeled rollback duration.
  StatusOr<SimDuration> Rollback(DomainId domain);

  bool HasSnapshot(DomainId domain) const {
    return snapshots_.count(domain) > 0;
  }
  StatusOr<std::uint64_t> SnapshotBytes(DomainId domain) const;

  RecoveryBox& recovery_box(DomainId domain) { return boxes_[domain]; }

  void Forget(DomainId domain) {
    snapshots_.erase(domain);
    boxes_.erase(domain);
  }

  std::uint64_t rollbacks() const { return rollbacks_; }
  CostModel& cost_model() { return cost_model_; }

 private:
  struct Snapshot {
    Snapshottable* component;
    std::string image;
  };

  std::map<DomainId, Snapshot> snapshots_;
  std::map<DomainId, RecoveryBox> boxes_;
  CostModel cost_model_;
  std::uint64_t rollbacks_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_CORE_SNAPSHOT_H_
