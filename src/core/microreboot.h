// The microreboot engine (§3.3, §5.4, Fig 6.3).
//
// Restartable shards register suspend/resume hooks. A restart cycle:
//   1. suspend hook — the driver closes its XenBus state, unmaps grants;
//   2. hypervisor BeginReboot — channels break, peers see the outage;
//   3. snapshot rollback — state resets to the post-init image (recovery
//      box survives);
//   4. after the device downtime elapses, CompleteReboot + resume hook —
//      the backend re-advertises and frontends renegotiate via XenStore.
//
// Two recovery grades reproduce Fig 6.3's curves: the slow path leaves the
// device hardware state untouched and renegotiates everything (~260 ms
// measured downtime in the paper); the fast path persists renegotiable
// configuration in the recovery box (~140 ms).
#ifndef XOAR_SRC_CORE_MICROREBOOT_H_
#define XOAR_SRC_CORE_MICROREBOOT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/base/audit_log.h"
#include "src/core/snapshot.h"
#include "src/hv/hypervisor.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"

namespace xoar {

// Device downtimes measured in the paper (§6.1.2).
constexpr SimDuration kSlowRestartDowntime = FromMilliseconds(260);
constexpr SimDuration kFastRestartDowntime = FromMilliseconds(140);

// Drives microreboot cycles for registered components. One engine per
// platform; components register once at their ready-to-serve point and are
// restarted either on demand (RestartNow — this is also how fault campaigns
// model a shard crash) or on a timer (EnablePeriodicRestarts).
//
// All state an Entry caches across restarts — metric pointers, restart
// counts, the open trace span — belongs to the *engine*, not to the
// component instance being rebooted: a restart must never reset a
// component's metric history, and the `<name>.microreboot.up` gauge flips
// 1 -> 0 -> 1 around each cycle precisely because the registry entries
// outlive the reboot (see RESILIENCE.md "Observing recovery").
class RestartEngine {
 public:
  // Callbacks a restartable component hands to Register. The engine calls
  // `suspend` synchronously at the start of a cycle, while the component's
  // domain can still issue XenStore writes (orderly teardown: close XenBus
  // state, unmap grants, drop in-flight work). `resume` runs after the
  // device downtime has elapsed and the domain is running again; it must
  // re-advertise the component so peers renegotiate. `state`, when set,
  // is snapshotted at Register time and rolled back during every cycle —
  // the §3.3 "rollback to post-init image" step; leave it null for
  // components whose state is fully rebuilt by `resume`.
  struct ComponentHooks {
    std::function<void()> suspend;
    std::function<void()> resume;
    Snapshottable* state = nullptr;  // optional snapshot/rollback target
  };

  // `controller` is the privileged domain issuing the kSnapshotOp
  // hypercalls (the Builder in Xoar). `obs` receives per-component
  // `<name>.microreboot.*` metrics and kMicroreboot trace spans covering
  // each suspend->resume window; nullptr falls back to Obs::Global().
  RestartEngine(Hypervisor* hv, Simulator* sim, SnapshotManager* snapshots,
                DomainId controller, AuditLog* audit = nullptr,
                Obs* obs = nullptr);

  // Registers a restartable component. Takes the §3.3 snapshot immediately
  // if `hooks.state` is provided — callers register at the ready-to-serve
  // point. Also registers the component's `<name>.microreboot.*` metrics
  // and sets `<name>.microreboot.up` to 1. Fails with ALREADY_EXISTS on a
  // duplicate name.
  Status Register(const std::string& name, DomainId domain,
                  ComponentHooks hooks);

  // One microreboot cycle now. `fast` selects the recovery-box-assisted
  // path (~140 ms downtime vs ~260 ms). Returns FAILED_PRECONDITION if the
  // component is already mid-restart or its domain is neither running nor
  // dead — a fault campaign counts that as a skipped crash, not an error.
  // A *dead* domain (crashed, not yet rebooted) is accepted: recovering
  // crashed shards is the watchdog's whole job; the suspend hook is skipped
  // because a dead domain cannot do orderly teardown. Returns synchronously
  // once the outage has begun; recovery completes at Now() + downtime on
  // the simulator.
  //
  // The fast path treats the recovery box as untrusted input: it validates
  // every entry checksum first, and on corruption discards the box, audits
  // the rejection, and downgrades this cycle to the slow (full
  // renegotiation) path — poisoned state is never resumed from.
  Status RestartNow(const std::string& name, bool fast);

  // Periodic restarts every `interval` ("restarted on a timer", Fig 5.1).
  // A cycle that can't start (e.g. the previous one is still in progress)
  // is skipped, not queued.
  Status EnablePeriodicRestarts(const std::string& name, SimDuration interval,
                                bool fast);
  Status DisableRestarts(const std::string& name);

  // True between the start of a cycle and its resume hook completing.
  bool IsRestarting(const std::string& name) const;
  // Completed cycles (unknown names report 0 / zero downtime).
  int RestartCount(const std::string& name) const;
  SimDuration LastDowntime(const std::string& name) const;
  // Periodic cycles that could not start because another was in progress
  // (also exported as `<name>.microreboot.skipped`).
  int SkippedCycles(const std::string& name) const;
  // Fast-path cycles whose recovery box failed validation and were
  // downgraded to the slow path.
  int BoxesRejected(const std::string& name) const;
  int TotalBoxesRejected() const;
  // Domain a registered component runs in (NOT_FOUND for unknown names).
  StatusOr<DomainId> DomainOf(const std::string& name) const;
  bool IsRegistered(const std::string& name) const {
    return components_.count(name) > 0;
  }

 private:
  struct Entry {
    DomainId domain;
    ComponentHooks hooks;
    std::unique_ptr<PeriodicTimer> timer;
    bool fast = false;
    bool in_progress = false;
    int restarts = 0;
    int skipped = 0;
    int boxes_rejected = 0;
    SimDuration last_downtime = 0;
    Counter* m_restarts = nullptr;       // <name>.microreboot.restarts
    Counter* m_skipped = nullptr;        // <name>.microreboot.skipped
    Counter* m_box_rejected = nullptr;   // <name>.microreboot.box_rejected
    Histogram* m_downtime_ms = nullptr;  // <name>.microreboot.downtime_ms
    // <name>.microreboot.up: 1 while serving, 0 during the outage window.
    // Owned by the engine's Entry so a dying instance can't drop it.
    Gauge* m_up = nullptr;
    Tracer::SpanId span = Tracer::kInvalidSpan;  // open restart window
  };

  Status DoRestart(Entry& entry, const std::string& name, bool fast);

  Hypervisor* hv_;
  Simulator* sim_;
  SnapshotManager* snapshots_;
  DomainId controller_;
  AuditLog* audit_;
  Obs* obs_;
  std::map<std::string, Entry> components_;
};

}  // namespace xoar

#endif  // XOAR_SRC_CORE_MICROREBOOT_H_
