// The microreboot engine (§3.3, §5.4, Fig 6.3).
//
// Restartable shards register suspend/resume hooks. A restart cycle:
//   1. suspend hook — the driver closes its XenBus state, unmaps grants;
//   2. hypervisor BeginReboot — channels break, peers see the outage;
//   3. snapshot rollback — state resets to the post-init image (recovery
//      box survives);
//   4. after the device downtime elapses, CompleteReboot + resume hook —
//      the backend re-advertises and frontends renegotiate via XenStore.
//
// Two recovery grades reproduce Fig 6.3's curves: the slow path leaves the
// device hardware state untouched and renegotiates everything (~260 ms
// measured downtime in the paper); the fast path persists renegotiable
// configuration in the recovery box (~140 ms).
#ifndef XOAR_SRC_CORE_MICROREBOOT_H_
#define XOAR_SRC_CORE_MICROREBOOT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/core/audit_log.h"
#include "src/core/snapshot.h"
#include "src/hv/hypervisor.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"

namespace xoar {

// Device downtimes measured in the paper (§6.1.2).
constexpr SimDuration kSlowRestartDowntime = FromMilliseconds(260);
constexpr SimDuration kFastRestartDowntime = FromMilliseconds(140);

class RestartEngine {
 public:
  struct ComponentHooks {
    std::function<void()> suspend;
    std::function<void()> resume;
    Snapshottable* state = nullptr;  // optional snapshot/rollback target
  };

  // `controller` is the privileged domain issuing the kSnapshotOp
  // hypercalls (the Builder in Xoar). `obs` receives per-component
  // `<name>.microreboot.*` metrics and kMicroreboot trace spans covering
  // each suspend->resume window; nullptr falls back to Obs::Global().
  RestartEngine(Hypervisor* hv, Simulator* sim, SnapshotManager* snapshots,
                DomainId controller, AuditLog* audit = nullptr,
                Obs* obs = nullptr);

  // Registers a restartable component. Takes the §3.3 snapshot immediately
  // if `hooks.state` is provided — callers register at the ready-to-serve
  // point.
  Status Register(const std::string& name, DomainId domain,
                  ComponentHooks hooks);

  // One microreboot cycle now. `fast` selects the recovery-box-assisted
  // path.
  Status RestartNow(const std::string& name, bool fast);

  // Periodic restarts every `interval` ("restarted on a timer", Fig 5.1).
  Status EnablePeriodicRestarts(const std::string& name, SimDuration interval,
                                bool fast);
  Status DisableRestarts(const std::string& name);

  bool IsRestarting(const std::string& name) const;
  int RestartCount(const std::string& name) const;
  SimDuration LastDowntime(const std::string& name) const;

 private:
  struct Entry {
    DomainId domain;
    ComponentHooks hooks;
    std::unique_ptr<PeriodicTimer> timer;
    bool fast = false;
    bool in_progress = false;
    int restarts = 0;
    SimDuration last_downtime = 0;
    Counter* m_restarts = nullptr;       // <name>.microreboot.restarts
    Histogram* m_downtime_ms = nullptr;  // <name>.microreboot.downtime_ms
    Tracer::SpanId span = Tracer::kInvalidSpan;  // open restart window
  };

  Status DoRestart(Entry& entry, const std::string& name, bool fast);

  Hypervisor* hv_;
  Simulator* sim_;
  SnapshotManager* snapshots_;
  DomainId controller_;
  AuditLog* audit_;
  Obs* obs_;
  std::map<std::string, Entry> components_;
};

}  // namespace xoar

#endif  // XOAR_SRC_CORE_MICROREBOOT_H_
