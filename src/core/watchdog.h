// Shard supervision: heartbeat watchdog with automatic microreboot
// escalation (§3.3 closed-loop; Quest-V-style online fault recovery).
//
// The paper's availability story assumes failed shards are *detected* and
// microrebooted; PR 3 built the restart machinery but left detection to
// the caller. This watchdog closes the loop. Every supervised component's
// service loop emits a heartbeat on the simulator clock while it is
// actually able to serve (its domain running, no restart in progress, no
// injected stall). The watchdog checks a per-component deadline and
// classifies a miss:
//
//   - domain dead            -> crash    ("dead-domain")
//   - domain running, stale  -> hang     ("missed-heartbeat")
//
// and drives `RestartEngine::RestartNow` automatically, escalating per
// component:
//
//   1. fast restarts while recent-failure history is short;
//   2. slow (full-renegotiation) restarts after repeated failures;
//   3. quarantine once the restart budget for the sliding window is
//      exhausted — the component enters a degraded mode (its
//      `on_quarantine` hook suspends it so peers fail `UNAVAILABLE`)
//      instead of restart-storming, until an operator Unquarantines it.
//
// Every decision is audit-logged with its cause and surfaced as
// `<name>.watchdog.*` metrics plus kWatchdog trace spans covering
// detection -> recovery. Determinism: heartbeats, deadlines, and
// escalation all run on the simulator clock with no randomness, so a
// seeded fault campaign replays byte for byte (DESIGN.md §5d).
#ifndef XOAR_SRC_CORE_WATCHDOG_H_
#define XOAR_SRC_CORE_WATCHDOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/ids.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/base/audit_log.h"
#include "src/core/microreboot.h"
#include "src/hv/hypervisor.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"

namespace xoar {

struct WatchdogConfig {
  // Heartbeat cadence of a healthy service loop.
  SimDuration heartbeat_interval = 10 * kMillisecond;
  // A component whose last heartbeat is older than this is failed. Must
  // exceed heartbeat_interval or a healthy component looks hung.
  SimDuration heartbeat_timeout = 50 * kMillisecond;
  // Escalation: detections while the sliding-window history holds fewer
  // than this many entries use the fast (recovery-box) path; after that,
  // the slow full-renegotiation path.
  int fast_restarts_before_slow = 2;
  // Quarantine once a detection would push the sliding-window history past
  // this budget — bounded restarts, not a restart storm.
  int max_restarts_in_window = 5;
  SimDuration budget_window = 10 * kSecond;
};

// One watchdog per platform; components already registered with the
// RestartEngine are placed under supervision by Supervise().
class Watchdog {
 public:
  Watchdog(Simulator* sim, Hypervisor* hv, RestartEngine* engine,
           AuditLog* audit = nullptr, Obs* obs = nullptr,
           WatchdogConfig config = {});

  // Starts supervising a component registered with the RestartEngine
  // (NOT_FOUND otherwise). `on_quarantine`, if set, moves the component
  // into its degraded mode when the restart budget is exhausted — e.g. a
  // backend Suspend() so peers see `UNAVAILABLE` rather than silence.
  Status Supervise(const std::string& name,
                   std::function<void()> on_quarantine = nullptr);

  // Fault hook for FaultType::kShardHang: the component's service loop
  // stalls (heartbeats stop) for `duration` without its domain dying.
  // FAILED_PRECONDITION while the component is restarting, quarantined, or
  // its domain is not running — the fault layer counts that as skipped.
  Status InjectHang(const std::string& name, SimDuration duration);

  // Operator action: leave quarantine via one slow restart, with the
  // failure history cleared and supervision re-armed.
  Status Unquarantine(const std::string& name);

  bool IsSupervised(const std::string& name) const;
  bool IsQuarantined(const std::string& name) const;

  // --- Aggregates across all supervised components ---
  std::uint64_t hangs_detected() const { return hangs_detected_; }
  // Injected hangs that never needed detection because an independent
  // restart (e.g. a fault-injected crash of the same shard) reset the
  // stalled service loop first. Every injected hang ends up either
  // detected or absorbed.
  std::uint64_t hangs_absorbed() const { return hangs_absorbed_; }
  std::uint64_t deaths_detected() const { return deaths_detected_; }
  std::uint64_t auto_restarts() const { return auto_restarts_; }
  std::uint64_t quarantines() const { return quarantines_; }
  // Worst observed injected-hang detection latency (stall start to
  // watchdog reaction). The invariant a campaign checks: never exceeds
  // heartbeat_timeout.
  SimDuration max_hang_detection_latency() const {
    return max_hang_detection_latency_;
  }

  const WatchdogConfig& config() const { return config_; }

 private:
  struct Entry {
    DomainId domain;
    std::function<void()> on_quarantine;
    std::unique_ptr<PeriodicTimer> emitter;  // the shard's heartbeat loop
    SimTime last_beat = 0;
    // Injected stall: beats are suppressed until hang_until.
    SimTime hang_until = 0;
    SimTime hang_start = 0;
    bool hang_pending = false;
    bool quarantined = false;
    // Invalidates in-flight deadline events across quarantine transitions
    // so stale chains die instead of double-firing.
    std::uint64_t deadline_generation = 0;
    // Watchdog-initiated restart times inside the sliding budget window.
    std::deque<SimTime> history;
    // Open detection->recovery span (closed by the next recorded beat).
    Tracer::SpanId span = Tracer::kInvalidSpan;
    SimTime detected_at = 0;
    Counter* m_beats = nullptr;         // <name>.watchdog.beats
    Counter* m_hangs = nullptr;         // <name>.watchdog.hangs
    Counter* m_hangs_absorbed = nullptr;  // <name>.watchdog.hangs_absorbed
    Counter* m_deaths = nullptr;        // <name>.watchdog.deaths
    Counter* m_restarts = nullptr;      // <name>.watchdog.restarts
    Gauge* m_quarantined = nullptr;     // <name>.watchdog.quarantined
    Histogram* m_detection_ms = nullptr;  // <name>.watchdog.detection_ms
    Histogram* m_recovery_ms = nullptr;   // <name>.watchdog.recovery_ms
  };

  void RecordBeat(const std::string& name, Entry& entry);
  void ScheduleDeadline(const std::string& name, Entry& entry, SimTime at);
  void CheckDeadline(const std::string& name, std::uint64_t generation);
  void HandleFailure(const std::string& name, Entry& entry);
  void Quarantine(const std::string& name, Entry& entry,
                  const std::string& cause);
  void RecordAudit(AuditEventKind kind, const Entry& entry,
                   const std::string& detail);

  Simulator* sim_;
  Hypervisor* hv_;
  RestartEngine* engine_;
  AuditLog* audit_;
  Obs* obs_;
  WatchdogConfig config_;
  std::map<std::string, Entry> entries_;

  std::uint64_t hangs_detected_ = 0;
  std::uint64_t hangs_absorbed_ = 0;
  std::uint64_t deaths_detected_ = 0;
  std::uint64_t auto_restarts_ = 0;
  std::uint64_t quarantines_ = 0;
  SimDuration max_hang_detection_latency_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_CORE_WATCHDOG_H_
