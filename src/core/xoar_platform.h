// XoarPlatform: the disaggregated platform (Chapter 5, Fig 5.1).
//
// The control VM is split into the Table 5.1 shards. Boot follows §5.2:
// Xen creates the Bootstrapper, which starts XenStore first, then the
// Console Manager, then the Builder; the Builder instantiates PCIBack,
// which initializes the hardware and fires udev rules creating one
// NetBack/BlkBack per controller; finally a configurable number of
// Toolstacks come up. Independent shards boot in parallel, which is where
// the Table 6.2 boot-time win comes from. The Bootstrapper self-destructs
// when boot completes; PCIBack may optionally be destroyed too (§5.3).
//
// Thread-safety: not thread-safe. A platform and its Simulator form one
// single-threaded discrete-event world; all calls must come from the
// thread driving sim().Run*() (see DESIGN.md §2 and §5b).
#ifndef XOAR_SRC_CORE_XOAR_PLATFORM_H_
#define XOAR_SRC_CORE_XOAR_PLATFORM_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/audit_log.h"
#include "src/core/microreboot.h"
#include "src/core/shard.h"
#include "src/core/snapshot.h"
#include "src/core/watchdog.h"
#include "src/ctl/builder.h"
#include "src/ctl/pciback.h"
#include "src/ctl/platform.h"
#include "src/ctl/toolstack.h"
#include "src/dev/disk.h"
#include "src/dev/nic.h"
#include "src/dev/pci.h"
#include "src/dev/serial.h"
#include "src/drv/console.h"

namespace xoar {

class XoarPlatform : public Platform {
 public:
  // Deployment knobs. The defaults reproduce the paper's evaluated
  // configuration: one NIC, one disk controller, one toolstack, console
  // enabled, parallel boot, Table 6.2 phase durations.
  struct Config {
    std::uint64_t machine_memory_gb = 4;
    double nic_rate_bps = 1e9;
    DiskGeometry disk;
    int num_toolstacks = 1;
    // §6.1.1: "systems with multiple network or disk controllers can have
    // several instances of the NetBack and BlkBack shards" — one driver
    // domain is created per controller by the udev rules.
    int num_nics = 1;
    int num_disk_controllers = 1;

    // §6.1.1 deployment options: commercial hosts often drop the console;
    // PCIBack can self-destruct once steady state is reached (§5.3).
    bool console_manager_enabled = true;
    bool destroy_pciback_after_boot = false;
    bool destroy_bootstrapper_after_boot = true;

    // Fig 5.1: XenStore-Logic is restarted on each request.
    bool xenstore_per_request_restarts = true;

    // Cloud-density scale-out (SCALING.md): partition XenStore-State into
    // this many path-prefix shards, each hosted in its own shard domain
    // and independently microrebootable. A State-shard restart only
    // stalls the tenants whose /local/domain/<id> directories hash to it.
    // 1 = the paper's evaluated single-State configuration.
    int xenstore_state_shards = 1;

    // Self-healing supervision (DESIGN.md §5d): every restartable shard
    // emits heartbeats and a watchdog drives automatic microreboots with
    // escalation and quarantine. Disable for experiments that want the
    // PR 3 behaviour of purely on-demand restarts.
    bool supervision_enabled = true;
    WatchdogConfig watchdog;

    // Ablation: boot shards strictly sequentially instead of in parallel
    // (bench/ablation_boot_parallelism).
    bool serialize_boot = false;

    // Boot phase durations, calibrated so the parallel-boot totals land on
    // Table 6.2 (25.9 s to console, 36.6 s to ping).
    SimDuration hypervisor_boot = FromSeconds(4.0);
    SimDuration bootstrapper_boot = FromSeconds(1.5);
    SimDuration xenstore_boot = FromSeconds(2.4);
    SimDuration console_boot = FromSeconds(14.5);  // Linux, no PCI enum (§5.5)
    SimDuration console_login = FromSeconds(3.5);
    SimDuration builder_boot = FromSeconds(1.6);   // nanOS
    SimDuration pciback_boot = FromSeconds(8.0);
    SimDuration hardware_init = FromSeconds(13.5);
    SimDuration driver_domain_boot = FromSeconds(4.5);
    SimDuration network_negotiation = FromSeconds(1.1);
    SimDuration toolstack_boot = FromSeconds(2.5);
  };

  XoarPlatform() : XoarPlatform(Config()) {}
  explicit XoarPlatform(Config config);

  std::string_view name() const override { return "Xoar"; }

  // Runs the §5.2 dependency-parallel shard boot to completion on the
  // owned simulator. Must be called exactly once, before any guest is
  // created. Emits TraceCategory::kBoot spans per phase and records
  // platform.boot.*_s gauges (see OBSERVABILITY.md).
  Status Boot() override;

  // Builds a guest through the least-loaded toolstack and the Builder,
  // wiring split-driver frontends to this platform's NetBack/BlkBack
  // shards subject to the §5.6 sharing policy and §3.2.1 constraint
  // groups. Fails (rather than shares) on a constraint-tag conflict.
  StatusOr<DomainId> CreateGuest(const GuestSpec& spec) override;
  Status DestroyGuest(DomainId guest) override;

  // Per-guest device endpoints; null if the guest has no such device.
  NetFront* netfront(DomainId guest) override;
  BlkFront* blkfront(DomainId guest) override;
  NetBack* netback_of(DomainId guest) override;
  BlkBack* blkback_of(DomainId guest) override;

  // Steady-state throughput the guest currently sees, after driver-domain
  // sharing and any in-flight microreboot outage.
  double EffectiveNetRateBps(DomainId guest) override;
  double EffectiveDiskRateBps(DomainId guest) override;

  DomainId ServiceDomainOf(ServiceKind kind, DomainId guest) override;
  const GuestSpec* guest_spec(DomainId guest) override;

  // --- Shard access ---
  // Accessors return references into platform-owned shards; they stay
  // valid across microreboots (the RestartEngine restores state in place)
  // but not across platform destruction.

  // Domain id of a singleton shard, or an invalid id if that shard is not
  // resident (e.g. the Bootstrapper after self-destruction). For
  // XenStore-State this is shard 0; xenstore_state_domains() lists all.
  DomainId shard_domain(ShardClass cls) const;
  const std::vector<DomainId>& xenstore_state_domains() const {
    return xenstore_state_doms_;
  }
  Builder& builder() { return *builder_; }
  Toolstack& toolstack(int index = 0) { return *toolstacks_.at(index); }
  int toolstack_count() const { return static_cast<int>(toolstacks_.size()); }
  ConsoleBackend* console() { return console_.get(); }
  PciBackService& pci_service() { return *pci_service_; }
  NetBack& netback(int index = 0) { return *netbacks_.at(index); }
  BlkBack& blkback(int index = 0) { return *blkbacks_.at(index); }
  // DomainId-keyed shard lookups (no O(n) scan of the shard vectors).
  NetBack* netback_for_domain(DomainId dom) const;
  BlkBack* blkback_for_domain(DomainId dom) const;
  Toolstack* toolstack_for_domain(DomainId dom) const;
  int netback_count() const { return static_cast<int>(netbacks_.size()); }
  int blkback_count() const { return static_cast<int>(blkbacks_.size()); }
  RestartEngine& restarts() { return *restart_engine_; }
  // Null when supervision is disabled (or before Boot completes).
  Watchdog* watchdog() { return watchdog_.get(); }
  SnapshotManager& snapshots() { return snapshots_; }
  AuditLog& audit() { return audit_; }
  PciBus& pci_bus() { return pci_bus_; }
  NicDevice& nic(int index = 0) { return *nics_.at(index); }
  DiskDevice& disk(int index = 0) { return *disks_.at(index); }
  SerialDevice& serial() { return *serial_; }

  // Creates an additional toolstack shard at runtime with delegated access
  // to the platform's driver domains (private-cloud scenario, §3.4.2).
  StatusOr<int> AddToolstack(std::uint64_t memory_quota_mb = 0);

  // §3.4.2 / §5.3: creates a guest whose network device is an SR-IOV
  // virtual function passed through directly — no NetBack sharing at all.
  // Requires PCIBack to still be resident (and pins it: VF provisioning
  // needs a persistent shard).
  StatusOr<DomainId> CreateGuestWithSriovVif(GuestSpec spec);

  // Convenience wrappers for the restart experiments.
  Status EnableNetBackRestarts(SimDuration interval, bool fast) {
    return restart_engine_->EnablePeriodicRestarts("NetBack", interval, fast);
  }
  Status DisableNetBackRestarts() {
    return restart_engine_->DisableRestarts("NetBack");
  }

  // §6.1.1: total memory held by live control-plane shards, in MiB.
  std::uint64_t ControlPlaneMemoryMb() const;
  SimTime boot_complete_at() const { return boot_complete_at_; }

 private:
  StatusOr<DomainId> CreateShardDomainDirect(ShardClass cls,
                                             const std::string& name_suffix =
                                                 std::string());
  void RecordGuestAudit(DomainId guest, const GuestSpec& spec,
                        const Toolstack::GuestRecord& record);
  Toolstack* OwningToolstack(DomainId guest);

  Config config_;
  bool booted_ = false;
  PciBus pci_bus_;
  std::vector<std::unique_ptr<NicDevice>> nics_;
  std::vector<std::unique_ptr<DiskDevice>> disks_;
  std::unique_ptr<SerialDevice> serial_;

  DomainId bootstrapper_;
  DomainId xenstore_state_dom_;  // shard 0 of xenstore_state_doms_
  std::vector<DomainId> xenstore_state_doms_;
  DomainId xenstore_logic_dom_;
  DomainId console_dom_;
  DomainId builder_dom_;
  DomainId pciback_dom_;
  std::vector<DomainId> netback_doms_;
  std::vector<DomainId> blkback_doms_;
  std::vector<DomainId> toolstack_doms_;
  // DomainId-keyed indexes over the shard vectors above, plus the set of
  // all control-plane domains (drives ControlPlaneMemoryMb without
  // re-concatenating vectors).
  std::map<DomainId, NetBack*> netback_index_;
  std::map<DomainId, BlkBack*> blkback_index_;
  std::map<DomainId, Toolstack*> toolstack_index_;
  std::set<DomainId> control_plane_doms_;

  std::unique_ptr<ConsoleBackend> console_;
  std::unique_ptr<Builder> builder_;
  std::unique_ptr<PciBackService> pci_service_;
  std::vector<std::unique_ptr<NetBack>> netbacks_;
  std::vector<std::unique_ptr<BlkBack>> blkbacks_;
  std::vector<std::unique_ptr<Toolstack>> toolstacks_;
  std::map<DomainId, int> guest_toolstack_;  // guest -> toolstack index

  SnapshotManager snapshots_;
  AuditLog audit_;
  std::unique_ptr<RestartEngine> restart_engine_;
  std::unique_ptr<Watchdog> watchdog_;
  SimTime boot_complete_at_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_CORE_XOAR_PLATFORM_H_
