#include "src/analysis/report.h"

#include <map>

#include "src/base/strings.h"

namespace xoar {
namespace analysis {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

LintSummary Summarize(const std::vector<Finding>& findings,
                      std::size_t files_scanned) {
  LintSummary summary;
  summary.files_scanned = files_scanned;
  summary.total = findings.size();
  for (const Finding& finding : findings) {
    if (finding.suppressed) {
      ++summary.suppressed;
    } else if (finding.warning) {
      ++summary.warnings;
    } else {
      ++summary.unsuppressed;
    }
  }
  return summary;
}

std::string FormatText(const std::vector<Finding>& findings,
                       const LintSummary& summary) {
  std::string out;
  for (const Finding& finding : findings) {
    out += StrFormat("%s:%d: [%s%s] %s", finding.file.c_str(), finding.line,
                     finding.rule.c_str(),
                     finding.warning && !finding.suppressed ? " warning" : "",
                     finding.message.c_str());
    if (finding.suppressed) {
      out += StrFormat("  [suppressed: %s]",
                       finding.justification.c_str());
    }
    out += "\n";
  }
  out += StrFormat(
      "xoar_lint: %zu file(s) scanned, %zu finding(s) (%zu suppressed, "
      "%zu warning(s), %zu blocking)\n",
      summary.files_scanned, summary.total, summary.suppressed,
      summary.warnings, summary.unsuppressed);
  return out;
}

std::string FormatJson(const std::vector<Finding>& findings,
                       const LintSummary& summary) {
  // Per-rule counts cover every suppressible rule plus "suppression", even
  // when zero, so the schema checker can rely on their presence.
  std::map<std::string, std::size_t> per_rule;
  for (const std::string& rule : SuppressibleRules()) {
    per_rule[rule] = 0;
  }
  per_rule["suppression"] = 0;
  for (const Finding& finding : findings) {
    if (!finding.suppressed && !finding.warning) {
      ++per_rule[finding.rule];
    }
  }

  std::string out;
  out += "{\n";
  out += "  \"context\": {\n";
  out += "    \"executable\": \"xoar_lint\",\n";
  out += "    \"sim_time_ns\": 0\n";
  out += "  },\n";
  out += "  \"benchmarks\": [\n";
  auto metric = [&out](const std::string& name, const char* run_type,
                       std::size_t value, bool last) {
    out += StrFormat(
        "    {\"name\": \"%s\", \"run_type\": \"%s\", \"value\": %zu}%s\n",
        name.c_str(), run_type, value, last ? "" : ",");
  };
  metric("lint.files_scanned", "gauge", summary.files_scanned, false);
  for (const auto& [rule, count] : per_rule) {
    metric("lint.findings." + rule, "counter", count, false);
  }
  metric("lint.findings.total", "counter", summary.unsuppressed, false);
  metric("lint.suppressed.total", "counter", summary.suppressed, false);
  metric("lint.warnings.total", "counter", summary.warnings, true);
  out += "  ],\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += StrFormat(
        "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, "
        "\"message\": \"%s\", \"suppressed\": %s, \"warning\": %s, "
        "\"justification\": \"%s\"}%s\n",
        JsonEscape(f.rule).c_str(), JsonEscape(f.file).c_str(), f.line,
        JsonEscape(f.message).c_str(), f.suppressed ? "true" : "false",
        f.warning ? "true" : "false",
        JsonEscape(f.justification).c_str(),
        i + 1 == findings.size() ? "" : ",");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace analysis
}  // namespace xoar
