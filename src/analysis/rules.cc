#include "src/analysis/rules.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "src/base/strings.h"

namespace xoar {
namespace analysis {
namespace {

using Tokens = std::vector<Token>;

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}
bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Index of the punct matching the opener at `open` ("(" / "{"), or npos.
std::size_t MatchingClose(const Tokens& tokens, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], open_text)) {
      ++depth;
    } else if (IsPunct(tokens[i], close_text)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return static_cast<std::size_t>(-1);
}

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

void CheckLayeringTableIsAcyclic(const LintConfig& config,
                                 std::vector<Finding>* findings) {
  std::map<std::string, std::vector<std::string>> deps;
  for (const auto& [module, allowed] : config.layering) {
    deps[module] = allowed;
  }
  // Colors: 0 unvisited, 1 on stack, 2 done.
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  // Iterative DFS with an explicit cycle report.
  std::function<bool(const std::string&)> visit =
      [&](const std::string& module) -> bool {
    color[module] = 1;
    stack.push_back(module);
    for (const std::string& dep : deps[module]) {
      if (dep == module) {
        continue;  // self edges are implicit and harmless
      }
      if (color[dep] == 1) {
        std::string cycle = dep;
        for (auto it = std::find(stack.begin(), stack.end(), dep);
             it != stack.end(); ++it) {
          if (*it != dep) {
            cycle += " -> " + *it;
          }
        }
        cycle += " -> " + dep;
        findings->push_back({"layering", "<tree>", 0,
                             StrFormat("declared layering table contains a "
                                       "cycle: %s",
                                       cycle.c_str()),
                             false,
                             ""});
        stack.pop_back();
        color[module] = 2;
        return false;
      }
      if (color[dep] == 0 && !visit(dep)) {
        stack.pop_back();
        color[module] = 2;
        return false;
      }
    }
    stack.pop_back();
    color[module] = 2;
    return true;
  };
  for (const auto& [module, allowed] : config.layering) {
    (void)allowed;
    if (color[module] == 0 && !visit(module)) {
      return;  // one cycle report is enough
    }
  }
}

void CheckLayering(const std::vector<SourceFile>& files,
                   const LintConfig& config, std::vector<Finding>* findings) {
  CheckLayeringTableIsAcyclic(config, findings);
  std::map<std::string, const std::vector<std::string>*> allowed;
  for (const auto& [module, deps] : config.layering) {
    allowed[module] = &deps;
  }
  for (const SourceFile& file : files) {
    if (file.module.empty()) {
      continue;  // tools/bench/examples may include any src module
    }
    auto it = allowed.find(file.module);
    for (const IncludeDirective& inc : file.lexed.includes) {
      if (inc.angled || !StartsWith(inc.path, "src/")) {
        continue;
      }
      const std::size_t slash = inc.path.find('/', 4);
      if (slash == std::string::npos) {
        continue;
      }
      const std::string target = inc.path.substr(4, slash - 4);
      if (target == file.module) {
        continue;
      }
      if (it == allowed.end()) {
        findings->push_back(
            {"layering", file.path, inc.line,
             StrFormat("module \"%s\" is not in the declared layering table",
                       file.module.c_str()),
             false,
             ""});
        break;  // one finding per unknown module is enough
      }
      if (std::find(it->second->begin(), it->second->end(), target) ==
          it->second->end()) {
        findings->push_back(
            {"layering", file.path, inc.line,
             StrFormat("include of \"%s\" violates the layering DAG: "
                       "%s may not depend on %s",
                       inc.path.c_str(), file.module.c_str(),
                       target.c_str()),
             false,
             ""});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Privilege flow
// ---------------------------------------------------------------------------

struct ExtractedGrant {
  std::string target_token;
  std::string op;  // enumerator name
  int line;
};

struct ExtractedPermitAll {
  std::string target_token;  // empty when unattributable
  int line;
};

// Resolves a loop variable at PermitHypercall(...) back to the op list of
// the nearest preceding `for (Hypercall <var> : { Hypercall::kA, ... })`.
std::vector<std::string> ResolveLoopOps(const Tokens& t, std::size_t from,
                                        const std::string& var) {
  for (std::size_t i = from; i-- > 0;) {
    if (!IsIdent(t[i], "for")) {
      continue;
    }
    if (i + 5 >= t.size() || !IsPunct(t[i + 1], "(") ||
        !IsIdent(t[i + 2], "Hypercall") || !IsIdent(t[i + 3], var) ||
        !IsPunct(t[i + 4], ":") || !IsPunct(t[i + 5], "{")) {
      continue;
    }
    const std::size_t end = MatchingClose(t, i + 5, "{", "}");
    std::vector<std::string> ops;
    for (std::size_t j = i + 5;
         j < std::min(end, t.size()); ++j) {
      if (IsIdent(t[j], "Hypercall") && j + 2 < t.size() &&
          IsPunct(t[j + 1], "::")) {
        ops.push_back(t[j + 2].text);
      }
    }
    return ops;
  }
  return {};
}

// Extracts every PermitHypercall(grantor, target, op) grant and every
// hypercall_policy().PermitAll() site from the platform source.
void ExtractGrants(const SourceFile& file,
                   std::vector<ExtractedGrant>* grants,
                   std::vector<ExtractedPermitAll>* permit_alls) {
  const Tokens& t = file.lexed.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (IsIdent(t[i], "PermitHypercall") && IsPunct(t[i + 1], "(")) {
      const std::size_t close = MatchingClose(t, i + 1, "(", ")");
      if (close == static_cast<std::size_t>(-1)) {
        continue;
      }
      // Split the argument tokens at top-level commas.
      std::vector<std::vector<Token>> args(1);
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (IsPunct(t[j], "(") || IsPunct(t[j], "{") || IsPunct(t[j], "[")) {
          ++depth;
        } else if (IsPunct(t[j], ")") || IsPunct(t[j], "}") ||
                   IsPunct(t[j], "]")) {
          --depth;
        } else if (depth == 0 && IsPunct(t[j], ",")) {
          args.emplace_back();
          continue;
        }
        args.back().push_back(t[j]);
      }
      if (args.size() != 3 || args[1].empty() || args[2].empty()) {
        continue;
      }
      const std::string target = args[1].back().text;
      const int line = t[i].line;
      const std::vector<Token>& op_arg = args[2];
      if (op_arg.size() >= 3 && IsIdent(op_arg[0], "Hypercall") &&
          IsPunct(op_arg[1], "::")) {
        grants->push_back({target, op_arg[2].text, line});
      } else if (op_arg.size() == 1 &&
                 op_arg[0].kind == TokenKind::kIdentifier) {
        for (const std::string& op :
             ResolveLoopOps(t, i, op_arg[0].text)) {
          grants->push_back({target, op, line});
        }
      }
      continue;
    }
    if (IsIdent(t[i], "PermitAll") && IsPunct(t[i + 1], "(")) {
      // Attribute via the nearest preceding `domain(<token>)`.
      std::string target;
      const std::size_t lookback = i > 30 ? i - 30 : 0;
      for (std::size_t j = i; j-- > lookback;) {
        if (IsIdent(t[j], "domain") && j + 2 < t.size() &&
            IsPunct(t[j + 1], "(") &&
            t[j + 2].kind == TokenKind::kIdentifier) {
          target = t[j + 2].text;
          break;
        }
      }
      permit_alls->push_back({target, t[i].line});
    }
  }
}

void CheckPrivilege(const std::vector<SourceFile>& files,
                    const LintConfig& config,
                    std::vector<Finding>* findings) {
  std::set<std::string> attributable;  // ops some shard is declared to hold
  std::map<std::string, const ShardGrant*> by_target;
  for (const ShardGrant& shard : config.shards) {
    by_target[shard.target_token] = &shard;
    attributable.insert(shard.ops.begin(), shard.ops.end());
  }
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, config.hypercall_header_suffix)) {
      const std::set<std::string> unprivileged =
          ExtractUnprivilegedHypercallOps(file);
      attributable.insert(unprivileged.begin(), unprivileged.end());
    }
  }

  for (const SourceFile& file : files) {
    if (file.module == config.privilege_exempt_module) {
      continue;  // the hypervisor implements the ops; it may name them all
    }
    const bool is_platform =
        EndsWith(file.path, config.platform_source_suffix);
    std::set<int> grant_site_lines;
    if (is_platform) {
      std::vector<ExtractedGrant> grants;
      std::vector<ExtractedPermitAll> permit_alls;
      ExtractGrants(file, &grants, &permit_alls);
      for (const ExtractedGrant& grant : grants) {
        auto it = by_target.find(grant.target_token);
        if (it == by_target.end()) {
          findings->push_back(
              {"privilege", file.path, grant.line,
               StrFormat("permit_hypercall grants %s to \"%s\", which is "
                         "not a shard in the declared privilege table",
                         grant.op.c_str(), grant.target_token.c_str()),
               false,
               ""});
          continue;
        }
        const ShardGrant& shard = *it->second;
        if (!shard.all_privileges &&
            std::find(shard.ops.begin(), shard.ops.end(), grant.op) ==
                shard.ops.end()) {
          findings->push_back(
              {"privilege", file.path, grant.line,
               StrFormat("permit_hypercall grants %s to shard \"%s\" beyond "
                         "its declared set (PAPER.md §3.1)",
                         grant.op.c_str(), shard.shard.c_str()),
               false,
               ""});
        }
      }
      for (const ExtractedPermitAll& site : permit_alls) {
        auto it = by_target.find(site.target_token);
        if (site.target_token.empty() || it == by_target.end() ||
            !it->second->all_privileges) {
          findings->push_back(
              {"privilege", file.path, site.line,
               "PermitAll() is reserved for the Bootstrapper's boot-time "
               "blanket grant (§5.2); attribute or remove this site",
               false,
               ""});
        }
      }
    }

    // Every remaining Hypercall::k* mention must be attributable.
    const Tokens& t = file.lexed.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!IsIdent(t[i], "Hypercall") || !IsPunct(t[i + 1], "::") ||
          t[i + 2].kind != TokenKind::kIdentifier) {
        continue;
      }
      const std::string& op = t[i + 2].text;
      if (op == "kCount") {
        continue;  // metadata, not an operation
      }
      if (attributable.count(op) == 0) {
        findings->push_back(
            {"privilege", file.path, t[i].line,
             StrFormat("Hypercall::%s is not in the unprivileged class and "
                       "no shard's declared grant set includes it — this "
                       "call site could never pass the HypercallFilter",
                       op.c_str()),
             false,
             ""});
      }
    }
    if (!is_platform) {
      // PermitAll outside the platform source (and outside src/hv, already
      // exempt) is always a privilege escalation hazard.
      for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (IsIdent(t[i], "PermitAll") && IsPunct(t[i + 1], "(")) {
          findings->push_back(
              {"privilege", file.path, t[i].line,
               "PermitAll() grants the full Dom0 privilege set; only the "
               "platform bootstrap may do this",
               false,
               ""});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

void CheckDeterminism(const std::vector<SourceFile>& files,
                      const LintConfig& config,
                      std::vector<Finding>* findings) {
  const std::set<std::string> clocks(config.banned_clock_identifiers.begin(),
                                     config.banned_clock_identifiers.end());
  const std::set<std::string> calls(config.banned_call_identifiers.begin(),
                                    config.banned_call_identifiers.end());
  for (const SourceFile& file : files) {
    bool exempt = false;
    for (const std::string& prefix : config.determinism_exempt_prefixes) {
      if (StartsWith(file.path, prefix)) {
        exempt = true;
        break;
      }
    }
    if (exempt) {
      continue;
    }
    const Tokens& t = file.lexed.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) {
        continue;
      }
      if (clocks.count(t[i].text) > 0) {
        findings->push_back(
            {"determinism", file.path, t[i].line,
             StrFormat("\"%s\" reads outside the simulated clock; all time "
                       "must come from Simulator::Now() (sim/bench only)",
                       t[i].text.c_str()),
             false,
             ""});
        continue;
      }
      if (calls.count(t[i].text) > 0 && i + 1 < t.size() &&
          IsPunct(t[i + 1], "(") &&
          (i == 0 ||
           (!IsPunct(t[i - 1], ".") && !IsPunct(t[i - 1], "->")))) {
        // A declarator, not a call: `long time() { ... }` / `... const;`.
        const std::size_t close = MatchingClose(t, i + 1, "(", ")");
        if (close != static_cast<std::size_t>(-1) && close + 1 < t.size() &&
            (IsPunct(t[close + 1], "{") || IsIdent(t[close + 1], "const") ||
             IsIdent(t[close + 1], "noexcept") ||
             IsIdent(t[close + 1], "override"))) {
          continue;
        }
        findings->push_back(
            {"determinism", file.path, t[i].line,
             StrFormat("call to \"%s()\" is nondeterministic; use "
                       "src/base/rng.h streams or Simulator time",
                       t[i].text.c_str()),
             false,
             ""});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Audit coverage
// ---------------------------------------------------------------------------

// True when the token range [begin, end) contains an AuditLog emission:
// RecordAudit(...), an AuditEvent construction, or <audit-ish>.Record*(...).
bool BodyEmitsAudit(const Tokens& t, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) {
      continue;
    }
    if (t[i].text == "RecordAudit" || t[i].text == "AuditEvent") {
      return true;
    }
    const bool auditish = t[i].text.find("audit") != std::string::npos ||
                          t[i].text.find("Audit") != std::string::npos;
    if (auditish && i + 2 < t.size() &&
        (IsPunct(t[i + 1], ".") || IsPunct(t[i + 1], "->")) &&
        t[i + 2].kind == TokenKind::kIdentifier &&
        StartsWith(t[i + 2].text, "Record")) {
      return true;
    }
  }
  return false;
}

void CheckAudit(const std::vector<SourceFile>& files, const LintConfig& config,
                std::vector<Finding>* findings) {
  std::set<std::string> seen;
  for (const SourceFile& file : files) {
    const Tokens& t = file.lexed.tokens;
    for (const AuditedOp& op : config.audited_ops) {
      for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (!IsIdent(t[i], op.cls) || !IsPunct(t[i + 1], "::") ||
            !IsIdent(t[i + 2], op.method) || !IsPunct(t[i + 3], "(")) {
          continue;
        }
        const std::size_t close = MatchingClose(t, i + 3, "(", ")");
        if (close == static_cast<std::size_t>(-1)) {
          continue;
        }
        // Definition if a `{` follows before any `;` (qualifiers like
        // const/noexcept may intervene; a trailing `;` means declaration
        // or a qualified call).
        std::size_t j = close + 1;
        while (j < t.size() && !IsPunct(t[j], "{") && !IsPunct(t[j], ";")) {
          ++j;
        }
        if (j >= t.size() || !IsPunct(t[j], "{")) {
          continue;
        }
        const std::size_t body_end = MatchingClose(t, j, "{", "}");
        seen.insert(op.cls + "::" + op.method);
        if (!BodyEmitsAudit(t, j, body_end)) {
          findings->push_back(
              {"audit", file.path, t[i].line,
               StrFormat("privileged operation %s::%s does not emit an "
                         "AuditLog event in its body (§3.2.2: every "
                         "privileged action lands in the audit log)",
                         op.cls.c_str(), op.method.c_str()),
               false,
               ""});
        }
      }
    }
  }
  if (config.require_audited_op_definitions) {
    for (const AuditedOp& op : config.audited_ops) {
      const std::string name = op.cls + "::" + op.method;
      if (seen.count(name) == 0) {
        findings->push_back(
            {"audit", "<tree>", 0,
             StrFormat("audited operation %s was not found in the tree; "
                       "update the audited-op table in "
                       "src/analysis/rules.cc if it was renamed",
                       name.c_str()),
             false,
             ""});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Suppressions (shared by xoar_lint and xoar_flow)
// ---------------------------------------------------------------------------

void ApplyToolSuppressions(const std::vector<SourceFile>& files,
                           std::string_view tool,
                           const std::vector<std::string>& known_rules,
                           bool strict, std::vector<Finding>* findings) {
  const std::string marker = "xoar-" + std::string(tool);
  struct Key {
    std::string file;
    std::string rule;
    int line;
    bool operator<(const Key& o) const {
      return std::tie(file, rule, line) < std::tie(o.file, o.rule, o.line);
    }
  };
  std::map<Key, const SuppressionComment*> index;
  for (const SourceFile& file : files) {
    for (const SuppressionComment& sup : file.lexed.suppressions) {
      if (sup.tool != tool) {
        continue;  // addressed to the other tool
      }
      if (!sup.valid) {
        findings->push_back(
            {"suppression", file.path, sup.line,
             StrFormat("malformed %s comment: %s (expected "
                       "\"%s: allow(<rule>): <justification>\")",
                       marker.c_str(), sup.error.c_str(), marker.c_str()),
             false,
             ""});
        continue;
      }
      if (std::find(known_rules.begin(), known_rules.end(), sup.rule) ==
          known_rules.end()) {
        findings->push_back(
            {"suppression", file.path, sup.line,
             StrFormat("%s: allow(%s) names an unknown rule",
                       marker.c_str(), sup.rule.c_str()),
             false,
             ""});
        continue;
      }
      index[{file.path, sup.rule, sup.line}] = &sup;
    }
  }
  std::set<const SuppressionComment*> used;
  for (Finding& finding : *findings) {
    if (finding.rule == "suppression") {
      continue;  // the suppression rule cannot be suppressed
    }
    for (int line : {finding.line, finding.line - 1}) {
      auto it = index.find({finding.file, finding.rule, line});
      if (it != index.end()) {
        finding.suppressed = true;
        finding.justification = it->second->justification;
        used.insert(it->second);
        break;
      }
    }
  }
  // A waiver that silences nothing has rotted: the violation it excused was
  // fixed or moved, and leaving the comment behind would pre-excuse the
  // next (possibly unrelated) violation on that line.
  for (const auto& [key, sup] : index) {
    if (used.count(sup) > 0) {
      continue;
    }
    findings->push_back(
        {"suppression", key.file, key.line,
         StrFormat("stale suppression: %s: allow(%s) no longer silences "
                   "any finding; remove the comment",
                   marker.c_str(), key.rule.c_str()),
         false,
         "",
         /*warning=*/!strict});
  }
}

std::set<std::string> ExtractUnprivilegedHypercallOps(const SourceFile& file) {
  std::set<std::string> ops;
  const Tokens& t = file.lexed.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t[i], "IsUnprivilegedHypercall") || !IsPunct(t[i + 1], "(")) {
      continue;
    }
    const std::size_t close = MatchingClose(t, i + 1, "(", ")");
    if (close == static_cast<std::size_t>(-1)) {
      break;
    }
    std::size_t body = close + 1;
    while (body < t.size() && !IsPunct(t[body], "{") &&
           !IsPunct(t[body], ";")) {
      ++body;
    }
    if (body >= t.size() || !IsPunct(t[body], "{")) {
      continue;  // declaration only
    }
    const std::size_t end = MatchingClose(t, body, "{", "}");
    std::vector<std::string> pending;
    for (std::size_t j = body;
         j < std::min(end, t.size()); ++j) {
      if (IsIdent(t[j], "case") && j + 4 < t.size() &&
          IsIdent(t[j + 1], "Hypercall") && IsPunct(t[j + 2], "::")) {
        pending.push_back(t[j + 3].text);
        continue;
      }
      if (IsIdent(t[j], "return") && j + 1 < t.size()) {
        if (IsIdent(t[j + 1], "true")) {
          ops.insert(pending.begin(), pending.end());
        }
        pending.clear();
      }
    }
    break;
  }
  return ops;
}

LintConfig DefaultConfig() {
  LintConfig config;
  // Declared module DAG. Mirrors src/*/CMakeLists.txt target_link_libraries
  // closure: base at the bottom, then sim/obs, the hypervisor, services,
  // control plane, platform, and the leaves.
  config.layering = {
      {"base", {}},
      {"sim", {"base"}},
      {"obs", {"base", "sim"}},
      {"net", {"base", "sim"}},
      {"analysis", {"base"}},
      // The replay journal observes the trace stream and nothing above it:
      // it may never include the platform it records, or journaling could
      // perturb the execution being journaled.
      {"replay", {"base", "sim", "obs"}},
      {"hv", {"base", "sim", "obs"}},
      {"xs", {"base", "sim", "obs", "hv"}},
      {"dev", {"base", "sim", "obs", "hv"}},
      {"drv", {"base", "sim", "obs", "hv", "xs", "dev"}},
      {"ctl", {"base", "sim", "obs", "hv", "xs", "dev", "drv"}},
      {"core", {"base", "sim", "obs", "hv", "xs", "dev", "drv", "ctl"}},
      {"fault",
       {"base", "sim", "obs", "hv", "xs", "dev", "drv", "ctl", "core",
        "replay"}},
      {"security",
       {"base", "sim", "obs", "hv", "xs", "dev", "drv", "ctl", "core"}},
      {"workloads",
       {"base", "sim", "obs", "net", "hv", "xs", "dev", "drv", "ctl"}},
      // The fleet orchestrates whole platforms and arms fault campaigns,
      // so it sits at the very top of the DAG; nothing may include it.
      {"fleet",
       {"base", "sim", "obs", "hv", "xs", "dev", "drv", "ctl", "core",
        "fault", "replay"}},
  };

  // src/replay/ is deliberately NOT exempt: a wall-clock read in the
  // journal path would be an unjournaled input, silently breaking the
  // "same seed, same record stream" contract replay verification rests on.
  config.determinism_exempt_prefixes = {"src/sim/", "bench/"};
  config.banned_clock_identifiers = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "random_device", "gettimeofday", "clock_gettime",
      "timespec_get",  "localtime",    "gmtime",
      "mktime",
  };
  config.banned_call_identifiers = {"rand", "srand", "time", "clock"};

  // Fig 3.1 / Table 5.1 privilege assignments, attributed via the domain
  // identifiers the grant sites in src/core/xoar_platform.cc use.
  config.shards = {
      {"Bootstrapper", "bootstrapper_", /*all_privileges=*/true, {}},
      {"Builder",
       "builder_dom_",
       false,
       {"kDomctlCreate", "kDomctlDestroy", "kDomctlPause", "kDomctlUnpause",
        "kForeignMemoryMap", "kDomctlSetPrivileges", "kDomctlDelegate",
        "kSnapshotOp", "kSetupGuestRings"}},
      {"PCIBack",
       "pciback_dom_",
       false,
       {"kDomctlSetPrivileges", "kPhysdevOp", "kPciConfigOp",
        "kDomctlDestroy"}},
      {"Toolstack",
       "ts_dom",
       false,
       {"kDomctlPause", "kDomctlUnpause", "kDomctlDestroy"}},
      // Fig 3.1: XenStore-State (including every density-scale-out State
      // shard, SCALING.md) is a plain restartable KV with *no* hypercall
      // privileges. The empty grant set makes any future grant to a State
      // shard domain a blocking finding.
      {"XenStore-State", "state_dom", false, {}},
  };

  // §3.2.2: privileged operations that must land in the audit log.
  config.audited_ops = {
      {"RestartEngine", "DoRestart"},    // microreboot execution
      {"Watchdog", "HandleFailure"},     // restart escalation
      {"Watchdog", "Quarantine"},        // degraded-mode entry
      {"Builder", "BuildVm"},            // builder launch
      {"PciBackService", "PassThrough"}  // PCI device assignment
  };
  return config;
}

std::vector<std::string> SuppressibleRules() {
  return {"layering", "privilege", "determinism", "audit"};
}

std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                             const LintConfig& config) {
  std::vector<Finding> findings;
  CheckLayering(files, config, &findings);
  CheckPrivilege(files, config, &findings);
  CheckDeterminism(files, config, &findings);
  CheckAudit(files, config, &findings);
  ApplyToolSuppressions(files, "lint", SuppressibleRules(), config.strict,
                        &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace analysis
}  // namespace xoar
