#include "src/analysis/source_tree.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/base/strings.h"

namespace xoar {
namespace analysis {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string ToForwardSlashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

std::string ModuleOf(const std::string& rel_path) {
  constexpr std::string_view kSrc = "src/";
  if (rel_path.rfind(kSrc, 0) != 0) {
    return "";
  }
  const std::size_t slash = rel_path.find('/', kSrc.size());
  if (slash == std::string::npos) {
    return "";  // a file directly under src/ belongs to no module
  }
  return rel_path.substr(kSrc.size(), slash - kSrc.size());
}

}  // namespace

std::vector<std::string> DefaultScanDirs() {
  return {"src", "tools", "examples", "bench"};
}

StatusOr<std::vector<SourceFile>> LoadTree(
    const std::string& root, const std::vector<std::string>& dirs) {
  std::vector<std::string> rel_paths;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      continue;  // fixture trees may omit whole subtrees
    }
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_regular_file() && HasSourceExtension(it->path())) {
        rel_paths.push_back(ToForwardSlashes(
            fs::relative(it->path(), root).string()));
      }
    }
    if (ec) {
      return InternalError(StrFormat("walking %s: %s",
                                     base.string().c_str(),
                                     ec.message().c_str()));
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<SourceFile> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      return InternalError(StrFormat("cannot read %s", rel.c_str()));
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    SourceFile file;
    file.path = rel;
    file.module = ModuleOf(rel);
    file.lexed = Lex(buffer.str());
    files.push_back(std::move(file));
  }
  return files;
}

}  // namespace analysis
}  // namespace xoar
