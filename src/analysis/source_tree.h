// Loads and lexes the source tree xoar_lint analyzes.
//
// A "tree" is a root directory plus the set of top-level subdirectories to
// scan (src, tools, examples, bench for the real repository; fixture trees
// under tests/analysis_fixtures/ carry the same shape in miniature). Files
// are discovered with deterministic ordering (sorted paths) so every lint
// report is byte-stable for a given tree.
#ifndef XOAR_SRC_ANALYSIS_SOURCE_TREE_H_
#define XOAR_SRC_ANALYSIS_SOURCE_TREE_H_

#include <string>
#include <vector>

#include "src/analysis/lexer.h"
#include "src/base/status.h"

namespace xoar {
namespace analysis {

struct SourceFile {
  // Path relative to the tree root, with forward slashes
  // (e.g. "src/hv/hypervisor.cc").
  std::string path;
  // For files under src/: the module directory ("base", "hv", ...).
  // Empty otherwise.
  std::string module;
  LexedSource lexed;
};

// Subdirectories scanned by default (missing ones are skipped silently so
// fixture trees can be minimal).
std::vector<std::string> DefaultScanDirs();

// Recursively loads every .h/.cc/.cpp file under root/<dir> for each given
// dir. Fails only on I/O errors for files that exist but cannot be read.
StatusOr<std::vector<SourceFile>> LoadTree(
    const std::string& root, const std::vector<std::string>& dirs);

}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_SOURCE_TREE_H_
