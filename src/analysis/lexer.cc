#include "src/analysis/lexer.h"

#include <cctype>

namespace xoar {
namespace analysis {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses the body of a line comment that begins with an xoar-lint or
// xoar-flow marker (the "allow(<rule>): <justification>" form described in
// ANALYSIS.md).
SuppressionComment ParseSuppression(std::string_view body, int line,
                                    std::string_view tool) {
  SuppressionComment out;
  out.line = line;
  out.valid = false;
  out.tool = std::string(tool);
  body = Trim(body);
  constexpr std::string_view kAllow = "allow(";
  if (body.substr(0, kAllow.size()) != kAllow) {
    out.error = "expected allow(<rule>) after the marker";
    return out;
  }
  body.remove_prefix(kAllow.size());
  const std::size_t close = body.find(')');
  if (close == std::string_view::npos) {
    out.error = "unterminated allow(";
    return out;
  }
  out.rule = std::string(Trim(body.substr(0, close)));
  body.remove_prefix(close + 1);
  body = Trim(body);
  if (out.rule.empty()) {
    out.error = "empty rule name in allow()";
    return out;
  }
  if (body.empty() || body.front() != ':') {
    out.error = "missing justification (expected \": <why>\" after allow())";
    return out;
  }
  body.remove_prefix(1);
  out.justification = std::string(Trim(body));
  if (out.justification.empty()) {
    out.error = "empty justification";
    return out;
  }
  out.valid = true;
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexedSource Run() {
    while (pos_ < src_.size()) {
      Step();
    }
    return std::move(out_);
  }

 private:
  char Cur() const { return src_[pos_]; }
  char Peek() const { return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0'; }
  bool AtLineStart() const { return at_line_start_; }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      at_line_start_ = true;
    } else if (!std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      at_line_start_ = false;
    }
    ++pos_;
  }

  void Step() {
    const char c = Cur();
    if (c == '/' && Peek() == '/') {
      LineComment();
      return;
    }
    if (c == '/' && Peek() == '*') {
      BlockComment();
      return;
    }
    if (c == '"') {
      StringLiteral();
      return;
    }
    if (c == '\'') {
      CharLiteral();
      return;
    }
    if (c == '#' && AtLineStart()) {
      Preprocessor();
      return;
    }
    if (IsIdentStart(c)) {
      Identifier();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Number();
      return;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      Punct();
      return;
    }
    Advance();
  }

  void LineComment() {
    const int start_line = line_;
    std::size_t end = src_.find('\n', pos_);
    if (end == std::string_view::npos) {
      end = src_.size();
    }
    std::string_view body = src_.substr(pos_ + 2, end - pos_ - 2);
    const std::string_view trimmed = Trim(body);
    constexpr std::string_view kLintMarker = "xoar-lint:";
    constexpr std::string_view kFlowMarker = "xoar-flow:";
    if (trimmed.substr(0, kLintMarker.size()) == kLintMarker) {
      out_.suppressions.push_back(ParseSuppression(
          trimmed.substr(kLintMarker.size()), start_line, "lint"));
    } else if (trimmed.substr(0, kFlowMarker.size()) == kFlowMarker) {
      out_.suppressions.push_back(ParseSuppression(
          trimmed.substr(kFlowMarker.size()), start_line, "flow"));
    }
    while (pos_ < end) {
      Advance();
    }
  }

  void BlockComment() {
    Advance();  // '/'
    Advance();  // '*'
    while (pos_ < src_.size()) {
      if (Cur() == '*' && Peek() == '/') {
        Advance();
        Advance();
        return;
      }
      Advance();
    }
  }

  void StringLiteral() {
    Advance();  // opening quote
    while (pos_ < src_.size()) {
      if (Cur() == '\\') {
        Advance();
        if (pos_ < src_.size()) {
          Advance();
        }
        continue;
      }
      if (Cur() == '"' || Cur() == '\n') {  // \n: tolerate unterminated
        Advance();
        return;
      }
      Advance();
    }
  }

  void CharLiteral() {
    Advance();
    while (pos_ < src_.size()) {
      if (Cur() == '\\') {
        Advance();
        if (pos_ < src_.size()) {
          Advance();
        }
        continue;
      }
      if (Cur() == '\'' || Cur() == '\n') {
        Advance();
        return;
      }
      Advance();
    }
  }

  // R"delim( ... )delim"
  void RawString() {
    Advance();  // 'R' already consumed by caller contract; here at '"'
    std::string delim;
    while (pos_ < src_.size() && Cur() != '(' && Cur() != '\n') {
      delim.push_back(Cur());
      Advance();
    }
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src_.find(closer, pos_);
    const std::size_t stop =
        end == std::string_view::npos ? src_.size() : end + closer.size();
    while (pos_ < stop) {
      Advance();
    }
  }

  // Skips any preprocessor directive (honoring backslash continuations)
  // after capturing #include targets.
  void Preprocessor() {
    const int start_line = line_;
    Advance();  // '#'
    while (pos_ < src_.size() &&
           (Cur() == ' ' || Cur() == '\t')) {
      Advance();
    }
    std::string word;
    while (pos_ < src_.size() && IsIdentChar(Cur())) {
      word.push_back(Cur());
      Advance();
    }
    if (word == "include") {
      while (pos_ < src_.size() && (Cur() == ' ' || Cur() == '\t')) {
        Advance();
      }
      if (pos_ < src_.size() && (Cur() == '"' || Cur() == '<')) {
        const bool angled = Cur() == '<';
        const char closer = angled ? '>' : '"';
        Advance();
        std::string target;
        while (pos_ < src_.size() && Cur() != closer && Cur() != '\n') {
          target.push_back(Cur());
          Advance();
        }
        out_.includes.push_back({std::move(target), angled, start_line});
      }
    }
    // Skip the rest of the directive, including continuation lines. Line
    // comments inside directives terminate them; block comments are rare
    // enough in directives to ignore here.
    while (pos_ < src_.size()) {
      if (Cur() == '\\' && Peek() == '\n') {
        Advance();
        Advance();
        continue;
      }
      if (Cur() == '\n') {
        Advance();
        return;
      }
      if (Cur() == '/' && Peek() == '/') {
        LineComment();
        return;
      }
      Advance();
    }
  }

  void Identifier() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(Cur())) {
      text.push_back(Cur());
      Advance();
    }
    // Raw string literal: R"(...)" (also LR"/u8R" etc., which end in R).
    if (pos_ < src_.size() && Cur() == '"' && !text.empty() &&
        text.back() == 'R') {
      RawString();
      return;
    }
    // Plain prefixed literal like u8"x" / L"x": skip the string.
    if (pos_ < src_.size() && Cur() == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      StringLiteral();
      return;
    }
    out_.tokens.push_back({TokenKind::kIdentifier, std::move(text),
                           start_line});
  }

  void Number() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() &&
           (IsIdentChar(Cur()) || Cur() == '.' ||
            ((Cur() == '+' || Cur() == '-') && !text.empty() &&
             (text.back() == 'e' || text.back() == 'E' ||
              text.back() == 'p' || text.back() == 'P')))) {
      text.push_back(Cur());
      Advance();
    }
    out_.tokens.push_back({TokenKind::kNumber, std::move(text), start_line});
  }

  void Punct() {
    const int start_line = line_;
    const char c = Cur();
    if (c == ':' && Peek() == ':') {
      Advance();
      Advance();
      out_.tokens.push_back({TokenKind::kPunct, "::", start_line});
      return;
    }
    if (c == '-' && Peek() == '>') {
      Advance();
      Advance();
      out_.tokens.push_back({TokenKind::kPunct, "->", start_line});
      return;
    }
    Advance();
    out_.tokens.push_back({TokenKind::kPunct, std::string(1, c), start_line});
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedSource out_;
};

}  // namespace

LexedSource Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace analysis
}  // namespace xoar
