// Rendering for xoar_lint findings: human-readable text and the stable
// BENCH_*-style JSON report that tools/validate_obs --lint schema-checks.
//
// JSON shape (deliberately the same top level as every BENCH_*.json so the
// existing tooling can parse it):
//
//   {
//     "context": {"executable": "xoar_lint", "sim_time_ns": 0, ...},
//     "benchmarks": [
//       {"name": "lint.files_scanned", "run_type": "gauge", "value": N},
//       {"name": "lint.findings.<rule>", "run_type": "counter", ...},
//       {"name": "lint.findings.total", ...},
//       {"name": "lint.suppressed.total", ...}
//     ],
//     "findings": [
//       {"rule": ..., "file": ..., "line": ..., "message": ...,
//        "suppressed": bool, "justification": ...}, ...
//     ]
//   }
//
// Reports are byte-stable for a given tree: the findings arrive sorted and
// nothing time- or environment-dependent is written (the linter itself must
// pass its own determinism rule).
#ifndef XOAR_SRC_ANALYSIS_REPORT_H_
#define XOAR_SRC_ANALYSIS_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/rules.h"

namespace xoar {
namespace analysis {

struct LintSummary {
  std::size_t files_scanned = 0;
  std::size_t total = 0;        // every finding, suppressed or not
  std::size_t unsuppressed = 0;  // blocking: neither suppressed nor warning
  std::size_t suppressed = 0;
  std::size_t warnings = 0;      // reported but not build-failing
};

LintSummary Summarize(const std::vector<Finding>& findings,
                      std::size_t files_scanned);

// One line per finding plus a trailing summary line.
std::string FormatText(const std::vector<Finding>& findings,
                       const LintSummary& summary);

// The BENCH-style JSON document described above.
std::string FormatJson(const std::vector<Finding>& findings,
                       const LintSummary& summary);

// JSON string-escaping helper, shared with the flow report formatter.
std::string JsonEscape(const std::string& s);

}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_REPORT_H_
