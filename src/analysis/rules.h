// The four xoar_lint rule families (ANALYSIS.md, DESIGN.md §5e).
//
// Xoar's disaggregation argument rests on invariants that, before this
// layer, were only enforced at runtime (HypercallFilter, AuditLog) or by
// convention (module layering, simulated time). Each rule makes one of them
// machine-checked at build time:
//
//   layering     — the src/ module dependency DAG is declared in ONE table
//                  (DefaultConfig().layering); an include edge outside the
//                  table, or a cycle in the table itself, is an error.
//   privilege    — every `Hypercall::k*` use outside src/hv/ must be
//                  attributable to a shard whose declared grant set (kept in
//                  sync with the permit_hypercall calls in
//                  src/core/xoar_platform.cc and the unprivileged class in
//                  src/hv/hypercall.h) includes that op (§3.1, Fig 3.1).
//   determinism  — wall-clock and libc randomness are banned outside
//                  src/sim/ and bench/, protecting seed-stable fault
//                  campaigns and byte-stable reports (DESIGN.md §5c).
//   audit        — the privileged operations named in the audited-op table
//                  (restart escalation, quarantine, builder launch, PCI
//                  assignment) must emit an AuditLog event in the same
//                  function body (§3.2.2).
//
// A fifth pseudo-rule, "suppression", reports xoar-lint comments that are
// malformed, lack a justification, or name an unknown rule. It cannot be
// suppressed.
#ifndef XOAR_SRC_ANALYSIS_RULES_H_
#define XOAR_SRC_ANALYSIS_RULES_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/source_tree.h"

namespace xoar {
namespace analysis {

struct Finding {
  std::string rule;
  std::string file;  // tree-relative path, or "<tree>" for tree-wide issues
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string justification;  // set when suppressed
  // Warnings (stale suppressions, declared-but-dead comm edges) are
  // reported but never fail the build; --strict promotes them to blocking
  // at creation time, so a strict run emits them with warning == false.
  bool warning = false;
};

// One shard's declared privilege grants (the paper's Fig 3.1 assignments,
// Table 5.1). `target_token` is the identifier the grant call sites in the
// platform source use for this shard's domain, which is how extracted
// grants are attributed back to a shard.
struct ShardGrant {
  std::string shard;
  std::string target_token;
  bool all_privileges = false;      // PermitAll (Bootstrapper only)
  std::vector<std::string> ops;     // Hypercall::k* enumerator names
};

struct AuditedOp {
  std::string cls;     // e.g. "Builder"
  std::string method;  // e.g. "BuildVm"
};

struct LintConfig {
  // module -> full set of modules it may include from (the declared DAG).
  std::vector<std::pair<std::string, std::vector<std::string>>> layering;

  // Path prefixes exempt from the determinism rule.
  std::vector<std::string> determinism_exempt_prefixes;
  // Banned wherever they appear as an identifier (chrono clocks etc.).
  std::vector<std::string> banned_clock_identifiers;
  // Banned only in call position: `name(` not preceded by `.` or `->`.
  std::vector<std::string> banned_call_identifiers;

  // Privilege rule inputs.
  std::vector<ShardGrant> shards;
  std::string privilege_exempt_module = "hv";
  std::string hypercall_header_suffix = "src/hv/hypercall.h";
  std::string platform_source_suffix = "src/core/xoar_platform.cc";

  // Audit rule inputs.
  std::vector<AuditedOp> audited_ops;
  // When true (the real tree), every audited op must be *found* somewhere,
  // so renaming a privileged operation cannot silently detach its rule.
  // Fixture trees set this to false.
  bool require_audited_op_definitions = true;

  // Promote warnings (stale suppressions) to blocking findings.
  bool strict = false;
};

// The one authoritative table set. Layering mirrors src/*/CMakeLists.txt
// link dependencies; shard grants mirror PAPER.md §3.1/Table 5.1.
LintConfig DefaultConfig();

// Rules a suppression comment may name.
std::vector<std::string> SuppressibleRules();

// Parses IsUnprivilegedHypercall's switch in src/hv/hypercall.h: every
// `case Hypercall::kX:` that reaches `return true` is in the default-grant
// (unprivileged) class. Shared by the lexical privilege rule and the
// interprocedural privilege-reachability rule in src/analysis/flow.
std::set<std::string> ExtractUnprivilegedHypercallOps(const SourceFile& file);

// Shared suppression machinery for xoar_lint and xoar_flow. Considers only
// the suppression comments carrying `tool`'s marker ("lint" or "flow"):
// reports malformed comments and unknown rule names, suppresses matching
// findings (same file + rule, on the comment's line or the line below), and
// reports every valid suppression that silenced nothing as a stale-
// suppression warning (blocking when `strict`), so waivers cannot rot. The
// "suppression" pseudo-rule itself can never be suppressed.
void ApplyToolSuppressions(const std::vector<SourceFile>& files,
                           std::string_view tool,
                           const std::vector<std::string>& known_rules,
                           bool strict, std::vector<Finding>* findings);

// Runs every rule over the tree, applies suppressions, reports invalid
// suppressions, and returns findings sorted by (file, line, rule, message).
std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                             const LintConfig& config);

}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_RULES_H_
