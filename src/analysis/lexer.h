// Lightweight C++ tokenizer for xoar_lint (DESIGN.md §5e, ANALYSIS.md).
//
// This is not a compiler front end: it produces the token stream the lint
// rules actually need — identifiers, numbers, punctuation — while skipping
// the places violations must NOT be reported from (comments, string and
// character literals, preprocessor directives). Two side channels are
// extracted along the way:
//
//   * `#include "..."` / `#include <...>` directives, with line numbers,
//     feeding the layering rule;
//   * `// xoar-lint: allow(<rule>): <justification>` and
//     `// xoar-flow: allow(<rule>): <justification>` suppression comments,
//     feeding the suppression contract (a suppression covers findings on
//     its own line and the line immediately below, so it works both as a
//     trailing comment and as a standalone comment above the violation).
//     The marker names the tool the waiver is addressed to: xoar-lint
//     comments silence the lexical rules, xoar-flow comments silence the
//     whole-program flow rules, and neither silences the other's findings.
//
// All other preprocessor lines (#define, #ifdef, ...) are skipped entirely,
// honoring backslash continuations, so macro bodies can never trip the
// token-level rules.
#ifndef XOAR_SRC_ANALYSIS_LEXER_H_
#define XOAR_SRC_ANALYSIS_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace xoar {
namespace analysis {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (no distinction needed)
  kNumber,
  kPunct,  // one operator/punctuator character per token, except "::",
           // "->", which are kept whole because the rules match on them
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
};

struct IncludeDirective {
  std::string path;  // include target, without quotes/brackets
  bool angled;       // <...> instead of "..."
  int line;
};

struct SuppressionComment {
  std::string rule;           // rule name inside allow(...)
  std::string justification;  // text after the trailing colon, trimmed
  int line;
  // False when the comment carries a marker but does not parse (missing
  // rule, missing justification). Invalid suppressions never suppress
  // anything and are themselves reported by the suppression rule.
  bool valid;
  std::string error;  // why `valid` is false
  std::string tool;   // "lint" (xoar-lint marker) or "flow" (xoar-flow)
};

struct LexedSource {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<SuppressionComment> suppressions;
};

// Tokenizes one translation unit. Never fails: unrecognized bytes are
// skipped (lint rules only care about the recognized subset).
LexedSource Lex(std::string_view source);

}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_LEXER_H_
