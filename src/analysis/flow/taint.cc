#include "src/analysis/flow/taint.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "src/analysis/flow/token_util.h"
#include "src/base/strings.h"

namespace xoar {
namespace analysis {
namespace flow {
namespace {

struct UnorderedVar {
  std::string file;  // declaration site
  int line = 0;
};

bool IsUnorderedContainer(const std::string& text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

// Tree-wide unordered-container variable declarations, by name. A name
// collision across files is folded conservatively (first declaration
// wins for the message; every use is treated as unordered).
std::map<std::string, UnorderedVar> CollectUnorderedVars(
    const std::vector<SourceFile>& files) {
  std::map<std::string, UnorderedVar> vars;
  for (const SourceFile& file : files) {
    const std::vector<Token>& t = file.lexed.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier ||
          !IsUnorderedContainer(t[i].text) || !IsPunct(t[i + 1], "<")) {
        continue;
      }
      std::size_t j = SkipAngles(t, i + 1);
      if (j == i + 1) {
        continue;  // unbalanced angles
      }
      while (j < t.size() && (IsPunct(t[j], "*") || IsPunct(t[j], "&"))) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokenKind::kIdentifier &&
          !IsControlKeyword(t[j].text)) {
        vars.emplace(t[j].text, UnorderedVar{file.path, t[j].line});
      }
    }
  }
  return vars;
}

struct IterationSite {
  int fn = 0;  // iterating function index
  int line = 0;
  std::string var;
};

// Iteration sites inside one function body: range-for over a collected
// name, or NAME.begin()/cbegin()/rbegin().
void FindIterationSites(const std::vector<Token>& t, int fn_index,
                        const FunctionDef& def,
                        const std::map<std::string, UnorderedVar>& vars,
                        std::vector<IterationSite>* out) {
  const std::size_t end = std::min(def.body_end, t.size());
  for (std::size_t i = def.body_begin; i < end; ++i) {
    if (IsIdent(t[i], "for") && i + 1 < end && IsPunct(t[i + 1], "(")) {
      const std::size_t close = MatchingClose(t, i + 1, "(", ")");
      if (close == kNpos || close > end) {
        continue;
      }
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (IsPunct(t[j], ":") && !IsPunct(t[j + 1], ":") &&
            (j == 0 || !IsPunct(t[j - 1], ":")) &&
            t[j + 1].kind == TokenKind::kIdentifier &&
            vars.count(t[j + 1].text) > 0 &&
            (j + 2 == close || IsPunct(t[j + 2], ")"))) {
          out->push_back({fn_index, t[j + 1].line, t[j + 1].text});
        }
      }
      continue;
    }
    if (t[i].kind == TokenKind::kIdentifier && vars.count(t[i].text) > 0 &&
        i + 3 < end && (IsPunct(t[i + 1], ".") || IsPunct(t[i + 1], "->")) &&
        t[i + 2].kind == TokenKind::kIdentifier &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
         t[i + 2].text == "rbegin") &&
        IsPunct(t[i + 3], "(")) {
      out->push_back({fn_index, t[i].line, t[i].text});
    }
  }
}

}  // namespace

std::vector<Finding> CheckNondetFlow(const std::vector<SourceFile>& files,
                                     const CallGraph& graph,
                                     const std::vector<SinkSpec>& sinks) {
  const std::map<std::string, UnorderedVar> vars = CollectUnorderedVars(files);
  if (vars.empty()) {
    return {};
  }

  // Sink function indices, and the label each one carries.
  std::map<int, std::string> sink_fns;
  for (const SinkSpec& sink : sinks) {
    auto it = graph.by_class.find(sink.cls);
    if (it == graph.by_class.end()) {
      continue;
    }
    for (int fn : it->second) {
      if (graph.functions[fn].name.rfind(sink.method_prefix, 0) == 0) {
        sink_fns.emplace(fn, sink.label);
      }
    }
  }
  if (sink_fns.empty()) {
    return {};
  }

  std::vector<IterationSite> sites;
  for (std::size_t fi = 0; fi < graph.functions.size(); ++fi) {
    const FunctionDef& def = graph.functions[fi];
    FindIterationSites(files[def.file_index].lexed.tokens,
                       static_cast<int>(fi), def, vars, &sites);
  }
  if (sites.empty()) {
    return {};
  }

  // Reverse adjacency for the direct-caller clause.
  std::map<int, std::vector<int>> callers;
  for (std::size_t c = 0; c < graph.edges.size(); ++c) {
    for (const CallEdge& edge : graph.edges[c]) {
      callers[edge.callee].push_back(static_cast<int>(c));
    }
  }
  auto direct_sink_line = [&graph, &sink_fns](int fn, int* line,
                                              int* sink) -> bool {
    for (const CallEdge& edge : graph.edges[fn]) {
      if (sink_fns.count(edge.callee) > 0) {
        *line = edge.line;
        *sink = edge.callee;
        return true;
      }
    }
    return false;
  };

  std::vector<Finding> findings;
  std::set<std::pair<int, std::string>> reported;  // (fn, var)
  for (const IterationSite& site : sites) {
    if (reported.count({site.fn, site.var}) > 0) {
      continue;
    }
    const UnorderedVar& decl = vars.at(site.var);
    const FunctionDef& def = graph.functions[site.fn];

    // Forward closure from the iterating function.
    std::map<int, std::pair<int, int>> parent;  // fn -> (caller, line)
    std::deque<int> queue = {site.fn};
    parent.emplace(site.fn, std::make_pair(-1, 0));
    int hit = -1;
    while (!queue.empty() && hit < 0) {
      const int cur = queue.front();
      queue.pop_front();
      for (const CallEdge& edge : graph.edges[cur]) {
        if (parent.emplace(edge.callee, std::make_pair(cur, edge.line))
                .second) {
          if (sink_fns.count(edge.callee) > 0) {
            hit = edge.callee;
            break;
          }
          queue.push_back(edge.callee);
        }
      }
    }

    std::string path;
    std::string label;
    if (hit >= 0) {
      label = sink_fns.at(hit);
      std::vector<int> chain;
      for (int hop = hit; hop != -1; hop = parent.at(hop).first) {
        chain.push_back(hop);
      }
      std::reverse(chain.begin(), chain.end());
      for (int hop : chain) {
        if (!path.empty()) {
          path += " -> ";
        }
        path += StrFormat("%s [%s:%d]",
                          QualifiedName(graph.functions[hop]).c_str(),
                          graph.functions[hop].file.c_str(),
                          graph.functions[hop].line);
      }
    } else {
      // Direct-caller clause: some caller of the iterating function itself
      // calls a sink — the iteration result flows up one level and out.
      auto it = callers.find(site.fn);
      if (it == callers.end()) {
        continue;
      }
      for (int caller : it->second) {
        int line = 0;
        int sink = -1;
        if (!direct_sink_line(caller, &line, &sink)) {
          continue;
        }
        label = sink_fns.at(sink);
        path = StrFormat(
            "%s [%s:%d] -> returns to %s [%s:%d] -> %s [%s:%d]",
            QualifiedName(def).c_str(), def.file.c_str(), def.line,
            QualifiedName(graph.functions[caller]).c_str(),
            graph.functions[caller].file.c_str(), line,
            QualifiedName(graph.functions[sink]).c_str(),
            graph.functions[sink].file.c_str(),
            graph.functions[sink].line);
        break;
      }
      if (path.empty()) {
        continue;
      }
    }

    reported.insert({site.fn, site.var});
    Finding finding;
    finding.rule = "nondet_flow";
    finding.file = def.file;
    finding.line = site.line;
    finding.message = StrFormat(
        "iteration over unordered container \"%s\" (declared %s:%d) flows "
        "into %s output: %s; unordered iteration order is nondeterministic "
        "— use an ordered container or sort before emitting",
        site.var.c_str(), decl.file.c_str(), decl.line, label.c_str(),
        path.c_str());
    findings.push_back(std::move(finding));
  }
  return findings;
}

}  // namespace flow
}  // namespace analysis
}  // namespace xoar
