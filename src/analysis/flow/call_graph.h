// Whole-program symbol table + call graph for xoar_flow (ANALYSIS.md
// "Whole-program flow analysis", DESIGN.md §5j).
//
// Built from the same token streams the lexical rules consume — this is
// still not a compiler front end, but it recognizes enough structure for
// interprocedural reasoning:
//
//   * function definitions (free functions, inline class methods, and
//     out-of-line `Class::Method` definitions), with the enclosing
//     namespace/class scope tracked through brace nesting;
//   * call edges: unqualified calls, `Namespace::Fn(...)` /
//     `Class::Fn(...)` qualified calls, and `obj.M(...)` / `obj->M(...)`
//     method calls with the receiver's type recovered from declared
//     variables and members (including through `unique_ptr`/`shared_ptr`/
//     `StatusOr`/`optional` wrappers and one level of `using X = Y;` or
//     `namespace a = b;` aliasing) or from the return-type hint of a
//     chained call `f()->M(...)`;
//   * conservative resolution: a name with several candidate definitions
//     (overloads, virtual overrides via the recorded class hierarchy, an
//     unresolvable receiver) links to every candidate visible from the
//     caller's include closure;
//   * conservative widening: a call through a callable value (a declared
//     `std::function` variable or a function pointer) links the caller to
//     EVERY function defined in the caller's module, and marks the caller
//     widened — "may reach anything in the including module".
//
// Everything is deterministic: functions are sorted by (file, line), edges
// by (callee, line), so every downstream traversal and report is
// byte-stable for a given tree.
#ifndef XOAR_SRC_ANALYSIS_FLOW_CALL_GRAPH_H_
#define XOAR_SRC_ANALYSIS_FLOW_CALL_GRAPH_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/source_tree.h"

namespace xoar {
namespace analysis {
namespace flow {

struct FunctionDef {
  std::string name;        // unqualified name
  std::string qualifier;   // defining class, "" for free functions
  std::string ns;          // "::"-joined enclosing namespaces ("xoar::...")
  std::string return_hint;  // base identifier of the return type, if a
                            // class defined in the tree (else empty)
  std::string file;        // tree-relative path
  std::string module;      // src/<module>/, "" for tools/bench/examples
  int line = 0;
  int file_index = 0;           // index into the loaded files vector
  std::size_t body_begin = 0;   // token index of the body's "{"
  std::size_t body_end = 0;     // token index one past the body's "}"
};

struct CallEdge {
  int callee = 0;
  int line = 0;          // call-site line in the caller's file
  bool widened = false;  // speculative edge from a callable-value call
};

struct CallGraph {
  std::vector<FunctionDef> functions;        // sorted by (file, line)
  std::vector<std::vector<CallEdge>> edges;  // per caller, sorted, deduped
  // Classes declared anywhere in the tree, and the per-class method index.
  std::set<std::string> classes;
  std::map<std::string, std::vector<int>> by_class;
  std::map<std::string, std::vector<int>> by_name;
  std::size_t widened_functions = 0;  // callers with >= 1 widened edge
  std::size_t edge_count = 0;
};

CallGraph BuildCallGraph(const std::vector<SourceFile>& files);

// "Class::Method" / "Fn" display name for witness paths.
std::string QualifiedName(const FunctionDef& fn);

}  // namespace flow
}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_FLOW_CALL_GRAPH_H_
