// Small token-stream helpers shared by the flow analyses. Header-only and
// internal to src/analysis/flow (mirrors the static helpers in rules.cc;
// kept separate so the flow passes do not reach into the lint engine's
// anonymous namespace).
#ifndef XOAR_SRC_ANALYSIS_FLOW_TOKEN_UTIL_H_
#define XOAR_SRC_ANALYSIS_FLOW_TOKEN_UTIL_H_

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/lexer.h"

namespace xoar {
namespace analysis {
namespace flow {

inline bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
inline bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// Index of the punct matching the opener at `open` ("(" / "{"), or kNpos.
inline std::size_t MatchingClose(const std::vector<Token>& tokens,
                                 std::size_t open, std::string_view open_text,
                                 std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], open_text)) {
      ++depth;
    } else if (IsPunct(tokens[i], close_text)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return kNpos;
}

// Skips a template-argument list whose "<" sits at `from`; returns the
// index one past the matching ">". Token-level angle matching over a
// bounded window, because "<" is also the less-than operator: on ";" or
// "{" (clearly not a template-argument list) or window exhaustion the
// original index is returned and the "<" is treated as an operator.
inline std::size_t SkipAngles(const std::vector<Token>& t, std::size_t from) {
  int depth = 0;
  const std::size_t limit = std::min(t.size(), from + 64);
  for (std::size_t i = from; i < limit; ++i) {
    if (IsPunct(t[i], "<")) {
      ++depth;
    } else if (IsPunct(t[i], ">")) {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (IsPunct(t[i], ";") || IsPunct(t[i], "{")) {
      break;
    }
  }
  return from;
}

// Identifiers that can precede "(" without being a call or a definition.
inline bool IsControlKeyword(const std::string& text) {
  static const std::set<std::string>* const kKeywords =
      new std::set<std::string>{
          "if",       "else",     "for",      "while",     "do",
          "switch",   "case",     "return",   "goto",      "break",
          "continue", "new",      "delete",   "sizeof",    "alignof",
          "alignas",  "noexcept", "decltype", "catch",     "throw",
          "operator", "constexpr", "static_assert", "assert", "defined",
          "typename", "template", "using",    "namespace", "class",
          "struct",   "enum",     "void",     "auto",      "this",
      };
  return kKeywords->count(text) > 0;
}

}  // namespace flow
}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_FLOW_TOKEN_UTIL_H_
