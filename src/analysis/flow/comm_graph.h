// Code-derived shard communication graph (ANALYSIS.md "Whole-program flow
// analysis", PAPER.md §3.3 / Fig 3).
//
// The paper's isolation argument names WHICH shards talk to which; this
// pass recovers that graph from the implementation instead of trusting the
// design document. Two sources of edges:
//
//   * stop edges from the shard traversal: a resolved call from shard A's
//     closure into shard B's entry class is the in-simulator stand-in for
//     a ring/RPC channel — kind "xenstore" when B is the XenStore service
//     path, "rpc" otherwise;
//   * hypervisor channel primitives reached by A's closure: event-channel
//     ops (Evtchn*/BindVirq) derive an "evtchn" edge, grant-table ops a
//     "grant" edge, and foreign-mapping ops ("map") — all toward the Guest
//     node, because those primitives exist to reach guest memory/ports.
//
// DiffCommGraph compares the derived graph against the declared DAG: a
// derived edge missing from the declaration is a blocking "comm_flow"
// finding (the implementation grew a channel the design does not admit);
// a declared edge with no code behind it is a stale-declaration warning
// (--strict promotes it), reported only when both endpoints' entry classes
// actually exist in the scanned tree so partial fixture trees stay quiet.
#ifndef XOAR_SRC_ANALYSIS_FLOW_COMM_GRAPH_H_
#define XOAR_SRC_ANALYSIS_FLOW_COMM_GRAPH_H_

#include <string>
#include <vector>

#include "src/analysis/flow/reachability.h"

namespace xoar {
namespace analysis {
namespace flow {

struct CommEdge {
  std::string from;
  std::string to;
  std::string kind;  // "rpc" | "xenstore" | "evtchn" | "grant" | "map"
  std::string witness_file;
  int witness_line = 0;
  std::string detail;  // the crossing call or hv primitive, qualified
};

struct DeclaredEdge {
  std::string from;
  std::string to;
  std::string kind;
};

// Derives the communication graph from per-shard closures. Deterministic:
// edges deduped by (from, to, kind) keeping the first witness, output
// sorted by (from, to, kind).
std::vector<CommEdge> DeriveCommGraph(const CallGraph& graph,
                                      const std::vector<ShardClosure>& closures,
                                      const std::vector<ShardSpec>& specs);

std::vector<Finding> DiffCommGraph(const CallGraph& graph,
                                   const std::vector<CommEdge>& derived,
                                   const std::vector<DeclaredEdge>& declared,
                                   const std::vector<ShardSpec>& specs,
                                   bool strict);

}  // namespace flow
}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_FLOW_COMM_GRAPH_H_
