#include "src/analysis/flow/comm_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "src/base/strings.h"

namespace xoar {
namespace analysis {
namespace flow {
namespace {

const char kGuestNode[] = "Guest";

// Classifies an hv function reached by a closure as a channel primitive.
// Returns the edge kind, or "" when the function is not one.
std::string ChannelKind(const std::string& fn_name) {
  if (fn_name.rfind("Evtchn", 0) == 0 || fn_name == "BindVirq" ||
      fn_name == "SendEvent" || fn_name == "NotifyVia") {
    return "evtchn";
  }
  if (fn_name.find("Grant") != std::string::npos) {
    return "grant";
  }
  if (fn_name == "ForeignMap" || fn_name == "ForeignUnmap" ||
      fn_name == "PopulateDomainMemory") {
    return "map";
  }
  return "";
}

}  // namespace

std::vector<CommEdge> DeriveCommGraph(
    const CallGraph& graph, const std::vector<ShardClosure>& closures,
    const std::vector<ShardSpec>& specs) {
  (void)specs;
  std::map<std::tuple<std::string, std::string, std::string>, CommEdge>
      edges;  // keyed (from, to, kind); first witness wins

  auto add = [&edges](CommEdge edge) {
    if (edge.from == edge.to) {
      return;
    }
    edges.emplace(std::make_tuple(edge.from, edge.to, edge.kind),
                  std::move(edge));
  };

  for (const ShardClosure& closure : closures) {
    // In-simulator call crossings into another shard's entry surface.
    for (const StopEdge& stop : closure.stop_edges) {
      const FunctionDef& caller = graph.functions[stop.caller];
      const FunctionDef& callee = graph.functions[stop.callee];
      CommEdge edge;
      edge.from = closure.shard;
      edge.to = stop.target_shard;
      edge.kind = (stop.target_shard == "XenStore-Logic" ||
                   stop.target_shard == "XenStore-State")
                      ? "xenstore"
                      : "rpc";
      edge.witness_file = caller.file;
      edge.witness_line = stop.line;
      edge.detail = StrFormat("%s calls %s", QualifiedName(caller).c_str(),
                              QualifiedName(callee).c_str());
      add(std::move(edge));
    }
    // Hypervisor channel primitives inside the closure. parent is ordered
    // by function index = (file, line), so the first witness is stable.
    for (const auto& [fn, discovered] : closure.parent) {
      const FunctionDef& def = graph.functions[fn];
      if (def.module != "hv") {
        continue;
      }
      const std::string kind = ChannelKind(def.name);
      if (kind.empty()) {
        continue;
      }
      CommEdge edge;
      edge.from = closure.shard;
      edge.to = kGuestNode;
      edge.kind = kind;
      if (discovered.first >= 0) {
        edge.witness_file = graph.functions[discovered.first].file;
        edge.witness_line = discovered.second;
      } else {
        edge.witness_file = def.file;
        edge.witness_line = def.line;
      }
      edge.detail = StrFormat("closure reaches %s",
                              QualifiedName(def).c_str());
      add(std::move(edge));
    }
  }

  std::vector<CommEdge> out;
  out.reserve(edges.size());
  for (auto& [key, edge] : edges) {
    (void)key;
    out.push_back(std::move(edge));
  }
  return out;  // map iteration order == sorted (from, to, kind)
}

std::vector<Finding> DiffCommGraph(const CallGraph& graph,
                                   const std::vector<CommEdge>& derived,
                                   const std::vector<DeclaredEdge>& declared,
                                   const std::vector<ShardSpec>& specs,
                                   bool strict) {
  std::set<std::tuple<std::string, std::string, std::string>> declared_keys;
  for (const DeclaredEdge& edge : declared) {
    declared_keys.insert(std::make_tuple(edge.from, edge.to, edge.kind));
  }
  std::set<std::tuple<std::string, std::string, std::string>> derived_keys;
  for (const CommEdge& edge : derived) {
    derived_keys.insert(std::make_tuple(edge.from, edge.to, edge.kind));
  }
  // A shard is "present" when at least one of its entry classes has a
  // method definition in the scanned tree; the Guest node is present when
  // any shard is. Dead-edge warnings only fire between present endpoints,
  // so a fixture tree that models two shards does not drag in the other
  // seven rows of the declared DAG.
  std::set<std::string> present;
  for (const ShardSpec& spec : specs) {
    for (const std::string& cls : spec.entry_classes) {
      if (graph.by_class.count(cls) > 0) {
        present.insert(spec.shard);
        break;
      }
    }
  }
  if (!present.empty()) {
    present.insert(kGuestNode);
  }

  std::vector<Finding> findings;
  for (const CommEdge& edge : derived) {
    if (declared_keys.count(std::make_tuple(edge.from, edge.to, edge.kind)) >
        0) {
      continue;
    }
    Finding finding;
    finding.rule = "comm_flow";
    finding.file = edge.witness_file;
    finding.line = edge.witness_line;
    finding.message = StrFormat(
        "undeclared %s channel %s -> %s (%s); add it to the declared "
        "communication graph or remove the coupling",
        edge.kind.c_str(), edge.from.c_str(), edge.to.c_str(),
        edge.detail.c_str());
    findings.push_back(std::move(finding));
  }
  for (const DeclaredEdge& edge : declared) {
    if (derived_keys.count(std::make_tuple(edge.from, edge.to, edge.kind)) >
            0 ||
        present.count(edge.from) == 0 || present.count(edge.to) == 0) {
      continue;
    }
    Finding finding;
    finding.rule = "comm_flow";
    finding.file = "<tree>";
    finding.line = 0;
    finding.message = StrFormat(
        "declared %s channel %s -> %s has no code behind it; the "
        "declaration is stale",
        edge.kind.c_str(), edge.from.c_str(), edge.to.c_str());
    finding.warning = !strict;
    findings.push_back(std::move(finding));
  }
  return findings;
}

}  // namespace flow
}  // namespace analysis
}  // namespace xoar
