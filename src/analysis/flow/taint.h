// Nondeterminism taint: unordered-container iteration flowing into
// journaled, audited, or BENCH-exported output (ANALYSIS.md "Whole-program
// flow analysis", DESIGN.md §5c).
//
// The lexical determinism rule bans wall-clock and randomness; this pass
// closes the subtler hole: iterating a `std::unordered_map`/`unordered_set`
// yields an implementation-defined order, and if that order reaches the
// replay journal, the audit log, or a byte-stable BENCH export — directly
// or through any helper chain — record/replay divergence-diffing and
// report byte-stability silently break.
//
// Detection: every unordered-container variable declaration is collected
// tree-wide; an ITERATION SITE is a range-for over such a variable or an
// explicit `var.begin()`/`cbegin()`/`rbegin()` call. A site is a blocking
// "nondet_flow" finding when the iterating function's forward call-graph
// closure reaches a sink method, or when a direct caller of the iterating
// function itself calls a sink (the "helper returns an ordered-by-accident
// vector" pattern). Findings anchor at the iteration site and carry the
// forward witness path to the sink.
#ifndef XOAR_SRC_ANALYSIS_FLOW_TAINT_H_
#define XOAR_SRC_ANALYSIS_FLOW_TAINT_H_

#include <string>
#include <vector>

#include "src/analysis/flow/call_graph.h"
#include "src/analysis/rules.h"

namespace xoar {
namespace analysis {
namespace flow {

// One deterministic-output sink: methods of `cls` whose name starts with
// `method_prefix`. `label` names the output family in messages
// ("journal", "audit", "bench export").
struct SinkSpec {
  std::string cls;
  std::string method_prefix;
  std::string label;
};

std::vector<Finding> CheckNondetFlow(const std::vector<SourceFile>& files,
                                     const CallGraph& graph,
                                     const std::vector<SinkSpec>& sinks);

}  // namespace flow
}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_FLOW_TAINT_H_
