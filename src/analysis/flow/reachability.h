// Interprocedural hypercall-privilege reachability (ANALYSIS.md
// "Whole-program flow analysis", PAPER.md §3.1 / Fig 3.1).
//
// The lexical privilege rule catches a `Hypercall::k*` mention written
// directly in a shard's source file; this pass catches the laundered case
// the paper's audit worried about — a shard that reaches a hypercall
// through any chain of helpers. For every shard we take the closure of the
// call graph from the shard's entry classes and flag every hypercall op
// issued anywhere in that closure that the shard's Fig 3.1 row does not
// grant. Each finding carries a named witness path
// (`NetBack::Flush -> DrainBatch -> Hypervisor::GrantCopy`) so the report
// is actionable without rerunning the analysis.
//
// Two deliberate traversal rules keep the closure meaningful:
//
//   * hv functions are issuance leaves: their own direct op mentions count,
//     but their out-edges are not followed. The hypervisor dispatches
//     through callbacks into every backend; following those edges would
//     transitively connect every shard to every hypercall and the analysis
//     would say nothing.
//   * resolved call edges into ANOTHER shard's entry classes are not
//     followed — in the deployed system that boundary is a ring or an
//     event channel, not a function call, so the callee's privileges stay
//     with the callee. The crossing itself is recorded as a stop edge and
//     becomes a derived communication edge (comm_graph.h). Widened
//     (speculative) edges that land on another shard's entry class are
//     dropped outright: a may-alias guess is not evidence of a channel.
#ifndef XOAR_SRC_ANALYSIS_FLOW_REACHABILITY_H_
#define XOAR_SRC_ANALYSIS_FLOW_REACHABILITY_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/flow/call_graph.h"
#include "src/analysis/rules.h"

namespace xoar {
namespace analysis {
namespace flow {

// One shard's code-level entry surface: requests from other shards (or
// guests) arrive as method calls on these classes.
struct ShardSpec {
  std::string shard;
  std::vector<std::string> entry_classes;
};

// A resolved call edge that crosses from one shard's closure into another
// shard's entry class; traversal stops here.
struct StopEdge {
  int caller = 0;  // function index inside the closure
  int callee = 0;  // entry-class method of the target shard
  int line = 0;    // call-site line in the caller's file
  std::string target_shard;
};

struct ShardClosure {
  std::string shard;
  // Function index -> (discovering caller index or -1 for entry functions,
  // call-site line). Doubles as the visited set and the witness-path
  // parent map; first discovery wins, and BFS order is deterministic.
  std::map<int, std::pair<int, int>> parent;
  std::vector<StopEdge> stop_edges;  // sorted by (caller, callee, line)
  bool widened = false;  // closure includes at least one widened edge
};

// A `Hypercall::k*` op mentioned directly in a function body.
struct OpMention {
  std::string op;
  int line = 0;  // first mention
};

// Direct op mentions per function (indexed like graph.functions).
std::vector<std::vector<OpMention>> CollectDirectOps(
    const std::vector<SourceFile>& files, const CallGraph& graph);

// BFS closure per shard, honoring the hv-leaf and shard-boundary rules
// above. Returns one closure per spec, in spec order.
std::vector<ShardClosure> TraverseShards(const CallGraph& graph,
                                         const std::vector<ShardSpec>& specs);

// One shard's granted ops (its Fig 3.1 row).
struct PrivilegeRow {
  std::string shard;
  bool all_privileges = false;  // Bootstrapper
  std::set<std::string> ops;
};

// Flags every (shard, op) pair where the closure issues an op outside the
// shard's row and outside the unprivileged class. One finding per pair,
// anchored at the call site of the final edge into the issuing function
// (or at the mention itself when the entry function issues directly).
std::vector<Finding> CheckPrivilegeFlow(
    const CallGraph& graph, const std::vector<ShardClosure>& closures,
    const std::vector<std::vector<OpMention>>& direct_ops,
    const std::vector<PrivilegeRow>& rows,
    const std::set<std::string>& unprivileged_ops);

}  // namespace flow
}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_FLOW_REACHABILITY_H_
