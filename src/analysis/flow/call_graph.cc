#include "src/analysis/flow/call_graph.h"

#include <algorithm>
#include <deque>

#include "src/analysis/flow/token_util.h"

namespace xoar {
namespace analysis {
namespace flow {
namespace {

using Tokens = std::vector<Token>;

// Cross-file facts gathered before definitions are scanned.
struct TreeIndex {
  std::set<std::string> classes;                     // defined or forward
  std::map<std::string, std::set<int>> class_files;  // class -> files naming it
  std::map<std::string, std::set<std::string>> bases;     // class -> bases
  std::map<std::string, std::set<std::string>> derived;   // base -> subclasses
  std::map<std::string, std::string> type_alias;     // using A = B / typedef
  std::map<std::string, std::string> ns_alias;       // namespace a = b::c
  std::map<std::string, std::set<std::string>> var_types;  // name -> classes
  std::set<std::string> callables;  // std::function / fn-pointer variables
  std::vector<std::set<int>> include_closure;        // per file, incl. self
};

bool IsWrapper(const std::string& text) {
  return text == "unique_ptr" || text == "shared_ptr" || text == "optional" ||
         text == "StatusOr";
}

bool IsDeclTerminator(const Token& t) {
  return IsPunct(t, ";") || IsPunct(t, "=") || IsPunct(t, ",") ||
         IsPunct(t, ")") || IsPunct(t, "{");
}

// Pass A1: classes, inheritance, and aliases.
void CollectTypes(const std::vector<SourceFile>& files, TreeIndex* index) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const Tokens& t = files[fi].lexed.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const bool is_class_kw =
          IsIdent(t[i], "class") || IsIdent(t[i], "struct");
      if (is_class_kw && !(i > 0 && IsIdent(t[i - 1], "enum")) &&
          i + 1 < t.size() && t[i + 1].kind == TokenKind::kIdentifier) {
        const std::string& name = t[i + 1].text;
        index->classes.insert(name);
        index->class_files[name].insert(static_cast<int>(fi));
        // Base clause: idents between ":" and "{" (access specifiers and
        // "::" chains reduced to the chain's last identifier).
        std::size_t j = i + 2;
        const std::size_t limit = std::min(t.size(), j + 64);
        bool in_bases = false;
        std::string last_ident;
        while (j < limit && !IsPunct(t[j], "{") && !IsPunct(t[j], ";")) {
          if (IsPunct(t[j], ":") ) {
            in_bases = true;
          } else if (in_bases && t[j].kind == TokenKind::kIdentifier &&
                     t[j].text != "public" && t[j].text != "protected" &&
                     t[j].text != "private" && t[j].text != "virtual") {
            last_ident = t[j].text;
          }
          if (in_bases && (IsPunct(t[j], ",") || IsPunct(t[j], "<"))) {
            if (!last_ident.empty()) {
              index->bases[name].insert(last_ident);
              index->derived[last_ident].insert(name);
              last_ident.clear();
            }
            if (IsPunct(t[j], "<")) {
              j = SkipAngles(t, j);
              continue;
            }
          }
          ++j;
        }
        if (in_bases && !last_ident.empty() && j < limit &&
            IsPunct(t[j], "{")) {
          index->bases[name].insert(last_ident);
          index->derived[last_ident].insert(name);
        }
        continue;
      }
      if (IsIdent(t[i], "using") && i + 2 < t.size() &&
          t[i + 1].kind == TokenKind::kIdentifier && IsPunct(t[i + 2], "=")) {
        // using A = <chain>[<...>];  -> A aliases the chain's last ident.
        std::string base;
        for (std::size_t j = i + 3; j < std::min(t.size(), i + 32); ++j) {
          if (t[j].kind == TokenKind::kIdentifier) {
            base = t[j].text;
          } else if (IsPunct(t[j], "<") || IsPunct(t[j], ";")) {
            break;
          }
        }
        if (!base.empty()) {
          index->type_alias[t[i + 1].text] = base;
        }
        continue;
      }
      if (IsIdent(t[i], "typedef")) {
        // typedef <chain> A;
        std::size_t j = i + 1;
        std::string base;
        std::string name;
        while (j < std::min(t.size(), i + 32) && !IsPunct(t[j], ";")) {
          if (t[j].kind == TokenKind::kIdentifier) {
            if (base.empty()) {
              base = t[j].text;
            }
            name = t[j].text;
          }
          ++j;
        }
        if (!base.empty() && !name.empty() && name != base) {
          index->type_alias[name] = base;
        }
        continue;
      }
      if (IsIdent(t[i], "namespace") && i + 2 < t.size() &&
          t[i + 1].kind == TokenKind::kIdentifier && IsPunct(t[i + 2], "=")) {
        std::string chain;
        for (std::size_t j = i + 3; j < std::min(t.size(), i + 32); ++j) {
          if (t[j].kind == TokenKind::kIdentifier) {
            if (!chain.empty()) {
              chain += "::";
            }
            chain += t[j].text;
          } else if (!IsPunct(t[j], "::")) {
            break;
          }
        }
        if (!chain.empty()) {
          index->ns_alias[t[i + 1].text] = chain;
        }
      }
    }
  }
}

std::string ResolveTypeAlias(const TreeIndex& index, const std::string& name) {
  auto it = index.type_alias.find(name);
  return it == index.type_alias.end() ? name : it->second;
}

// Pass A2: declared-variable types and callable-value names.
void CollectVariables(const std::vector<SourceFile>& files, TreeIndex* index) {
  for (const SourceFile& file : files) {
    const Tokens& t = file.lexed.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) {
        // Function-pointer declarator: ( * name ) — name is callable.
        if (IsPunct(t[i], "(") && i + 3 < t.size() && IsPunct(t[i + 1], "*") &&
            t[i + 2].kind == TokenKind::kIdentifier &&
            IsPunct(t[i + 3], ")")) {
          index->callables.insert(t[i + 2].text);
        }
        continue;
      }
      const std::string type = ResolveTypeAlias(*index, t[i].text);
      // std::function<...> name — a callable value; calls through it widen.
      if (type == "function" && IsPunct(t[i + 1], "<")) {
        std::size_t j = SkipAngles(t, i + 1);
        while (j < t.size() && (IsPunct(t[j], "*") || IsPunct(t[j], "&"))) {
          ++j;
        }
        if (j + 1 < t.size() && t[j].kind == TokenKind::kIdentifier &&
            IsDeclTerminator(t[j + 1])) {
          index->callables.insert(t[j].text);
        }
        continue;
      }
      // unique_ptr<T> name and friends: record the first tree-declared
      // class inside the angle brackets as the variable's type.
      if (IsWrapper(type) && IsPunct(t[i + 1], "<")) {
        const std::size_t end = SkipAngles(t, i + 1);
        std::string inner;
        for (std::size_t j = i + 2; j + 1 < end; ++j) {
          if (t[j].kind == TokenKind::kIdentifier &&
              index->classes.count(ResolveTypeAlias(*index, t[j].text)) > 0) {
            inner = ResolveTypeAlias(*index, t[j].text);
            break;
          }
        }
        std::size_t j = end;
        while (j < t.size() && (IsPunct(t[j], "*") || IsPunct(t[j], "&"))) {
          ++j;
        }
        if (!inner.empty() && j + 1 < t.size() &&
            t[j].kind == TokenKind::kIdentifier &&
            IsDeclTerminator(t[j + 1])) {
          index->var_types[t[j].text].insert(inner);
        }
        continue;
      }
      // T name / T* name / T& name, where T is a tree-declared class.
      if (index->classes.count(type) > 0) {
        std::size_t j = i + 1;
        if (j < t.size() && IsPunct(t[j], "<")) {
          j = SkipAngles(t, j);
        }
        while (j < t.size() && (IsPunct(t[j], "*") || IsPunct(t[j], "&"))) {
          ++j;
        }
        if (j + 1 < t.size() && t[j].kind == TokenKind::kIdentifier &&
            !IsControlKeyword(t[j].text) && IsDeclTerminator(t[j + 1])) {
          index->var_types[t[j].text].insert(type);
        }
      }
    }
  }
}

void BuildIncludeClosure(const std::vector<SourceFile>& files,
                         TreeIndex* index) {
  std::map<std::string, int> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) {
    by_path[files[i].path] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> direct(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const IncludeDirective& inc : files[i].lexed.includes) {
      if (inc.angled) {
        continue;
      }
      auto it = by_path.find(inc.path);
      if (it != by_path.end()) {
        direct[i].push_back(it->second);
      }
    }
  }
  index->include_closure.resize(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::set<int>& closure = index->include_closure[i];
    std::deque<int> queue = {static_cast<int>(i)};
    closure.insert(static_cast<int>(i));
    while (!queue.empty()) {
      const int cur = queue.front();
      queue.pop_front();
      for (int next : direct[cur]) {
        if (closure.insert(next).second) {
          queue.push_back(next);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass B: function definitions with scope tracking.
// ---------------------------------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass } kind;
  std::string name;
  std::size_t close;  // token index of the scope's "}"
};

// Finds the body "{" of a definition whose parameter list closed at
// `close`; returns kNpos when the construct is a declaration/expression.
std::size_t FindBodyBrace(const Tokens& t, std::size_t close) {
  std::size_t j = close + 1;
  int guard = 0;
  while (j < t.size() && guard++ < 96) {
    if (IsPunct(t[j], "{")) {
      return j;
    }
    if (IsPunct(t[j], ";") || IsPunct(t[j], "=") || IsPunct(t[j], ",") ||
        IsPunct(t[j], ")")) {
      return kNpos;
    }
    if (IsPunct(t[j], ":")) {
      // Constructor initializer list: x_(...) and y_{...} groups until the
      // body "{" at top level.
      ++j;
      int init_guard = 0;
      while (j < t.size() && init_guard++ < 4096) {
        if (IsPunct(t[j], "(")) {
          const std::size_t mc = MatchingClose(t, j, "(", ")");
          if (mc == kNpos) {
            return kNpos;
          }
          j = mc + 1;
          continue;
        }
        if (t[j].kind == TokenKind::kIdentifier && j + 1 < t.size() &&
            IsPunct(t[j + 1], "{")) {
          const std::size_t mc = MatchingClose(t, j + 1, "{", "}");
          if (mc == kNpos) {
            return kNpos;
          }
          j = mc + 1;
          continue;
        }
        if (IsPunct(t[j], "{")) {
          return j;
        }
        if (IsPunct(t[j], ";")) {
          return kNpos;
        }
        ++j;
      }
      return kNpos;
    }
    ++j;
  }
  return kNpos;
}

// Nearest preceding identifier that looks like a return type (skipping
// cv/storage keywords and type punctuation).
std::string ReturnHint(const Tokens& t, std::size_t name_start,
                       const TreeIndex& index) {
  static const std::set<std::string>* const kSkip = new std::set<std::string>{
      "static", "inline", "constexpr", "virtual", "explicit", "const",
      "friend", "typename", "unsigned", "signed"};
  for (std::size_t i = name_start; i-- > 0;) {
    if (IsPunct(t[i], ";") || IsPunct(t[i], "{") || IsPunct(t[i], "}")) {
      break;
    }
    if (t[i].kind == TokenKind::kIdentifier && kSkip->count(t[i].text) == 0) {
      const std::string type = ResolveTypeAlias(index, t[i].text);
      return index.classes.count(type) > 0 ? type : std::string();
    }
  }
  return {};
}

void ScanDefinitions(const std::vector<SourceFile>& files,
                     const TreeIndex& index, CallGraph* graph) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& file = files[fi];
    const Tokens& t = file.lexed.tokens;
    std::vector<Scope> scopes;
    std::size_t i = 0;
    while (i < t.size()) {
      while (!scopes.empty() && i >= scopes.back().close) {
        scopes.pop_back();
      }
      if (IsIdent(t[i], "namespace")) {
        if (i + 2 < t.size() && t[i + 1].kind == TokenKind::kIdentifier &&
            IsPunct(t[i + 2], "{")) {
          const std::size_t close = MatchingClose(t, i + 2, "{", "}");
          scopes.push_back({Scope::kNamespace, t[i + 1].text,
                            close == kNpos ? t.size() : close});
          i += 3;
          continue;
        }
        if (i + 1 < t.size() && IsPunct(t[i + 1], "{")) {
          const std::size_t close = MatchingClose(t, i + 1, "{", "}");
          scopes.push_back(
              {Scope::kNamespace, "", close == kNpos ? t.size() : close});
          i += 2;
          continue;
        }
        while (i < t.size() && !IsPunct(t[i], ";")) {
          ++i;  // namespace alias; handled in pass A1
        }
        ++i;
        continue;
      }
      if ((IsIdent(t[i], "class") || IsIdent(t[i], "struct")) &&
          !(i > 0 && IsIdent(t[i - 1], "enum")) && i + 1 < t.size() &&
          t[i + 1].kind == TokenKind::kIdentifier) {
        std::size_t j = i + 2;
        const std::size_t limit = std::min(t.size(), j + 64);
        while (j < limit && !IsPunct(t[j], "{") && !IsPunct(t[j], ";")) {
          ++j;
        }
        if (j < limit && IsPunct(t[j], "{")) {
          const std::size_t close = MatchingClose(t, j, "{", "}");
          scopes.push_back({Scope::kClass, t[i + 1].text,
                            close == kNpos ? t.size() : close});
          i = j + 1;
          continue;
        }
        i = j + 1;
        continue;
      }
      if (IsIdent(t[i], "enum")) {
        std::size_t j = i + 1;
        const std::size_t limit = std::min(t.size(), j + 32);
        while (j < limit && !IsPunct(t[j], "{") && !IsPunct(t[j], ";")) {
          ++j;
        }
        if (j < limit && IsPunct(t[j], "{")) {
          const std::size_t close = MatchingClose(t, j, "{", "}");
          i = close == kNpos ? j + 1 : close + 1;
          continue;
        }
        i = j + 1;
        continue;
      }
      if (IsIdent(t[i], "operator")) {
        // Skip operator overloads (declaration or definition) entirely.
        std::size_t j = i + 1;
        const std::size_t limit = std::min(t.size(), j + 96);
        while (j < limit && !IsPunct(t[j], "{") && !IsPunct(t[j], ";")) {
          ++j;
        }
        if (j < limit && IsPunct(t[j], "{")) {
          const std::size_t close = MatchingClose(t, j, "{", "}");
          i = close == kNpos ? j + 1 : close + 1;
        } else {
          i = j + 1;
        }
        continue;
      }
      // Definition candidate: IDENT "(" at namespace/class scope, not a
      // member access, not a destructor, not a control keyword.
      if (t[i].kind == TokenKind::kIdentifier &&
          !IsControlKeyword(t[i].text) && i + 1 < t.size() &&
          IsPunct(t[i + 1], "(") &&
          !(i > 0 && (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "->") ||
                      IsPunct(t[i - 1], "~")))) {
        std::vector<std::string> chain;  // leading A::B:: qualifiers
        std::size_t k = i;
        while (k >= 2 && IsPunct(t[k - 1], "::") &&
               t[k - 2].kind == TokenKind::kIdentifier) {
          chain.insert(chain.begin(), t[k - 2].text);
          k -= 2;
        }
        const std::size_t close = MatchingClose(t, i + 1, "(", ")");
        if (close != kNpos) {
          const std::size_t body = FindBodyBrace(t, close);
          if (body != kNpos) {
            const std::size_t body_close = MatchingClose(t, body, "{", "}");
            FunctionDef def;
            def.name = t[i].text;
            def.file = file.path;
            def.module = file.module;
            def.line = t[i].line;
            def.file_index = static_cast<int>(fi);
            def.body_begin = body;
            def.body_end = body_close == kNpos ? t.size() : body_close + 1;
            for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
              if (it->kind == Scope::kClass && def.qualifier.empty()) {
                def.qualifier = it->name;
              }
            }
            for (const Scope& scope : scopes) {
              if (scope.kind == Scope::kNamespace && !scope.name.empty()) {
                if (!def.ns.empty()) {
                  def.ns += "::";
                }
                def.ns += scope.name;
              }
            }
            for (const std::string& elem : chain) {
              if (index.classes.count(elem) > 0) {
                def.qualifier = elem;  // out-of-line Class::Method
              } else {
                if (!def.ns.empty()) {
                  def.ns += "::";
                }
                def.ns += elem;
              }
            }
            def.return_hint = ReturnHint(t, k, index);
            graph->functions.push_back(std::move(def));
            i = graph->functions.back().body_end;
            continue;
          }
        }
      }
      ++i;
    }
  }
  // Files load in sorted path order and definitions in token order, so the
  // vector is already (file, line)-sorted; the indexes follow from it.
  for (std::size_t idx = 0; idx < graph->functions.size(); ++idx) {
    const FunctionDef& def = graph->functions[idx];
    graph->by_name[def.name].push_back(static_cast<int>(idx));
    if (!def.qualifier.empty()) {
      graph->by_class[def.qualifier].push_back(static_cast<int>(idx));
    }
  }
  graph->classes = index.classes;
}

// ---------------------------------------------------------------------------
// Pass C: call-edge extraction.
// ---------------------------------------------------------------------------

class EdgeExtractor {
 public:
  EdgeExtractor(const std::vector<SourceFile>& files, const TreeIndex& index,
                CallGraph* graph)
      : files_(files), index_(index), graph_(graph) {
    for (std::size_t i = 0; i < graph->functions.size(); ++i) {
      fns_by_file_[graph->functions[i].file_index].push_back(
          static_cast<int>(i));
      fns_by_module_[graph->functions[i].module].push_back(
          static_cast<int>(i));
      if (!graph->functions[i].return_hint.empty()) {
        return_hints_[graph->functions[i].name].insert(
            graph->functions[i].return_hint);
      }
    }
  }

  void Run() {
    graph_->edges.resize(graph_->functions.size());
    for (std::size_t i = 0; i < graph_->functions.size(); ++i) {
      ExtractFor(static_cast<int>(i));
    }
    for (std::size_t i = 0; i < graph_->edges.size(); ++i) {
      std::sort(graph_->edges[i].begin(), graph_->edges[i].end(),
                [](const CallEdge& a, const CallEdge& b) {
                  return std::tie(a.callee, a.line) <
                         std::tie(b.callee, b.line);
                });
      graph_->edge_count += graph_->edges[i].size();
    }
  }

 private:
  // All classes reachable from `seed` along the inheritance relation, both
  // up (inherited methods) and down (virtual overrides).
  std::set<std::string> Hierarchy(const std::string& seed) const {
    std::set<std::string> out = {seed};
    std::deque<std::string> queue = {seed};
    while (!queue.empty()) {
      const std::string cur = queue.front();
      queue.pop_front();
      for (const auto* rel : {&index_.bases, &index_.derived}) {
        auto it = rel->find(cur);
        if (it == rel->end()) {
          continue;
        }
        for (const std::string& next : it->second) {
          if (out.insert(next).second) {
            queue.push_back(next);
          }
        }
      }
    }
    return out;
  }

  void MethodsOf(const std::set<std::string>& types, const std::string& name,
                 std::set<int>* out) const {
    for (const std::string& seed : types) {
      for (const std::string& cls : Hierarchy(seed)) {
        auto it = graph_->by_class.find(cls);
        if (it == graph_->by_class.end()) {
          continue;
        }
        for (int idx : it->second) {
          if (graph_->functions[idx].name == name) {
            out->insert(idx);
          }
        }
      }
    }
  }

  // Fallback for an unresolvable receiver: any method of that name whose
  // class is declared somewhere in the caller's include closure.
  void MethodsVisibleFrom(int caller_file, const std::string& name,
                          std::set<int>* out) const {
    auto it = graph_->by_name.find(name);
    if (it == graph_->by_name.end()) {
      return;
    }
    const std::set<int>& closure = index_.include_closure[caller_file];
    for (int idx : it->second) {
      const FunctionDef& def = graph_->functions[idx];
      if (def.qualifier.empty()) {
        continue;
      }
      auto cf = index_.class_files.find(def.qualifier);
      if (cf == index_.class_files.end()) {
        continue;
      }
      for (int file : cf->second) {
        if (closure.count(file) > 0) {
          out->insert(idx);
          break;
        }
      }
    }
  }

  void FreeFunctions(const FunctionDef& caller, const std::string& name,
                     std::set<int>* out) const {
    auto it = graph_->by_name.find(name);
    if (it == graph_->by_name.end()) {
      return;
    }
    const std::set<int>& closure = index_.include_closure[caller.file_index];
    for (int idx : it->second) {
      const FunctionDef& def = graph_->functions[idx];
      if (!def.qualifier.empty()) {
        continue;
      }
      const bool same_module =
          !caller.module.empty() && def.module == caller.module;
      if (closure.count(def.file_index) > 0 || same_module) {
        out->insert(idx);
      }
    }
  }

  void AddEdges(int caller, const std::set<int>& callees, int line,
                bool widened, std::set<int>* seen) {
    for (int callee : callees) {
      if (callee == caller || seen->count(callee) > 0) {
        continue;
      }
      seen->insert(callee);
      graph_->edges[caller].push_back({callee, line, widened});
    }
  }

  void ExtractFor(int caller_idx) {
    const FunctionDef& caller = graph_->functions[caller_idx];
    const Tokens& t = files_[caller.file_index].lexed.tokens;
    std::set<int> seen;
    bool widened = false;
    for (std::size_t p = caller.body_begin;
         p < std::min(caller.body_end, t.size()); ++p) {
      if (t[p].kind != TokenKind::kIdentifier ||
          IsControlKeyword(t[p].text) || p + 1 >= t.size() ||
          !IsPunct(t[p + 1], "(")) {
        continue;
      }
      const std::string& name = t[p].text;
      const int line = t[p].line;
      if (p >= caller.body_begin + 2 && IsPunct(t[p - 1], "::")) {
        ResolveQualified(caller_idx, t, p, name, line, &seen);
        continue;
      }
      if (p >= caller.body_begin + 2 &&
          (IsPunct(t[p - 1], ".") || IsPunct(t[p - 1], "->"))) {
        ResolveMethod(caller_idx, t, p, name, line, &seen);
        continue;
      }
      // Unqualified: a callable value widens; otherwise try this-calls and
      // visible free functions.
      if (index_.callables.count(name) > 0) {
        std::set<int> all;
        const auto& pool = caller.module.empty()
                               ? fns_by_file_.at(caller.file_index)
                               : fns_by_module_.at(caller.module);
        all.insert(pool.begin(), pool.end());
        AddEdges(caller_idx, all, line, /*widened=*/true, &seen);
        widened = true;
        continue;
      }
      std::set<int> callees;
      if (!caller.qualifier.empty()) {
        MethodsOf({caller.qualifier}, name, &callees);
      }
      FreeFunctions(caller, name, &callees);
      AddEdges(caller_idx, callees, line, /*widened=*/false, &seen);
    }
    if (widened) {
      ++graph_->widened_functions;
    }
  }

  void ResolveQualified(int caller_idx, const Tokens& t, std::size_t p,
                        const std::string& name, int line,
                        std::set<int>* seen) {
    std::vector<std::string> chain;
    std::size_t k = p;
    while (k >= 2 && IsPunct(t[k - 1], "::") &&
           t[k - 2].kind == TokenKind::kIdentifier) {
      chain.insert(chain.begin(), t[k - 2].text);
      k -= 2;
    }
    if (chain.empty()) {
      return;
    }
    // Expand one level of namespace aliasing on the first element, then a
    // type alias on the last.
    auto ns_it = index_.ns_alias.find(chain.front());
    std::string joined;
    if (ns_it != index_.ns_alias.end()) {
      joined = ns_it->second;
      for (std::size_t c = 1; c < chain.size(); ++c) {
        joined += "::" + chain[c];
      }
    } else {
      for (const std::string& elem : chain) {
        if (!joined.empty()) {
          joined += "::";
        }
        joined += elem;
      }
    }
    const std::string last = ResolveTypeAlias(
        index_, joined.substr(joined.rfind(':') == std::string::npos
                                  ? 0
                                  : joined.rfind(':') + 1));
    std::set<int> callees;
    if (index_.classes.count(last) > 0) {
      MethodsOf({last}, name, &callees);
    } else {
      // Namespace-qualified free function: suffix-match the namespace path.
      auto it = graph_->by_name.find(name);
      if (it != graph_->by_name.end()) {
        for (int idx : it->second) {
          const FunctionDef& def = graph_->functions[idx];
          if (!def.qualifier.empty()) {
            continue;
          }
          const std::string& ns = def.ns;
          if (ns == joined ||
              (ns.size() > joined.size() + 2 &&
               ns.compare(ns.size() - joined.size() - 2, 2, "::") == 0 &&
               ns.compare(ns.size() - joined.size(), joined.size(),
                          joined) == 0)) {
            callees.insert(idx);
          }
        }
      }
    }
    AddEdges(caller_idx, callees, line, /*widened=*/false, seen);
  }

  void ResolveMethod(int caller_idx, const Tokens& t, std::size_t p,
                     const std::string& name, int line, std::set<int>* seen) {
    const FunctionDef& caller = graph_->functions[caller_idx];
    const std::size_t q = p - 2;
    std::set<std::string> types;
    bool known = false;
    if (t[q].kind == TokenKind::kIdentifier) {
      if (t[q].text == "this") {
        if (!caller.qualifier.empty()) {
          types.insert(caller.qualifier);
          known = true;
        }
      } else {
        auto it = index_.var_types.find(t[q].text);
        if (it != index_.var_types.end()) {
          types = it->second;
          known = true;
        }
      }
    } else if (IsPunct(t[q], ")")) {
      // Chained call f()->M(...) / f().M(...): use f's return-type hints.
      int depth = 0;
      for (std::size_t j = q + 1; j-- > caller.body_begin;) {
        if (IsPunct(t[j], ")")) {
          ++depth;
        } else if (IsPunct(t[j], "(")) {
          if (--depth == 0) {
            if (j >= 1 && t[j - 1].kind == TokenKind::kIdentifier) {
              auto it = return_hints_.find(t[j - 1].text);
              if (it != return_hints_.end()) {
                types = it->second;
                known = true;
              }
            }
            break;
          }
        }
      }
    }
    std::set<int> callees;
    if (known) {
      MethodsOf(types, name, &callees);
    } else {
      MethodsVisibleFrom(caller.file_index, name, &callees);
    }
    AddEdges(caller_idx, callees, line, /*widened=*/false, seen);
  }

  const std::vector<SourceFile>& files_;
  const TreeIndex& index_;
  CallGraph* graph_;
  std::map<int, std::vector<int>> fns_by_file_;
  std::map<std::string, std::vector<int>> fns_by_module_;
  std::map<std::string, std::set<std::string>> return_hints_;
};

}  // namespace

CallGraph BuildCallGraph(const std::vector<SourceFile>& files) {
  CallGraph graph;
  TreeIndex index;
  CollectTypes(files, &index);
  CollectVariables(files, &index);
  BuildIncludeClosure(files, &index);
  ScanDefinitions(files, index, &graph);
  EdgeExtractor(files, index, &graph).Run();
  return graph;
}

std::string QualifiedName(const FunctionDef& fn) {
  return fn.qualifier.empty() ? fn.name : fn.qualifier + "::" + fn.name;
}

}  // namespace flow
}  // namespace analysis
}  // namespace xoar
