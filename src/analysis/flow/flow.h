// xoar_flow: whole-program flow analysis over the lexed source tree
// (ANALYSIS.md "Whole-program flow analysis", DESIGN.md §5j).
//
// Three interprocedural rules on top of the call graph (call_graph.h):
//
//   privilege_flow — a shard's call-graph closure reaches a hypercall op
//                    its Fig 3.1 row does not grant (reachability.h);
//   comm_flow      — the communication graph derived from the code differs
//                    from the declared shard DAG (comm_graph.h);
//   nondet_flow    — unordered-container iteration order flows into
//                    journaled / audited / BENCH-exported output (taint.h).
//
// Plus the shared "suppression" pseudo-rule: malformed or stale
// `// xoar-flow: allow(<rule>): <justification>` comments. xoar-lint
// comments never silence flow findings and vice versa.
//
// Everything here is deterministic for a given tree; FormatFlowJson output
// is byte-stable, which tier-1 CTest enforces by running the tool twice.
#ifndef XOAR_SRC_ANALYSIS_FLOW_FLOW_H_
#define XOAR_SRC_ANALYSIS_FLOW_FLOW_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/flow/call_graph.h"
#include "src/analysis/flow/comm_graph.h"
#include "src/analysis/flow/reachability.h"
#include "src/analysis/flow/taint.h"
#include "src/analysis/report.h"
#include "src/analysis/rules.h"

namespace xoar {
namespace analysis {
namespace flow {

struct FlowConfig {
  // Shard entry surfaces, privilege rows, and the declared communication
  // DAG. The unprivileged hypercall class is parsed from the hypercall
  // header when the tree contains it (same extraction the lexical
  // privilege rule uses), so the two rules can never disagree about it.
  std::vector<ShardSpec> entries;
  std::vector<PrivilegeRow> privileges;
  std::vector<DeclaredEdge> declared_comm;
  std::vector<SinkSpec> sinks;
  std::string hypercall_header_suffix = "src/hv/hypercall.h";
  bool strict = false;  // promote warnings to blocking findings
};

// The authoritative tables for the real tree: entry classes per shard,
// Fig 3.1 rows (mirroring the lexical rule's grant table, plus the QemuVM
// §5.6 per-guest foreign-map row), the declared communication DAG from
// PAPER.md Fig 3 / DESIGN.md, and the deterministic-output sinks.
FlowConfig DefaultFlowConfig();

// Rules an xoar-flow suppression comment may name.
std::vector<std::string> FlowSuppressibleRules();

struct FlowResult {
  std::vector<Finding> findings;  // sorted (file, line, rule, message)
  std::vector<CommEdge> derived_comm;
  std::size_t files_scanned = 0;
  std::size_t functions = 0;
  std::size_t call_edges = 0;
  std::size_t widened_functions = 0;
};

FlowResult RunFlow(const std::vector<SourceFile>& files,
                   const FlowConfig& config);

// One containment recomputation over an interface graph (declared or
// derived), produced by src/security's interface-graph analyzer and
// exported side by side in the report. Values are integers so the report
// stays byte-stable (mean reach is exported in thousandths).
struct GraphStats {
  std::string label;  // "declared" | "derived"
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t attack_surface = 0;  // shards adjacent to the Guest node
  std::size_t max_reach = 0;
  std::size_t mean_reach_milli = 0;
};

// BENCH-shape JSON (context + benchmarks + findings + comm_graph). The
// caller supplies containment stats and optional extra integer gauges
// (bench/micro_lint adds its lint_cost.* timings; timing gauges are the
// one intentionally non-stable field and only the bench writes them).
std::string FormatFlowJson(
    const FlowResult& result, const LintSummary& summary,
    const std::vector<GraphStats>& containment,
    const std::vector<std::pair<std::string, std::size_t>>& extra_gauges);

}  // namespace flow
}  // namespace analysis
}  // namespace xoar

#endif  // XOAR_SRC_ANALYSIS_FLOW_FLOW_H_
