#include "src/analysis/flow/flow.h"

#include <algorithm>
#include <set>

#include "src/base/strings.h"

namespace xoar {
namespace analysis {
namespace flow {
namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

FlowConfig DefaultFlowConfig() {
  FlowConfig config;

  // Code-level entry surface per shard (DESIGN.md §3): requests from other
  // shards or guests arrive as calls on these classes. MonolithicPlatform
  // is deliberately absent — it models the stock-Dom0 baseline, not a
  // shard. Guest frontends are modeled so guest-side closures exist and
  // cross-shard calls INTO frontends derive edges instead of leaking
  // backend privileges into the guest row.
  config.entries = {
      {"Bootstrapper", {"XoarPlatform"}},
      {"Builder", {"Builder"}},
      {"Toolstack", {"Toolstack"}},
      {"PCIBack", {"PciBackService"}},
      {"NetBack", {"NetBack"}},
      {"BlkBack", {"BlkBack"}},
      {"Console Manager", {"ConsoleBackend"}},
      {"XenStore-Logic", {"XenStoreService"}},
      {"XenStore-State", {"XsStore", "XsShardedStore"}},
      {"QemuVM", {"DeviceEmulator"}},
      {"Guest", {"NetFront", "BlkFront"}},
  };

  // Fig 3.1 rows. The first five mirror the lexical rule's grant table
  // (rules.cc DefaultConfig — kept textually in sync, and the WILL_FAIL
  // fixtures catch drift in either direction); QemuVM's per-guest
  // foreign-map privilege is §5.6 (DMA on behalf of its one guest). Every
  // other shard holds NO privileged hypercalls: the device paths run
  // entirely on the unprivileged class (event channels, grant tables).
  config.privileges = {
      {"Bootstrapper", /*all_privileges=*/true, {}},
      {"Builder",
       false,
       {"kDomctlCreate", "kDomctlDestroy", "kDomctlPause", "kDomctlUnpause",
        "kForeignMemoryMap", "kDomctlSetPrivileges", "kDomctlDelegate",
        "kSnapshotOp", "kSetupGuestRings"}},
      {"PCIBack",
       false,
       {"kDomctlSetPrivileges", "kPhysdevOp", "kPciConfigOp",
        "kDomctlDestroy"}},
      {"Toolstack", false, {"kDomctlPause", "kDomctlUnpause", "kDomctlDestroy"}},
      {"XenStore-State", false, {}},
      {"QemuVM", false, {"kForeignMemoryMap"}},
      {"NetBack", false, {}},
      {"BlkBack", false, {}},
      {"Console Manager", false, {}},
      {"XenStore-Logic", false, {}},
      {"Guest", false, {}},
  };

  // The declared shard communication DAG (PAPER.md Fig 3): control-plane
  // RPC down the management chain, XenStore as the rendezvous bus, and
  // device/builder channels into guest memory. DiffCommGraph holds the
  // implementation to exactly this list.
  config.declared_comm = {
      // Bootstrapper provisions every shard (and seeds the sharded
      // XenStore-State with its manager domain) before handing control to
      // the toolstack.
      {"Bootstrapper", "Builder", "rpc"},
      {"Bootstrapper", "Toolstack", "rpc"},
      {"Bootstrapper", "PCIBack", "rpc"},
      {"Bootstrapper", "NetBack", "rpc"},
      {"Bootstrapper", "BlkBack", "rpc"},
      {"Bootstrapper", "Console Manager", "rpc"},
      {"Bootstrapper", "QemuVM", "rpc"},
      {"Bootstrapper", "XenStore-Logic", "xenstore"},
      {"Bootstrapper", "XenStore-State", "xenstore"},
      {"Bootstrapper", "Guest", "grant"},
      // Management chain: the toolstack drives the builder and the device
      // backends, and (in-simulator) pokes guest frontends to connect —
      // the stand-in for the guest booting and probing its devices.
      {"Toolstack", "Builder", "rpc"},
      {"Toolstack", "NetBack", "rpc"},
      {"Toolstack", "BlkBack", "rpc"},
      {"Toolstack", "Guest", "rpc"},
      {"Toolstack", "XenStore-Logic", "xenstore"},
      // VM building: memory population plus console wiring (§5.4).
      {"Builder", "XenStore-Logic", "xenstore"},
      {"Builder", "Console Manager", "rpc"},
      {"Builder", "Guest", "map"},
      // XenStore: logic fronts the restartable state shards; rings into
      // guests use grants (Xoar mode) or the §4.4 stock foreign map.
      {"XenStore-Logic", "XenStore-State", "xenstore"},
      {"XenStore-Logic", "Guest", "evtchn"},
      {"XenStore-Logic", "Guest", "grant"},
      {"XenStore-Logic", "Guest", "map"},
      // Device backends: grant-mapped rings + event-channel signalling.
      {"NetBack", "XenStore-Logic", "xenstore"},
      {"NetBack", "Guest", "evtchn"},
      {"NetBack", "Guest", "grant"},
      {"BlkBack", "XenStore-Logic", "xenstore"},
      {"BlkBack", "Guest", "evtchn"},
      {"BlkBack", "Guest", "grant"},
      {"Console Manager", "Guest", "evtchn"},
      {"Console Manager", "Guest", "grant"},
      {"Console Manager", "Guest", "map"},
      // PCIBack assigns hardware capabilities to its guest (§5.8); QemuVM
      // maps its one guest's memory for emulated DMA (§5.6).
      {"PCIBack", "Guest", "grant"},
      {"QemuVM", "Guest", "map"},
      {"Guest", "XenStore-Logic", "xenstore"},
  };

  // Deterministic-output sinks for the taint rule (DESIGN.md §5c): the
  // replay journal, the audit log, and the byte-stable JSON exporters.
  config.sinks = {
      {"Journal", "Append", "journal"},
      {"AuditLog", "Record", "audit"},
      {"MetricRegistry", "WriteJsonFile", "bench export"},
      {"TraceSink", "WriteJsonFile", "bench export"},
  };
  return config;
}

std::vector<std::string> FlowSuppressibleRules() {
  return {"comm_flow", "nondet_flow", "privilege_flow"};
}

FlowResult RunFlow(const std::vector<SourceFile>& files,
                   const FlowConfig& config) {
  FlowResult result;
  result.files_scanned = files.size();

  const CallGraph graph = BuildCallGraph(files);
  result.functions = graph.functions.size();
  result.call_edges = graph.edge_count;
  result.widened_functions = graph.widened_functions;

  std::set<std::string> unprivileged;
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, config.hypercall_header_suffix)) {
      unprivileged = ExtractUnprivilegedHypercallOps(file);
      break;
    }
  }

  const std::vector<std::vector<OpMention>> direct_ops =
      CollectDirectOps(files, graph);
  const std::vector<ShardClosure> closures =
      TraverseShards(graph, config.entries);

  std::vector<Finding> findings = CheckPrivilegeFlow(
      graph, closures, direct_ops, config.privileges, unprivileged);

  result.derived_comm = DeriveCommGraph(graph, closures, config.entries);
  std::vector<Finding> comm = DiffCommGraph(
      graph, result.derived_comm, config.declared_comm, config.entries,
      config.strict);
  findings.insert(findings.end(), std::make_move_iterator(comm.begin()),
                  std::make_move_iterator(comm.end()));

  std::vector<Finding> taint = CheckNondetFlow(files, graph, config.sinks);
  findings.insert(findings.end(), std::make_move_iterator(taint.begin()),
                  std::make_move_iterator(taint.end()));

  ApplyToolSuppressions(files, "flow", FlowSuppressibleRules(), config.strict,
                        &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  result.findings = std::move(findings);
  return result;
}

std::string FormatFlowJson(
    const FlowResult& result, const LintSummary& summary,
    const std::vector<GraphStats>& containment,
    const std::vector<std::pair<std::string, std::size_t>>& extra_gauges) {
  // Assemble the metric list first so the trailing-comma logic stays in
  // one place regardless of how many containment/extra entries exist.
  std::vector<std::pair<std::string, std::size_t>> counters;
  std::map<std::string, std::size_t> per_rule;
  for (const std::string& rule : FlowSuppressibleRules()) {
    per_rule[rule] = 0;
  }
  per_rule["suppression"] = 0;
  for (const Finding& finding : result.findings) {
    if (!finding.suppressed && !finding.warning) {
      ++per_rule[finding.rule];
    }
  }
  std::vector<std::pair<std::string, std::size_t>> gauges = {
      {"flow.files_scanned", result.files_scanned},
      {"flow.functions", result.functions},
      {"flow.call_edges", result.call_edges},
      {"flow.widened_functions", result.widened_functions},
      {"flow.comm.derived_edges", result.derived_comm.size()},
  };
  for (const GraphStats& stats : containment) {
    const std::string prefix = "flow.containment." + stats.label;
    gauges.push_back({prefix + ".nodes", stats.nodes});
    gauges.push_back({prefix + ".edges", stats.edges});
    gauges.push_back({prefix + ".attack_surface", stats.attack_surface});
    gauges.push_back({prefix + ".max_reach", stats.max_reach});
    gauges.push_back({prefix + ".mean_reach_milli", stats.mean_reach_milli});
  }
  for (const auto& extra : extra_gauges) {
    gauges.push_back(extra);
  }
  for (const auto& [rule, count] : per_rule) {
    counters.push_back({"flow.findings." + rule, count});
  }
  counters.push_back({"flow.findings.total", summary.unsuppressed});
  counters.push_back({"flow.suppressed.total", summary.suppressed});
  counters.push_back({"flow.warnings.total", summary.warnings});

  std::string out;
  out += "{\n";
  out += "  \"context\": {\n";
  out += "    \"executable\": \"xoar_flow\",\n";
  out += "    \"sim_time_ns\": 0\n";
  out += "  },\n";
  out += "  \"benchmarks\": [\n";
  const std::size_t total = gauges.size() + counters.size();
  std::size_t emitted = 0;
  auto metric = [&out, &emitted, total](const std::string& name,
                                        const char* run_type,
                                        std::size_t value) {
    ++emitted;
    out += StrFormat(
        "    {\"name\": \"%s\", \"run_type\": \"%s\", \"value\": %zu}%s\n",
        name.c_str(), run_type, value, emitted == total ? "" : ",");
  };
  for (const auto& [name, value] : gauges) {
    metric(name, "gauge", value);
  }
  for (const auto& [name, value] : counters) {
    metric(name, "counter", value);
  }
  out += "  ],\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out += StrFormat(
        "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, "
        "\"message\": \"%s\", \"suppressed\": %s, \"warning\": %s, "
        "\"justification\": \"%s\"}%s\n",
        JsonEscape(f.rule).c_str(), JsonEscape(f.file).c_str(), f.line,
        JsonEscape(f.message).c_str(), f.suppressed ? "true" : "false",
        f.warning ? "true" : "false", JsonEscape(f.justification).c_str(),
        i + 1 == result.findings.size() ? "" : ",");
  }
  out += "  ],\n";
  out += "  \"comm_graph\": [\n";
  for (std::size_t i = 0; i < result.derived_comm.size(); ++i) {
    const CommEdge& e = result.derived_comm[i];
    out += StrFormat(
        "    {\"from\": \"%s\", \"to\": \"%s\", \"kind\": \"%s\", "
        "\"witness_file\": \"%s\", \"witness_line\": %d, "
        "\"detail\": \"%s\"}%s\n",
        JsonEscape(e.from).c_str(), JsonEscape(e.to).c_str(),
        JsonEscape(e.kind).c_str(), JsonEscape(e.witness_file).c_str(),
        e.witness_line, JsonEscape(e.detail).c_str(),
        i + 1 == result.derived_comm.size() ? "" : ",");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace flow
}  // namespace analysis
}  // namespace xoar
