#include "src/analysis/flow/reachability.h"

#include <algorithm>
#include <deque>

#include "src/analysis/flow/token_util.h"
#include "src/base/strings.h"

namespace xoar {
namespace analysis {
namespace flow {
namespace {

const char kHypercallEnum[] = "Hypercall";

std::string WitnessStep(const CallGraph& graph, int fn) {
  const FunctionDef& def = graph.functions[fn];
  return StrFormat("%s [%s:%d]", QualifiedName(def).c_str(),
                   def.file.c_str(), def.line);
}

}  // namespace

std::vector<std::vector<OpMention>> CollectDirectOps(
    const std::vector<SourceFile>& files, const CallGraph& graph) {
  std::vector<std::vector<OpMention>> ops(graph.functions.size());
  for (std::size_t fi = 0; fi < graph.functions.size(); ++fi) {
    const FunctionDef& def = graph.functions[fi];
    const std::vector<Token>& t = files[def.file_index].lexed.tokens;
    std::map<std::string, int> first_line;
    const std::size_t end = std::min(def.body_end, t.size());
    for (std::size_t i = def.body_begin; i + 2 < end; ++i) {
      if (!IsIdent(t[i], kHypercallEnum) || !IsPunct(t[i + 1], "::") ||
          t[i + 2].kind != TokenKind::kIdentifier) {
        continue;
      }
      const std::string& op = t[i + 2].text;
      if (op.size() < 2 || op[0] != 'k' || op == "kCount") {
        continue;
      }
      first_line.emplace(op, t[i + 2].line);  // keeps the first mention
    }
    for (const auto& [op, line] : first_line) {
      ops[fi].push_back({op, line});
    }
  }
  return ops;
}

std::vector<ShardClosure> TraverseShards(const CallGraph& graph,
                                         const std::vector<ShardSpec>& specs) {
  // Entry class -> owning shard, for the boundary-stop rule.
  std::map<std::string, std::string> shard_of_class;
  for (const ShardSpec& spec : specs) {
    for (const std::string& cls : spec.entry_classes) {
      shard_of_class.emplace(cls, spec.shard);
    }
  }

  std::vector<ShardClosure> closures;
  closures.reserve(specs.size());
  for (const ShardSpec& spec : specs) {
    ShardClosure closure;
    closure.shard = spec.shard;
    std::deque<int> queue;
    for (const std::string& cls : spec.entry_classes) {
      auto it = graph.by_class.find(cls);
      if (it == graph.by_class.end()) {
        continue;
      }
      for (int fn : it->second) {
        if (closure.parent.emplace(fn, std::make_pair(-1, 0)).second) {
          queue.push_back(fn);
        }
      }
    }
    while (!queue.empty()) {
      const int cur = queue.front();
      queue.pop_front();
      // hv functions are issuance leaves (see header).
      if (graph.functions[cur].module == "hv") {
        continue;
      }
      for (const CallEdge& edge : graph.edges[cur]) {
        const FunctionDef& callee = graph.functions[edge.callee];
        auto owner = callee.qualifier.empty()
                         ? shard_of_class.end()
                         : shard_of_class.find(callee.qualifier);
        if (owner != shard_of_class.end() && owner->second != spec.shard) {
          if (!edge.widened) {
            closure.stop_edges.push_back(
                {cur, edge.callee, edge.line, owner->second});
          }
          continue;
        }
        if (edge.widened) {
          closure.widened = true;
        }
        if (closure.parent
                .emplace(edge.callee, std::make_pair(cur, edge.line))
                .second) {
          queue.push_back(edge.callee);
        }
      }
    }
    std::sort(closure.stop_edges.begin(), closure.stop_edges.end(),
              [](const StopEdge& a, const StopEdge& b) {
                return std::tie(a.caller, a.callee, a.line) <
                       std::tie(b.caller, b.callee, b.line);
              });
    closures.push_back(std::move(closure));
  }
  return closures;
}

std::vector<Finding> CheckPrivilegeFlow(
    const CallGraph& graph, const std::vector<ShardClosure>& closures,
    const std::vector<std::vector<OpMention>>& direct_ops,
    const std::vector<PrivilegeRow>& rows,
    const std::set<std::string>& unprivileged_ops) {
  std::map<std::string, const PrivilegeRow*> row_of;
  for (const PrivilegeRow& row : rows) {
    row_of.emplace(row.shard, &row);
  }

  std::vector<Finding> findings;
  for (const ShardClosure& closure : closures) {
    auto row_it = row_of.find(closure.shard);
    const PrivilegeRow* row =
        row_it == row_of.end() ? nullptr : row_it->second;
    if (row != nullptr && row->all_privileges) {
      continue;
    }
    std::set<std::string> reported;
    // parent is an ordered map over function indices, which are themselves
    // (file, line)-ordered, so iteration (and therefore which witness wins
    // for a deduped op) is deterministic.
    for (const auto& [fn, discovered] : closure.parent) {
      (void)discovered;
      for (const OpMention& mention : direct_ops[fn]) {
        if (unprivileged_ops.count(mention.op) > 0 ||
            (row != nullptr && row->ops.count(mention.op) > 0) ||
            reported.count(mention.op) > 0) {
          continue;
        }
        reported.insert(mention.op);

        // Witness path: entry function down to the issuing function.
        std::vector<int> chain;
        for (int hop = fn; hop != -1; hop = closure.parent.at(hop).first) {
          chain.push_back(hop);
        }
        std::reverse(chain.begin(), chain.end());
        std::string path;
        for (int hop : chain) {
          if (!path.empty()) {
            path += " -> ";
          }
          path += WitnessStep(graph, hop);
        }
        path += StrFormat(" issues %s::%s at line %d", kHypercallEnum,
                          mention.op.c_str(), mention.line);

        Finding finding;
        finding.rule = "privilege_flow";
        if (chain.size() >= 2) {
          // Anchor at the call site of the final edge into the issuer —
          // a real code line a suppression comment can sit on.
          const int caller = closure.parent.at(fn).first;
          finding.file = graph.functions[caller].file;
          finding.line = closure.parent.at(fn).second;
        } else {
          finding.file = graph.functions[fn].file;
          finding.line = mention.line;
        }
        finding.message = StrFormat(
            "shard \"%s\" reaches %s::%s with no Fig 3.1 grant%s: %s",
            closure.shard.c_str(), kHypercallEnum, mention.op.c_str(),
            closure.widened ? " (closure includes widened edges)" : "",
            path.c_str());
        findings.push_back(std::move(finding));
      }
    }
  }
  return findings;
}

}  // namespace flow
}  // namespace analysis
}  // namespace xoar
