// Flow-level TCP model.
//
// The restart experiments (Fig 6.3, Fig 6.5) are governed by how TCP reacts
// to a driver-domain outage: in-flight data is lost, the retransmission
// timer backs off exponentially while the path is down, and the connection
// resumes in slow start when a probe finally succeeds. TcpFlow reproduces
// exactly that control loop at RTT-round granularity (one simulator event
// per congestion-window round trip), which keeps multi-gigabyte transfers
// tractable while preserving the timeout/backoff/slow-start dynamics that
// shape the paper's curves.
//
// TcpConnect models connection establishment: a SYN sent into a dead path
// is retried on the standard 3 s / 9 s / 21 s schedule — the source of the
// multi-second worst-case latencies the paper reports for the Apache
// benchmark under frequent restarts.
#ifndef XOAR_SRC_NET_TCP_H_
#define XOAR_SRC_NET_TCP_H_

#include <cstdint>
#include <functional>

#include "src/base/ids.h"
#include "src/base/units.h"
#include "src/sim/simulator.h"

namespace xoar {

struct TcpParams {
  std::uint32_t mss = 1448;                         // bytes per segment
  SimDuration rtt = 200 * kMicrosecond;             // LAN round trip
  SimDuration initial_rto = FromMilliseconds(200);  // Linux TCP_RTO_MIN
  SimDuration max_rto = FromSeconds(60);
  double initial_cwnd = 10;  // segments (IW10)
  // Congestion window ceiling as a multiple of the path BDP; models receive
  // window / buffer autotuning headroom.
  double cwnd_bdp_headroom = 1.2;
  // Goodput fraction of raw link rate (header + ack overhead).
  double protocol_efficiency = 0.941;
};

// True when the path can carry data end to end (backend up, link up).
using PathProbe = std::function<bool()>;
// Available path rate in bits/second at this instant (bottleneck link).
using RateProbe = std::function<double()>;

class TcpFlow {
 public:
  struct Result {
    std::uint64_t bytes_delivered = 0;
    SimTime started_at = 0;
    SimTime completed_at = 0;
    std::uint32_t timeouts = 0;       // RTO expirations
    std::uint32_t retransmits = 0;    // failed probes during backoff
    double MeanThroughputBytesPerSec() const {
      if (completed_at <= started_at) {
        return 0.0;
      }
      return static_cast<double>(bytes_delivered) /
             ToSeconds(completed_at - started_at);
    }
  };

  using DoneCallback = std::function<void(const Result&)>;

  TcpFlow(Simulator* sim, TcpParams params, std::uint64_t total_bytes,
          PathProbe path_up, RateProbe rate, DoneCallback done);

  // Begins the transfer. One flow instance runs one transfer.
  void Start();

  bool finished() const { return finished_; }
  const Result& result() const { return result_; }
  std::uint64_t bytes_delivered() const { return result_.bytes_delivered; }

 private:
  void Round();
  void OnLoss();
  void Probe();
  void Complete();
  double CwndCapSegments() const;

  Simulator* sim_;
  TcpParams params_;
  std::uint64_t total_bytes_;
  PathProbe path_up_;
  RateProbe rate_;
  DoneCallback done_;

  double cwnd_;      // segments
  double ssthresh_;  // segments
  SimDuration rto_;
  bool started_ = false;
  bool finished_ = false;
  Result result_;
};

// Connection establishment with SYN retransmission backoff.
class TcpConnect {
 public:
  // Calls `done(elapsed, attempts)` once the handshake completes. If the
  // path stays down past `give_up_after`, done is called with attempts=0
  // (connection failure).
  using DoneCallback = std::function<void(SimDuration elapsed, int attempts)>;

  TcpConnect(Simulator* sim, PathProbe path_up, DoneCallback done,
             SimDuration syn_retry_base = FromSeconds(3),
             SimDuration give_up_after = FromSeconds(63));

  void Start();

 private:
  void Attempt();

  Simulator* sim_;
  PathProbe path_up_;
  DoneCallback done_;
  SimDuration syn_retry_base_;
  SimDuration give_up_after_;
  SimTime started_at_ = 0;
  SimDuration next_backoff_;
  int attempts_ = 0;
};

}  // namespace xoar

#endif  // XOAR_SRC_NET_TCP_H_
