#include "src/net/tcp.h"

#include <algorithm>

namespace xoar {

TcpFlow::TcpFlow(Simulator* sim, TcpParams params, std::uint64_t total_bytes,
                 PathProbe path_up, RateProbe rate, DoneCallback done)
    : sim_(sim),
      params_(params),
      total_bytes_(total_bytes),
      path_up_(std::move(path_up)),
      rate_(std::move(rate)),
      done_(std::move(done)),
      cwnd_(params.initial_cwnd),
      ssthresh_(1e9),
      rto_(params.initial_rto) {}

double TcpFlow::CwndCapSegments() const {
  const double rate_bps = rate_ ? rate_() : 1e9;
  const double bdp_bytes = rate_bps / 8.0 * ToSeconds(params_.rtt);
  return std::max(2.0, params_.cwnd_bdp_headroom * bdp_bytes /
                           static_cast<double>(params_.mss));
}

void TcpFlow::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  result_.started_at = sim_->Now();
  sim_->ScheduleAfter(0, [this] { Round(); });
}

void TcpFlow::Round() {
  if (finished_) {
    return;
  }
  if (result_.bytes_delivered >= total_bytes_) {
    Complete();
    return;
  }
  if (!path_up_()) {
    OnLoss();
    return;
  }
  // Bytes deliverable this round: window-limited or rate-limited.
  const double rate_bps = rate_() * params_.protocol_efficiency;
  if (rate_bps <= 0) {
    OnLoss();
    return;
  }
  const double window_bytes = cwnd_ * static_cast<double>(params_.mss);
  const double rate_bytes = rate_bps / 8.0 * ToSeconds(params_.rtt);
  const std::uint64_t remaining = total_bytes_ - result_.bytes_delivered;
  const std::uint64_t burst = static_cast<std::uint64_t>(std::min(
      {window_bytes, rate_bytes, static_cast<double>(remaining)}));
  result_.bytes_delivered += std::max<std::uint64_t>(burst, params_.mss);

  // Window evolution: slow start below ssthresh, then congestion avoidance.
  if (cwnd_ < ssthresh_) {
    cwnd_ *= 2.0;
  } else {
    cwnd_ += 1.0;
  }
  cwnd_ = std::min(cwnd_, CwndCapSegments());
  rto_ = params_.initial_rto;  // successful round resets the timer

  sim_->ScheduleAfter(params_.rtt, [this] { Round(); });
}

void TcpFlow::OnLoss() {
  // The in-flight window is lost; the retransmission timer will fire after
  // the current RTO. Multiplicative decrease records the new ssthresh.
  ++result_.timeouts;
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  sim_->ScheduleAfter(rto_, [this] { Probe(); });
}

void TcpFlow::Probe() {
  if (finished_) {
    return;
  }
  if (path_up_()) {
    // Retransmission got through; resume in slow start (cwnd is already 1).
    rto_ = params_.initial_rto;
    sim_->ScheduleAfter(params_.rtt, [this] { Round(); });
    return;
  }
  ++result_.retransmits;
  rto_ = std::min(rto_ * 2, params_.max_rto);
  sim_->ScheduleAfter(rto_, [this] { Probe(); });
}

void TcpFlow::Complete() {
  finished_ = true;
  result_.completed_at = sim_->Now();
  if (done_) {
    done_(result_);
  }
}

TcpConnect::TcpConnect(Simulator* sim, PathProbe path_up, DoneCallback done,
                       SimDuration syn_retry_base, SimDuration give_up_after)
    : sim_(sim),
      path_up_(std::move(path_up)),
      done_(std::move(done)),
      syn_retry_base_(syn_retry_base),
      give_up_after_(give_up_after),
      next_backoff_(syn_retry_base) {}

void TcpConnect::Start() {
  started_at_ = sim_->Now();
  Attempt();
}

void TcpConnect::Attempt() {
  ++attempts_;
  if (path_up_()) {
    if (done_) {
      done_(sim_->Now() - started_at_, attempts_);
    }
    return;
  }
  const SimDuration elapsed = sim_->Now() - started_at_;
  if (elapsed + next_backoff_ > give_up_after_) {
    if (done_) {
      done_(elapsed, 0);  // connection failure
    }
    return;
  }
  // SYN lost: retry after the backoff (3 s, then 6 s, 12 s, ... as in
  // Linux's doubling schedule starting from TCP_TIMEOUT_INIT).
  sim_->ScheduleAfter(next_backoff_, [this] { Attempt(); });
  next_backoff_ *= 2;
}

}  // namespace xoar
