// Fleet resilience scenarios (RESILIENCE.md "Fleet"): the three
// operations a production rack must survive, driven end-to-end against a
// live Fleet with workloads running and fault campaigns armed. Shared by
// bench/fleet_campaign and tests/fleet_test the same way RunProbeCampaign
// is shared by bench/fault_campaign — record/replay only means anything
// when the recorder and the verifier execute the same driver.
//
//   1. Evacuation under fire: drain every guest off a victim host while a
//      randomized fault campaign (shard crashes, hangs, and
//      kMigrationStreamDrop windows) runs on it. Stream drops abort
//      mid-migration; the orchestrator retries with bounded exponential
//      backoff and the destination shell is provably torn down each time.
//   2. Rolling microreboot upgrade wave: host by host, evacuate, slow-
//      restart every restartable shard (the "upgrade"), then hold a
//      health gate — the step's own workload p99 (HistWindow delta) must
//      stay under the SLO or the wave aborts and the fleet re-spreads.
//      The storm variant arms wall-to-wall stream-drop windows on every
//      host so evacuations fail, guests ride through shard restarts, p99
//      breaches, and the gate must trip.
//   3. Rebalance after a traffic spike: quadruple the net demand of one
//      host's guests and let the load balancer migrate the spread back
//      under threshold.
//
// Invariants are checked at the end (Fleet::CheckInvariants): no leaked
// half-built domains anywhere, no double placements, restart budgets
// respected, the controller alive and supervised. Violations come back
// counted in the summary, not as errors.
#ifndef XOAR_SRC_FLEET_SCENARIOS_H_
#define XOAR_SRC_FLEET_SCENARIOS_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/fleet/fleet.h"
#include "src/obs/trace.h"

namespace xoar {

struct FleetScenarioOptions {
  std::uint64_t seed = 42;
  int hosts = 8;
  int tenants = 4;
  int guests_per_host = 4;
  std::uint64_t guest_memory_mb = 192;
  double guest_net_demand_bps = 40e6;

  // Scenario 1: evacuation under an active fault campaign on the victim.
  bool run_evacuation = true;
  int victim_host = 1;  // host 0 carries the fleet controller
  int campaign_faults = 10;
  int campaign_migration_drops = 3;
  double campaign_seconds = 4.0;

  // Scenario 2: rolling upgrade waves.
  bool run_wave = true;
  bool run_storm_wave = true;
  SimDuration wave_step_window = 1500 * kMillisecond;
  // Healthy steps sit near ~11 ms p99 (guests evacuated before the
  // restarts); a storm step where evacuations fail and resident guests
  // ride through slow shard restarts lands near ~140 ms — the gate splits
  // the two regimes with wide margin on both sides.
  double gate_p99_ms = 100.0;
  double storm_seconds = 20.0;  // wall-to-wall drop windows on every host

  // Scenario 3: rebalance after a traffic spike.
  bool run_rebalance = true;
  int spike_host = 2;
  double spike_multiplier = 4.0;
  double spread_threshold = 0.18;

  // Full-stream trace observer attached to the victim host's tracer
  // before Boot (JournalRecorder to record, ReplayVerifier to verify).
  TraceSink* sink = nullptr;
  // Where to write the fleet.* metric report (BENCH-shape JSON, binary
  // name "fleet_campaign"); empty skips the write.
  std::string metrics_out;
};

struct WaveOutcome {
  int steps = 0;          // wave steps completed (incl. the breaching one)
  bool aborted = false;   // health gate tripped
  double p99_ms_max = 0;  // worst per-step delta p99/p999
  double p999_ms_max = 0;
  int rebalance_moves = 0;  // re-spread moves after an abort
};

struct FleetScenarioSummary {
  int hosts = 0;
  int guests_placed = 0;
  std::uint64_t admission_shed = 0;

  // Scenario 1.
  int evac_moved = 0;
  int evac_failed = 0;
  int evac_retries = 0;
  int evac_stream_drop_aborts = 0;
  std::uint64_t stream_drops_injected = 0;

  // Scenario 2.
  WaveOutcome clean_wave;
  WaveOutcome storm_wave;
  bool storm_converged = false;  // spread back under threshold post-storm

  // Scenario 3.
  int rebalance_moves = 0;
  double spread_before = 0;
  double spread_after = 0;

  // Workload + interference.
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_failed = 0;
  double p99_ms = 0;  // whole-run latency percentiles
  double p999_ms = 0;
  double interference_p99_ratio = 0;

  // Invariants (sum must be zero for a passing campaign).
  std::uint64_t leaked_domains = 0;
  std::uint64_t placement_errors = 0;
  std::uint64_t budget_breaches = 0;
  std::uint64_t controller_failures = 0;
  std::uint64_t violations = 0;
};

// Runs the configured scenarios to completion on a fresh fleet. Errors
// (boot/placement/report-write failure) are environmental; invariant
// violations and gate trips are results, counted in the summary.
StatusOr<FleetScenarioSummary> RunFleetCampaign(
    const FleetScenarioOptions& options);

}  // namespace xoar

#endif  // XOAR_SRC_FLEET_SCENARIOS_H_
